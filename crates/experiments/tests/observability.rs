//! The observability layer must be invisible to results and visible to
//! Perfetto.
//!
//! One test fn on purpose: span profiling is process-global state (the
//! `obs::enabled()` flag and the flight-recorder ring), and cargo runs
//! the `#[test]` fns of one binary concurrently. Sequencing every phase
//! inside a single fn is what makes the on/off comparison sound.
//!
//! Phases:
//! 1. profiling **off**: serial and parallel sweeps of a small Figure 8
//!    grid must serialize byte-identically (the existing determinism
//!    contract);
//! 2. profiling **on**: the same sweeps must *still* serialize
//!    byte-identically to phase 1 — recording spans may not perturb one
//!    byte of any result;
//! 3. the `obs` counter section of a report is populated (counters are
//!    always collected, profiled or not);
//! 4. the exported Chrome trace-event JSON parses, and names both the
//!    simulated-process tracks and the host worker tracks.

use buffer_cache::WritePolicy;
use experiments::figures::two_venus_report_in;
use experiments::{par_sweep, serial_sweep, Scale, TraceStore};
use std::path::Path;

const MB: u64 = 1024 * 1024;

/// (cache MB, block size) — three points keep the four sweeps quick.
const GRID: [(u64, u64); 3] = [(4, 4096), (16, 8192), (32, 4096)];

fn sweep_json(store: &TraceStore, parallel: bool) -> Vec<String> {
    let run = |&(mb, block): &(u64, u64)| {
        two_venus_report_in(store, mb * MB, block, true, WritePolicy::WriteBehind, Scale(32), 42)
    };
    let reports = if parallel { par_sweep(&GRID, run) } else { serial_sweep(&GRID, run) };
    reports
        .iter()
        .map(|r| serde_json::to_string(r).expect("report serializes"))
        .collect()
}

#[test]
fn profiling_is_invisible_and_exports_a_perfetto_trace() {
    let store = TraceStore::new();

    // Phase 1: profiling off (the default in a fresh test process).
    assert!(!obs::enabled(), "spans must start disabled");
    let off_serial = sweep_json(&store, false);
    let off_parallel = sweep_json(&store, true);
    assert_eq!(off_serial, off_parallel, "parallel must match serial with profiling off");

    // Phase 2: profiling on — results must not move by a byte.
    obs::init(1 << 16);
    obs::set_enabled(true);
    let on_parallel = sweep_json(&store, true);
    let on_serial = sweep_json(&store, false);
    assert_eq!(on_parallel, off_serial, "profiling must not change parallel results");
    assert_eq!(on_serial, off_serial, "profiling must not change serial results");

    // Phase 3: the counter section is populated either way.
    let report: iosim::SimReport =
        serde_json::from_str(&off_serial[2]).expect("report round-trips");
    assert!(report.obs.timing_wheel.inserts > 0, "wheel inserts: {:?}", report.obs.timing_wheel);
    assert!(report.obs.cache.hit_blocks > 0, "cache hits: {:?}", report.obs.cache);
    assert!(report.obs.disks.seeks > 0, "disk seeks: {:?}", report.obs.disks);
    assert!(
        report.obs.scheduler.context_switches > 0,
        "context switches: {:?}",
        report.obs.scheduler
    );

    // Phase 4: export what phase 2 recorded and check it is a loadable
    // Chrome trace with both clock domains' tracks named.
    let path = Path::new(env!("CARGO_TARGET_TMPDIR")).join("observability_trace.json");
    let summary = obs::export_chrome_trace(&path).expect("trace export writes");
    obs::set_enabled(false);
    assert!(summary.events > 0, "phase 2 must have recorded spans: {summary:?}");
    assert!(summary.tracks > 0, "tracks must be registered: {summary:?}");
    let text = std::fs::read_to_string(&path).expect("trace file readable");
    let parsed: serde::Value = serde_json::from_str(&text).expect("trace is valid JSON");
    drop(parsed);
    assert!(text.contains("\"traceEvents\""), "trace envelope missing");
    assert!(text.contains("\"thread_name\""), "track metadata missing");
    assert!(text.contains("venus"), "simulated-process tracks missing");
    assert!(text.contains("worker"), "host worker tracks missing");
    assert!(text.contains("\"ph\":\"X\""), "complete spans missing");
}
