//! Streamed replay must be a pure memory optimization: pulling traces
//! through spilled frame-file cursors instead of in-memory slices may
//! not change a single byte of any report.
//!
//! Each test runs the same experiment twice — once against an
//! unbounded [`TraceStore`] (zero-copy shared slices), once against a
//! store with a zero-byte memory budget (everything spills, every
//! replay streams) — and compares the serialized reports
//! byte-for-byte. A budget of zero is the adversarial setting: every
//! trace round-trips through the binary frame codec and every process
//! walks block boundaries.

use buffer_cache::WritePolicy;
use experiments::figures::{fig8_in, two_venus_report_in};
use experiments::{run_campaign_in, CampaignSpec, Scale, StoreConfig, TraceStore};

const MB: u64 = 1024 * 1024;

fn streaming_store(name: &str) -> (TraceStore, std::path::PathBuf) {
    let dir =
        std::env::temp_dir().join(format!("miller-streamdet-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = TraceStore::with_config(StoreConfig {
        mem_budget: Some(0),
        spill_dir: Some(dir.clone()),
    });
    (store, dir)
}

#[test]
fn fig6_and_fig7_sweeps_stream_byte_identically() {
    let in_memory = TraceStore::new();
    let (streamed, dir) = streaming_store("fig67");
    // The Figure 6 (32 MB) and Figure 7 (128 MB) cache points.
    for mb in [32u64, 128] {
        let a = two_venus_report_in(
            &in_memory,
            mb * MB,
            4096,
            true,
            WritePolicy::WriteBehind,
            Scale(32),
            42,
        );
        let b = two_venus_report_in(
            &streamed,
            mb * MB,
            4096,
            true,
            WritePolicy::WriteBehind,
            Scale(32),
            42,
        );
        assert_eq!(
            serde_json::to_string(&a).expect("serialize"),
            serde_json::to_string(&b).expect("serialize"),
            "streamed fig6/7 report at {mb} MB diverges from in-memory"
        );
    }
    assert!(streamed.footprint().spilled > 0, "budget store must actually stream");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fig8_sweep_streams_byte_identically() {
    let in_memory = TraceStore::new();
    let (streamed, dir) = streaming_store("fig8");
    let a = fig8_in(&in_memory, Scale(16), 42);
    let b = fig8_in(&streamed, Scale(16), 42);
    assert_eq!(
        serde_json::to_string(&a).expect("serialize"),
        serde_json::to_string(&b).expect("serialize"),
        "streamed fig8 sweep diverges from in-memory"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sharded_campaign_streams_byte_identically_at_any_shard_count() {
    let mut spec = CampaignSpec::datacenter(4, 5);
    spec.scale = Scale::quick(512);
    spec.shared_file_every = 4;
    spec.reads_per_shared = 6;

    let in_memory = TraceStore::new();
    let baseline =
        serde_json::to_string(&run_campaign_in(&in_memory, &spec, 1)).expect("serialize");

    let (streamed, dir) = streaming_store("campaign");
    for shards in [1usize, 4] {
        let report = run_campaign_in(&streamed, &spec, shards);
        assert_eq!(
            baseline,
            serde_json::to_string(&report).expect("serialize"),
            "streamed campaign at {shards} shard(s) diverges from in-memory 1-shard run"
        );
    }
    let f = streamed.footprint();
    assert!(f.spilled > 0, "campaign replays must stream in budget mode");
    assert_eq!(f.resident_bytes, 0, "all cursors are dropped after the runs");
    let _ = std::fs::remove_dir_all(&dir);
}
