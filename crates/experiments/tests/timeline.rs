//! Tentpole guard for the temporal-telemetry sampler: gauge timelines
//! must be a pure observer. With sampling enabled the result JSON stays
//! byte-identical to a plain run, and the timeline JSON itself is
//! byte-identical at any shard count.
//!
//! One `#[test]` runs every phase in sequence: the sampler is
//! configured through the `MILLER_TIMELINE` process environment, so the
//! phases must not interleave with each other (this integration test
//! binary runs alone in its own process, making the env mutation safe).

use experiments::figures::two_venus_report;
use experiments::{run_campaign, CampaignSpec, Scale};
use serde_json::to_string_pretty;

/// A fig8-style point, serialized exactly like `repro-sim --json`.
fn fig8_json() -> String {
    let r = two_venus_report(
        8 * sim_core::units::MB,
        4096,
        true,
        buffer_cache::WritePolicy::WriteBehind,
        Scale(64),
        42,
    );
    to_string_pretty(&r).expect("serialize report")
}

fn campaign_json(shards: usize) -> String {
    let spec = CampaignSpec::datacenter(4, 4);
    to_string_pretty(&run_campaign(&spec, shards)).expect("serialize report")
}

/// Rendered timeline JSON from everything the runs above published.
fn drain_timeline_json() -> String {
    obs::timeline::render_json(&obs::timeline::drain())
}

#[test]
fn timelines_never_perturb_results_and_are_shard_invariant() {
    // Phase 1: baseline, sampling off.
    std::env::remove_var("MILLER_TIMELINE");
    let fig8_plain = fig8_json();
    let campaign_plain = campaign_json(1);
    assert!(obs::timeline::drain().is_empty(), "no timelines published while off");

    // Phase 2: sampling on — results must not move by a byte.
    std::env::set_var("MILLER_TIMELINE", "1000000"); // 1 ms grid
    let fig8_sampled = fig8_json();
    let fig8_timeline = drain_timeline_json();
    assert_eq!(fig8_plain, fig8_sampled, "fig8 report changed with --timeline on");
    assert!(
        fig8_timeline.contains("cache_resident_blocks")
            && fig8_timeline.contains("procs_runnable")
            && fig8_timeline.contains("disk0_depth"),
        "timeline carries the engine gauges: {}",
        &fig8_timeline[..fig8_timeline.len().min(400)]
    );

    // Phase 3: the sharded engine — report and timeline are both pure
    // functions of the spec, never of the shard count.
    std::env::set_var("MILLER_TIMELINE", "100000000"); // 100 ms grid
    let c1 = campaign_json(1);
    let t1 = drain_timeline_json();
    let c4 = campaign_json(4);
    let t4 = drain_timeline_json();
    assert_eq!(campaign_plain, c1, "campaign report changed with --timeline on");
    assert_eq!(c1, c4, "campaign report depends on shard count");
    assert_eq!(t1, t4, "merged timeline depends on shard count");
    assert!(t1.contains("\"timelines\":["), "rendered JSON shape");

    std::env::remove_var("MILLER_TIMELINE");
}
