//! The parallel harness must be a pure speedup: fanning a sweep out
//! over worker threads may not change a single byte of any result.
//!
//! Each test runs the same parameter grid twice — once through
//! [`experiments::serial_sweep`], once through [`experiments::par_sweep`]
//! — with identical seeds, and compares the serialized reports
//! byte-for-byte. Simulations are deterministic functions of their
//! (config, seed) inputs, so any divergence here means the harness
//! leaked scheduling order into the results.

use buffer_cache::WritePolicy;
use experiments::figures::two_venus_report;
use experiments::{ablations, par_sweep, scaled_spec, serial_sweep, Scale, TraceStore};
use iosim::{SimConfig, SimReport, Simulation};
use workload::{generate, AppKind};

const MB: u64 = 1024 * 1024;

/// The Figure 6/8-style grid: two venus copies vs cache size and block
/// size. Small scale keeps the test quick; the code path is identical
/// to the full-scale sweep.
fn grid() -> Vec<(u64, u64)> {
    let mut jobs = Vec::new();
    for &block in &[4096u64, 8192] {
        for &mb in &[4u64, 16, 32] {
            jobs.push((mb, block));
        }
    }
    jobs
}

fn run_point(&(mb, block): &(u64, u64)) -> SimReport {
    two_venus_report(mb * MB, block, true, WritePolicy::WriteBehind, Scale(32), 42)
}

#[test]
fn parallel_sweep_matches_serial_byte_for_byte() {
    let jobs = grid();
    let serial = serial_sweep(&jobs, run_point);
    let parallel = par_sweep(&jobs, run_point);
    assert_eq!(serial.len(), parallel.len());
    for (i, (s, p)) in serial.iter().zip(parallel.iter()).enumerate() {
        let s_json = serde_json::to_string(s).expect("serialize serial report");
        let p_json = serde_json::to_string(p).expect("serialize parallel report");
        assert_eq!(
            s_json, p_json,
            "sweep point {i} ({:?}) diverges between serial and parallel runs",
            jobs[i]
        );
    }
}

#[test]
fn parallel_sweep_is_stable_across_repeat_runs() {
    let jobs = grid();
    let a = par_sweep(&jobs, run_point);
    let b = par_sweep(&jobs, run_point);
    let a_json = serde_json::to_string(&a).expect("serialize");
    let b_json = serde_json::to_string(&b).expect("serialize");
    assert_eq!(a_json, b_json, "repeat parallel sweeps must be byte-identical");
}

/// The two-venus setup with traces generated *fresh* at every call,
/// bypassing the memoizing [`TraceStore`] entirely — the pre-store code
/// path, kept here as the reference the store must match byte-for-byte.
fn fresh_two_venus_report(
    cache_bytes: u64,
    block_size: u64,
    read_ahead: bool,
    write_policy: WritePolicy,
    scale: Scale,
    seed: u64,
) -> SimReport {
    let mut config = SimConfig::buffered(cache_bytes);
    {
        let c = config.cache.as_mut().expect("buffered config has a cache");
        c.block_size = block_size;
        c.read_ahead = read_ahead;
        c.write_policy = write_policy;
    }
    let mut sim = Simulation::new(config);
    sim.add_process(1, "venus#1", &generate(&scaled_spec(AppKind::Venus, 1, scale), seed))
        .expect("valid process");
    sim.add_process(2, "venus#2", &generate(&scaled_spec(AppKind::Venus, 2, scale), seed + 1))
        .expect("valid process");
    sim.run()
}

fn fresh_point(&(mb, block): &(u64, u64)) -> SimReport {
    fresh_two_venus_report(mb * MB, block, true, WritePolicy::WriteBehind, Scale(32), 42)
}

#[test]
fn memoized_store_matches_fresh_generation_at_one_thread() {
    let jobs = grid();
    let fresh = serial_sweep(&jobs, fresh_point);
    let memoized = serial_sweep(&jobs, run_point);
    for (i, (f, m)) in fresh.iter().zip(memoized.iter()).enumerate() {
        let f_json = serde_json::to_string(f).expect("serialize fresh report");
        let m_json = serde_json::to_string(m).expect("serialize memoized report");
        assert_eq!(
            f_json, m_json,
            "sweep point {i} ({:?}) diverges between fresh and memoized traces",
            jobs[i]
        );
    }
}

#[test]
fn memoized_store_matches_fresh_generation_at_n_threads() {
    let jobs = grid();
    let fresh = serial_sweep(&jobs, fresh_point);
    // A cold private store exercises concurrent first-request memoization
    // inside the parallel sweep; the global store then re-checks the
    // warm path.
    let cold = TraceStore::new();
    let memoized_cold = par_sweep(&jobs, |&(mb, block)| {
        experiments::figures::two_venus_report_in(
            &cold,
            mb * MB,
            block,
            true,
            WritePolicy::WriteBehind,
            Scale(32),
            42,
        )
    });
    let memoized_warm = par_sweep(&jobs, run_point);
    let fresh_json = serde_json::to_string(&fresh).expect("serialize");
    assert_eq!(
        fresh_json,
        serde_json::to_string(&memoized_cold).expect("serialize"),
        "cold-store parallel sweep diverges from fresh serial generation"
    );
    assert_eq!(
        fresh_json,
        serde_json::to_string(&memoized_warm).expect("serialize"),
        "warm-store parallel sweep diverges from fresh serial generation"
    );
}

#[test]
fn ablations_match_fresh_generation() {
    // The quantum ablation builds its simulations from store-shared
    // slices; rebuild the same three runs with freshly generated traces
    // and compare the serialized sweeps byte-for-byte.
    let (scale, seed) = (Scale(32), 21);
    let memoized = ablations::quantum_ablation(scale, seed);
    let quanta = [1u64, 16, 100];
    let fresh_points = serial_sweep(&quanta, |&ms| {
        let mut config = SimConfig::buffered(32 * MB);
        config.sched.quantum = sim_core::SimDuration::from_millis(ms);
        let mut sim = Simulation::new(config);
        sim.add_process(1, "venus#1", &generate(&scaled_spec(AppKind::Venus, 1, scale), seed))
            .expect("valid process");
        sim.add_process(2, "venus#2", &generate(&scaled_spec(AppKind::Venus, 2, scale), seed + 1))
            .expect("valid process");
        let r = sim.run();
        (r.idle_secs(), r.utilization(), r.wall_secs())
    });
    assert_eq!(memoized.points.len(), fresh_points.len());
    for (m, (idle, util, wall)) in memoized.points.iter().zip(fresh_points) {
        assert_eq!(m.idle_secs.to_bits(), idle.to_bits(), "{}", m.variant);
        assert_eq!(m.utilization.to_bits(), util.to_bits(), "{}", m.variant);
        assert_eq!(m.wall_secs.to_bits(), wall.to_bits(), "{}", m.variant);
    }
}
