//! The parallel harness must be a pure speedup: fanning a sweep out
//! over worker threads may not change a single byte of any result.
//!
//! Each test runs the same parameter grid twice — once through
//! [`experiments::serial_sweep`], once through [`experiments::par_sweep`]
//! — with identical seeds, and compares the serialized reports
//! byte-for-byte. Simulations are deterministic functions of their
//! (config, seed) inputs, so any divergence here means the harness
//! leaked scheduling order into the results.

use buffer_cache::WritePolicy;
use experiments::figures::two_venus_report;
use experiments::{par_sweep, serial_sweep, Scale};
use iosim::SimReport;

const MB: u64 = 1024 * 1024;

/// The Figure 6/8-style grid: two venus copies vs cache size and block
/// size. Small scale keeps the test quick; the code path is identical
/// to the full-scale sweep.
fn grid() -> Vec<(u64, u64)> {
    let mut jobs = Vec::new();
    for &block in &[4096u64, 8192] {
        for &mb in &[4u64, 16, 32] {
            jobs.push((mb, block));
        }
    }
    jobs
}

fn run_point(&(mb, block): &(u64, u64)) -> SimReport {
    two_venus_report(mb * MB, block, true, WritePolicy::WriteBehind, Scale(32), 42)
}

#[test]
fn parallel_sweep_matches_serial_byte_for_byte() {
    let jobs = grid();
    let serial = serial_sweep(&jobs, run_point);
    let parallel = par_sweep(&jobs, run_point);
    assert_eq!(serial.len(), parallel.len());
    for (i, (s, p)) in serial.iter().zip(parallel.iter()).enumerate() {
        let s_json = serde_json::to_string(s).expect("serialize serial report");
        let p_json = serde_json::to_string(p).expect("serialize parallel report");
        assert_eq!(
            s_json, p_json,
            "sweep point {i} ({:?}) diverges between serial and parallel runs",
            jobs[i]
        );
    }
}

#[test]
fn parallel_sweep_is_stable_across_repeat_runs() {
    let jobs = grid();
    let a = par_sweep(&jobs, run_point);
    let b = par_sweep(&jobs, run_point);
    let a_json = serde_json::to_string(&a).expect("serialize");
    let b_json = serde_json::to_string(&b).expect("serialize");
    assert_eq!(a_json, b_json, "repeat parallel sweeps must be byte-identical");
}
