//! The paper's §6 headline claims, C1–C5 (DESIGN.md §5), each checked
//! quantitatively.

use crate::figures::two_venus_report;
use crate::render::{num, pct, TextTable};
use crate::runner::{app_events, Scale};
use buffer_cache::WritePolicy;
use iosim::{SimConfig, Simulation};
use serde::{Deserialize, Serialize};
use sim_core::units::MB;
use workload::{AppKind, ALL_APPS};

/// C1 (§6.2): "writebehind reduced idle time from 211 seconds to 1
/// second for a simulation of two identical copies of venus running with
/// a 128 MB cache."
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Claim1 {
    /// Idle seconds without write-behind (write-through).
    pub idle_without_wb: f64,
    /// Idle seconds with write-behind.
    pub idle_with_wb: f64,
    /// Reduction factor.
    pub factor: f64,
    /// Shape check: write-behind cuts idle by at least 5×.
    pub holds: bool,
}

/// Check C1.
pub fn claim1(scale: Scale, seed: u64) -> Claim1 {
    let with_wb =
        two_venus_report(128 * MB, 4096, true, WritePolicy::WriteBehind, scale, seed);
    let without =
        two_venus_report(128 * MB, 4096, true, WritePolicy::WriteThrough, scale, seed);
    let idle_with_wb = with_wb.idle_secs();
    let idle_without_wb = without.idle_secs();
    let factor = if idle_with_wb > 0.0 { idle_without_wb / idle_with_wb } else { f64::INFINITY };
    Claim1 { idle_without_wb, idle_with_wb, factor, holds: factor >= 5.0 }
}

/// One app's solo-on-SSD utilization (C2).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SsdUtilization {
    /// Application.
    pub app: String,
    /// CPU utilization with the 32 MW (256 MB) SSD cache.
    pub utilization: f64,
    /// Idle seconds.
    pub idle_secs: f64,
}

/// C2 (§6.3): "all but one of the applications nearly completely
/// utilized a Cray Y-MP CPU by itself when using a 32 MW SSD cache"
/// (the text quotes "over 99%").
///
/// Our bar is 98.5 %: the residual below the paper's 99 % is the
/// cold-start staging of each data set from disk into the SSD, which our
/// simulator charges to the run while the paper's description ("data was
/// read from disk once and written back while the program continued
/// executing") suggests it overlapped. The *exception* app matches: bvi,
/// whose many small requests pay file-system overhead on every call (§3
/// calls this "a sizable penalty").
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Claim2 {
    /// Per-app utilization.
    pub apps: Vec<SsdUtilization>,
    /// How many apps exceed 98.5 % utilization.
    pub nearly_full: usize,
    /// Shape check: at least all-but-one are nearly fully utilized.
    pub holds: bool,
}

/// Check C2.
pub fn claim2(scale: Scale, seed: u64) -> Claim2 {
    let apps = crate::par_sweep::par_sweep(&ALL_APPS, |&kind| {
        let mut sim = Simulation::new(SimConfig::ssd());
        sim.add_process_shared(1, kind.name(), app_events(kind, 1, seed, scale))
            .expect("valid process");
        let r = sim.run();
        SsdUtilization {
            app: kind.name().to_string(),
            utilization: r.utilization(),
            idle_secs: r.idle_secs(),
        }
    });
    let nearly_full = apps.iter().filter(|a| a.utilization > 0.985).count();
    Claim2 { nearly_full, holds: nearly_full + 1 >= ALL_APPS.len(), apps }
}

/// C3 (§6.3): "even in an 8 MB cache, gcm had only 1 second of idle
/// time" — compulsory-only programs are easy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Claim3 {
    /// gcm's idle seconds with an 8 MB main-memory cache.
    pub gcm_idle_secs: f64,
    /// Shape check: a couple of seconds at most.
    pub holds: bool,
}

/// Check C3.
pub fn claim3(scale: Scale, seed: u64) -> Claim3 {
    let mut sim = Simulation::new(SimConfig::buffered(8 * MB));
    sim.add_process_shared(1, "gcm", app_events(AppKind::Gcm, 1, seed, scale))
        .expect("valid process");
    let r = sim.run();
    Claim3 { gcm_idle_secs: r.idle_secs(), holds: r.idle_secs() < 3.0 }
}

/// C4 (§6.2): "A limit on the number of buffers a process could own did
/// not relieve the problem, and actually worsened CPU utilization in
/// several cases."
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Claim4 {
    /// Idle seconds without an ownership cap.
    pub idle_uncapped: f64,
    /// Idle seconds with a cap of 1/4 of the cache per process.
    pub idle_capped: f64,
    /// Shape check: the cap does not help (and usually hurts).
    pub holds: bool,
}

/// Check C4.
pub fn claim4(scale: Scale, seed: u64) -> Claim4 {
    let run = |cap: Option<u64>| {
        let mut config = SimConfig::buffered(32 * MB);
        config.cache.as_mut().expect("cache").per_process_cap_blocks = cap;
        let mut sim = Simulation::new(config);
        sim.add_process_shared(1, "venus#1", app_events(AppKind::Venus, 1, seed, scale))
            .expect("valid process");
        sim.add_process_shared(2, "venus#2", app_events(AppKind::Venus, 2, seed + 1, scale))
            .expect("valid process");
        sim.run()
    };
    let uncapped = run(None).idle_secs();
    // Cap = quarter of the cache (32 MB / 4 KB blocks / 4).
    let capped = run(Some(32 * MB / 4096 / 4)).idle_secs();
    Claim4 {
        idle_uncapped: uncapped,
        idle_capped: capped,
        holds: capped >= uncapped * 0.98,
    }
}

/// One app's small-cache absorption (C5).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Absorption {
    /// Application.
    pub app: String,
    /// Fraction of demand read blocks served from the cache with a
    /// 16 MB main-memory cache.
    pub read_absorption: f64,
}

/// C5 (§6.2): unlike the BSD study's 80 %+ cache hits, a realistic
/// main-memory cache absorbs little of a supercomputer application's
/// demand — it is a speed-matching buffer, not a locality exploiter.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Claim5 {
    /// Per I/O-intensive app absorption at 16 MB.
    pub apps: Vec<Absorption>,
    /// Shape check: the data-staging apps (venus, les, bvi) absorb under
    /// 50 % where the BSD study saw 80 %+.
    pub holds: bool,
}

/// Check C5.
pub fn claim5(scale: Scale, seed: u64) -> Claim5 {
    let staging = [AppKind::Venus, AppKind::Les, AppKind::Bvi];
    let apps = crate::par_sweep::par_sweep(&staging, |&kind| {
        let mut config = SimConfig::buffered(16 * MB);
        // Measure *demand* locality: disable read-ahead so prefetch hits
        // don't masquerade as reuse.
        config.cache.as_mut().expect("cache").read_ahead = false;
        let mut sim = Simulation::new(config);
        sim.add_process_shared(1, kind.name(), app_events(kind, 1, seed, scale))
            .expect("valid process");
        let r = sim.run();
        Absorption {
            app: kind.name().to_string(),
            read_absorption: r.cache.read_absorption(),
        }
    });
    let holds = apps.iter().all(|a| a.read_absorption < 0.5);
    Claim5 { apps, holds }
}

/// All five claims in one report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClaimsReport {
    /// C1: write-behind slashes 2×venus idle.
    pub c1: Claim1,
    /// C2: SSD cache yields >99 % utilization for all but one app.
    pub c2: Claim2,
    /// C3: gcm barely idles even at 8 MB.
    pub c3: Claim3,
    /// C4: ownership caps don't help.
    pub c4: Claim4,
    /// C5: small caches absorb little.
    pub c5: Claim5,
}

/// Run every claim.
pub fn all_claims(scale: Scale, seed: u64) -> ClaimsReport {
    ClaimsReport {
        c1: claim1(scale, seed),
        c2: claim2(scale, seed),
        c3: claim3(scale, seed),
        c4: claim4(scale, seed),
        c5: claim5(scale, seed),
    }
}

/// Render the claims report.
pub fn render_claims(r: &ClaimsReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "C1 write-behind (2 x venus, 128 MB): idle {}s -> {}s ({}x)  [{}]\n",
        num(r.c1.idle_without_wb),
        num(r.c1.idle_with_wb),
        num(r.c1.factor),
        if r.c1.holds { "HOLDS" } else { "FAILS" }
    ));
    out.push_str(&format!(
        "C2 SSD cache solo utilization ({}/{} apps > 98.5%)  [{}]\n",
        r.c2.nearly_full,
        r.c2.apps.len(),
        if r.c2.holds { "HOLDS" } else { "FAILS" }
    ));
    let mut t = TextTable::new(&["app", "utilization", "idle(s)"]);
    for a in &r.c2.apps {
        t.row(vec![a.app.clone(), pct(a.utilization), num(a.idle_secs)]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "C3 gcm @ 8 MB cache: idle {}s  [{}]\n",
        num(r.c3.gcm_idle_secs),
        if r.c3.holds { "HOLDS" } else { "FAILS" }
    ));
    out.push_str(&format!(
        "C4 buffer-ownership cap: idle uncapped {}s vs capped {}s  [{}]\n",
        num(r.c4.idle_uncapped),
        num(r.c4.idle_capped),
        if r.c4.holds { "HOLDS" } else { "FAILS" }
    ));
    out.push_str(&format!(
        "C5 16 MB cache read absorption (BSD study saw 80%+): {}  [{}]\n",
        r.c5
            .apps
            .iter()
            .map(|a| format!("{} {}", a.app, pct(a.read_absorption)))
            .collect::<Vec<_>>()
            .join(", "),
        if r.c5.holds { "HOLDS" } else { "FAILS" }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const QUICK: Scale = Scale(8);

    #[test]
    fn c1_write_behind_slashes_idle() {
        let c = claim1(QUICK, 11);
        assert!(c.holds, "write-behind factor only {}x ({}s -> {}s)", c.factor, c.idle_without_wb, c.idle_with_wb);
    }

    #[test]
    fn c3_gcm_barely_idles_at_8mb() {
        let c = claim3(QUICK, 11);
        assert!(c.holds, "gcm idle {}s", c.gcm_idle_secs);
    }

    #[test]
    fn c4_cap_does_not_help() {
        let c = claim4(QUICK, 11);
        assert!(c.holds, "cap helped?! uncapped {} vs capped {}", c.idle_uncapped, c.idle_capped);
    }

    #[test]
    fn c5_small_cache_absorbs_little() {
        let c = claim5(QUICK, 11);
        assert!(c.holds, "absorptions: {:?}", c.apps);
    }

    #[test]
    fn render_mentions_every_claim() {
        // A tiny-scale smoke of the full report (c2 runs 7 sims; keep the
        // scale high).
        let r = all_claims(Scale(16), 11);
        let text = render_claims(&r);
        for tag in ["C1", "C2", "C3", "C4", "C5"] {
            assert!(text.contains(tag));
        }
    }
}
