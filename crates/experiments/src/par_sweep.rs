//! Deterministic parallel sweep execution.
//!
//! Every figure/table/ablation in this crate is a sweep of independent,
//! individually-seeded simulations, so the natural speedup is to fan the
//! parameter points out over a thread pool. Two invariants make the
//! parallel results indistinguishable from serial ones:
//!
//! 1. **Ordering** — results come back indexed by *parameter position*,
//!    never completion order.
//! 2. **Seeding** — the worker closure receives the parameter itself;
//!    all randomness derives from per-point seeds the caller passes in,
//!    so no draw depends on which thread ran the point.
//!
//! Consequently `par_sweep(params, f)` is observably identical to
//! `params.iter().map(f).collect()` — a property pinned by the
//! determinism regression test in `tests/determinism.rs`.
//!
//! The pool is plain `std::thread::scope` rather than rayon: this build
//! environment has no registry access, and a work-stealing scheduler
//! buys nothing for coarse tasks that each run for milliseconds to
//! seconds. The thread count honors `MILLER_THREADS` then
//! `RAYON_NUM_THREADS` (the variable rayon users already export), then
//! falls back to the machine's available parallelism.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Number of worker threads a sweep will use.
///
/// `MILLER_THREADS` wins over `RAYON_NUM_THREADS`; both accept a
/// positive integer. Unset/invalid values fall back to the number of
/// available cores.
pub fn thread_count() -> usize {
    for var in ["MILLER_THREADS", "RAYON_NUM_THREADS"] {
        if let Ok(raw) = std::env::var(var) {
            if let Ok(n) = raw.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Consume a `--threads N` flag from a binary's argument list, exporting
/// it as `MILLER_THREADS` so every subsequent sweep (and any child the
/// process spawns) sees it. Returns an error message when the flag is
/// present but malformed.
pub fn apply_threads_flag(args: &mut Vec<String>) -> Result<(), String> {
    let Some(i) = args.iter().position(|a| a == "--threads") else {
        return Ok(());
    };
    if i + 1 >= args.len() {
        return Err("--threads needs a value".into());
    }
    let raw = args.remove(i + 1);
    args.remove(i);
    match raw.trim().parse::<usize>() {
        Ok(n) if n >= 1 => {
            std::env::set_var("MILLER_THREADS", n.to_string());
            Ok(())
        }
        _ => Err(format!("--threads needs a positive integer, got `{raw}`")),
    }
}

/// Number of engine shards a sharded campaign will use.
///
/// Reads `MILLER_SHARDS` (a positive integer); unset/invalid values
/// default to 1 — sharding is opt-in, and one shard is always correct
/// because the report is shard-count-invariant by construction.
pub fn shard_count() -> usize {
    std::env::var("MILLER_SHARDS")
        .ok()
        .and_then(|raw| raw.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

/// Consume a `--shards N` flag from a binary's argument list, exporting
/// it as `MILLER_SHARDS` so every subsequent sharded run (and any child
/// the process spawns) sees it. Returns an error message when the flag
/// is present but malformed.
pub fn apply_shards_flag(args: &mut Vec<String>) -> Result<(), String> {
    let Some(i) = args.iter().position(|a| a == "--shards") else {
        return Ok(());
    };
    if i + 1 >= args.len() {
        return Err("--shards needs a value".into());
    }
    let raw = args.remove(i + 1);
    args.remove(i);
    match raw.trim().parse::<usize>() {
        Ok(n) if n >= 1 => {
            std::env::set_var("MILLER_SHARDS", n.to_string());
            Ok(())
        }
        _ => Err(format!("--shards needs a positive integer, got `{raw}`")),
    }
}

/// Consume a `--trace-dir PATH` flag, exporting it as `MILLER_TRACE_DIR`
/// so the global [`crate::TraceStore`] spills to (and reuses frame files
/// from) that directory. Returns an error message when the flag is
/// present but missing its value.
pub fn apply_trace_dir_flag(args: &mut Vec<String>) -> Result<(), String> {
    let Some(i) = args.iter().position(|a| a == "--trace-dir") else {
        return Ok(());
    };
    if i + 1 >= args.len() {
        return Err("--trace-dir needs a path".into());
    }
    let raw = args.remove(i + 1);
    args.remove(i);
    // A path can't fail to parse the way the numeric flags do, so catch
    // the swallowed-flag mistake (`--trace-dir --quick`) explicitly.
    if raw.trim().is_empty() || raw.starts_with("--") {
        return Err(format!("--trace-dir needs a path, got `{raw}`"));
    }
    std::env::set_var("MILLER_TRACE_DIR", raw);
    Ok(())
}

/// Consume a `--trace-mem-budget MB` flag, exporting it as
/// `MILLER_TRACE_MEM_BUDGET` so the global [`crate::TraceStore`] bounds
/// resident trace bytes and streams replays from spilled frame files
/// (a one-line stderr note announces the first spill). Returns an error
/// message when the flag is present but malformed.
pub fn apply_trace_mem_budget_flag(args: &mut Vec<String>) -> Result<(), String> {
    let Some(i) = args.iter().position(|a| a == "--trace-mem-budget") else {
        return Ok(());
    };
    if i + 1 >= args.len() {
        return Err("--trace-mem-budget needs a value in MB".into());
    }
    let raw = args.remove(i + 1);
    args.remove(i);
    match raw.trim().parse::<usize>() {
        Ok(mb) => {
            std::env::set_var("MILLER_TRACE_MEM_BUDGET", mb.to_string());
            Ok(())
        }
        _ => Err(format!("--trace-mem-budget needs an integer MB count, got `{raw}`")),
    }
}

/// True when `--devices modern` selected the 2026 hardware rerun:
/// `MILLER_DEVICES` equals `modern`. Unset, `paper`, or `1991` mean the
/// byte-identical paper-faithful device models.
pub fn modern_devices() -> bool {
    std::env::var("MILLER_DEVICES").is_ok_and(|v| v.trim() == "modern")
}

/// Consume a `--devices ERA` flag, exporting it as `MILLER_DEVICES`.
/// Accepted eras: `paper` / `1991` (the default Y-MP devices) and
/// `modern` (the 2026 tiered hierarchy rerun). Returns an error message
/// when the flag is present but missing or naming an unknown era.
pub fn apply_devices_flag(args: &mut Vec<String>) -> Result<(), String> {
    let Some(i) = args.iter().position(|a| a == "--devices") else {
        return Ok(());
    };
    if i + 1 >= args.len() {
        return Err("--devices needs an era (paper|1991|modern)".into());
    }
    let raw = args.remove(i + 1);
    args.remove(i);
    match raw.trim() {
        "paper" | "1991" | "modern" => {
            std::env::set_var("MILLER_DEVICES", raw.trim());
            Ok(())
        }
        _ => Err(format!("--devices needs one of paper|1991|modern, got `{raw}`")),
    }
}

/// True when the sweep heartbeat reporter is on: `MILLER_PROGRESS` set
/// to anything non-empty other than `0`.
pub fn progress_enabled() -> bool {
    std::env::var("MILLER_PROGRESS").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Consume a `--progress` flag from a binary's argument list, exporting
/// `MILLER_PROGRESS=1` so every subsequent sweep reports a heartbeat.
pub fn apply_progress_flag(args: &mut Vec<String>) {
    if let Some(i) = args.iter().position(|a| a == "--progress") {
        args.remove(i);
        std::env::set_var("MILLER_PROGRESS", "1");
    }
}

/// Apply the flag set every repro binary shares, in the required order:
/// `--threads N`, `--shards N`, `--trace-dir PATH`,
/// `--trace-mem-budget MB` (both of which must run before the first
/// trace-store access, which every repro main defers until after flag
/// parsing), `--devices ERA`, `--progress`, `--timeline NS` /
/// `--timeline-out PATH` (which must run before the first simulation is
/// constructed), `--profile-capacity N` (which must precede `--profile`
/// so the ring is sized before recording can allocate it), then
/// `--profile PATH`. Returns the profile output path to hand to
/// [`obs::finish_profile`], or the first flag error. Timeline output is
/// written separately by [`obs::finish_timelines`].
pub fn apply_standard_flags(args: &mut Vec<String>) -> Result<Option<String>, String> {
    apply_threads_flag(args)?;
    apply_shards_flag(args)?;
    apply_trace_dir_flag(args)?;
    apply_trace_mem_budget_flag(args)?;
    apply_devices_flag(args)?;
    apply_progress_flag(args);
    obs::apply_timeline_flags(args)?;
    obs::apply_profile_capacity_flag(args)?;
    obs::apply_profile_flag(args)
}

/// Throttled stderr heartbeat for a sweep: points completed, simulated
/// ev/s since the sweep started, and a naive ETA.
struct Progress {
    total: usize,
    started: Instant,
    /// Simulated-event counter reading at sweep start; the rate is a
    /// delta so concurrent/earlier sweeps don't inflate it.
    ev0: u64,
    last: Instant,
}

impl Progress {
    /// A reporter when [`progress_enabled`], else `None`.
    fn new(total: usize) -> Option<Progress> {
        progress_enabled().then(|| {
            let now = Instant::now();
            Progress { total, started: now, ev0: obs::sim_events_total(), last: now }
        })
    }

    /// Report at most twice a second.
    fn maybe_report(&mut self, done: usize) {
        if self.last.elapsed().as_millis() >= 500 {
            self.report(done);
        }
    }

    fn report(&mut self, done: usize) {
        self.last = Instant::now();
        let secs = self.started.elapsed().as_secs_f64().max(1e-9);
        let events = obs::sim_events_total().saturating_sub(self.ev0);
        let rate = events as f64 / secs;
        let eta = if done > 0 {
            let per_point = secs / done as f64;
            format!("{:.0}s", per_point * (self.total - done) as f64)
        } else {
            "?".into()
        };
        eprintln!(
            "[sweep] {done}/{} points | {:.2}M ev/s | ETA {eta}",
            self.total,
            rate / 1e6
        );
    }
}

/// Map `run` over `params` on a thread pool, returning results in
/// parameter order.
///
/// Worker threads pull the next unclaimed index from a shared counter,
/// so long and short points interleave without static partitioning
/// imbalance. A panic in any point propagates to the caller once the
/// scope joins (matching the `.expect` behavior of a serial loop).
///
/// Observability: when span profiling is enabled each worker thread gets
/// a host-domain Perfetto track carrying one `point` span per sweep
/// point; when `MILLER_PROGRESS`/`--progress` is set a throttled
/// heartbeat goes to stderr. Neither affects the results.
pub fn par_sweep<P, R, F>(params: &[P], run: F) -> Vec<R>
where
    P: Sync,
    R: Send,
    F: Fn(&P) -> R + Sync,
{
    let n = params.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = thread_count().min(n);
    let sweep_id = obs::enabled().then(obs::next_sweep_id);
    let mut progress = Progress::new(n);
    if threads <= 1 {
        let track = sweep_id
            .map(|sid| obs::register_track(obs::Domain::Host, format!("sweep{sid} worker0")));
        let out = params
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let t0 = obs::host_now_ns();
                let r = run(p);
                if let Some(t) = track {
                    let t1 = obs::host_now_ns();
                    obs::complete(t, "point", t0, t1.saturating_sub(t0), Some(i as u64));
                }
                if let Some(prog) = progress.as_mut() {
                    prog.maybe_report(i + 1);
                }
                r
            })
            .collect();
        if let Some(prog) = progress.as_mut() {
            prog.report(n);
        }
        return out;
    }
    let next = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    let progress = progress.map(Mutex::new);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for w in 0..threads {
            let (next, done, slots, progress, run, params) =
                (&next, &done, &slots, &progress, &run, params);
            scope.spawn(move || {
                let track = sweep_id.map(|sid| {
                    obs::register_track(obs::Domain::Host, format!("sweep{sid} worker{w}"))
                });
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let t0 = obs::host_now_ns();
                    let result = run(&params[i]);
                    if let Some(t) = track {
                        let t1 = obs::host_now_ns();
                        obs::complete(t, "point", t0, t1.saturating_sub(t0), Some(i as u64));
                    }
                    *slots[i].lock().expect("result slot lock") = Some(result);
                    let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                    if let Some(prog) = progress.as_ref() {
                        // Contended heartbeat attempts just skip a beat.
                        if let Ok(mut prog) = prog.try_lock() {
                            prog.maybe_report(finished);
                        }
                    }
                }
            });
        }
    });
    if let Some(prog) = progress.as_ref() {
        prog.lock().expect("progress lock").report(n);
    }
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot lock")
                .expect("every index claimed exactly once")
        })
        .collect()
}

/// Serial reference implementation of [`par_sweep`], kept public so the
/// determinism regression test (and any debugging session) can compare
/// the two executions of the *same* closure directly.
pub fn serial_sweep<P, R, F>(params: &[P], run: F) -> Vec<R>
where
    F: Fn(&P) -> R,
{
    params.iter().map(run).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn preserves_parameter_order() {
        let params: Vec<u64> = (0..100).collect();
        // Make early indices the slowest so completion order inverts
        // submission order.
        let out = par_sweep(&params, |&p| {
            if p < 4 {
                std::thread::sleep(std::time::Duration::from_millis(20 - 5 * p));
            }
            p * 3
        });
        assert_eq!(out, params.iter().map(|p| p * 3).collect::<Vec<_>>());
    }

    #[test]
    fn matches_serial_reference() {
        let params: Vec<(u64, u64)> = (0..37).map(|i| (i, i * i)).collect();
        let f = |&(a, b): &(u64, u64)| a.wrapping_mul(31).wrapping_add(b);
        assert_eq!(par_sweep(&params, f), serial_sweep(&params, f));
    }

    #[test]
    fn runs_every_param_exactly_once() {
        let hits = AtomicU64::new(0);
        let params: Vec<u32> = (0..257).collect();
        let out = par_sweep(&params, |&p| {
            hits.fetch_add(1, Ordering::Relaxed);
            p
        });
        assert_eq!(out.len(), 257);
        assert_eq!(hits.load(Ordering::Relaxed), 257);
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u8> = Vec::new();
        assert!(par_sweep(&empty, |&p| p).is_empty());
        assert_eq!(par_sweep(&[7u8], |&p| p + 1), vec![8]);
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(thread_count() >= 1);
    }

    // Only the error paths: the happy path exports MILLER_SHARDS, and
    // tests in one binary run concurrently, so it is exercised end-to-end
    // by the CI determinism guard (`repro-sim --campaign ... --shards 4`)
    // instead of here.
    // Error paths only, for the same reason as the shards flag below:
    // the happy path mutates process-global env vars, which races the
    // other tests in this binary; it is exercised end-to-end by the CI
    // streamed-replay cmp guard (`repro-sim --campaign ...
    // --trace-mem-budget 1 --trace-dir ...`).
    #[test]
    fn trace_flags_reject_bad_values() {
        let mut missing_dir: Vec<String> = ["bin", "--trace-dir"].map(String::from).into();
        assert!(apply_trace_dir_flag(&mut missing_dir).is_err());
        let mut empty_dir: Vec<String> = ["bin", "--trace-dir", "  "].map(String::from).into();
        assert!(apply_trace_dir_flag(&mut empty_dir).is_err());
        let mut ate_flag: Vec<String> =
            ["bin", "--trace-dir", "--quick"].map(String::from).into();
        assert!(apply_trace_dir_flag(&mut ate_flag).is_err(), "a flag is not a path");
        let mut missing_mb: Vec<String> = ["bin", "--trace-mem-budget"].map(String::from).into();
        assert!(apply_trace_mem_budget_flag(&mut missing_mb).is_err());
        let mut junk_mb: Vec<String> =
            ["bin", "--trace-mem-budget", "lots"].map(String::from).into();
        assert!(apply_trace_mem_budget_flag(&mut junk_mb).is_err());
        let mut absent: Vec<String> = ["bin", "--quick"].map(String::from).into();
        assert!(apply_trace_dir_flag(&mut absent).is_ok());
        assert!(apply_trace_mem_budget_flag(&mut absent).is_ok());
        assert_eq!(absent.len(), 2, "absent flags leave the args untouched");
    }

    #[test]
    fn shards_flag_rejects_bad_values() {
        let mut missing: Vec<String> = ["bin", "--shards"].map(String::from).into();
        assert!(apply_shards_flag(&mut missing).is_err());
        let mut zero: Vec<String> = ["bin", "--shards", "0"].map(String::from).into();
        assert!(apply_shards_flag(&mut zero).is_err());
        let mut junk: Vec<String> = ["bin", "--shards", "many"].map(String::from).into();
        assert!(apply_shards_flag(&mut junk).is_err());
        let mut absent: Vec<String> = ["bin", "--quick"].map(String::from).into();
        assert!(apply_shards_flag(&mut absent).is_ok());
        assert_eq!(absent.len(), 2);
    }
}
