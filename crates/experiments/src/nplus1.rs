//! The §2.2 multiprogramming rule of thumb: "n+1 jobs resident in main
//! memory will keep n processors busy, given a typical supercomputer
//! workload" (citing the X-MP workload study [8]).
//!
//! We sweep the number of CPUs and the number of resident typical jobs
//! and report utilization. The shape to reproduce: with j = n jobs the
//! CPUs starve whenever all jobs block at once; j = n+1 recovers most of
//! the lost capacity; further jobs add little.

use crate::render::{pct, TextTable};
use crate::runner::Scale;
use iosim::{SimConfig, Simulation};
use iotrace::{Direction, IoEvent, Trace};
use serde::{Deserialize, Serialize};
use sim_core::units::KB;
use sim_core::{SimDuration, SimRng, SimTime};
use std::sync::Arc;

/// One (CPUs, jobs) measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NPlusOnePoint {
    /// CPUs simulated.
    pub cpus: usize,
    /// Jobs resident.
    pub jobs: usize,
    /// CPU utilization across all CPUs.
    pub utilization: f64,
    /// Idle CPU-seconds.
    pub idle_secs: f64,
}

/// The sweep result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NPlusOneResult {
    /// All measured points.
    pub points: Vec<NPlusOnePoint>,
}

impl NPlusOneResult {
    /// Utilization at (cpus, jobs), if measured.
    pub fn at(&self, cpus: usize, jobs: usize) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.cpus == cpus && p.jobs == jobs)
            .map(|p| p.utilization)
    }

    /// The rule itself: for every CPU count measured, n+1 jobs must
    /// recover at least `frac` of the utilization gap between n jobs and
    /// full capacity.
    pub fn rule_holds(&self, frac: f64) -> bool {
        let cpus: std::collections::BTreeSet<usize> =
            self.points.iter().map(|p| p.cpus).collect();
        cpus.into_iter().all(|n| {
            match (self.at(n, n), self.at(n, n + 1)) {
                (Some(u_n), Some(u_n1)) => u_n1 >= u_n + frac * (1.0 - u_n) - 1e-9,
                _ => true,
            }
        })
    }
}

/// A "typical supercomputer job" in the §2.2 sense: its data array fits
/// in memory, so it computes most of the time and blocks only for
/// occasional disk I/O (checkpoint-grade duty cycle ≈ 85 %). The rule of
/// thumb explicitly assumes this shape — venus-class staging jobs need
/// far more than one spare job per CPU.
fn typical_job(pid: u32, seed: u64, scale: Scale) -> Trace {
    let mut rng = SimRng::new(seed ^ (pid as u64) << 8);
    let mut t = Trace::new();
    let mut wall = SimTime::ZERO;
    let n_ios = (400 / scale.0.max(1)).max(40);
    for i in 0..n_ios as u64 {
        // ~200 ms of compute (jittered to desynchronize the fleet), then
        // one 256 KB read that costs ~40 ms at the disk.
        let gap = SimDuration::from_ticks(rng.jitter(20_000.0, 0.4).round() as u64);
        wall += gap;
        t.push(IoEvent::logical(
            Direction::Read,
            pid,
            1,
            i * 256 * KB,
            256 * KB,
            wall,
            gap,
        ));
        wall += SimDuration::from_millis(40);
    }
    t
}

/// Run the sweep: CPUs ∈ `cpu_counts`, jobs ∈ {n, n+1, n+2} for each n,
/// each job a "typical" (mostly in-memory) program. Points fan out over
/// [`crate::par_sweep::par_sweep`]; each point's job traces derive only
/// from `(seed, job index)`, so results are identical to a serial run.
///
/// Job `j`'s trace is the same at every grid point, so the fleet is
/// generated once up front and every point replays the shared slices.
pub fn nplus1(cpu_counts: &[usize], scale: Scale, seed: u64) -> NPlusOneResult {
    let mut grid: Vec<(usize, usize)> = Vec::new();
    for &cpus in cpu_counts {
        for jobs in [cpus, cpus + 1, cpus + 2] {
            grid.push((cpus, jobs));
        }
    }
    let max_jobs = grid.iter().map(|&(_, jobs)| jobs).max().unwrap_or(0);
    let fleet: Vec<Arc<[IoEvent]>> = (0..max_jobs)
        .map(|j| {
            let pid = (j + 1) as u32;
            typical_job(pid, seed + j as u64, scale).events().copied().collect()
        })
        .collect();
    let points = crate::par_sweep::par_sweep(&grid, |&(cpus, jobs)| {
        // No cache: every read pays the disk, giving the steady ~85 %
        // duty cycle the rule presumes.
        let mut config = SimConfig::uncached();
        config.n_cpus = cpus;
        // Enough spindles that the disks never serialize the fleet.
        config.n_disks = 16;
        let mut sim = Simulation::new(config);
        for (j, events) in fleet.iter().take(jobs).enumerate() {
            let pid = (j + 1) as u32;
            sim.add_process_shared(pid, format!("job#{pid}"), events.clone())
                .expect("valid process");
        }
        let r = sim.run();
        NPlusOnePoint {
            cpus,
            jobs,
            utilization: r.utilization(),
            idle_secs: r.idle_secs(),
        }
    });
    NPlusOneResult { points }
}

/// Render the sweep as a table.
pub fn render_nplus1(r: &NPlusOneResult) -> String {
    let mut t = TextTable::new(&["CPUs", "jobs", "utilization", "idle CPU-s"]);
    for p in &r.points {
        t.row(vec![
            p.cpus.to_string(),
            p.jobs.to_string(),
            pct(p.utilization),
            format!("{:.1}", p.idle_secs),
        ]);
    }
    format!(
        "n+1 rule (§2.2): typical (in-memory) jobs vs CPUs\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn n_plus_one_recovers_utilization() {
        let r = nplus1(&[1, 2], Scale(16), 31);
        assert_eq!(r.points.len(), 6);
        // The extra job must close most of the utilization gap.
        assert!(r.rule_holds(0.5), "points: {:#?}", r.points);
        // And n+1 jobs reach high absolute utilization.
        for n in [1usize, 2] {
            let u = r.at(n, n + 1).unwrap();
            assert!(u > 0.9, "cpus {n}: n+1 jobs give only {u:.3}");
        }
        // And utilization grows monotonically with jobs for fixed CPUs.
        for n in [1usize, 2] {
            let u: Vec<f64> = (n..=n + 2).map(|j| r.at(n, j).unwrap()).collect();
            assert!(u[1] >= u[0] - 1e-9 && u[2] >= u[1] - 1e-9, "cpus {n}: {u:?}");
        }
    }

    #[test]
    fn render_contains_all_points() {
        let r = nplus1(&[1], Scale(16), 31);
        let text = render_nplus1(&r);
        assert!(text.contains("n+1 rule"));
        assert_eq!(text.lines().count(), 6); // title + header + rule + 3 rows
    }
}
