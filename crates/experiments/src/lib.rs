//! Experiment runners: one per table, figure, and headline claim of the
//! paper, plus the ablations DESIGN.md calls out.
//!
//! Each runner returns a serializable result struct and can render itself
//! as text (ASCII tables and plots). The binaries under `src/bin/` are
//! thin wrappers; the benches in `crates/bench` call the same entry
//! points so "regenerating a figure" is always the same code path.
//!
//! | entry point | reproduces |
//! |---|---|
//! | [`tables::table1`] / [`tables::table2`] | Tables 1–2 |
//! | [`figures::fig3`] / [`figures::fig4`] | per-app demand over CPU time |
//! | [`figures::fig6`] / [`figures::fig7`] | 2×venus disk traffic vs cache size |
//! | [`figures::fig8`] | idle time vs cache size, 4 KB vs 8 KB blocks |
//! | [`claims`] | §6's quantitative claims C1–C5 |
//! | [`nplus1`] | the §2.2 "n+1 jobs keep n CPUs busy" rule |
//! | [`extras`] | appendix compression study + Amdahl balance sheet |
//! | [`ablations`] | read-ahead / write policy / quantum / queueing sweeps |
//! | [`campaign`] | cluster-scale sharded campaigns (beyond the paper) |
//! | [`dfg`] | parallel directly-follows-graph scan of stored frame files |
//! | [`modern`] | the fig8 cache sweep rerun on 2026 tiered hardware |

pub mod ablations;
pub mod campaign;
pub mod claims;
pub mod dfg;
pub mod extras;
pub mod figures;
pub mod modern;
pub mod nplus1;
pub mod par_sweep;
pub mod render;
pub mod runner;
pub mod tables;
pub mod trace_store;

pub use campaign::{run_campaign, run_campaign_in, CampaignSpec};
pub use modern::{modern_comparison, render_modern, DeviceEra, ModernComparison};
pub use par_sweep::{
    apply_devices_flag, apply_progress_flag, apply_shards_flag, apply_standard_flags,
    apply_threads_flag, apply_trace_dir_flag, apply_trace_mem_budget_flag, modern_devices,
    par_sweep, progress_enabled, serial_sweep, shard_count, thread_count,
};
pub use runner::{app_events, app_trace, scaled_spec, Scale};
pub use trace_store::{
    SpilledCursor, StoreConfig, StoreFootprint, TraceArtifact, TraceStore, SPILL_BLOCK_EVENTS,
};
