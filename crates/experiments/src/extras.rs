//! Supplementary tables beyond the paper's numbered exhibits: the
//! appendix's compression study and the §1/§5.1 Amdahl balance sheet.

use crate::render::{num, pct, TextTable};
use crate::runner::{app_trace, Scale};
use iotrace::{measure_compression, CompressionReport};
use serde::{Deserialize, Serialize};
use trace_analysis::{AmdahlReport, AppSummary, YMP_DEFAULT_MIPS};
use workload::ALL_APPS;

/// Per-application compression outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CompressionRow {
    /// Application.
    pub app: String,
    /// The measured compression report.
    pub report: CompressionReport,
}

/// The appendix compression study over all seven applications.
pub fn compression_table(scale: Scale, seed: u64) -> Vec<CompressionRow> {
    ALL_APPS
        .iter()
        .map(|&kind| {
            let trace = app_trace(kind, 1, seed, scale).trace();
            CompressionRow {
                app: kind.name().to_string(),
                report: measure_compression(&trace).expect("generated traces encode"),
            }
        })
        .collect()
}

/// Render the compression study.
pub fn render_compression(rows: &[CompressionRow]) -> String {
    let mut t = TextTable::new(&[
        "app", "bytes/rec", "vs binary", "seq-inferred", "len-inferred", "short fields",
    ]);
    for r in rows {
        t.row(vec![
            r.app.clone(),
            num(r.report.bytes_per_record()),
            pct(r.report.savings_vs_binary()),
            pct(r.report.sequential_fraction()),
            pct(if r.report.records == 0 {
                0.0
            } else {
                r.report.no_length as f64 / r.report.records as f64
            }),
            pct(r.report.short_field_fraction()),
        ]);
    }
    format!(
        "Appendix compression study: ASCII format vs fixed 44-byte binary\n{}",
        t.render()
    )
}

/// Per-application Amdahl balance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AmdahlRow {
    /// Application.
    pub app: String,
    /// The balance report at the default MIPS rating.
    pub report: AmdahlReport,
}

/// The Amdahl balance sheet over all seven applications.
pub fn amdahl_table(scale: Scale, seed: u64) -> Vec<AmdahlRow> {
    ALL_APPS
        .iter()
        .map(|&kind| {
            let trace = app_trace(kind, 1, seed, scale).trace();
            let summary = AppSummary::from_trace(&trace);
            AmdahlRow {
                app: kind.name().to_string(),
                report: AmdahlReport::of(&summary, YMP_DEFAULT_MIPS),
            }
        })
        .collect()
}

/// Render the Amdahl balance sheet.
pub fn render_amdahl(rows: &[AmdahlRow]) -> String {
    let mut t = TextTable::new(&["app", "MB/s", "balance ratio", "verdict"]);
    for r in rows {
        t.row(vec![
            r.app.clone(),
            num(r.report.achieved_mb_per_sec),
            num(r.report.balance_ratio),
            if r.report.is_io_bound_by_amdahl() {
                "at/above Amdahl".to_string()
            } else {
                "below Amdahl".to_string()
            },
        ]);
    }
    format!(
        "Amdahl balance (§1: 1 Mbit/s per MIPS; {:.0} MIPS → {:.0} MB/s)\n{}",
        YMP_DEFAULT_MIPS,
        YMP_DEFAULT_MIPS / 8.0,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compression_beats_binary_for_every_app() {
        for row in compression_table(Scale(8), 3) {
            assert!(
                row.report.savings_vs_binary() > 0.3,
                "{}: only {:.2} saved",
                row.app,
                row.report.savings_vs_binary()
            );
            assert!(
                row.report.sequential_fraction() > 0.5,
                "{}: sequential inference {:.2}",
                row.app,
                row.report.sequential_fraction()
            );
        }
    }

    #[test]
    fn amdahl_separates_staging_from_compulsory_apps() {
        let rows = amdahl_table(Scale(8), 3);
        let find = |name: &str| {
            rows.iter().find(|r| r.app == name).expect("app present").report
        };
        // The heavy stagers exceed Amdahl's balance point…
        for app in ["forma", "venus", "les"] {
            assert!(find(app).is_io_bound_by_amdahl(), "{app} should be I/O bound");
        }
        // …the in-memory programs sit far below it.
        for app in ["gcm", "upw"] {
            assert!(find(app).balance_ratio < 0.05, "{app} should be compute bound");
        }
        // venus sits essentially at the balance point (44 MB/s vs 25):
        // §5.1's arithmetic said swap-driven apps track Amdahl.
        let v = find("venus").balance_ratio;
        assert!((1.0..4.0).contains(&v), "venus ratio {v}");
    }

    #[test]
    fn renders_include_every_app() {
        let c = render_compression(&compression_table(Scale(16), 3));
        let a = render_amdahl(&amdahl_table(Scale(16), 3));
        for app in ["bvi", "ccm", "forma", "gcm", "les", "venus", "upw"] {
            assert!(c.contains(app));
            assert!(a.contains(app));
        }
    }
}
