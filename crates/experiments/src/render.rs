//! Plain-text rendering: aligned tables and ASCII rate plots.

use sim_core::RateSeries;

/// A simple aligned-column text table.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with the given column headers.
    pub fn new(header: &[&str]) -> TextTable {
        TextTable { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Render a rate series as an ASCII plot (rows = descending rate levels,
/// columns = time bins, `#` marks bins at or above the row's level) —
/// the poor man's Figure 3.
pub fn ascii_plot(series: &RateSeries, title: &str, height: usize, max_cols: usize) -> String {
    let rates = series.rates_per_second();
    if rates.is_empty() {
        return format!("{title}\n(empty series)\n");
    }
    // Downsample to at most max_cols columns by averaging.
    let stride = rates.len().div_ceil(max_cols);
    let cols: Vec<f64> = rates
        .chunks(stride)
        .map(|c| c.iter().sum::<f64>() / c.len() as f64)
        .collect();
    let peak = cols.iter().cloned().fold(0.0f64, f64::max);
    let mut out = format!("{title}  (peak {:.1}, mean {:.1}, {} bins of {:.0}s)\n",
        peak / 1e6,
        rates.iter().sum::<f64>() / rates.len() as f64 / 1e6,
        rates.len(),
        series.bin_width().as_secs_f64() * stride as f64,
    );
    if peak == 0.0 {
        out.push_str("(no traffic)\n");
        return out;
    }
    for level in (1..=height).rev() {
        let threshold = peak * level as f64 / height as f64;
        let mut line = format!("{:>8.1} |", threshold / 1e6);
        for &c in &cols {
            line.push(if c >= threshold { '#' } else { ' ' });
        }
        out.push_str(&line);
        out.push('\n');
    }
    out.push_str(&format!("{:>8} +{}\n", "MB/s", "-".repeat(cols.len())));
    out
}

/// Format a fraction as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Format an f64 compactly.
pub fn num(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else if x.abs() >= 0.1 {
        format!("{x:.2}")
    } else {
        format!("{x:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::{SimDuration, SimTime};

    #[test]
    fn table_aligns_columns() {
        let mut t = TextTable::new(&["app", "MB/s"]);
        t.row(vec!["venus".into(), "44.1".into()]);
        t.row(vec!["x".into(), "8".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("app"));
        assert!(lines[2].contains("venus"));
        // Aligned: all rows same width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_width_rejected() {
        TextTable::new(&["a", "b"]).row(vec!["x".into()]);
    }

    #[test]
    fn plot_handles_empty_and_flat() {
        let s = RateSeries::per_second();
        assert!(ascii_plot(&s, "t", 5, 40).contains("empty"));
        let mut s2 = RateSeries::new(SimDuration::from_secs(1));
        s2.add(SimTime::ZERO, 0.0);
        assert!(ascii_plot(&s2, "t", 5, 40).contains("no traffic"));
    }

    #[test]
    fn plot_marks_peaks() {
        let mut s = RateSeries::new(SimDuration::from_secs(1));
        for i in 0..20u64 {
            s.add(SimTime::from_secs(i), if i % 5 == 0 { 100e6 } else { 1e6 });
        }
        let p = ascii_plot(&s, "bursty", 8, 40);
        assert!(p.contains('#'));
        let top_row = p.lines().nth(1).unwrap();
        // Only the peak bins reach the top level.
        assert_eq!(top_row.matches('#').count(), 4);
    }

    #[test]
    fn number_formats() {
        assert_eq!(num(0.0), "0");
        assert_eq!(num(12345.6), "12346");
        assert_eq!(num(44.12), "44.1");
        assert_eq!(num(1.07), "1.07");
        assert_eq!(num(0.0107), "0.0107");
        assert_eq!(pct(0.991), "99.1%");
    }
}
