//! Tables 1 and 2: per-application characteristics, paper vs measured.

use crate::render::{num, TextTable};
use crate::runner::{app_trace, Scale};
use serde::{Deserialize, Serialize};
use trace_analysis::AppSummary;
use workload::{paper_targets, PaperTargets, ALL_APPS};

/// One application's paper-vs-measured comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AppRow {
    /// Application name.
    pub app: String,
    /// The paper's (reconstructed) numbers.
    pub paper: PaperTargets,
    /// What our synthesized trace measures.
    pub measured: AppSummary,
}

impl AppRow {
    /// Worst relative error across the Table 1 columns (diagnostic).
    pub fn worst_rel_error(&self) -> f64 {
        let p = &self.paper;
        let m = &self.measured;
        [
            (m.cpu_secs, p.cpu_secs),
            (m.total_io_mb, p.total_io_mb),
            (m.num_ios as f64, p.num_ios as f64),
            (m.data_mb, p.data_mb),
        ]
        .iter()
        .map(|&(a, b)| if b == 0.0 { a.abs() } else { (a - b).abs() / b })
        .fold(0.0, f64::max)
    }
}

/// A full table result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableResult {
    /// Per-app rows, in the paper's order.
    pub rows: Vec<AppRow>,
}

fn build(scale: Scale, seed: u64) -> TableResult {
    // One trace generation + summarization per app, fanned out; row
    // order follows ALL_APPS (the paper's order) regardless of which
    // app finishes first.
    let rows = crate::par_sweep::par_sweep(&ALL_APPS, |&kind| {
        let trace = app_trace(kind, 1, seed, scale).trace();
        AppRow {
            app: kind.name().to_string(),
            paper: paper_targets(kind),
            measured: AppSummary::from_trace(&trace),
        }
    });
    TableResult { rows }
}

/// Reproduce Table 1 (per-app totals).
pub fn table1(scale: Scale, seed: u64) -> TableResult {
    build(scale, seed)
}

/// Reproduce Table 2 (per-direction request and data rates). Shares the
/// same traces as Table 1.
pub fn table2(scale: Scale, seed: u64) -> TableResult {
    build(scale, seed)
}

/// Render Table 1 in the paper's layout, paper value / measured value.
pub fn render_table1(result: &TableResult) -> String {
    let mut t = TextTable::new(&[
        "app", "time(s)", "data(MB)", "totIO(MB)", "#IOs", "avg(MB)", "MB/s", "IO/s",
    ]);
    for r in &result.rows {
        let p = &r.paper;
        let m = &r.measured;
        t.row(vec![
            r.app.clone(),
            format!("{}/{}", num(p.cpu_secs), num(m.cpu_secs)),
            format!("{}/{}", num(p.data_mb), num(m.data_mb)),
            format!("{}/{}", num(p.total_io_mb), num(m.total_io_mb)),
            format!("{}/{}", p.num_ios, m.num_ios),
            format!("{}/{}", num(p.avg_io_kb / 1024.0), num(m.avg_io_kb / 1024.0)),
            format!("{}/{}", num(p.mb_per_sec), num(m.mb_per_sec)),
            format!("{}/{}", num(p.ios_per_sec), num(m.ios_per_sec)),
        ]);
    }
    format!("Table 1: traced-application characteristics (paper/measured)\n{}", t.render())
}

/// Render Table 2 in the paper's layout.
pub fn render_table2(result: &TableResult) -> String {
    let mut t = TextTable::new(&[
        "app", "Rd MB/s", "Wr MB/s", "Rd IO/s", "Wr IO/s", "avg KB", "R/W",
    ]);
    for r in &result.rows {
        let m = &r.measured;
        t.row(vec![
            r.app.clone(),
            num(m.reads.mb_per_sec),
            num(m.writes.mb_per_sec),
            num(m.reads.ios_per_sec),
            num(m.writes.ios_per_sec),
            num(m.avg_io_kb),
            format!("{} (paper {})", num(r.measured.rw_data_ratio), num(r.paper.rw_data_ratio)),
        ]);
    }
    format!("Table 2: I/O request and data rates (measured; paper R/W shown)\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_table1_matches_paper_tightly() {
        let result = table1(Scale::FULL, 42);
        for row in &result.rows {
            assert!(
                row.worst_rel_error() < 0.06,
                "{}: worst error {:.3}",
                row.app,
                row.worst_rel_error()
            );
        }
    }

    #[test]
    fn rw_ratios_match_table2() {
        let result = table2(Scale::FULL, 42);
        for row in &result.rows {
            let rel = (row.measured.rw_data_ratio - row.paper.rw_data_ratio).abs()
                / row.paper.rw_data_ratio;
            assert!(rel < 0.08, "{}: R/W {} vs {}", row.app, row.measured.rw_data_ratio, row.paper.rw_data_ratio);
        }
    }

    #[test]
    fn renders_contain_every_app() {
        let result = table1(Scale::quick(8), 1);
        let t1 = render_table1(&result);
        let t2 = render_table2(&result);
        for app in ["bvi", "ccm", "forma", "gcm", "les", "venus", "upw"] {
            assert!(t1.contains(app), "table1 missing {app}");
            assert!(t2.contains(app), "table2 missing {app}");
        }
    }

    #[test]
    fn results_serialize_to_json() {
        let result = table1(Scale::quick(8), 1);
        let json = serde_json::to_string(&result).unwrap();
        assert!(json.contains("venus"));
        let back: TableResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back.rows.len(), 7);
    }
}
