//! Cluster-scale campaigns: thousands of processes over hundreds of
//! groups, driven through the sharded engine.
//!
//! The paper's simulations multiprogram a handful of traced applications
//! on one CPU. A campaign asks the scaled-up question — what does a
//! whole machine room of such nodes look like? — by instantiating
//! `groups` independent node groups, each a full simulator instance
//! (CPU, cache partition, disks), and stocking every group with the
//! same mix of traced applications plus a sprinkling of readers hitting
//! *shared* files that route across groups through the epoch
//! coordinator.
//!
//! Group contents repeat on purpose: process `j` of every group replays
//! the same memoized trace (one generation, `groups` zero-copy
//! replays), so a 10 000-process campaign costs tens of trace
//! generations, not thousands. With a budgeted [`TraceStore`]
//! ([`run_campaign_in`]) the replays stream from spilled frame files
//! instead, bounding residency to the live cursors' decoded blocks.
//! The report is a [`iosim::ClusterReport`], byte-identical at any
//! shard count and in either replay mode — the shard knob (`--shards` /
//! `MILLER_SHARDS`, see [`crate::shard_count`]) only changes how fast
//! the answer arrives.

use crate::runner::Scale;
use crate::trace_store::TraceStore;
use iosim::{ClusterReport, ProcessFeed, ShardedConfig, ShardedSimulation, SHARED_FILE_BIT};
use iotrace::{Direction, IoEvent};
use sim_core::units::MB;
use sim_core::{SimDuration, SimTime};
use std::sync::Arc;
use workload::{AppKind, ALL_APPS};

/// Shape of one campaign: how many groups, what runs in each, and how
/// the cluster-level knobs (cache budget, admission cap, epoch) are set.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct CampaignSpec {
    /// Node groups (each its own simulator instance).
    pub groups: usize,
    /// Processes stocked into every group.
    pub procs_per_group: usize,
    /// Disks per group; the cluster total is `groups * disks_per_group`.
    pub disks_per_group: usize,
    /// Cluster-wide cache budget, split evenly across the groups via
    /// [`buffer_cache::CacheConfig::partitioned`].
    pub cache_budget: u64,
    /// Barrier spacing for the epoch coordinator.
    pub epoch: SimDuration,
    /// Global admission cap (`None` admits everything at time zero).
    pub max_active: Option<usize>,
    /// Every `k`-th process in a group is a shared-file reader instead
    /// of a traced application; `0` disables shared traffic entirely.
    pub shared_file_every: usize,
    /// Sequential 64 KiB reads each shared reader issues.
    pub reads_per_shared: usize,
    /// Trace scaling for the application processes.
    pub scale: Scale,
    /// Base seed for trace generation.
    pub seed: u64,
}

impl CampaignSpec {
    /// The 10k-campaign preset: `groups` single-CPU/single-disk nodes,
    /// `procs_per_group` processes each cycling through the paper's
    /// seven applications at 1/16 scale, a 2 MB cache partition per
    /// group, a cluster admission cap at 75% of the process count, and
    /// one shared-file reader per 16 processes.
    pub fn datacenter(groups: usize, procs_per_group: usize) -> CampaignSpec {
        let total = groups * procs_per_group;
        CampaignSpec {
            groups,
            procs_per_group,
            disks_per_group: 1,
            cache_budget: groups as u64 * 2 * MB,
            epoch: SimDuration::from_millis(250),
            max_active: Some((total * 3 / 4).max(1)),
            shared_file_every: 16,
            reads_per_shared: 32,
            scale: Scale::quick(16),
            seed: 42,
        }
    }

    /// Total processes the campaign will simulate.
    pub fn total_processes(&self) -> usize {
        self.groups * self.procs_per_group
    }

    /// The per-group simulator config this spec describes.
    fn base_config(&self) -> iosim::SimConfig {
        let cache = buffer_cache::CacheConfig::buffered(self.cache_budget)
            .partitioned(self.groups.max(1));
        iosim::SimConfig {
            cache: Some(cache),
            n_disks: self.disks_per_group.max(1),
            ..Default::default()
        }
    }
}

/// The synthetic trace for one shared-file reader: sequential
/// synchronous 64 KiB reads against one of eight cluster-wide shared
/// files (tagged with [`SHARED_FILE_BIT`] so the engine routes them
/// through the coordinator to the striped owner group).
fn shared_reader_events(pid: u32, stream: u32, reads: usize) -> Arc<[IoEvent]> {
    const CHUNK: u64 = 64 * 1024;
    (0..reads as u64)
        .map(|i| {
            IoEvent::logical(
                Direction::Read,
                pid,
                SHARED_FILE_BIT | (stream % 8),
                i * CHUNK,
                CHUNK,
                SimTime::from_ticks(i * 1000),
                SimDuration::from_millis(5),
            )
        })
        .collect()
}

/// Build and run the campaign on `shards` worker threads.
///
/// Every group gets the identical process roster — process `j` is
/// either application `ALL_APPS[j % 7]` replaying the memoized trace
/// for `(kind, j + 1, seed, scale)`, or (every
/// [`CampaignSpec::shared_file_every`]-th slot) a shared-file reader —
/// so the result depends only on the spec, never on `shards`.
pub fn run_campaign(spec: &CampaignSpec, shards: usize) -> ClusterReport {
    run_campaign_in(TraceStore::global(), spec, shards)
}

/// What sits in one roster slot, replicated across every group.
enum Slot {
    /// A synthetic shared-file reader: tiny, always an in-memory slice.
    Reader(Arc<[IoEvent]>),
    /// A traced application, fed from the store per group — a zero-copy
    /// shared slice normally, a streaming cursor in budget mode.
    App(AppKind),
}

/// [`run_campaign`] against an explicit store. With a budgeted store
/// every application process pulls its trace through a streaming
/// cursor, so campaign residency is bounded by the live cursors' blocks
/// (plus the tiny shared-reader slices) rather than the roster size.
/// The report stays byte-identical to the in-memory run.
pub fn run_campaign_in(store: &TraceStore, spec: &CampaignSpec, shards: usize) -> ClusterReport {
    assert!(spec.groups >= 1 && spec.procs_per_group >= 1, "campaign needs processes");
    let mut cfg = ShardedConfig::new(spec.groups, spec.base_config());
    cfg.epoch = spec.epoch;
    cfg.max_active = spec.max_active;
    let mut cluster = ShardedSimulation::new(cfg);

    // One roster, replicated into every group: slot j of group g replays
    // the same trace as slot j of group 0.
    let roster: Vec<(String, Slot)> = (0..spec.procs_per_group)
        .map(|j| {
            let pid = (j + 1) as u32;
            let shared =
                spec.shared_file_every > 0 && (j + 1) % spec.shared_file_every == 0;
            if shared {
                let stream = (j / spec.shared_file_every) as u32;
                (
                    format!("shared{stream}"),
                    Slot::Reader(shared_reader_events(pid, stream, spec.reads_per_shared.max(1))),
                )
            } else {
                let kind: AppKind = ALL_APPS[j % ALL_APPS.len()];
                (format!("{}#{}", kind.name(), j), Slot::App(kind))
            }
        })
        .collect();

    for g in 0..spec.groups {
        for (j, (name, slot)) in roster.iter().enumerate() {
            let pid = (j + 1) as u32;
            let feed = match slot {
                Slot::Reader(events) => ProcessFeed::Shared(Arc::clone(events)),
                Slot::App(kind) => store.feed(*kind, pid, spec.seed, spec.scale),
            };
            cluster
                .add_process_feed(g, pid, name.clone(), feed)
                .expect("campaign roster pids are unique per group and ids fit");
        }
    }
    cluster.run(shards)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CampaignSpec {
        let mut spec = CampaignSpec::datacenter(4, 5);
        spec.scale = Scale::quick(512);
        spec.shared_file_every = 4;
        spec.reads_per_shared = 6;
        spec
    }

    #[test]
    fn campaign_report_is_shard_count_invariant() {
        let spec = tiny();
        let baseline = serde_json::to_string(&run_campaign(&spec, 1)).expect("serialize");
        for shards in [2, 3, 4, 8, 64] {
            let alt = serde_json::to_string(&run_campaign(&spec, shards)).expect("serialize");
            assert_eq!(baseline, alt, "{shards} shards diverged from 1");
        }
    }

    #[test]
    fn campaign_runs_everything_and_shares_files() {
        let spec = tiny();
        let report = run_campaign(&spec, 2);
        assert_eq!(report.n_groups, 4);
        assert_eq!(report.total_processes, 20);
        assert_eq!(report.admissions, 20);
        // 1 shared reader per group x 6 reads, each routed cross-group.
        assert_eq!(report.remote_ops, 4 * 6);
        assert_eq!(report.remote_bytes, 4 * 6 * 64 * 1024);
        assert!(report.ios_issued > 0);
        assert_eq!(report.groups.len(), 4);
    }

    #[test]
    fn admission_cap_respected_in_report() {
        let mut spec = tiny();
        spec.max_active = Some(3);
        let report = run_campaign(&spec, 2);
        assert_eq!(report.admissions, 20, "everyone eventually runs");
        assert!(report.epochs > 0, "a capped run crosses barriers");
    }
}
