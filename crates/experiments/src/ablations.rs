//! Ablations over the design choices DESIGN.md calls out: read-ahead,
//! write policy, block size, scheduler quantum, and the paper's admitted
//! disk-queueing simplification.

use crate::figures::two_venus_report;
use crate::par_sweep::par_sweep;
use crate::render::{num, pct, TextTable};
use crate::runner::{app_events, Scale};
use buffer_cache::WritePolicy;
use iosim::{SimConfig, Simulation};
use serde::{Deserialize, Serialize};
use sim_core::units::MB;
use sim_core::SimDuration;
use storage_model::DiskParams;
use trace_analysis::Burstiness;
use workload::AppKind;

/// One ablation data point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AblationPoint {
    /// Variant label.
    pub variant: String,
    /// Idle seconds.
    pub idle_secs: f64,
    /// CPU utilization.
    pub utilization: f64,
    /// Wall seconds.
    pub wall_secs: f64,
}

/// A named ablation sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AblationSweep {
    /// What is being varied.
    pub name: String,
    /// The data points, in sweep order.
    pub points: Vec<AblationPoint>,
}

impl AblationSweep {
    fn point(label: impl Into<String>, r: &iosim::SimReport) -> AblationPoint {
        AblationPoint {
            variant: label.into(),
            idle_secs: r.idle_secs(),
            utilization: r.utilization(),
            wall_secs: r.wall_secs(),
        }
    }
}

/// Read-ahead on/off for 2×venus at 128 MB.
pub fn readahead_ablation(scale: Scale, seed: u64) -> AblationSweep {
    let variants = [("read-ahead on", true), ("read-ahead off", false)];
    let points = par_sweep(&variants, |&(label, read_ahead)| {
        let r = two_venus_report(
            128 * MB,
            4096,
            read_ahead,
            WritePolicy::WriteBehind,
            scale,
            seed,
        );
        AblationSweep::point(label, &r)
    });
    AblationSweep { name: "read-ahead".into(), points }
}

/// Write policies: through, behind, and Sprite's 30 s delay.
pub fn write_policy_ablation(scale: Scale, seed: u64) -> AblationSweep {
    let variants = [
        ("write-through", WritePolicy::WriteThrough),
        ("write-behind", WritePolicy::WriteBehind),
        ("sprite 30s delay", WritePolicy::sprite()),
    ];
    let points = par_sweep(&variants, |(label, policy)| {
        let r = two_venus_report(128 * MB, 4096, true, *policy, scale, seed);
        AblationSweep::point(*label, &r)
    });
    AblationSweep { name: "write policy".into(), points }
}

/// Block sizes at a fixed 32 MB cache (Figure 8 compares 4 KB and 8 KB;
/// we add 16 KB).
pub fn block_size_ablation(scale: Scale, seed: u64) -> AblationSweep {
    let sizes = [4096u64, 8192, 16384];
    let points = par_sweep(&sizes, |&b| {
        let r = two_venus_report(32 * MB, b, true, WritePolicy::WriteBehind, scale, seed);
        AblationSweep::point(format!("{} KB blocks", b / 1024), &r)
    });
    AblationSweep { name: "cache block size".into(), points }
}

/// Scheduler quantum sweep for 2×venus at 32 MB.
pub fn quantum_ablation(scale: Scale, seed: u64) -> AblationSweep {
    let quanta = [1u64, 16, 100];
    let points = par_sweep(&quanta, |&ms| {
        let mut config = SimConfig::buffered(32 * MB);
        config.sched.quantum = SimDuration::from_millis(ms);
        let mut sim = Simulation::new(config);
        sim.add_process_shared(1, "venus#1", app_events(AppKind::Venus, 1, seed, scale))
            .expect("valid process");
        sim.add_process_shared(2, "venus#2", app_events(AppKind::Venus, 2, seed + 1, scale))
            .expect("valid process");
        let r = sim.run();
        AblationSweep::point(format!("quantum {ms} ms"), &r)
    });
    AblationSweep { name: "scheduler quantum".into(), points }
}

/// Disk queueing on/off — the simplification the paper acknowledges
/// (§6.2: the simulator "did not slow down disk access times when the
/// disks had many outstanding requests"). Also reports traffic
/// burstiness, the paper's explanation target.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueueingAblation {
    /// Idle seconds without queueing (the paper's model).
    pub idle_no_queueing: f64,
    /// Idle seconds with per-disk FIFO queueing.
    pub idle_queueing: f64,
    /// Disk-traffic CV without queueing.
    pub cv_no_queueing: f64,
    /// Disk-traffic CV with queueing.
    pub cv_queueing: f64,
}

/// Run the queueing ablation.
pub fn queueing_ablation(scale: Scale, seed: u64) -> QueueingAblation {
    let variants = [false, true];
    let mut reports = par_sweep(&variants, |&queueing| {
        let mut config = SimConfig::buffered(32 * MB);
        config.disk = if queueing { DiskParams::ymp_with_queueing() } else { DiskParams::ymp() };
        let mut sim = Simulation::new(config);
        sim.add_process_shared(1, "venus#1", app_events(AppKind::Venus, 1, seed, scale))
            .expect("valid process");
        sim.add_process_shared(2, "venus#2", app_events(AppKind::Venus, 2, seed + 1, scale))
            .expect("valid process");
        sim.run()
    });
    let q = reports.pop().expect("two variants");
    let nq = reports.pop().expect("two variants");
    let cv = |r: &iosim::SimReport| {
        let mut combined = sim_core::RateSeries::new(r.disk_read_series.bin_width());
        let n = r.disk_read_series.bins().len().max(r.disk_write_series.bins().len());
        for i in 0..n {
            let a = r.disk_read_series.bins().get(i).copied().unwrap_or(0.0);
            let b = r.disk_write_series.bins().get(i).copied().unwrap_or(0.0);
            combined.add(sim_core::SimTime::from_secs(i as u64), a + b);
        }
        Burstiness::of(&combined).cv
    };
    QueueingAblation {
        idle_no_queueing: nq.idle_secs(),
        idle_queueing: q.idle_secs(),
        cv_no_queueing: cv(&nq),
        cv_queueing: cv(&q),
    }
}

/// All sweeps bundled.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AblationReport {
    /// Read-ahead on/off.
    pub readahead: AblationSweep,
    /// Write policies.
    pub write_policy: AblationSweep,
    /// Block sizes.
    pub block_size: AblationSweep,
    /// Quanta.
    pub quantum: AblationSweep,
    /// Disk queueing.
    pub queueing: QueueingAblation,
}

/// Run every ablation.
pub fn all_ablations(scale: Scale, seed: u64) -> AblationReport {
    AblationReport {
        readahead: readahead_ablation(scale, seed),
        write_policy: write_policy_ablation(scale, seed),
        block_size: block_size_ablation(scale, seed),
        quantum: quantum_ablation(scale, seed),
        queueing: queueing_ablation(scale, seed),
    }
}

/// Render the ablation report.
pub fn render_ablations(r: &AblationReport) -> String {
    let mut out = String::new();
    for sweep in [&r.readahead, &r.write_policy, &r.block_size, &r.quantum] {
        out.push_str(&format!("Ablation: {}\n", sweep.name));
        let mut t = TextTable::new(&["variant", "idle(s)", "utilization", "wall(s)"]);
        for p in &sweep.points {
            t.row(vec![
                p.variant.clone(),
                num(p.idle_secs),
                pct(p.utilization),
                num(p.wall_secs),
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out.push_str(&format!(
        "Ablation: disk queueing — idle {}s (none) vs {}s (FIFO); traffic CV {} vs {}\n",
        num(r.queueing.idle_no_queueing),
        num(r.queueing.idle_queueing),
        num(r.queueing.cv_no_queueing),
        num(r.queueing.cv_queueing),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const QUICK: Scale = Scale(8);

    #[test]
    fn readahead_helps_venus() {
        let s = readahead_ablation(QUICK, 21);
        assert!(
            s.points[0].idle_secs < s.points[1].idle_secs,
            "read-ahead on ({}) should beat off ({})",
            s.points[0].idle_secs,
            s.points[1].idle_secs
        );
    }

    #[test]
    fn write_behind_beats_both_alternatives_or_ties_sprite() {
        let s = write_policy_ablation(QUICK, 21);
        let through = &s.points[0];
        let behind = &s.points[1];
        assert!(
            behind.idle_secs < through.idle_secs,
            "write-behind {} vs write-through {}",
            behind.idle_secs,
            through.idle_secs
        );
    }

    #[test]
    fn quantum_sweep_is_stable() {
        let s = quantum_ablation(QUICK, 21);
        assert_eq!(s.points.len(), 3);
        // The quantum must not change utilization wildly for these
        // I/O-bound workloads.
        let min = s.points.iter().map(|p| p.utilization).fold(f64::MAX, f64::min);
        let max = s.points.iter().map(|p| p.utilization).fold(0.0, f64::max);
        assert!(max - min < 0.3, "quantum sensitivity too high: {min}..{max}");
    }

    #[test]
    fn queueing_does_not_reduce_idle() {
        let q = queueing_ablation(QUICK, 21);
        assert!(
            q.idle_queueing >= q.idle_no_queueing * 0.95,
            "queueing should not make things faster: {} vs {}",
            q.idle_queueing,
            q.idle_no_queueing
        );
    }

    #[test]
    fn block_size_sweep_renders() {
        let s = block_size_ablation(QUICK, 21);
        assert_eq!(s.points.len(), 3);
        let report = AblationReport {
            readahead: s.clone(),
            write_policy: s.clone(),
            block_size: s.clone(),
            quantum: s,
            queueing: QueueingAblation {
                idle_no_queueing: 1.0,
                idle_queueing: 2.0,
                cv_no_queueing: 1.0,
                cv_queueing: 0.5,
            },
        };
        let text = render_ablations(&report);
        assert!(text.contains("KB blocks"));
        assert!(text.contains("queueing"));
    }
}
