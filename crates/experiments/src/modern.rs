//! The fig6–8 questions rerun on 2026 hardware (`--devices modern`).
//!
//! The paper's headline buffering result (§6.3) is that a big enough
//! cache — the SSD used as one — drives CPU utilization above 99%
//! because the Y-MP's disks, not its CPU, were the bottleneck. On 2026
//! hardware the ratio flips: the CPU is ~500× faster while the storage
//! hierarchy (NVMe burst buffer over nearline disk over tape) is only
//! ~30–700× faster depending on tier, and cold data now pays a robot
//! mount. This module reruns the Figure 8 cache sweep under both
//! parameter sets and reports whether the ">99% with a big SSD" claim
//! survives when the flash is the *fast* tier of a deep hierarchy
//! rather than the whole store.
//!
//! Era configs:
//!
//! * **1991** — the paper-faithful setup every figure uses: Y-MP disks,
//!   no queueing, trace compute gaps replayed untouched.
//! * **2026** — the same traced workload on a [`TieredParams::modern_2026`]
//!   hierarchy (queue-aware NVMe + elevator disk + LTO tape) with
//!   compute gaps divided by [`MODERN_CPU_SPEEDUP`].
//!
//! The comparison also embeds a small sharded cluster run on the modern
//! devices: the CI guard re-runs it at `--shards 1` and `--shards 4`
//! and `cmp`s the JSON, extending the byte-identical contract to the
//! queue-aware models.

use crate::par_sweep::{par_sweep, shard_count};
use crate::runner::Scale;
use crate::trace_store::TraceStore;
use buffer_cache::WritePolicy;
use iosim::{ClusterReport, DeviceSpec, ShardedConfig, ShardedSimulation, SimConfig, SimReport, Simulation};
use iotrace::{Direction, IoEvent, Synchrony, Trace};
use serde::{Deserialize, Serialize};
use sim_core::units::{KB, MB};
use sim_core::{SimDuration, SimTime};
use storage_model::TieredParams;
use workload::AppKind;

/// How much faster a 2026 CPU chews through the traced compute phases
/// than the 1991 Y-MP. Order-of-magnitude: ~3 sustained GFLOPS then,
/// ~1.5 TFLOPS per socket now.
pub const MODERN_CPU_SPEEDUP: u64 = 500;

/// Which parameter set a sweep point ran under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeviceEra {
    /// Paper-faithful Y-MP devices and CPU.
    Era1991,
    /// Tiered 2026 hierarchy and a 500× CPU.
    Era2026,
}

/// Build the simulator config for one era at one cache size.
pub fn era_config(era: DeviceEra, cache_bytes: u64) -> SimConfig {
    let mut config = SimConfig::buffered(cache_bytes);
    if era == DeviceEra::Era2026 {
        config.devices = Some(DeviceSpec::Tiered(TieredParams::modern_2026()));
        config.cpu_speedup = MODERN_CPU_SPEEDUP;
    }
    config
}

/// One cache size, one era.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EraPoint {
    /// Cache size in MB.
    pub cache_mb: u64,
    /// Idle seconds (Figure 8's y-axis).
    pub idle_secs: f64,
    /// Wall seconds.
    pub wall_secs: f64,
    /// CPU utilization.
    pub utilization: f64,
}

/// The 1991-vs-2026 answer set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModernComparison {
    /// Fig8-style cache sweep on paper hardware.
    pub era_1991: Vec<EraPoint>,
    /// The same sweep on the tiered 2026 hierarchy.
    pub era_2026: Vec<EraPoint>,
    /// Utilization at the biggest (256 MB, SSD-sized) cache, per era —
    /// the paper's ">99% CPU utilization" claim is `ssd_claim_1991 >
    /// 0.99`; `ssd_claim_2026` is what survives of it.
    pub ssd_claim_1991: f64,
    /// See [`ModernComparison::ssd_claim_1991`].
    pub ssd_claim_2026: f64,
    /// Observability counters merged across every 2026 sweep point:
    /// carries the queue-depth distribution of the NVMe/elevator devices
    /// and the tier traffic split.
    pub modern_obs: obs::ObsReport,
    /// A small sharded cluster run on the modern devices, byte-identical
    /// at any shard count (the CI guard cmp's shards {1,4}).
    pub cluster: ClusterReport,
}

fn venus_pair_report(era: DeviceEra, cache_mb: u64, scale: Scale, seed: u64) -> SimReport {
    let store = TraceStore::global();
    let mut config = era_config(era, cache_mb * MB);
    {
        let c = config.cache.as_mut().expect("buffered config has a cache");
        c.block_size = 4096;
        c.read_ahead = true;
        c.write_policy = WritePolicy::WriteBehind;
    }
    let mut sim = Simulation::new(config);
    sim.add_process_feed(1, "venus#1", store.feed(AppKind::Venus, 1, seed, scale))
        .expect("valid process");
    sim.add_process_feed(2, "venus#2", store.feed(AppKind::Venus, 2, seed + 1, scale))
        .expect("valid process");
    sim.run()
}

/// A mixed staging workload for the embedded cluster run: sequential
/// writes (burst-buffer checkpoints) interleaved with re-reads.
fn staging_trace(pid: u32, n_ios: u64) -> Trace {
    let mut t = Trace::new();
    let mut wall = SimTime::ZERO;
    for i in 0..n_ios {
        let gap = SimDuration::from_millis(1 + (i % 3));
        wall += gap;
        let dir = if i % 4 == 3 { Direction::Read } else { Direction::Write };
        let mut e = IoEvent::logical(dir, pid, 1 + (pid % 3), (i % 64) * 256 * KB, 256 * KB, wall, gap);
        if i % 5 == 0 {
            e.sync = Synchrony::Async;
        }
        t.push(e);
    }
    t
}

/// The embedded sharded run: 4 groups × 3 staging processes on the
/// modern hierarchy, executed on `shards` worker threads.
fn modern_cluster(scale: Scale, shards: usize) -> ClusterReport {
    let mut base = SimConfig::buffered(4 * MB);
    base.devices = Some(DeviceSpec::Tiered(TieredParams::modern_2026()));
    base.cpu_speedup = MODERN_CPU_SPEEDUP;
    base.n_disks = 2;
    let mut cfg = ShardedConfig::new(4, base);
    cfg.max_active = Some(8);
    let mut cluster = ShardedSimulation::new(cfg);
    let ios = 400 / scale.0.max(1) as u64;
    for i in 0..12u32 {
        let pid = i + 1;
        cluster
            .add_process(i as usize % 4, pid, format!("stage{pid}"), &staging_trace(pid, ios))
            .expect("valid process");
    }
    cluster.run(shards)
}

/// Run the full 1991-vs-2026 comparison: the Figure 8 cache sweep under
/// both eras plus the embedded modern cluster run.
pub fn modern_comparison(scale: Scale, seed: u64) -> ModernComparison {
    let sizes = [4u64, 8, 16, 32, 64, 128, 256];
    let mut jobs = Vec::with_capacity(sizes.len() * 2);
    for era in [DeviceEra::Era1991, DeviceEra::Era2026] {
        for &s in &sizes {
            jobs.push((era, s));
        }
    }
    let reports = par_sweep(&jobs, |&(era, cache_mb)| {
        let r = venus_pair_report(era, cache_mb, scale, seed);
        (era, cache_mb, r)
    });

    let mut era_1991 = Vec::new();
    let mut era_2026 = Vec::new();
    let mut modern_obs = obs::ObsReport::default();
    for (era, cache_mb, r) in &reports {
        let point = EraPoint {
            cache_mb: *cache_mb,
            idle_secs: r.idle_secs(),
            wall_secs: r.wall_secs(),
            utilization: r.utilization(),
        };
        match era {
            DeviceEra::Era1991 => era_1991.push(point),
            DeviceEra::Era2026 => {
                modern_obs.merge(&r.obs);
                era_2026.push(point);
            }
        }
    }
    let claim = |points: &[EraPoint]| {
        points.iter().find(|p| p.cache_mb == 256).map(|p| p.utilization).unwrap_or(0.0)
    };
    ModernComparison {
        ssd_claim_1991: claim(&era_1991),
        ssd_claim_2026: claim(&era_2026),
        era_1991,
        era_2026,
        modern_obs,
        cluster: modern_cluster(scale, shard_count()),
    }
}

/// Bench entry: the 2026-era sweep alone, returning total I/Os issued —
/// `repro_bench` times this as `fig8_modern_sweep`, putting the
/// queue-aware device models (NVMe queues, elevator, tier residency) on
/// a gated hot path.
pub fn modern_sweep_ios(scale: Scale, seed: u64) -> u64 {
    let sizes = [4u64, 8, 16, 32, 64, 128, 256];
    let reports =
        par_sweep(&sizes, |&mb| venus_pair_report(DeviceEra::Era2026, mb, scale, seed));
    reports
        .iter()
        .map(|r| r.processes.iter().map(|p| p.ios_issued).sum::<u64>())
        .sum()
}

/// Render the comparison as text: the side-by-side sweep table, the
/// claim verdict, and the queue-depth / tier-traffic observability
/// lines.
pub fn render_modern(c: &ModernComparison) -> String {
    use crate::render::{num, TextTable};
    let mut t = TextTable::new(&[
        "cache MB",
        "1991 idle(s)",
        "1991 util%",
        "2026 idle(s)",
        "2026 util%",
    ]);
    for (old, new) in c.era_1991.iter().zip(&c.era_2026) {
        t.row(vec![
            old.cache_mb.to_string(),
            num(old.idle_secs),
            format!("{:.1}", old.utilization * 100.0),
            num(new.idle_secs),
            format!("{:.1}", new.utilization * 100.0),
        ]);
    }
    let mut out = format!(
        "Figure 8 rerun, 1991 Y-MP vs 2026 tiered hierarchy (2 x venus, 4K blocks)\n{}",
        t.render()
    );
    out.push_str(&format!(
        "paper claim (>99% CPU with SSD-sized cache): 1991 {:.1}% — {}; 2026 {:.1}% — {}\n",
        c.ssd_claim_1991 * 100.0,
        if c.ssd_claim_1991 > 0.99 { "holds" } else { "fails" },
        c.ssd_claim_2026 * 100.0,
        if c.ssd_claim_2026 > 0.99 { "holds" } else { "fails" },
    ));
    if let Some(h) = &c.modern_obs.disks.queue_depth {
        out.push_str(&format!(
            "device queue depth seen by arrivals: p50 {} p90 {} p99 {} ({} samples)\n",
            h.quantile(0.5).map(|v| v as u64).unwrap_or(0),
            h.quantile(0.9).map(|v| v as u64).unwrap_or(0),
            h.quantile(0.99).map(|v| v as u64).unwrap_or(0),
            h.total(),
        ));
    }
    if !c.modern_obs.disks.tier_hits.is_empty() {
        out.push_str(&format!(
            "tier traffic [ram, ssd, disk, tape]: {:?}, promotions {}, demotions {}\n",
            c.modern_obs.disks.tier_hits,
            c.modern_obs.disks.tier_promotions,
            c.modern_obs.disks.tier_demotions,
        ));
    }
    out.push_str(&format!(
        "embedded modern cluster: {} processes, {} I/Os, utilization {:.1}%\n",
        c.cluster.total_processes,
        c.cluster.ios_issued,
        c.cluster.utilization() * 100.0,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const QUICK: Scale = Scale(8);

    #[test]
    fn era_configs_differ_only_in_devices_and_cpu() {
        let old = era_config(DeviceEra::Era1991, 32 * MB);
        let new = era_config(DeviceEra::Era2026, 32 * MB);
        assert!(old.devices.is_none());
        assert_eq!(old.cpu_speedup, 1);
        assert!(matches!(new.devices, Some(DeviceSpec::Tiered(_))));
        assert_eq!(new.cpu_speedup, MODERN_CPU_SPEEDUP);
        assert_eq!(
            old.cache.as_ref().unwrap().capacity,
            new.cache.as_ref().unwrap().capacity
        );
    }

    #[test]
    fn comparison_answers_the_claim_question() {
        let c = modern_comparison(QUICK, 42);
        assert_eq!(c.era_1991.len(), 7);
        assert_eq!(c.era_2026.len(), 7);
        // The 1991 run reproduces the paper: near-full utilization at the
        // SSD-sized cache.
        assert!(c.ssd_claim_1991 > 0.9, "1991 claim broke: {}", c.ssd_claim_1991);
        // The modern rerun reports the queue-aware observability the
        // paper couldn't: a queue-depth distribution and tier traffic.
        assert!(c.modern_obs.disks.queue_depth.is_some());
        assert!(!c.modern_obs.disks.tier_hits.is_empty());
        let rendered = render_modern(&c);
        assert!(rendered.contains("paper claim"));
        assert!(rendered.contains("queue depth"));
    }

    #[test]
    fn modern_cluster_is_shard_count_invariant() {
        let run = |shards: usize| {
            serde_json::to_string(&modern_cluster(QUICK, shards)).expect("serialize")
        };
        assert_eq!(run(1), run(4), "modern cluster diverged across shard counts");
    }
}
