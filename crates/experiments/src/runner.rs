//! Shared experiment plumbing: trace generation (optionally scaled down
//! for fast CI runs) and the canonical simulator setups.

use crate::trace_store::{TraceArtifact, TraceStore};
use iotrace::IoEvent;
use sim_core::SimDuration;
use std::sync::Arc;
use workload::{AppKind, AppSpec};

/// Run-length scaling. `Scale::FULL` reproduces the paper's full run
/// lengths; `Scale::quick(k)` divides cycle counts and CPU time by `k`
/// while preserving every *rate* and *pattern*, so shapes survive but
/// tests run fast.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Scale(pub u32);

impl Scale {
    /// The paper's full run lengths.
    pub const FULL: Scale = Scale(1);

    /// Shrink runs by `k`.
    pub fn quick(k: u32) -> Scale {
        assert!(k >= 1);
        Scale(k)
    }
}

/// The calibrated spec for `kind`, scaled.
pub fn scaled_spec(kind: AppKind, pid: u32, scale: Scale) -> AppSpec {
    let mut spec = kind.spec(pid);
    let k = scale.0.max(1);
    if k > 1 {
        spec.cpu_time = spec.cpu_time / k as u64;
        if spec.cycles > 0 {
            spec.cycles = (spec.cycles / k).max(4);
            // Keep per-cycle behavior identical; total work shrinks with
            // the cycle count. CPU must shrink by the same realized
            // factor to preserve rates.
            let realized = spec.cycles as f64 / (kind.spec(pid).cycles as f64);
            spec.cpu_time = SimDuration::from_secs_f64(
                kind.spec(pid).cpu_time.as_secs_f64() * realized,
            );
        } else {
            // Compulsory-only apps: shrink the transfers too.
            spec.init_read.0 /= k as u64;
            spec.final_write.0 /= k as u64;
        }
    }
    spec
}

/// The (scaled) trace for one application instance, memoized in the
/// process-wide [`TraceStore`]. Call `.trace()` to materialize the full
/// comment-bearing `Trace` for analysis consumers; use [`app_events`]
/// for the zero-copy replay handle.
pub fn app_trace(kind: AppKind, pid: u32, seed: u64, scale: Scale) -> Arc<TraceArtifact> {
    TraceStore::global().artifact(kind, pid, seed, scale)
}

/// The shared replay slice for one application instance, memoized in the
/// process-wide [`TraceStore`]. Feed it to
/// `Simulation::add_process_shared` — no per-process copy is made.
pub fn app_events(kind: AppKind, pid: u32, seed: u64, scale: Scale) -> Arc<[IoEvent]> {
    TraceStore::global().events(kind, pid, seed, scale)
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace_analysis::AppSummary;

    #[test]
    fn scaling_preserves_rates() {
        let full = AppSummary::from_trace(&app_trace(AppKind::Venus, 1, 7, Scale::FULL).trace());
        let quick =
            AppSummary::from_trace(&app_trace(AppKind::Venus, 1, 7, Scale::quick(8)).trace());
        assert!(quick.cpu_secs < full.cpu_secs / 4.0);
        let rel = (quick.mb_per_sec - full.mb_per_sec).abs() / full.mb_per_sec;
        assert!(rel < 0.05, "scaled rate {} vs full {}", quick.mb_per_sec, full.mb_per_sec);
    }

    #[test]
    fn scaling_compulsory_apps_shrinks_transfers() {
        let full = AppSummary::from_trace(&app_trace(AppKind::Upw, 1, 7, Scale::FULL).trace());
        let quick =
            AppSummary::from_trace(&app_trace(AppKind::Upw, 1, 7, Scale::quick(4)).trace());
        assert!(quick.total_io_mb < full.total_io_mb / 3.0);
    }

    #[test]
    fn full_scale_is_identity() {
        let a = app_trace(AppKind::Ccm, 2, 9, Scale::FULL);
        let b = workload::generate(&AppKind::Ccm.spec(2), 9);
        assert_eq!(a.trace(), b);
    }
}
