//! Check the §6 headline claims C1–C5.

use experiments::claims::{all_claims, render_claims};
use experiments::Scale;

fn main() {
    let mut args: Vec<String> = std::env::args().collect();
    let profile = match experiments::apply_standard_flags(&mut args) {
        Ok(p) => p,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let scale = if args.iter().any(|a| a == "--quick") { Scale(8) } else { Scale::FULL };
    let report = all_claims(scale, 42);
    println!("{}", render_claims(&report));
    if let Some(i) = args.iter().position(|a| a == "--json") {
        let path = args.get(i + 1).expect("--json needs a path");
        std::fs::write(path, serde_json::to_string_pretty(&report).expect("serialize"))
            .expect("write json");
        eprintln!("wrote {path}");
    }
    if let Some(path) = &profile {
        obs::finish_profile(path);
    }
    obs::finish_timelines();
}
