//! Run the design-choice ablations (read-ahead, write policy, block
//! size, quantum, disk queueing).

use experiments::ablations::{all_ablations, render_ablations};
use experiments::Scale;

fn main() {
    let mut args: Vec<String> = std::env::args().collect();
    let profile = match experiments::apply_standard_flags(&mut args) {
        Ok(p) => p,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let scale = if args.iter().any(|a| a == "--quick") { Scale(8) } else { Scale::FULL };
    let report = all_ablations(scale, 42);
    println!("{}", render_ablations(&report));
    if let Some(i) = args.iter().position(|a| a == "--json") {
        let path = args.get(i + 1).expect("--json needs a path");
        std::fs::write(path, serde_json::to_string_pretty(&report).expect("serialize"))
            .expect("write json");
        eprintln!("wrote {path}");
    }
    if let Some(path) = &profile {
        obs::finish_profile(path);
    }
    obs::finish_timelines();
}
