//! Regenerate Figures 6, 7 and 8 (the buffering simulations).
//!
//! Observability flags (shared by every repro binary):
//! * `--profile PATH` — record a Chrome trace-event / Perfetto timeline
//!   of the run to PATH (also via `MILLER_PROFILE=PATH`).
//! * `--profile-capacity N` — size the flight-recorder ring to N events
//!   (also via `MILLER_PROFILE_CAPACITY=N`).
//! * `--progress` — stderr heartbeat during sweeps (also via
//!   `MILLER_PROGRESS=1`).
//! * `--threads N` / `--shards N` — sweep thread pool / sharded-engine
//!   worker count (also `MILLER_THREADS` / `MILLER_SHARDS`).
//!
//! `--fig8-point MB:BLOCK` runs a single Figure 8 sweep point (e.g.
//! `32:4096` = 32 MB cache, 4 KiB blocks) instead of the full set —
//! the cheap way to capture a sample trace in CI; `--json PATH` writes
//! its [`iosim::SimReport`] (the `mio serve` determinism guard `cmp`s
//! served responses against exactly this output).
//!
//! `--campaign GROUPSxPROCS` runs a cluster-scale sharded campaign
//! instead (e.g. `1000x10` = 1000 groups of 10 processes) on
//! `--shards N` worker threads; `--json PATH` then writes the
//! [`iosim::ClusterReport`], which is byte-identical at any shard count.
//!
//! `--devices modern` reruns the Figure 8 cache sweep on 2026 hardware
//! (queue-aware NVMe + elevator disk + tape in a tiered hierarchy, CPU
//! 500× faster) side by side with the 1991 run, answering whether the
//! paper's ">99% CPU utilization with an SSD-sized cache" claim
//! survives; `--json PATH` writes the
//! [`experiments::ModernComparison`], byte-identical at any `--shards`.
//!
//! `--dfg-out PATH` additionally runs the post-hoc directly-follows
//! analysis over the figure traces — exported as binary frame files and
//! scanned block-by-block in parallel — writing the report JSON to PATH
//! and a Graphviz rendering next to it (`.dot`).

use experiments::campaign::{run_campaign, CampaignSpec};
use experiments::figures::{fig6, fig7, fig8, render_fig8, two_venus_report};
use experiments::nplus1::{nplus1, render_nplus1};
use experiments::Scale;
use sim_core::units::MB;

fn parse_campaign(raw: &str) -> Result<(usize, usize), String> {
    let (groups, procs) = raw
        .split_once(['x', 'X'])
        .ok_or_else(|| format!("--campaign wants GROUPSxPROCS (e.g. 1000x10), got `{raw}`"))?;
    let groups: usize = groups
        .trim()
        .parse()
        .map_err(|_| format!("--campaign group count must be an integer, got `{groups}`"))?;
    let procs: usize = procs
        .trim()
        .parse()
        .map_err(|_| format!("--campaign process count must be an integer, got `{procs}`"))?;
    if groups == 0 || procs == 0 {
        return Err("--campaign counts must be positive".into());
    }
    Ok((groups, procs))
}

fn parse_fig8_point(raw: &str) -> Result<(u64, u64), String> {
    let (mb, block) = raw
        .split_once(':')
        .ok_or_else(|| format!("--fig8-point wants MB:BLOCK, got `{raw}`"))?;
    let mb: u64 = mb
        .trim()
        .parse()
        .map_err(|_| format!("--fig8-point cache size must be an integer MB, got `{mb}`"))?;
    let block: u64 = block
        .trim()
        .parse()
        .map_err(|_| format!("--fig8-point block size must be an integer, got `{block}`"))?;
    if mb == 0 || block == 0 {
        return Err("--fig8-point sizes must be positive".into());
    }
    Ok((mb, block))
}

fn main() {
    let mut args: Vec<String> = std::env::args().collect();
    let profile = match experiments::apply_standard_flags(&mut args) {
        Ok(p) => p,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let scale = if args.iter().any(|a| a == "--quick") { Scale(8) } else { Scale::FULL };

    if experiments::modern_devices() {
        let c = experiments::modern_comparison(scale, 42);
        print!("{}", experiments::render_modern(&c));
        if let Some(i) = args.iter().position(|a| a == "--json") {
            let path = args.get(i + 1).expect("--json needs a path");
            std::fs::write(path, serde_json::to_string_pretty(&c).expect("serialize"))
                .expect("write json");
            eprintln!("wrote {path}");
        }
        if let Some(path) = &profile {
            obs::finish_profile(path);
        }
        obs::finish_timelines();
        return;
    }

    if let Some(i) = args.iter().position(|a| a == "--campaign") {
        let raw = args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("--campaign needs GROUPSxPROCS");
            std::process::exit(2);
        });
        let (groups, procs) = parse_campaign(&raw).unwrap_or_else(|msg| {
            eprintln!("{msg}");
            std::process::exit(2);
        });
        let shards = experiments::shard_count();
        let spec = CampaignSpec::datacenter(groups, procs);
        let report = run_campaign(&spec, shards);
        println!(
            "campaign {groups}x{procs} on {shards} shard(s): {} processes, {} I/Os, \
             {} epochs, {} remote ops ({} MB), utilization {:.1}%, hit ratio {:.3}",
            report.total_processes,
            report.ios_issued,
            report.epochs,
            report.remote_ops,
            report.remote_bytes / MB,
            report.utilization() * 100.0,
            report.cache.hit_ratio(),
        );
        if let Some(j) = args.iter().position(|a| a == "--json") {
            let path = args.get(j + 1).expect("--json needs a path");
            std::fs::write(path, serde_json::to_string_pretty(&report).expect("serialize"))
                .expect("write json");
            eprintln!("wrote {path}");
        }
        if let Some(path) = &profile {
            obs::finish_profile(path);
        }
        obs::finish_timelines();
        return;
    }

    if let Some(i) = args.iter().position(|a| a == "--fig8-point") {
        let raw = args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("--fig8-point needs MB:BLOCK");
            std::process::exit(2);
        });
        let (mb, block) = parse_fig8_point(&raw).unwrap_or_else(|msg| {
            eprintln!("{msg}");
            std::process::exit(2);
        });
        // Through the sweep harness (a 1-point sweep) so a profiled run
        // carries a host worker track alongside the simulated-process
        // tracks — the trace then demonstrates both clock domains.
        let mut reports = experiments::par_sweep(&[(mb, block)], |&(mb, block)| {
            two_venus_report(
                mb * MB,
                block,
                true,
                buffer_cache::WritePolicy::WriteBehind,
                scale,
                42,
            )
        });
        let r = reports.pop().expect("one sweep point");
        println!(
            "fig8 point {mb} MB / {block} B blocks: idle {:.1}s, utilization {:.1}%, hit ratio {:.3}",
            r.idle_secs(),
            r.utilization() * 100.0,
            r.cache.hit_ratio()
        );
        println!(
            "obs: ctx switches {}, sync blocks {}, idle transitions {}, wheel inserts {}, \
             cascades {}, hinted probes {}, unhinted {}, disk seeks {}, sequential {}",
            r.obs.scheduler.context_switches,
            r.obs.scheduler.sync_blocks,
            r.obs.scheduler.idle_transitions,
            r.obs.timing_wheel.inserts,
            r.obs.timing_wheel.cascades,
            r.obs.cache.hinted_index_probes,
            r.obs.cache.unhinted_index_probes,
            r.obs.disks.seeks,
            r.obs.disks.sequential_accesses,
        );
        if let Some(j) = args.iter().position(|a| a == "--json") {
            let path = args.get(j + 1).expect("--json needs a path");
            std::fs::write(path, serde_json::to_string_pretty(&r).expect("serialize"))
                .expect("write json");
            eprintln!("wrote {path}");
        }
        if let Some(path) = &profile {
            obs::finish_profile(path);
        }
        obs::finish_timelines();
        return;
    }

    for (label, fig) in [("Figure 6", fig6(scale, 42)), ("Figure 7", fig7(scale, 42))] {
        println!(
            "{label}: 2 x venus, {} MB cache — idle {:.1}s, utilization {:.1}%, disk-traffic CV {:.2}",
            fig.cache_mb,
            fig.idle_secs,
            fig.utilization * 100.0,
            fig.disk_burstiness_cv
        );
        println!("{}", fig.plot);
    }
    let f8 = fig8(scale, 42);
    println!("{}", render_fig8(&f8));
    let np1 = nplus1(&[1, 2, 4], scale, 42);
    println!("{}", render_nplus1(&np1));
    if let Some(i) = args.iter().position(|a| a == "--json") {
        let path = args.get(i + 1).expect("--json needs a path");
        std::fs::write(path, serde_json::to_string_pretty(&f8).expect("serialize"))
            .expect("write json");
        eprintln!("wrote {path}");
    }
    if let Some(i) = args.iter().position(|a| a == "--dfg-out") {
        let path = args.get(i + 1).expect("--dfg-out needs a path");
        let store = experiments::TraceStore::global();
        let subjects = experiments::dfg::figure_subjects(42);
        let report = experiments::dfg::dfg_for_subjects(store, &subjects, scale)
            .unwrap_or_else(|e| {
                eprintln!("dfg analysis failed: {e}");
                std::process::exit(1);
            });
        let dot = experiments::dfg::write_dfg_outputs(&report, std::path::Path::new(path))
            .unwrap_or_else(|e| {
                eprintln!("writing dfg output failed: {e}");
                std::process::exit(1);
            });
        println!(
            "dfg: {} process graph(s), {} ops folded — wrote {path} and {}",
            report.processes.len(),
            report.total_events,
            dot.display()
        );
    }
    if let Some(path) = &profile {
        obs::finish_profile(path);
    }
    obs::finish_timelines();
}
