//! Regenerate Figures 6, 7 and 8 (the buffering simulations).

use experiments::figures::{fig6, fig7, fig8, render_fig8};
use experiments::nplus1::{nplus1, render_nplus1};
use experiments::Scale;

fn main() {
    let mut args: Vec<String> = std::env::args().collect();
    if let Err(msg) = experiments::apply_threads_flag(&mut args) {
        eprintln!("{msg}");
        std::process::exit(2);
    }
    let scale = if args.iter().any(|a| a == "--quick") { Scale(8) } else { Scale::FULL };
    for (label, fig) in [("Figure 6", fig6(scale, 42)), ("Figure 7", fig7(scale, 42))] {
        println!(
            "{label}: 2 x venus, {} MB cache — idle {:.1}s, utilization {:.1}%, disk-traffic CV {:.2}",
            fig.cache_mb,
            fig.idle_secs,
            fig.utilization * 100.0,
            fig.disk_burstiness_cv
        );
        println!("{}", fig.plot);
    }
    let f8 = fig8(scale, 42);
    println!("{}", render_fig8(&f8));
    let np1 = nplus1(&[1, 2, 4], scale, 42);
    println!("{}", render_nplus1(&np1));
    if let Some(i) = args.iter().position(|a| a == "--json") {
        let path = args.get(i + 1).expect("--json needs a path");
        std::fs::write(path, serde_json::to_string_pretty(&f8).expect("serialize"))
            .expect("write json");
        eprintln!("wrote {path}");
    }
}
