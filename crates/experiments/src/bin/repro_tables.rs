//! Regenerate Tables 1 and 2. `--quick` runs at 1/8 scale; `--json PATH`
//! additionally writes machine-readable results.

use experiments::extras::{
    amdahl_table, compression_table, render_amdahl, render_compression,
};
use experiments::tables::{render_table1, render_table2, table1};
use experiments::Scale;

fn main() {
    let mut args: Vec<String> = std::env::args().collect();
    let profile = match experiments::apply_standard_flags(&mut args) {
        Ok(p) => p,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let scale = if args.iter().any(|a| a == "--quick") { Scale(8) } else { Scale::FULL };
    let result = table1(scale, 42);
    println!("{}", render_table1(&result));
    println!("{}", render_table2(&result));
    println!("{}", render_compression(&compression_table(scale, 42)));
    println!("{}", render_amdahl(&amdahl_table(scale, 42)));
    if let Some(i) = args.iter().position(|a| a == "--json") {
        let path = args.get(i + 1).expect("--json needs a path");
        std::fs::write(path, serde_json::to_string_pretty(&result).expect("serialize"))
            .expect("write json");
        eprintln!("wrote {path}");
    }
    if let Some(path) = &profile {
        obs::finish_profile(path);
    }
    obs::finish_timelines();
}
