//! Regenerate Figures 3 and 4 (application demand over CPU time).

use experiments::figures::{fig3, fig4};
use experiments::Scale;

fn main() {
    let mut args: Vec<String> = std::env::args().collect();
    let profile = match experiments::apply_standard_flags(&mut args) {
        Ok(p) => p,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let scale = if args.iter().any(|a| a == "--quick") { Scale(8) } else { Scale::FULL };
    for (label, fig) in [("Figure 3", fig3(scale, 42)), ("Figure 4", fig4(scale, 42))] {
        println!("{label}: {} — mean {:.1} MB/s, peak {:.1} MB/s, {} peaks (spacing CV {:.2})",
            fig.app, fig.mean_mb_per_s, fig.peak_mb_per_s, fig.cycles.peaks, fig.cycles.peak_spacing_cv);
        if let Some(p) = fig.cycles.period_bins {
            println!("dominant cycle period: {} s (autocorrelation {:.2})", p, fig.cycles.strength);
        }
        println!("{}", fig.plot);
    }
    if let Some(path) = &profile {
        obs::finish_profile(path);
    }
    obs::finish_timelines();
}
