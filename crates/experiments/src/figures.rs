//! Figures 3, 4, 6, 7 and 8.

use crate::par_sweep::par_sweep;
use crate::render::ascii_plot;
use crate::runner::{app_trace, Scale};
use crate::trace_store::TraceStore;
use buffer_cache::WritePolicy;
use iosim::{SimConfig, SimReport, Simulation};
use serde::{Deserialize, Serialize};
use sim_core::units::MB;
use sim_core::{RateSeries, SimDuration};
use trace_analysis::{cpu_time_series, detect_cycles, Burstiness, CycleReport, Select};
use workload::AppKind;

/// A demand-over-CPU-time figure (Figures 3 and 4).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DemandFigure {
    /// Application shown.
    pub app: String,
    /// Per-CPU-second data rates (MB/s per bin).
    pub rates_mb_per_s: Vec<f64>,
    /// Burstiness summary.
    pub peak_mb_per_s: f64,
    /// Mean rate (the paper labels venus ≈ 44, les ≈ 49.8).
    pub mean_mb_per_s: f64,
    /// Cycle analysis (§5.3: evenly spaced peaks).
    pub cycles: CycleReport,
    /// Rendered ASCII plot.
    pub plot: String,
}

fn demand_figure(kind: AppKind, scale: Scale, seed: u64) -> DemandFigure {
    let trace = app_trace(kind, 1, seed, scale).trace();
    let series = cpu_time_series(&trace, SimDuration::from_secs(1), Select::Both);
    let b = Burstiness::of(&series);
    let cycles = detect_cycles(&trace, SimDuration::from_secs(1));
    let plot = ascii_plot(
        &series,
        &format!("Figure: {} data rate over process CPU time", kind.name()),
        10,
        76,
    );
    DemandFigure {
        app: kind.name().to_string(),
        rates_mb_per_s: series.rates_per_second().iter().map(|r| r / MB as f64).collect(),
        peak_mb_per_s: b.peak / MB as f64,
        mean_mb_per_s: b.mean / MB as f64,
        cycles,
        plot,
    }
}

/// Figure 3: venus data rate over CPU time.
pub fn fig3(scale: Scale, seed: u64) -> DemandFigure {
    demand_figure(AppKind::Venus, scale, seed)
}

/// Figure 4: les data rate over CPU time.
pub fn fig4(scale: Scale, seed: u64) -> DemandFigure {
    demand_figure(AppKind::Les, scale, seed)
}

/// A two-venus buffering simulation result (Figures 6 and 7).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TwoVenusFigure {
    /// Cache size in MB.
    pub cache_mb: u64,
    /// Wall seconds simulated.
    pub wall_secs: f64,
    /// CPU idle seconds.
    pub idle_secs: f64,
    /// CPU utilization.
    pub utilization: f64,
    /// Disk *read* MB/s per wall second (first 200 s).
    pub disk_read_mb_per_s: Vec<f64>,
    /// Disk *write* MB/s per wall second (first 200 s).
    pub disk_write_mb_per_s: Vec<f64>,
    /// Burstiness of the combined disk traffic — the paper's point is
    /// that buffering does *not* smooth it (§6.2).
    pub disk_burstiness_cv: f64,
    /// Rendered ASCII plot of combined disk traffic.
    pub plot: String,
}

/// Run two venus copies against a cache of `cache_mb` megabytes with
/// read-ahead + write-behind (the Figure 6/7 setup).
pub fn two_venus(cache_mb: u64, scale: Scale, seed: u64) -> TwoVenusFigure {
    let report = two_venus_report(cache_mb * MB, 4096, true, WritePolicy::WriteBehind, scale, seed);
    summarize_two_venus(cache_mb, &report)
}

/// The underlying simulation, exposed for claims and ablations. Traces
/// come from the process-wide [`TraceStore`], so repeated calls (e.g. a
/// 14-point cache sweep) replay the same shared slices with zero copies.
pub fn two_venus_report(
    cache_bytes: u64,
    block_size: u64,
    read_ahead: bool,
    write_policy: WritePolicy,
    scale: Scale,
    seed: u64,
) -> SimReport {
    two_venus_report_in(
        TraceStore::global(),
        cache_bytes,
        block_size,
        read_ahead,
        write_policy,
        scale,
        seed,
    )
}

/// [`two_venus_report`] against an explicit store — benches use this to
/// control cold vs warm memoization.
#[allow(clippy::too_many_arguments)]
pub fn two_venus_report_in(
    store: &TraceStore,
    cache_bytes: u64,
    block_size: u64,
    read_ahead: bool,
    write_policy: WritePolicy,
    scale: Scale,
    seed: u64,
) -> SimReport {
    let mut config = SimConfig::buffered(cache_bytes);
    {
        let c = config.cache.as_mut().expect("buffered config has a cache");
        c.block_size = block_size;
        c.read_ahead = read_ahead;
        c.write_policy = write_policy;
    }
    let mut sim = Simulation::new(config);
    // feed() picks the replay shape for us: a zero-copy shared slice
    // normally, a bounded-memory streaming cursor when the store has a
    // memory budget. The event sequence — and so the report — is
    // identical either way.
    sim.add_process_feed(1, "venus#1", store.feed(AppKind::Venus, 1, seed, scale))
        .expect("valid process");
    sim.add_process_feed(2, "venus#2", store.feed(AppKind::Venus, 2, seed + 1, scale))
        .expect("valid process");
    sim.run()
}

fn summarize_two_venus(cache_mb: u64, report: &SimReport) -> TwoVenusFigure {
    let window = 200;
    let reads = report.disk_read_series.truncated(window);
    let writes = report.disk_write_series.truncated(window);
    // Combined traffic for the burstiness measure and the plot. The two
    // series can have different lengths (reads die out once the working
    // set is cached), so pad the shorter one rather than truncating.
    let mut combined = RateSeries::new(report.disk_read_series.bin_width());
    let n = reads.bins().len().max(writes.bins().len());
    for i in 0..n {
        let r = reads.bins().get(i).copied().unwrap_or(0.0);
        let w = writes.bins().get(i).copied().unwrap_or(0.0);
        combined.add(sim_core::SimTime::from_secs(i as u64), r + w);
    }
    let b = Burstiness::of(&combined);
    TwoVenusFigure {
        cache_mb,
        wall_secs: report.wall_secs(),
        idle_secs: report.idle_secs(),
        utilization: report.utilization(),
        disk_read_mb_per_s: reads.rates_per_second().iter().map(|r| r / MB as f64).collect(),
        disk_write_mb_per_s: writes.rates_per_second().iter().map(|r| r / MB as f64).collect(),
        disk_burstiness_cv: b.cv,
        plot: ascii_plot(
            &combined,
            &format!("2 x venus, {cache_mb} MB cache: disk traffic (first {window}s of wall time)"),
            10,
            76,
        ),
    }
}

/// Figure 6: 2×venus with a 32 MB cache.
pub fn fig6(scale: Scale, seed: u64) -> TwoVenusFigure {
    two_venus(32, scale, seed)
}

/// Figure 7: 2×venus with a 128 MB cache.
pub fn fig7(scale: Scale, seed: u64) -> TwoVenusFigure {
    two_venus(128, scale, seed)
}

/// One point of the Figure 8 sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig8Point {
    /// Cache size in MB.
    pub cache_mb: u64,
    /// Cache block size in bytes.
    pub block_size: u64,
    /// Idle seconds over the run (the figure's y-axis).
    pub idle_secs: f64,
    /// Wall seconds.
    pub wall_secs: f64,
    /// CPU utilization.
    pub utilization: f64,
}

/// The Figure 8 sweep result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig8Result {
    /// Sweep points (cache size × block size).
    pub points: Vec<Fig8Point>,
    /// Execution time with zero idle (the paper quotes 761 s for the
    /// full-scale run).
    pub no_idle_baseline_secs: f64,
}

/// The Figure 8 parameter grid: (cache MB, block size) in render order.
fn fig8_jobs() -> Vec<(u64, u64)> {
    let sizes = [4u64, 8, 16, 32, 64, 128, 256];
    let blocks = [4096u64, 8192];
    let mut jobs = Vec::with_capacity(sizes.len() * blocks.len());
    for &b in &blocks {
        for &s in &sizes {
            jobs.push((s, b));
        }
    }
    jobs
}

/// Figure 8: idle time of 2×venus vs cache size (4–256 MB), for 4 KB and
/// 8 KB blocks. Fans the sweep out over [`par_sweep`]; results stay in
/// grid order regardless of which point finishes first.
pub fn fig8(scale: Scale, seed: u64) -> Fig8Result {
    fig8_in(TraceStore::global(), scale, seed)
}

/// [`fig8`] against an explicit trace store (cold/warm bench control).
pub fn fig8_in(store: &TraceStore, scale: Scale, seed: u64) -> Fig8Result {
    let jobs = fig8_jobs();
    let points = par_sweep(&jobs, |&(cache_mb, block)| {
        let r = two_venus_report_in(
            store,
            cache_mb * MB,
            block,
            true,
            WritePolicy::WriteBehind,
            scale,
            seed,
        );
        Fig8Point {
            cache_mb,
            block_size: block,
            idle_secs: r.idle_secs(),
            wall_secs: r.wall_secs(),
            utilization: r.utilization(),
        }
    });
    // No-idle baseline: busy time of any run (identical CPU demand).
    let baseline = {
        let r =
            two_venus_report_in(store, 256 * MB, 4096, true, WritePolicy::WriteBehind, scale, seed);
        r.cpu_busy.as_secs_f64()
    };
    Fig8Result { points, no_idle_baseline_secs: baseline }
}

/// Render the Figure 8 sweep as a table.
pub fn render_fig8(result: &Fig8Result) -> String {
    use crate::render::{num, TextTable};
    let mut t = TextTable::new(&["cache MB", "4K blocks idle(s)", "8K blocks idle(s)"]);
    let mut sizes: Vec<u64> = result.points.iter().map(|p| p.cache_mb).collect();
    sizes.sort_unstable();
    sizes.dedup();
    for s in sizes {
        let find = |b: u64| {
            result
                .points
                .iter()
                .find(|p| p.cache_mb == s && p.block_size == b)
                .map(|p| num(p.idle_secs))
                .unwrap_or_else(|| "-".to_string())
        };
        t.row(vec![s.to_string(), find(4096), find(8192)]);
    }
    format!(
        "Figure 8: idle time, 2 x venus, varying cache size\n{}(no-idle execution time: {:.0}s)\n",
        t.render(),
        result.no_idle_baseline_secs
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    const QUICK: Scale = Scale(8);

    #[test]
    fn fig3_venus_rates_have_paper_shape() {
        let f = fig3(QUICK, 3);
        // Mean near 44 MB/s (±20% at reduced scale), bursty peaks well
        // above the mean.
        assert!(
            (30.0..60.0).contains(&f.mean_mb_per_s),
            "venus mean {} MB/s off",
            f.mean_mb_per_s
        );
        assert!(f.peak_mb_per_s > 1.5 * f.mean_mb_per_s, "venus should be bursty");
        assert!(f.cycles.peaks >= 3, "cyclic peaks expected");
        assert!(f.plot.contains('#'));
    }

    #[test]
    fn fig4_les_rates_have_paper_shape() {
        let f = fig4(QUICK, 3);
        assert!(
            (35.0..70.0).contains(&f.mean_mb_per_s),
            "les mean {} MB/s off (paper labels 49.8)",
            f.mean_mb_per_s
        );
        assert!(f.peak_mb_per_s > 1.4 * f.mean_mb_per_s);
    }

    #[test]
    fn fig6_vs_fig7_idle_drops_with_cache_size() {
        let f6 = fig6(QUICK, 5);
        let f7 = fig7(QUICK, 5);
        assert!(
            f7.idle_secs < f6.idle_secs,
            "128 MB idle {} should beat 32 MB idle {}",
            f7.idle_secs,
            f6.idle_secs
        );
        // Disk traffic stays bursty even with the big cache (the paper's
        // §6.2 observation).
        assert!(f7.disk_burstiness_cv > 0.5, "cv {}", f7.disk_burstiness_cv);
    }

    #[test]
    fn fig8_idle_monotonically_improves_with_cache() {
        let r = fig8(QUICK, 7);
        assert_eq!(r.points.len(), 14);
        for block in [4096u64, 8192] {
            let mut last = f64::INFINITY;
            for p in r.points.iter().filter(|p| p.block_size == block) {
                assert!(
                    p.idle_secs <= last * 1.15 + 1.0,
                    "idle should trend down with cache size: {} MB gives {}s after {}s",
                    p.cache_mb,
                    p.idle_secs,
                    last
                );
                last = p.idle_secs;
            }
            // The largest cache should be near-zero idle relative to the
            // smallest.
            let smallest = r.points.iter().find(|p| p.block_size == block && p.cache_mb == 4).unwrap();
            let largest = r.points.iter().find(|p| p.block_size == block && p.cache_mb == 256).unwrap();
            assert!(
                largest.idle_secs < smallest.idle_secs * 0.3,
                "knee missing: 4MB {}s vs 256MB {}s",
                smallest.idle_secs,
                largest.idle_secs
            );
        }
        assert!(r.no_idle_baseline_secs > 0.0);
        let rendered = render_fig8(&r);
        assert!(rendered.contains("256"));
    }
}
