//! Parallel post-hoc DFG analysis over stored frame files.
//!
//! The analysis itself — the streaming directly-follows fold — lives in
//! [`trace_analysis::dfg`]; this module is the fan-out: it exports the
//! run's traces as `stream_v2` frame files through the
//! [`TraceStore`] (reusing spill files when the store already streams)
//! and then scans one file per [`par_sweep`] worker, each worker
//! holding a single decoded block at a time. The whole analysis is
//! post-hoc and bounded-memory: nothing about it requires the traces to
//! ever be resident.
//!
//! Output is deterministic — [`DfgReport`] orders processes by
//! `(source, pid)` and its `to_dot` rendering is byte-stable — so the
//! report JSON can be diffed across runs like every other artifact in
//! this crate.

use crate::par_sweep::par_sweep;
use crate::runner::Scale;
use crate::trace_store::TraceStore;
use std::path::{Path, PathBuf};
use trace_analysis::dfg::{dfg_of_frame_file, DfgReport};
use workload::AppKind;

/// One trace to analyze: `(app, pid, seed)` at the sweep's scale.
pub type DfgSubject = (AppKind, u32, u64);

/// Build the DFG report for a set of stored frame files, scanning one
/// file per worker thread. Any unreadable or corrupt file fails the
/// whole analysis (frame checksums make corruption loud).
pub fn dfg_from_frame_files(paths: &[PathBuf]) -> std::io::Result<DfgReport> {
    let scans = par_sweep(paths, |p| dfg_of_frame_file(p));
    let mut processes = Vec::new();
    for (scan, path) in scans.into_iter().zip(paths) {
        processes.extend(scan.map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("scanning {}: {e:?}", path.display()),
            )
        })?);
    }
    Ok(DfgReport::from_processes(processes))
}

/// Export each subject's trace as a frame file and fold its DFGs in
/// parallel. This is what `repro-sim --dfg-out` runs over the traces
/// the figure simulations replayed.
pub fn dfg_for_subjects(
    store: &TraceStore,
    subjects: &[DfgSubject],
    scale: Scale,
) -> std::io::Result<DfgReport> {
    let paths = subjects
        .iter()
        .map(|&(kind, pid, seed)| store.export_frame(kind, pid, seed, scale))
        .collect::<std::io::Result<Vec<_>>>()?;
    dfg_from_frame_files(&paths)
}

/// The figure runs' subjects: the two venus instances of Figures 6–8.
pub fn figure_subjects(seed: u64) -> Vec<DfgSubject> {
    vec![(AppKind::Venus, 1, seed), (AppKind::Venus, 2, seed + 1)]
}

/// Write `report` as pretty JSON at `path` and as Graphviz DOT next to
/// it (same stem, `.dot` extension). Returns the DOT path.
pub fn write_dfg_outputs(report: &DfgReport, path: &Path) -> std::io::Result<PathBuf> {
    std::fs::write(path, serde_json::to_string_pretty(report).expect("serialize dfg report"))?;
    let dot = path.with_extension("dot");
    std::fs::write(&dot, report.to_dot())?;
    Ok(dot)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace_store::StoreConfig;

    fn test_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("miller-dfg-exp-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn parallel_scan_is_deterministic_and_mode_independent() {
        let dir = test_dir("modes");
        let subjects = figure_subjects(42);
        let resident = TraceStore::with_config(StoreConfig {
            mem_budget: None,
            spill_dir: Some(dir.join("resident")),
        });
        let a = dfg_for_subjects(&resident, &subjects, Scale(32)).expect("resident-mode dfg");
        let streaming = TraceStore::with_config(StoreConfig {
            mem_budget: Some(0),
            spill_dir: Some(dir.join("streaming")),
        });
        drop(streaming.feed(workload::AppKind::Venus, 1, 42, Scale(32))); // pre-spill one
        let b = dfg_for_subjects(&streaming, &subjects, Scale(32)).expect("streaming-mode dfg");
        assert_eq!(a, b, "DFGs must not depend on the store's replay mode");
        assert_eq!(a.processes.len(), 2);
        assert!(a.total_events > 0);
        for p in &a.processes {
            assert!(!p.nodes.is_empty());
            let edge_total: u64 = p.edges.iter().map(|e| e.count).sum();
            assert_eq!(edge_total, p.events - 1, "a linear stream has n-1 transitions");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn outputs_write_json_and_dot() {
        let dir = test_dir("outputs");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let store = TraceStore::with_config(StoreConfig {
            mem_budget: None,
            spill_dir: Some(dir.clone()),
        });
        let report =
            dfg_for_subjects(&store, &figure_subjects(42), Scale(64)).expect("dfg report");
        let json = dir.join("dfg.json");
        let dot = write_dfg_outputs(&report, &json).expect("write outputs");
        let body = std::fs::read_to_string(&json).expect("read json back");
        let parsed: DfgReport = serde_json::from_str(&body).expect("parse json back");
        assert_eq!(parsed, report, "JSON round-trips");
        let dot_body = std::fs::read_to_string(&dot).expect("read dot");
        assert!(dot_body.starts_with("digraph dfg {"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
