//! Property tests: the batch machine never loses or duplicates jobs,
//! never over-commits a partition, and respects FIFO within each queue.

use batch_queue::{BatchMachine, Job};
use proptest::prelude::*;
use sim_core::units::MEGAWORD_BYTES as MW;
use sim_core::{SimDuration, SimTime};

fn arb_jobs() -> impl Strategy<Value = Vec<Job>> {
    proptest::collection::vec((1u64..64, 1u64..300, 0u64..100), 1..60).prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (mw, secs, at))| Job {
                name: format!("j{i}"),
                memory: mw * MW,
                run_time: SimDuration::from_secs(secs),
                submitted: SimTime::from_secs(at),
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn every_job_completes_exactly_once(jobs in arb_jobs()) {
        let machine = BatchMachine::ymp_default();
        let outcomes = machine.run(&jobs).unwrap();
        prop_assert_eq!(outcomes.len(), jobs.len());
        let mut names: Vec<&str> = outcomes.iter().map(|o| o.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        prop_assert_eq!(names.len(), jobs.len(), "no duplicates");
    }

    #[test]
    fn timings_are_consistent(jobs in arb_jobs()) {
        let machine = BatchMachine::ymp_default();
        let outcomes = machine.run(&jobs).unwrap();
        for o in &outcomes {
            let job = jobs.iter().find(|j| j.name == o.name).unwrap();
            prop_assert!(o.started >= job.submitted, "{}: started before submission", o.name);
            prop_assert_eq!(
                o.finished.ticks() - o.started.ticks(),
                job.run_time.ticks(),
                "run span must equal run_time"
            );
            prop_assert_eq!(
                o.turnaround.ticks(),
                o.queued.ticks() + job.run_time.ticks(),
                "turnaround = queue wait + run"
            );
        }
    }

    #[test]
    fn partitions_are_never_overcommitted(jobs in arb_jobs()) {
        let machine = BatchMachine::ymp_default();
        let outcomes = machine.run(&jobs).unwrap();
        // Reconstruct per-queue occupancy over time from the outcomes and
        // check it never exceeds the partition.
        let partitions = [("small", 32 * MW), ("medium", 32 * MW), ("large", 64 * MW)];
        for (queue, partition) in partitions {
            let runs: Vec<(&batch_queue::JobOutcome, u64)> = outcomes
                .iter()
                .filter(|o| o.queue == queue)
                .map(|o| {
                    let mem = jobs.iter().find(|j| j.name == o.name).unwrap().memory;
                    (o, mem)
                })
                .collect();
            // Check occupancy at every job start instant.
            for (probe, _) in &runs {
                let occupied: u64 = runs
                    .iter()
                    .filter(|(o, _)| o.started <= probe.started && o.finished > probe.started)
                    .map(|(_, m)| m)
                    .sum();
                prop_assert!(
                    occupied <= partition,
                    "queue {queue}: {occupied} bytes occupied at {} exceeds {partition}",
                    probe.started
                );
            }
        }
    }

    #[test]
    fn fifo_holds_within_each_queue(jobs in arb_jobs()) {
        let machine = BatchMachine::ymp_default();
        let outcomes = machine.run(&jobs).unwrap();
        // A job submitted earlier to the same queue never *starts* after a
        // job submitted strictly later (FIFO dispatch; equal-time
        // submissions may start together).
        for a in &outcomes {
            for b in &outcomes {
                if a.queue != b.queue {
                    continue;
                }
                let ja = jobs.iter().find(|j| j.name == a.name).unwrap();
                let jb = jobs.iter().find(|j| j.name == b.name).unwrap();
                if ja.submitted < jb.submitted {
                    prop_assert!(
                        a.started <= b.started,
                        "{} (submitted {}) started after {} (submitted {})",
                        a.name,
                        ja.submitted,
                        b.name,
                        jb.submitted
                    );
                }
            }
        }
    }
}
