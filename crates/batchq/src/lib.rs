//! The UNICOS batch-scheduling environment of §2.2, as a model.
//!
//! "Batch jobs … are queued according to two resource requirements —
//! CPU time and memory space. As the Cray Y-MP does not have virtual
//! memory, all of a program's memory must be contiguously allocated when
//! the program starts up … To simplify memory allocation, each queue is
//! given a fixed memory space. … for a given amount of CPU time required
//! by an application, turnaround time is shortest for the application
//! which requires the least main memory. Programmers take advantage of
//! this by structuring their program to use smaller in-memory data
//! structures while staging data to/from SSD or disk."
//!
//! [`BatchMachine`] models exactly that: a machine with fixed total
//! memory, a set of queues each with a per-job memory ceiling and a
//! fixed share of machine memory, FIFO dispatch within a queue, and
//! jobs that occupy their memory from dispatch to completion. The
//! [`memory-tradeoff example`](../examples/memory_tradeoff.rs) combines
//! it with the workload generator to show *why* venus's author chose a
//! tiny array.

use serde::{Deserialize, Serialize};
use sim_core::{EventQueue, SimDuration, SimTime};

/// One batch queue: jobs needing at most `max_job_memory` wait here and
/// run inside the queue's dedicated memory partition.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueueDef {
    /// Human-readable name ("small", "large", …).
    pub name: String,
    /// Largest per-job memory footprint admitted, bytes.
    pub max_job_memory: u64,
    /// The queue's fixed memory partition, bytes ("each queue is given a
    /// fixed memory space").
    pub partition: u64,
}

/// A job submission.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Job {
    /// Identifier for reports.
    pub name: String,
    /// Contiguous memory required for the whole run.
    pub memory: u64,
    /// Wall-clock run time once dispatched (from a simulation or an
    /// estimate; I/O-bound jobs run longer than their CPU time).
    pub run_time: SimDuration,
    /// Submission time.
    pub submitted: SimTime,
}

/// A completed job's timings.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobOutcome {
    /// The job's name.
    pub name: String,
    /// Queue it ran in.
    pub queue: String,
    /// When it started running.
    pub started: SimTime,
    /// When it finished.
    pub finished: SimTime,
    /// Submission-to-completion span — the §2.2 "turnaround time".
    pub turnaround: SimDuration,
    /// Time spent waiting in the queue.
    pub queued: SimDuration,
}

/// The batch machine: queues with fixed partitions, FIFO within each.
#[derive(Debug)]
pub struct BatchMachine {
    queues: Vec<QueueDef>,
}

#[derive(Debug)]
enum Ev {
    Submit(usize),
    Finish { queue: usize, job: usize },
}

impl BatchMachine {
    /// Build a machine from queue definitions, ordered by ascending
    /// `max_job_memory` (the dispatcher puts each job in the *first*
    /// queue that admits it).
    pub fn new(mut queues: Vec<QueueDef>) -> BatchMachine {
        assert!(!queues.is_empty(), "need at least one queue");
        queues.sort_by_key(|q| q.max_job_memory);
        for q in &queues {
            assert!(
                q.partition >= q.max_job_memory,
                "queue {} cannot even hold one maximal job",
                q.name
            );
        }
        BatchMachine { queues }
    }

    /// The NASA-style default: a machine with 128 MW (1 GB) split into a
    /// small queue (≤ 8 MW jobs, 32 MW partition), a medium queue
    /// (≤ 32 MW jobs, 32 MW partition) and a large queue (≤ 64 MW jobs,
    /// 64 MW partition).
    pub fn ymp_default() -> BatchMachine {
        let mw = sim_core::units::MEGAWORD_BYTES;
        BatchMachine::new(vec![
            QueueDef { name: "small".into(), max_job_memory: 8 * mw, partition: 32 * mw },
            QueueDef { name: "medium".into(), max_job_memory: 32 * mw, partition: 32 * mw },
            QueueDef { name: "large".into(), max_job_memory: 64 * mw, partition: 64 * mw },
        ])
    }

    /// Which queue a job of `memory` bytes lands in.
    pub fn queue_for(&self, memory: u64) -> Option<usize> {
        self.queues.iter().position(|q| memory <= q.max_job_memory)
    }

    /// Run a set of submissions to completion and report outcomes in
    /// completion order. Jobs too large for every queue are rejected
    /// with an error listing their names.
    pub fn run(&self, jobs: &[Job]) -> Result<Vec<JobOutcome>, String> {
        // Validate placements first.
        let placements: Vec<usize> = {
            let mut p = Vec::with_capacity(jobs.len());
            let mut rejected = Vec::new();
            for j in jobs {
                match self.queue_for(j.memory) {
                    Some(q) => p.push(q),
                    None => rejected.push(j.name.clone()),
                }
            }
            if !rejected.is_empty() {
                return Err(format!("jobs exceed every queue: {}", rejected.join(", ")));
            }
            p
        };

        let mut events: EventQueue<Ev> = EventQueue::new();
        for (i, j) in jobs.iter().enumerate() {
            events.schedule(j.submitted, Ev::Submit(i));
        }
        let mut waiting: Vec<std::collections::VecDeque<usize>> =
            self.queues.iter().map(|_| Default::default()).collect();
        let mut free: Vec<u64> = self.queues.iter().map(|q| q.partition).collect();
        let mut outcomes: Vec<JobOutcome> = Vec::new();
        let mut started: Vec<Option<SimTime>> = vec![None; jobs.len()];

        while let Some((now, ev)) = events.pop() {
            match ev {
                Ev::Submit(i) => {
                    waiting[placements[i]].push_back(i);
                }
                Ev::Finish { queue, job } => {
                    free[queue] += jobs[job].memory;
                    let start = started[job].expect("finished jobs started");
                    outcomes.push(JobOutcome {
                        name: jobs[job].name.clone(),
                        queue: self.queues[queue].name.clone(),
                        started: start,
                        finished: now,
                        turnaround: now.saturating_since(jobs[job].submitted),
                        queued: start.saturating_since(jobs[job].submitted),
                    });
                }
            }
            // Dispatch: FIFO per queue, as memory allows.
            for (qi, q) in waiting.iter_mut().enumerate() {
                while let Some(&job) = q.front() {
                    if jobs[job].memory <= free[qi] {
                        q.pop_front();
                        free[qi] -= jobs[job].memory;
                        started[job] = Some(now);
                        events.schedule(now + jobs[job].run_time, Ev::Finish { queue: qi, job });
                    } else {
                        break;
                    }
                }
            }
        }
        Ok(outcomes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::units::MEGAWORD_BYTES as MW;

    fn job(name: &str, mw: u64, secs: u64, at: u64) -> Job {
        Job {
            name: name.into(),
            memory: mw * MW,
            run_time: SimDuration::from_secs(secs),
            submitted: SimTime::from_secs(at),
        }
    }

    #[test]
    fn jobs_route_to_the_tightest_queue() {
        let m = BatchMachine::ymp_default();
        assert_eq!(m.queue_for(4 * MW), Some(0));
        assert_eq!(m.queue_for(16 * MW), Some(1));
        assert_eq!(m.queue_for(64 * MW), Some(2));
        assert_eq!(m.queue_for(100 * MW), None);
    }

    #[test]
    fn oversized_jobs_are_rejected_with_names() {
        let m = BatchMachine::ymp_default();
        let err = m.run(&[job("whale", 120, 10, 0)]).unwrap_err();
        assert!(err.contains("whale"));
    }

    #[test]
    fn empty_queue_runs_jobs_immediately() {
        let m = BatchMachine::ymp_default();
        let out = m.run(&[job("a", 4, 100, 5)]).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].queued, SimDuration::ZERO);
        assert_eq!(out[0].turnaround, SimDuration::from_secs(100));
        assert_eq!(out[0].queue, "small");
    }

    #[test]
    fn small_queue_parallelism_beats_large_queue_serialization() {
        // Four 8 MW jobs fill the 32 MW small partition concurrently;
        // four 32 MW jobs serialize in the 32 MW medium partition — the
        // §2.2 incentive in its purest form.
        let m = BatchMachine::ymp_default();
        let small: Vec<Job> = (0..4).map(|i| job(&format!("s{i}"), 8, 100, 0)).collect();
        let large: Vec<Job> = (0..4).map(|i| job(&format!("l{i}"), 32, 100, 0)).collect();
        let small_out = m.run(&small).unwrap();
        let large_out = m.run(&large).unwrap();
        let worst = |o: &[JobOutcome]| {
            o.iter().map(|j| j.turnaround.as_secs_f64()).fold(0.0, f64::max)
        };
        assert_eq!(worst(&small_out), 100.0, "small jobs all run at once");
        assert_eq!(worst(&large_out), 400.0, "large jobs serialize");
    }

    #[test]
    fn fifo_order_is_respected_within_a_queue() {
        let m = BatchMachine::ymp_default();
        // Two 32 MW jobs: the second waits for the first even though it
        // was submitted only a second later.
        let out = m
            .run(&[job("first", 32, 50, 0), job("second", 32, 50, 1)])
            .unwrap();
        let second = out.iter().find(|o| o.name == "second").unwrap();
        assert_eq!(second.started, SimTime::from_secs(50));
        assert_eq!(second.queued, SimDuration::from_secs(49));
    }

    #[test]
    fn queues_run_independently() {
        let m = BatchMachine::ymp_default();
        // A backlog in the medium queue does not delay a small job.
        let out = m
            .run(&[
                job("m1", 32, 500, 0),
                job("m2", 32, 500, 0),
                job("tiny", 2, 10, 1),
            ])
            .unwrap();
        let tiny = out.iter().find(|o| o.name == "tiny").unwrap();
        assert_eq!(tiny.queued, SimDuration::ZERO);
    }

    #[test]
    fn memory_is_conserved() {
        // Many random-ish jobs: at no completion is a partition
        // over-committed (checked implicitly by the dispatcher; here we
        // check totals come out right).
        let m = BatchMachine::ymp_default();
        let jobs: Vec<Job> = (0..40)
            .map(|i| job(&format!("j{i}"), 1 + (i % 8), 10 + (i % 7) * 5, i / 3))
            .collect();
        let out = m.run(&jobs).unwrap();
        assert_eq!(out.len(), 40, "every job completes");
        for o in &out {
            assert!(o.finished > o.started || o.turnaround.is_zero());
        }
    }

    #[test]
    #[should_panic(expected = "cannot even hold one maximal job")]
    fn undersized_partition_rejected() {
        BatchMachine::new(vec![QueueDef {
            name: "broken".into(),
            max_job_memory: 64 * MW,
            partition: 32 * MW,
        }]);
    }
}
