//! The service's headline contract, held under adversarial schedules:
//! a shuffled, concurrent stream of requests — duplicates included —
//! produces responses byte-identical to sequential one-shot runs, at
//! every worker count; and overload answers queue-full instead of
//! buffering unboundedly.

use proptest::prelude::*;
use serve::engine::execute;
use serve::{
    CampaignPointSpec, Engine, EngineConfig, Fig8PointSpec, RequestBody, SubmitError,
};
use experiments::{StoreConfig, TraceStore};
use serde::Value;

/// The request pool cases draw from: small fig-8 points plus campaign
/// points, including a shard-count variant that must produce the same
/// bytes (sharding is a throughput knob, never a results knob).
fn request_pool() -> Vec<RequestBody> {
    let fig8 = |cache_mb, block| {
        RequestBody::Fig8Point(Fig8PointSpec { cache_mb, block, scale: 64, seed: 42 })
    };
    let campaign = |shards| {
        let mut c = CampaignPointSpec::datacenter(2, 4, shards);
        c.scale = 64;
        RequestBody::Campaign(c)
    };
    vec![fig8(4, 4096), fig8(8, 4096), fig8(16, 4096), fig8(8, 8192), campaign(1), campaign(3)]
}

/// The ground truth: each body run one-shot (fresh store, no serving
/// machinery), pretty-printed exactly like `repro-sim --json` output.
fn sequential_baseline(pool: &[RequestBody]) -> Vec<String> {
    pool.iter()
        .map(|body| {
            let store = TraceStore::new();
            serde_json::to_string_pretty(&execute(&store, body)).expect("print")
        })
        .collect()
}

fn engine_with_workers(workers: usize) -> Engine {
    Engine::new(EngineConfig {
        workers,
        max_inflight: 64,
        result_cache: 16,
        store: StoreConfig::default(),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Concurrency-4 shuffled streams against worker counts {1, 2, 7}:
    /// every response must equal its sequential one-shot bytes.
    fn shuffled_concurrent_streams_match_one_shot_runs(
        stream in proptest::collection::vec(0usize..6, 4..16),
    ) {
        let pool = request_pool();
        let baseline = sequential_baseline(&pool);
        for workers in [1usize, 2, 7] {
            let engine = engine_with_workers(workers);
            const CLIENTS: usize = 4;
            // Deal the stream round-robin onto 4 concurrent clients.
            let served: Vec<(usize, String)> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..CLIENTS)
                    .map(|c| {
                        let engine = &engine;
                        let pool = &pool;
                        let my: Vec<usize> = stream
                            .iter()
                            .copied()
                            .skip(c)
                            .step_by(CLIENTS)
                            .collect();
                        scope.spawn(move || {
                            let client = format!("client{c}");
                            my.into_iter()
                                .map(|i| {
                                    let ticket = engine
                                        .submit(&client, &pool[i])
                                        .expect("within max_inflight");
                                    let value = ticket.wait().expect("engine running");
                                    (i, serde_json::to_string_pretty(value.as_ref())
                                        .expect("print"))
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles.into_iter().flat_map(|h| h.join().expect("client")).collect()
            });
            prop_assert_eq!(served.len(), stream.len());
            for (i, text) in &served {
                prop_assert_eq!(
                    text,
                    &baseline[*i],
                    "workers={} request={:?} diverged from its one-shot run",
                    workers,
                    &pool[*i]
                );
            }
        }
    }
}

#[test]
fn sharded_campaign_responses_are_byte_identical_across_shard_counts() {
    let store = TraceStore::new();
    let one = |shards| {
        let mut c = CampaignPointSpec::datacenter(2, 4, shards);
        c.scale = 64;
        serde_json::to_string_pretty(&execute(&store, &RequestBody::Campaign(c))).expect("print")
    };
    assert_eq!(one(1), one(3), "shard count must never change the report bytes");
}

#[test]
fn overload_answers_queue_full_instead_of_buffering() {
    // No workers: nothing drains, so the admission cap is the only
    // thing standing between a request flood and unbounded queues.
    let engine = Engine::new(EngineConfig {
        workers: 0,
        max_inflight: 3,
        result_cache: 16,
        store: StoreConfig::default(),
    });
    let body = |mb| RequestBody::Fig8Point(Fig8PointSpec {
        cache_mb: mb,
        block: 4096,
        scale: 64,
        seed: 42,
    });
    for mb in [1, 2, 3] {
        engine.submit("flood", &body(mb)).expect("under the cap");
    }
    let mut rejected = 0;
    for mb in 4..40 {
        match engine.submit("flood", &body(mb)) {
            Err(SubmitError::QueueFull) => rejected += 1,
            other => panic!("expected QueueFull past the cap, got {other:?}"),
        }
    }
    assert_eq!(rejected, 36);
    let stats = engine.stats_value();
    assert_eq!(stats.get("inflight"), Some(&Value::U64(3)), "queue never grew past the cap");
    assert_eq!(stats.get("rejected_queue_full"), Some(&Value::U64(36)));
    // Duplicates of admitted work coalesce even while full — they cost
    // nothing — and a full queue stays serviceable for them.
    assert!(engine.submit("other", &body(1)).expect("coalesces").cached);
}
