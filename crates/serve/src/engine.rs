//! The serving engine: a persistent worker pool over one warm
//! [`TraceStore`], with request canonicalization, single-flight
//! coalescing, a bounded LRU result cache, deficit-round-robin fair
//! queueing, and admission control.
//!
//! ## Why requests get cheap
//!
//! A one-shot `repro-sim` run pays trace generation every time it
//! starts. The engine keeps one process-wide [`TraceStore`] alive across
//! requests (honoring `MILLER_TRACE_DIR` / `MILLER_TRACE_MEM_BUDGET`
//! like every repro binary), so the first request for a workload
//! generates its traces and every later request replays them zero-copy.
//! On top of that:
//!
//! * **Canonicalization** ([`crate::canon`]): each runnable request is
//!   keyed by the stable canonical hash of its body, so semantically
//!   identical requests — regardless of wire field order — share a key.
//! * **Single-flight**: concurrent duplicates of an in-flight key await
//!   the one execution instead of queueing their own.
//! * **Result cache**: completed results are kept in a bounded LRU
//!   (entry-count cap); a repeat of a cached key is answered without
//!   touching the queue at all.
//! * **Fair queueing**: distinct keys are queued per client and drained
//!   deficit-round-robin, so one client's 1000-point sweep cannot
//!   starve another's single request. Costs are proportional to
//!   simulated size (a campaign counts as many quanta, a figure point
//!   as one).
//! * **Admission control**: at most `max_inflight` distinct jobs may be
//!   queued or running; past that, [`Engine::submit`] returns
//!   [`SubmitError::QueueFull`] instead of buffering unboundedly
//!   (coalesced duplicates and cache hits are always admitted — they
//!   add no work).
//!
//! ## Determinism
//!
//! Every runnable request is a pure function of its body: the
//! simulations it triggers derive all randomness from per-request seeds
//! and the [`TraceStore`] memoizes byte-identical traces regardless of
//! which worker generated them first. So the result [`Value`] for a key
//! is byte-identical no matter the worker count, the queue order, or
//! whether it was computed, coalesced, or cached — the property the
//! proptest suite and the CI socket guard pin.

use crate::canon::canonical_hash;
use crate::protocol::RequestBody;
use buffer_cache::lru::LruIndex;
use buffer_cache::WritePolicy;
use experiments::figures::two_venus_report_in;
use experiments::{run_campaign_in, CampaignSpec, Scale, StoreConfig, TraceStore};
use serde::{Serialize, Value};
use sim_core::units::MB;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Engine tuning knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads. `0` is allowed (nothing executes — the admission
    /// tests use it to observe queue behavior deterministically).
    pub workers: usize,
    /// Max distinct jobs queued or running before submissions bounce
    /// with [`SubmitError::QueueFull`].
    pub max_inflight: usize,
    /// Result-cache capacity in entries.
    pub result_cache: usize,
    /// Trace-store configuration (memory budget / persistent frame
    /// cache directory).
    pub store: StoreConfig,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            workers: experiments::thread_count(),
            max_inflight: 256,
            result_cache: 512,
            store: StoreConfig::default(),
        }
    }
}

/// Why a submission was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// Admission control: `max_inflight` distinct jobs are already
    /// queued or running. Back off and retry.
    QueueFull,
    /// The engine is draining; no new work is accepted.
    ShuttingDown,
    /// The request body is malformed (zero sizes/counts) or not
    /// runnable ([`RequestBody::Stats`]/[`RequestBody::Shutdown`] are
    /// handled by the server, not the pool).
    Invalid(String),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "queue full"),
            SubmitError::ShuttingDown => write!(f, "shutting down"),
            SubmitError::Invalid(msg) => write!(f, "invalid request: {msg}"),
        }
    }
}

/// How long one execution spent queued and running, recorded by the
/// worker and surfaced on every ticket sharing the flight (the server's
/// per-request completion log line reports both).
#[derive(Debug, Clone, Copy, Default)]
pub struct FlightTiming {
    /// Enqueue → worker pickup.
    pub queue_wait: Duration,
    /// Worker pickup → result published.
    pub service: Duration,
}

/// One execution, shared by every ticket coalesced onto it.
#[derive(Debug)]
struct Flight {
    done: Mutex<Option<Result<Arc<Value>, String>>>,
    cv: Condvar,
    /// Set by the worker just before `complete`; stays `None` for
    /// cache-hit flights (nothing ran) and abandoned jobs.
    timing: Mutex<Option<FlightTiming>>,
}

impl Flight {
    fn new() -> Arc<Flight> {
        Arc::new(Flight { done: Mutex::new(None), cv: Condvar::new(), timing: Mutex::new(None) })
    }

    fn completed(value: Arc<Value>) -> Arc<Flight> {
        Arc::new(Flight {
            done: Mutex::new(Some(Ok(value))),
            cv: Condvar::new(),
            timing: Mutex::new(None),
        })
    }

    fn complete(&self, result: Result<Arc<Value>, String>) {
        *self.done.lock().expect("flight lock") = Some(result);
        self.cv.notify_all();
    }
}

/// A handle to one submitted request's eventual result.
#[derive(Debug)]
pub struct Ticket {
    flight: Arc<Flight>,
    /// Whether the result is shared rather than freshly computed for
    /// this ticket: a result-cache hit or a coalesced duplicate.
    pub cached: bool,
    /// Whether the sharing was single-flight coalescing onto an
    /// in-flight execution (as opposed to a completed result-cache hit).
    pub coalesced: bool,
}

impl Ticket {
    /// Block until the result is ready. `Err` means the engine stopped
    /// before running the job (drain timeout exceeded).
    pub fn wait(&self) -> Result<Arc<Value>, String> {
        let mut done = self.flight.done.lock().expect("flight lock");
        loop {
            if let Some(r) = done.as_ref() {
                return r.clone();
            }
            done = self.flight.cv.wait(done).expect("flight lock");
        }
    }

    /// Queue-wait and service durations of the execution that produced
    /// this ticket's result, once resolved. `None` for cache hits (no
    /// execution) and abandoned jobs.
    pub fn timing(&self) -> Option<FlightTiming> {
        *self.flight.timing.lock().expect("flight lock")
    }

    /// [`Ticket::wait`] bounded by `timeout`; `None` means still
    /// pending — the server's heartbeat loop polls with this.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<Arc<Value>, String>> {
        let mut done = self.flight.done.lock().expect("flight lock");
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(r) = done.as_ref() {
                return Some(r.clone());
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) =
                self.flight.cv.wait_timeout(done, deadline - now).expect("flight lock");
            done = guard;
        }
    }
}

/// One queued job: a distinct canonical key awaiting a worker.
#[derive(Debug)]
struct Job {
    key: u64,
    body: RequestBody,
    cost: u64,
    flight: Arc<Flight>,
    /// When the job entered the queue; differenced at worker pickup
    /// into the queue-wait histogram.
    enqueued_at: Instant,
}

/// One client's DRR queue.
#[derive(Debug)]
struct ClientQueue {
    name: String,
    deficit: u64,
    queue: VecDeque<Arc<Job>>,
}

/// Scheduler state behind the mutex.
#[derive(Debug, Default)]
struct Sched {
    clients: Vec<ClientQueue>,
    cursor: usize,
    /// Distinct jobs queued or running.
    inflight: usize,
    /// Single-flight registry: canonical key → the execution every
    /// concurrent duplicate awaits.
    flights: HashMap<u64, Arc<Flight>>,
    results: HashMap<u64, Arc<Value>>,
    lru: LruIndex<u64>,
    stopped: bool,
}

/// Quantum added to a client's deficit per DRR round. A figure point
/// costs 1, so a client with small requests drains several per round
/// while a campaign-sized job (cost = processes/64) waits its turn
/// without blocking anyone.
const DRR_QUANTUM: u64 = 8;

impl Sched {
    fn enqueue(&mut self, client: &str, job: Arc<Job>) {
        match self.clients.iter_mut().find(|c| c.name == client) {
            Some(c) => c.queue.push_back(job),
            None => self.clients.push(ClientQueue {
                name: client.to_string(),
                deficit: 0,
                queue: VecDeque::from([job]),
            }),
        }
    }

    fn queued(&self) -> usize {
        self.clients.iter().map(|c| c.queue.len()).sum()
    }

    /// Deficit round robin: pick the next job across client queues.
    fn next_job(&mut self, quantum: u64) -> Option<Arc<Job>> {
        if self.clients.is_empty() || self.queued() == 0 {
            return None;
        }
        let n = self.clients.len();
        loop {
            let c = &mut self.clients[self.cursor % n];
            if let Some(head) = c.queue.front() {
                if c.deficit >= head.cost {
                    c.deficit -= head.cost;
                    return c.queue.pop_front();
                }
                c.deficit += quantum;
            } else {
                // An idle client carries no credit into its next burst.
                c.deficit = 0;
            }
            self.cursor = (self.cursor + 1) % n;
        }
    }

    fn cache_insert(&mut self, key: u64, value: Arc<Value>, cap: usize) {
        if cap == 0 {
            return;
        }
        self.results.insert(key, value);
        self.lru.touch(key);
        while self.lru.len() > cap {
            if let Some(old) = self.lru.pop_lru() {
                self.results.remove(&old);
            }
        }
    }
}

/// Monotonic counters exposed by the stats request.
#[derive(Debug, Default)]
struct Counters {
    submitted: AtomicU64,
    completed: AtomicU64,
    cache_hits: AtomicU64,
    coalesced: AtomicU64,
    rejected_full: AtomicU64,
    rejected_shutdown: AtomicU64,
}

/// Prometheus-facing RED metrics ([`obs::metrics`]). Wall-clock based —
/// kept strictly out of [`Engine::stats_value`] and every result
/// payload, which stay deterministic.
struct ServeMetrics {
    registry: obs::metrics::Registry,
    /// Per request type (`fig8_point` / `campaign`): enqueue → pickup.
    queue_wait: [Arc<obs::metrics::LatencyHistogram>; 2],
    /// Per request type: pickup → result published.
    service_time: [Arc<obs::metrics::LatencyHistogram>; 2],
    cache_hits: Arc<obs::metrics::Counter>,
    coalesced: Arc<obs::metrics::Counter>,
    rejected: Arc<obs::metrics::Counter>,
    completed: Arc<obs::metrics::Counter>,
    hit_ratio: Arc<obs::metrics::Gauge>,
    coalesce_ratio: Arc<obs::metrics::Gauge>,
    inflight: Arc<obs::metrics::Gauge>,
    queued: Arc<obs::metrics::Gauge>,
}

/// Histogram index of a runnable request type (also its `type` label).
fn req_type(body: &RequestBody) -> (usize, &'static str) {
    match body {
        RequestBody::Campaign(_) => (1, "campaign"),
        _ => (0, "fig8_point"),
    }
}

impl ServeMetrics {
    fn new() -> ServeMetrics {
        let registry = obs::metrics::Registry::new();
        let qw = |t: &str| {
            registry.histogram(
                "serve_queue_wait_seconds",
                "Time a request spent queued before a worker picked it up",
                &[("type", t)],
            )
        };
        let st = |t: &str| {
            registry.histogram(
                "serve_service_time_seconds",
                "Time a worker spent executing a request",
                &[("type", t)],
            )
        };
        ServeMetrics {
            queue_wait: [qw("fig8_point"), qw("campaign")],
            service_time: [st("fig8_point"), st("campaign")],
            cache_hits: registry.counter(
                "serve_result_cache_hits_total",
                "Requests answered from the bounded result cache",
                &[],
            ),
            coalesced: registry.counter(
                "serve_coalesced_total",
                "Requests coalesced onto an identical in-flight execution",
                &[],
            ),
            rejected: registry.counter(
                "serve_rejected_total",
                "Requests refused by admission control or shutdown",
                &[],
            ),
            completed: registry.counter(
                "serve_completed_total",
                "Executions finished by the worker pool",
                &[],
            ),
            hit_ratio: registry.gauge(
                "serve_result_cache_hit_ratio",
                "cache hits / submissions since start",
                &[],
            ),
            coalesce_ratio: registry.gauge(
                "serve_singleflight_coalesce_ratio",
                "coalesced submissions / submissions since start",
                &[],
            ),
            inflight: registry.gauge(
                "serve_inflight_jobs",
                "Distinct jobs queued or running",
                &[],
            ),
            queued: registry.gauge("serve_queued_jobs", "Jobs waiting for a worker", &[]),
            registry,
        }
    }

    /// Per-client RED counters, created on first use (label cardinality
    /// = client names seen).
    fn client_requests(&self, client: &str) -> Arc<obs::metrics::Counter> {
        self.registry.counter(
            "serve_requests_total",
            "Requests submitted, by client",
            &[("client", client)],
        )
    }

    fn client_errors(&self, client: &str) -> Arc<obs::metrics::Counter> {
        self.registry.counter(
            "serve_errors_total",
            "Requests refused or failed, by client",
            &[("client", client)],
        )
    }
}

struct Inner {
    sched: Mutex<Sched>,
    /// Workers wait here for queued jobs.
    work_ready: Condvar,
    /// Drain waits here for `inflight` to hit zero.
    drained: Condvar,
    store: TraceStore,
    cfg: EngineConfig,
    counters: Counters,
    metrics: ServeMetrics,
    shutting_down: AtomicBool,
}

/// The long-running serving engine. Dropping it stops the workers
/// (abandoning queued jobs with an error); call
/// [`Engine::begin_shutdown`] + [`Engine::drain`] first for a graceful
/// exit.
pub struct Engine {
    inner: Arc<Inner>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine").field("workers", &self.workers.len()).finish()
    }
}

impl Engine {
    /// Build the engine and spawn its worker pool.
    pub fn new(cfg: EngineConfig) -> Engine {
        let store = TraceStore::with_config(cfg.store.clone());
        let inner = Arc::new(Inner {
            sched: Mutex::new(Sched::default()),
            work_ready: Condvar::new(),
            drained: Condvar::new(),
            store,
            cfg: cfg.clone(),
            counters: Counters::default(),
            metrics: ServeMetrics::new(),
            shutting_down: AtomicBool::new(false),
        });
        let workers = (0..cfg.workers)
            .map(|w| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("serve-worker{w}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn serve worker")
            })
            .collect();
        Engine { inner, workers }
    }

    /// Submit one runnable request for `client`. Returns a [`Ticket`]
    /// immediately — resolved already for a cache hit, pending
    /// otherwise.
    pub fn submit(&self, client: &str, body: &RequestBody) -> Result<Ticket, SubmitError> {
        let m = &self.inner.metrics;
        if let Err(e) = validate(body) {
            m.client_errors(client).inc();
            return Err(e);
        }
        self.inner.counters.submitted.fetch_add(1, Ordering::Relaxed);
        m.client_requests(client).inc();
        if self.inner.shutting_down.load(Ordering::SeqCst) {
            self.inner.counters.rejected_shutdown.fetch_add(1, Ordering::Relaxed);
            m.rejected.inc();
            m.client_errors(client).inc();
            return Err(SubmitError::ShuttingDown);
        }
        let key = canonical_hash(body);
        let mut s = self.inner.sched.lock().expect("sched lock");
        // Result cache first: a hit is answered instantly, no queueing.
        if let Some(v) = s.results.get(&key).cloned() {
            s.lru.touch(key);
            self.inner.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
            m.cache_hits.inc();
            return Ok(Ticket { flight: Flight::completed(v), cached: true, coalesced: false });
        }
        // Single-flight: coalesce onto an identical in-flight job.
        if let Some(flight) = s.flights.get(&key).cloned() {
            self.inner.counters.coalesced.fetch_add(1, Ordering::Relaxed);
            m.coalesced.inc();
            return Ok(Ticket { flight, cached: true, coalesced: true });
        }
        // A genuinely new job: admission control applies.
        if s.inflight >= self.inner.cfg.max_inflight {
            self.inner.counters.rejected_full.fetch_add(1, Ordering::Relaxed);
            m.rejected.inc();
            m.client_errors(client).inc();
            return Err(SubmitError::QueueFull);
        }
        let flight = Flight::new();
        s.flights.insert(key, Arc::clone(&flight));
        s.inflight += 1;
        s.enqueue(
            client,
            Arc::new(Job {
                key,
                body: body.clone(),
                cost: cost_of(body),
                flight: Arc::clone(&flight),
                enqueued_at: Instant::now(),
            }),
        );
        drop(s);
        self.inner.work_ready.notify_one();
        Ok(Ticket { flight, cached: false, coalesced: false })
    }

    /// Stop accepting new submissions; queued and running work
    /// continues. Idempotent.
    pub fn begin_shutdown(&self) {
        self.inner.shutting_down.store(true, Ordering::SeqCst);
    }

    /// Wait up to `timeout` for every queued/running job to complete.
    /// Returns `true` when fully drained.
    pub fn drain(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut s = self.inner.sched.lock().expect("sched lock");
        loop {
            if s.inflight == 0 {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) =
                self.inner.drained.wait_timeout(s, deadline - now).expect("sched lock");
            s = guard;
        }
    }

    /// Engine + trace-store statistics as a deterministic-order JSON
    /// value — the payload of the `Stats` request.
    pub fn stats_value(&self) -> Value {
        let c = &self.inner.counters;
        let (inflight, queued, cache_entries) = {
            let s = self.inner.sched.lock().expect("sched lock");
            (s.inflight, s.queued(), s.results.len())
        };
        let f = self.inner.store.footprint();
        let rec = obs::summary();
        let entry = |k: &str, v: u64| (k.to_string(), Value::U64(v));
        Value::Map(vec![
            entry("submitted", c.submitted.load(Ordering::Relaxed)),
            entry("completed", c.completed.load(Ordering::Relaxed)),
            entry("cache_hits", c.cache_hits.load(Ordering::Relaxed)),
            entry("coalesced", c.coalesced.load(Ordering::Relaxed)),
            entry("rejected_queue_full", c.rejected_full.load(Ordering::Relaxed)),
            entry("rejected_shutting_down", c.rejected_shutdown.load(Ordering::Relaxed)),
            entry("inflight", inflight as u64),
            entry("queued", queued as u64),
            entry("workers", self.workers.len() as u64),
            entry("result_cache_entries", cache_entries as u64),
            entry("trace_store_entries", f.entries as u64),
            entry("trace_store_resident_bytes", f.resident_bytes as u64),
            entry("trace_store_peak_bytes", f.peak_bytes as u64),
            entry("sim_events_total", obs::sim_events_total()),
            entry("obs_events_recorded", rec.recorded),
            entry("obs_events_dropped", rec.dropped),
        ])
    }

    /// Completed-job count (for tests and the bench's final report).
    pub fn completed(&self) -> u64 {
        self.inner.counters.completed.load(Ordering::Relaxed)
    }

    /// The Prometheus text exposition of the engine's RED metrics — the
    /// payload of the `Metrics` request and `mio stats --prom`.
    /// Wall-clock based; unlike [`Engine::stats_value`] this output is
    /// not deterministic and never feeds a result payload.
    pub fn prometheus_text(&self) -> String {
        let m = &self.inner.metrics;
        let c = &self.inner.counters;
        let submitted = c.submitted.load(Ordering::Relaxed);
        let ratio = |n: u64| if submitted == 0 { 0.0 } else { n as f64 / submitted as f64 };
        m.hit_ratio.set(ratio(c.cache_hits.load(Ordering::Relaxed)));
        m.coalesce_ratio.set(ratio(c.coalesced.load(Ordering::Relaxed)));
        {
            let s = self.inner.sched.lock().expect("sched lock");
            m.inflight.set(s.inflight as f64);
            m.queued.set(s.queued() as f64);
        }
        m.registry.render_prometheus()
    }

    /// Mean observed service time for this request's type, in
    /// microseconds — the server's progress heartbeats turn it into an
    /// ETA. `None` until at least one execution of the type finished.
    pub fn expected_service_us(&self, body: &RequestBody) -> Option<u64> {
        let (ty, _) = req_type(body);
        let h = &self.inner.metrics.service_time[ty];
        let n = h.count();
        (n > 0).then(|| h.sum_us() / n)
    }

    /// Hard stop after a drain timeout: stop the workers picking up new
    /// jobs and resolve every still-queued ticket with an error so no
    /// waiter hangs. Running jobs still finish and publish normally.
    pub fn abort_pending(&self) {
        self.begin_shutdown();
        {
            let mut s = self.inner.sched.lock().expect("sched lock");
            s.stopped = true;
            let abandoned: Vec<Arc<Job>> =
                s.clients.iter_mut().flat_map(|c| c.queue.drain(..)).collect();
            for job in abandoned {
                s.flights.remove(&job.key);
                s.inflight = s.inflight.saturating_sub(1);
                job.flight.complete(Err("engine stopped before running the job".into()));
            }
        }
        self.inner.work_ready.notify_all();
        self.inner.drained.notify_all();
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.abort_pending();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let job = {
            let mut s = inner.sched.lock().expect("sched lock");
            loop {
                if s.stopped {
                    return;
                }
                if let Some(job) = s.next_job(DRR_QUANTUM) {
                    break job;
                }
                s = inner.work_ready.wait(s).expect("sched lock");
            }
        };
        let (ty, _) = req_type(&job.body);
        let queue_wait = job.enqueued_at.elapsed();
        inner.metrics.queue_wait[ty].record_us(queue_wait.as_micros() as u64);
        let started = Instant::now();
        let value = Arc::new(execute(&inner.store, &job.body));
        let service = started.elapsed();
        inner.metrics.service_time[ty].record_us(service.as_micros() as u64);
        {
            let mut s = inner.sched.lock().expect("sched lock");
            s.flights.remove(&job.key);
            s.cache_insert(job.key, Arc::clone(&value), inner.cfg.result_cache);
            s.inflight -= 1;
        }
        inner.counters.completed.fetch_add(1, Ordering::Relaxed);
        inner.metrics.completed.inc();
        inner.drained.notify_all();
        *job.flight.timing.lock().expect("flight lock") =
            Some(FlightTiming { queue_wait, service });
        job.flight.complete(Ok(value));
    }
}

/// DRR cost: the rough simulated size of a request, in figure-point
/// units.
fn cost_of(body: &RequestBody) -> u64 {
    match body {
        RequestBody::Fig8Point(_) => 1,
        RequestBody::Campaign(c) => ((c.groups * c.procs) as u64 / 64).max(1),
        RequestBody::Stats | RequestBody::Metrics | RequestBody::Shutdown => 1,
    }
}

fn validate(body: &RequestBody) -> Result<(), SubmitError> {
    let bad = |msg: &str| Err(SubmitError::Invalid(msg.into()));
    match body {
        RequestBody::Fig8Point(s) => {
            if s.cache_mb == 0 || s.block == 0 {
                return bad("fig8 point sizes must be positive");
            }
            if s.scale == 0 {
                return bad("scale must be >= 1");
            }
            Ok(())
        }
        RequestBody::Campaign(c) => {
            if c.groups == 0 || c.procs == 0 {
                return bad("campaign counts must be positive");
            }
            if c.scale == 0 {
                return bad("scale must be >= 1");
            }
            Ok(())
        }
        RequestBody::Stats | RequestBody::Metrics | RequestBody::Shutdown => {
            bad("stats/metrics/shutdown are control requests, not pool work")
        }
    }
}

/// Run one request body to its report, serialized to the data model.
/// This is the same code path the one-shot binaries use, against the
/// engine's warm store — which is exactly why responses are
/// byte-identical to one-shot runs.
pub fn execute(store: &TraceStore, body: &RequestBody) -> Value {
    match body {
        RequestBody::Fig8Point(s) => two_venus_report_in(
            store,
            s.cache_mb * MB,
            s.block,
            true,
            WritePolicy::WriteBehind,
            Scale(s.scale),
            s.seed,
        )
        .to_value(),
        RequestBody::Campaign(c) => {
            let mut spec = CampaignSpec::datacenter(c.groups, c.procs);
            spec.scale = Scale(c.scale);
            spec.seed = c.seed;
            run_campaign_in(store, &spec, c.shards.max(1)).to_value()
        }
        RequestBody::Stats | RequestBody::Metrics | RequestBody::Shutdown => {
            unreachable!("control requests never reach the pool")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{CampaignPointSpec, Fig8PointSpec};

    fn point(cache_mb: u64) -> RequestBody {
        RequestBody::Fig8Point(Fig8PointSpec { cache_mb, block: 4096, scale: 64, seed: 42 })
    }

    fn quick_engine(workers: usize, max_inflight: usize) -> Engine {
        Engine::new(EngineConfig {
            workers,
            max_inflight,
            result_cache: 8,
            store: StoreConfig::default(),
        })
    }

    #[test]
    fn duplicate_requests_hit_the_cache() {
        let engine = quick_engine(2, 16);
        let first = engine.submit("a", &point(8)).expect("admitted");
        assert!(!first.cached);
        let v1 = first.wait().expect("completes");
        let second = engine.submit("b", &point(8)).expect("admitted");
        assert!(second.cached, "repeat of a completed key is a cache hit");
        let v2 = second.wait().expect("instant");
        assert!(Arc::ptr_eq(&v1, &v2), "cache returns the same shared value");
        assert_eq!(engine.completed(), 1, "one execution served both");
    }

    #[test]
    fn concurrent_duplicates_coalesce_to_one_execution() {
        let engine = quick_engine(0, 16); // no workers: jobs stay queued
        let a = engine.submit("a", &point(16)).expect("admitted");
        let b = engine.submit("b", &point(16)).expect("admitted");
        assert!(!a.cached);
        assert!(b.cached, "identical in-flight request coalesces");
        let s = engine.inner.sched.lock().expect("lock");
        assert_eq!(s.inflight, 1, "one job despite two submissions");
        assert_eq!(s.queued(), 1);
    }

    #[test]
    fn admission_control_bounces_overload() {
        let engine = quick_engine(0, 2);
        engine.submit("a", &point(4)).expect("admitted");
        engine.submit("a", &point(8)).expect("admitted");
        let err = engine.submit("a", &point(16)).expect_err("full");
        assert_eq!(err, SubmitError::QueueFull);
        // Duplicates of admitted work still coalesce while full.
        assert!(engine.submit("b", &point(4)).expect("coalesced").cached);
        let s = engine.inner.sched.lock().expect("lock");
        assert_eq!(s.inflight, 2, "the queue never grew past max_inflight");
    }

    #[test]
    fn shutdown_refuses_new_work_and_drains() {
        let engine = quick_engine(1, 16);
        let t = engine.submit("a", &point(32)).expect("admitted");
        engine.begin_shutdown();
        let err = engine.submit("a", &point(64)).expect_err("refused");
        assert_eq!(err, SubmitError::ShuttingDown);
        assert!(engine.drain(Duration::from_secs(60)), "in-flight work drains");
        t.wait().expect("the admitted job completed");
    }

    #[test]
    fn drr_serves_cheap_clients_past_an_expensive_flood() {
        let engine = quick_engine(0, 64);
        // Client a floods with campaign-sized jobs (cost 64*16/64 = 16,
        // more than one quantum); client b sends one cheap point after.
        for seed in [1u64, 2] {
            let mut c = CampaignPointSpec::datacenter(64, 16, 1);
            c.seed = seed;
            engine.submit("a", &RequestBody::Campaign(c)).expect("admitted");
        }
        let b_body = point(64);
        engine.submit("b", &b_body).expect("admitted");
        let mut s = engine.inner.sched.lock().expect("lock");
        let first = s.next_job(DRR_QUANTUM).expect("work queued");
        // b's single cheap request accumulates credit faster than a's
        // expensive head-of-line job, so it is served first even though
        // it was submitted last — no starvation behind the flood.
        assert_eq!(first.key, canonical_hash(&b_body), "cheap client served first");
    }

    #[test]
    fn invalid_bodies_are_rejected_up_front() {
        let engine = quick_engine(0, 4);
        let zero = RequestBody::Fig8Point(Fig8PointSpec { cache_mb: 0, block: 4096, scale: 8, seed: 1 });
        assert!(matches!(engine.submit("a", &zero), Err(SubmitError::Invalid(_))));
        let zero_campaign = RequestBody::Campaign(CampaignPointSpec::datacenter(0, 4, 1));
        assert!(matches!(engine.submit("a", &zero_campaign), Err(SubmitError::Invalid(_))));
        assert!(matches!(engine.submit("a", &RequestBody::Stats), Err(SubmitError::Invalid(_))));
    }

    #[test]
    fn prometheus_exposition_round_trips_for_a_known_sequence() {
        use obs::metrics::parse_exposition;
        let engine = quick_engine(2, 16);
        // Known sequence: two distinct fig8 points computed, one repeat
        // (cache hit), one refused as invalid.
        engine.submit("alice", &point(8)).expect("admitted").wait().expect("runs");
        engine.submit("bob", &point(16)).expect("admitted").wait().expect("runs");
        let hit = engine.submit("alice", &point(8)).expect("cache hit");
        assert!(hit.cached && !hit.coalesced);
        assert!(hit.timing().is_none(), "a cache hit ran nothing");
        let zero = RequestBody::Fig8Point(Fig8PointSpec { cache_mb: 0, block: 4096, scale: 8, seed: 1 });
        assert!(engine.submit("bob", &zero).is_err());

        let text = engine.prometheus_text();
        let samples = parse_exposition(&text).expect("valid Prometheus text");
        let get = |name: &str, label: Option<(&str, &str)>| -> f64 {
            samples
                .iter()
                .find(|s| {
                    s.name == name
                        && label
                            .map(|(k, v)| s.labels.iter().any(|(lk, lv)| lk == k && lv == v))
                            .unwrap_or(true)
                })
                .unwrap_or_else(|| panic!("sample {name} {label:?} in:\n{text}"))
                .value
        };
        assert_eq!(get("serve_requests_total", Some(("client", "alice"))), 2.0);
        assert_eq!(get("serve_requests_total", Some(("client", "bob"))), 1.0);
        assert_eq!(get("serve_errors_total", Some(("client", "bob"))), 1.0);
        assert_eq!(get("serve_result_cache_hits_total", None), 1.0);
        assert_eq!(get("serve_completed_total", None), 2.0);
        assert_eq!(get("serve_inflight_jobs", None), 0.0);
        assert!((get("serve_result_cache_hit_ratio", None) - 1.0 / 3.0).abs() < 1e-9);

        // Histograms: two executions recorded per type bucket family,
        // cumulative buckets end at +Inf == _count, and the quantile
        // gauges exist in seconds.
        for family in ["serve_queue_wait_seconds", "serve_service_time_seconds"] {
            let count = get(&format!("{family}_count"), Some(("type", "fig8_point")));
            assert_eq!(count, 2.0, "{family} counted both executions");
            let inf = samples
                .iter()
                .find(|s| {
                    s.name == format!("{family}_bucket")
                        && s.labels.iter().any(|(k, v)| k == "le" && v == "+Inf")
                        && s.labels.iter().any(|(k, v)| k == "type" && v == "fig8_point")
                })
                .expect("+Inf bucket");
            assert_eq!(inf.value, count, "+Inf bucket equals _count");
            let buckets: Vec<f64> = samples
                .iter()
                .filter(|s| {
                    s.name == format!("{family}_bucket")
                        && s.labels.iter().any(|(k, v)| k == "type" && v == "fig8_point")
                })
                .map(|s| s.value)
                .collect();
            assert!(buckets.windows(2).all(|w| w[1] >= w[0]), "cumulative: {buckets:?}");
            assert!(get(&format!("{family}_p99"), Some(("type", "fig8_point"))) >= 0.0);
        }
        // The campaign family exists but is empty so far.
        assert_eq!(get("serve_service_time_seconds_count", Some(("type", "campaign"))), 0.0);
        assert!(engine.expected_service_us(&point(8)).expect("history") > 0);
        assert!(engine
            .expected_service_us(&RequestBody::Campaign(CampaignPointSpec::datacenter(4, 4, 1)))
            .is_none());
    }

    #[test]
    fn coalesced_tickets_share_the_flight_timing() {
        let engine = quick_engine(0, 16); // no workers yet: stays queued
        let a = engine.submit("a", &point(12)).expect("admitted");
        let b = engine.submit("b", &point(12)).expect("coalesced");
        assert!(b.coalesced && b.cached && !a.coalesced);
        assert!(a.timing().is_none(), "not run yet");
        drop(engine);
        assert!(a.wait().is_err());
        assert!(b.timing().is_none(), "abandoned jobs never ran");
    }

    #[test]
    fn dropping_the_engine_resolves_abandoned_tickets() {
        let engine = quick_engine(0, 16);
        let t = engine.submit("a", &point(128)).expect("admitted");
        drop(engine);
        assert!(t.wait().is_err(), "abandoned job resolves to an error, not a hang");
    }
}
