//! The `mio serve` daemon: JSON lines over a Unix or TCP socket, backed
//! by the [`Engine`], plus the matching `mio submit` client helper.
//!
//! Each connection may pipeline requests; every request is answered by
//! an `accepted` line, `progress` heartbeats while it waits or runs,
//! and one terminal `done`/`error` line (correlated by `id`).
//!
//! Shutdown is graceful: SIGINT, SIGTERM, or a [`RequestBody::Shutdown`]
//! request stops the accept loop, refuses new submissions with a clean
//! JSON error, drains in-flight work bounded by `--drain-timeout`, and
//! only then exits (the `mio` binary flushes the flight recorder after
//! [`serve`] returns).

use crate::engine::{Engine, EngineConfig, Ticket};
use crate::protocol::{Request, RequestBody, Response};
use serde::Value;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Where the daemon listens (and the client connects).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A Unix-domain socket path (`--socket PATH`).
    Unix(PathBuf),
    /// A TCP listen/connect address like `127.0.0.1:7070` (`--tcp ADDR`).
    Tcp(String),
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Unix(p) => write!(f, "unix:{}", p.display()),
            Endpoint::Tcp(a) => write!(f, "tcp:{a}"),
        }
    }
}

/// `mio serve` configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    pub endpoint: Endpoint,
    pub engine: EngineConfig,
    /// How long shutdown waits for in-flight requests before abandoning
    /// the queue.
    pub drain_timeout: Duration,
}

/// Heartbeat cadence for queued/running requests.
const PROGRESS_INTERVAL: Duration = Duration::from_millis(500);
/// Poll granularity of the accept loop and idle connection reads.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Process-wide shutdown latch, set by SIGINT/SIGTERM or a `Shutdown`
/// request.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Ask the running server (in this process) to shut down gracefully.
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

fn shutting_down() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

#[cfg(unix)]
mod sig {
    extern "C" fn on_signal(_signum: i32) {
        // Only async-signal-safe work here: flip the latch, nothing else.
        super::SHUTDOWN.store(true, std::sync::atomic::Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod sig {
    pub fn install() {}
}

enum Listener {
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixListener),
    Tcp(TcpListener),
}

/// A split accepted connection: an owned reader plus a shareable writer.
struct Conn {
    reader: Box<dyn Read + Send>,
    writer: Box<dyn Write + Send>,
}

impl Listener {
    fn bind(endpoint: &Endpoint) -> Result<Listener, String> {
        match endpoint {
            Endpoint::Unix(path) => {
                #[cfg(unix)]
                {
                    // A stale socket file from a killed daemon blocks
                    // bind; remove it (connect() would have failed for
                    // a live one anyway — single-daemon-per-path).
                    let _ = std::fs::remove_file(path);
                    let l = std::os::unix::net::UnixListener::bind(path)
                        .map_err(|e| format!("bind {}: {e}", path.display()))?;
                    l.set_nonblocking(true).map_err(|e| format!("nonblocking: {e}"))?;
                    Ok(Listener::Unix(l))
                }
                #[cfg(not(unix))]
                {
                    Err(format!("unix sockets unsupported here: {}", path.display()))
                }
            }
            Endpoint::Tcp(addr) => {
                let l = TcpListener::bind(addr.as_str()).map_err(|e| format!("bind {addr}: {e}"))?;
                l.set_nonblocking(true).map_err(|e| format!("nonblocking: {e}"))?;
                Ok(Listener::Tcp(l))
            }
        }
    }

    /// Nonblocking accept; `None` when no connection is pending.
    fn try_accept(&self) -> Result<Option<Conn>, String> {
        fn pending(e: &std::io::Error) -> bool {
            e.kind() == std::io::ErrorKind::WouldBlock
        }
        match self {
            #[cfg(unix)]
            Listener::Unix(l) => match l.accept() {
                Ok((s, _)) => {
                    s.set_nonblocking(false).map_err(|e| e.to_string())?;
                    s.set_read_timeout(Some(POLL_INTERVAL)).map_err(|e| e.to_string())?;
                    let w = s.try_clone().map_err(|e| e.to_string())?;
                    Ok(Some(Conn { reader: Box::new(s), writer: Box::new(w) }))
                }
                Err(e) if pending(&e) => Ok(None),
                Err(e) => Err(format!("accept: {e}")),
            },
            Listener::Tcp(l) => match l.accept() {
                Ok((s, _)) => {
                    s.set_nonblocking(false).map_err(|e| e.to_string())?;
                    s.set_read_timeout(Some(POLL_INTERVAL)).map_err(|e| e.to_string())?;
                    let w = s.try_clone().map_err(|e| e.to_string())?;
                    Ok(Some(Conn { reader: Box::new(s), writer: Box::new(w) }))
                }
                Err(e) if pending(&e) => Ok(None),
                Err(e) => Err(format!("accept: {e}")),
            },
        }
    }
}

type SharedWriter = Arc<Mutex<Box<dyn Write + Send>>>;

/// Serialize one response as a single JSON line under the writer lock,
/// so concurrent request threads never interleave bytes.
fn write_response(w: &SharedWriter, resp: &Response) {
    let mut line = serde_json::to_string(resp).unwrap_or_else(|e| {
        serde_json::to_string(&Response::error(resp.id, format!("serialize: {e}")))
            .expect("error response serializes")
    });
    line.push('\n');
    let mut g = w.lock().expect("writer lock");
    // A vanished client is not a server error; drop the line.
    let _ = g.write_all(line.as_bytes());
    let _ = g.flush();
}

/// Run the daemon until a shutdown signal/request arrives, then drain
/// and return. This is `mio serve`.
pub fn serve(opts: &ServeOptions) -> Result<(), String> {
    sig::install();
    SHUTDOWN.store(false, Ordering::SeqCst);
    let engine = Arc::new(Engine::new(opts.engine.clone()));
    let listener = Listener::bind(&opts.endpoint)?;
    eprintln!(
        "mio serve: listening on {} ({} workers, max inflight {})",
        opts.endpoint, opts.engine.workers, opts.engine.max_inflight
    );

    let conn_seq = AtomicU64::new(0);
    let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !shutting_down() {
        match listener.try_accept()? {
            Some(conn) => {
                let engine = Arc::clone(&engine);
                let name = format!("conn{}", conn_seq.fetch_add(1, Ordering::Relaxed));
                conns.push(
                    std::thread::Builder::new()
                        .name(format!("serve-{name}"))
                        .spawn(move || handle_connection(conn, &engine, &name))
                        .map_err(|e| format!("spawn connection thread: {e}"))?,
                );
            }
            None => std::thread::sleep(POLL_INTERVAL),
        }
    }

    // Graceful drain: refuse new work, let queued/running jobs finish
    // (bounded), then resolve anything left so no client waits forever.
    eprintln!("mio serve: shutting down, draining in-flight requests");
    engine.begin_shutdown();
    if !engine.drain(opts.drain_timeout) {
        eprintln!(
            "mio serve: drain timeout ({:?}) exceeded, abandoning queued requests",
            opts.drain_timeout
        );
        engine.abort_pending();
    }
    for h in conns {
        let _ = h.join();
    }
    if let Endpoint::Unix(path) = &opts.endpoint {
        let _ = std::fs::remove_file(path);
    }
    eprintln!("mio serve: done ({} requests completed)", engine.completed());
    Ok(())
}

/// Read request lines until EOF or shutdown; each runnable request gets
/// its own waiter thread so responses pipeline.
fn handle_connection(conn: Conn, engine: &Arc<Engine>, default_client: &str) {
    let writer: SharedWriter = Arc::new(Mutex::new(conn.writer));
    let mut reader = BufReader::new(conn.reader);
    let mut waiters: Vec<std::thread::JoinHandle<()>> = Vec::new();
    let mut line = String::new();
    loop {
        // The read timeout doubles as the shutdown poll: a partial line
        // survives in `line` across timeouts and completes on the next
        // successful read.
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                let text = std::mem::take(&mut line);
                let text = text.trim();
                if text.is_empty() {
                    continue;
                }
                match serde_json::from_str::<Request>(text) {
                    Ok(req) => handle_request(req, engine, &writer, default_client, &mut waiters),
                    Err(e) => write_response(&writer, &Response::error(0, format!("parse: {e}"))),
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shutting_down() {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    for h in waiters {
        let _ = h.join();
    }
}

fn handle_request(
    req: Request,
    engine: &Arc<Engine>,
    writer: &SharedWriter,
    default_client: &str,
    waiters: &mut Vec<std::thread::JoinHandle<()>>,
) {
    let id = req.id;
    match &req.body {
        RequestBody::Stats => {
            write_response(writer, &Response::done(id, engine.stats_value(), false));
        }
        RequestBody::Metrics => {
            write_response(writer, &Response::done(id, Value::Str(engine.prometheus_text()), false));
        }
        RequestBody::Shutdown => {
            write_response(writer, &Response::done(id, Value::Null, false));
            request_shutdown();
        }
        _ => {
            let client = match req.client.as_deref() {
                Some(name) if !name.is_empty() => name.to_string(),
                _ => default_client.to_string(),
            };
            match engine.submit(&client, &req.body) {
                Ok(ticket) => {
                    write_response(writer, &Response::accepted(id));
                    let expected_us = engine.expected_service_us(&req.body);
                    let writer = Arc::clone(writer);
                    waiters.push(
                        std::thread::Builder::new()
                            .name(format!("serve-wait{id}"))
                            .spawn(move || {
                                stream_result(id, &client, &ticket, expected_us, &writer)
                            })
                            .expect("spawn waiter thread"),
                    );
                }
                Err(e) => {
                    eprintln!(
                        "serve: request id={id} client={client} disposition=rejected \
                         error=\"{e}\""
                    );
                    write_response(writer, &Response::error(id, e.to_string()));
                }
            }
        }
    }
}

/// Emit progress heartbeats until the ticket resolves, then the
/// terminal line plus one structured key=value completion log line.
fn stream_result(
    id: u64,
    client: &str,
    ticket: &Ticket,
    expected_us: Option<u64>,
    writer: &SharedWriter,
) {
    let accepted = std::time::Instant::now();
    let ev0 = obs::sim_events_total();
    loop {
        match ticket.wait_timeout(PROGRESS_INTERVAL) {
            Some(Ok(value)) => {
                write_response(writer, &Response::done(id, value.as_ref().clone(), ticket.cached));
                log_completion(id, client, ticket, accepted.elapsed(), "done");
                return;
            }
            Some(Err(e)) => {
                write_response(writer, &Response::error(id, e));
                log_completion(id, client, ticket, accepted.elapsed(), "error");
                return;
            }
            None => {
                let elapsed = accepted.elapsed();
                let rate =
                    obs::sim_events_total().saturating_sub(ev0) as f64 / elapsed.as_secs_f64();
                // ETA from the mean service time of this request type;
                // None until the engine has history for it.
                let eta = expected_us
                    .map(|us| Duration::from_micros(us).saturating_sub(elapsed).as_secs());
                write_response(writer, &Response::progress(id, rate, eta));
            }
        }
    }
}

/// One key=value line per completed request: correlation id, client,
/// how the result was obtained, and where its time went. Queue/service
/// durations come from the execution that produced the result, so a
/// coalesced ticket reports the shared flight's numbers; a cache hit
/// (no execution) reports none.
fn log_completion(id: u64, client: &str, ticket: &Ticket, total: Duration, outcome: &str) {
    let disposition = match (ticket.cached, ticket.coalesced) {
        (true, true) => "coalesced",
        (true, false) => "cache_hit",
        _ => "computed",
    };
    match ticket.timing() {
        Some(t) => eprintln!(
            "serve: request id={id} client={client} disposition={disposition} \
             outcome={outcome} queue_wait_us={} service_us={} total_us={}",
            t.queue_wait.as_micros(),
            t.service.as_micros(),
            total.as_micros(),
        ),
        None => eprintln!(
            "serve: request id={id} client={client} disposition={disposition} \
             outcome={outcome} total_us={}",
            total.as_micros(),
        ),
    }
}

/// `mio submit`: send one request, return its terminal response. Waits
/// through `progress` heartbeats (echoed to stderr when `--progress` is
/// on) and ignores responses for other ids.
pub fn submit_once(endpoint: &Endpoint, req: &Request) -> Result<Response, String> {
    let (reader, mut writer): (Box<dyn Read>, Box<dyn Write>) = match endpoint {
        Endpoint::Unix(path) => {
            #[cfg(unix)]
            {
                let s = std::os::unix::net::UnixStream::connect(path)
                    .map_err(|e| format!("connect {}: {e}", path.display()))?;
                let w = s.try_clone().map_err(|e| e.to_string())?;
                (Box::new(s), Box::new(w))
            }
            #[cfg(not(unix))]
            {
                return Err(format!("unix sockets unsupported here: {}", path.display()));
            }
        }
        Endpoint::Tcp(addr) => {
            let s = TcpStream::connect(addr.as_str()).map_err(|e| format!("connect {addr}: {e}"))?;
            let w = s.try_clone().map_err(|e| e.to_string())?;
            (Box::new(s), Box::new(w))
        }
    };
    let mut line = serde_json::to_string(req).map_err(|e| format!("serialize request: {e}"))?;
    line.push('\n');
    writer.write_all(line.as_bytes()).map_err(|e| format!("send: {e}"))?;
    writer.flush().map_err(|e| format!("send: {e}"))?;

    let mut reader = BufReader::new(reader);
    let mut buf = String::new();
    loop {
        buf.clear();
        let n = reader.read_line(&mut buf).map_err(|e| format!("read response: {e}"))?;
        if n == 0 {
            return Err("server closed the connection before answering".into());
        }
        let text = buf.trim();
        if text.is_empty() {
            continue;
        }
        let resp: Response =
            serde_json::from_str(text).map_err(|e| format!("parse response: {e}"))?;
        if resp.id != req.id {
            continue;
        }
        match resp.event.as_str() {
            "accepted" => {}
            "progress" => {
                // Same shape as the sweep heartbeat:
                // `[sweep] 3/9 points | 1.24M ev/s | ETA 4s`.
                if experiments::progress_enabled() {
                    let rate = resp.rate.unwrap_or(0.0);
                    let eta = match resp.eta_secs {
                        Some(s) => format!("{s}s"),
                        None => "?".into(),
                    };
                    eprintln!(
                        "[submit] request {} | {:.2}M ev/s | ETA {eta}",
                        req.id,
                        rate / 1e6
                    );
                }
            }
            _ => return Ok(resp),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Fig8PointSpec;
    use experiments::StoreConfig;

    fn loopback_options() -> ServeOptions {
        ServeOptions {
            // Port 0: the OS picks a free port — but we need to know it,
            // so tests bind a throwaway listener first to reserve one.
            endpoint: Endpoint::Tcp("127.0.0.1:0".into()),
            engine: EngineConfig {
                workers: 2,
                max_inflight: 8,
                result_cache: 8,
                store: StoreConfig::default(),
            },
            drain_timeout: Duration::from_secs(30),
        }
    }

    fn free_port() -> u16 {
        TcpListener::bind("127.0.0.1:0").expect("bind").local_addr().expect("addr").port()
    }

    #[test]
    fn serve_answers_and_shuts_down_over_tcp() {
        let mut opts = loopback_options();
        let addr = format!("127.0.0.1:{}", free_port());
        opts.endpoint = Endpoint::Tcp(addr.clone());
        let server_opts = opts.clone();
        let server = std::thread::spawn(move || serve(&server_opts));

        // Wait for the listener to come up.
        let endpoint = Endpoint::Tcp(addr);
        let body = RequestBody::Fig8Point(Fig8PointSpec {
            cache_mb: 8,
            block: 4096,
            scale: 64,
            seed: 42,
        });
        let mut resp = None;
        for _ in 0..200 {
            match submit_once(&endpoint, &Request { id: 1, client: None, body: body.clone() }) {
                Ok(r) => {
                    resp = Some(r);
                    break;
                }
                Err(_) => std::thread::sleep(Duration::from_millis(25)),
            }
        }
        let resp = resp.expect("server answered");
        assert_eq!(resp.event, "done");
        assert_eq!(resp.cached, Some(false));
        let report = resp.result.expect("report payload");
        // Same point again: served from the result cache, byte-identical.
        let again = submit_once(&endpoint, &Request { id: 2, client: None, body: body.clone() })
            .expect("second request");
        assert_eq!(again.cached, Some(true));
        assert_eq!(
            serde_json::to_string_pretty(&report).expect("print"),
            serde_json::to_string_pretty(&again.result.expect("payload")).expect("print"),
        );

        // Stats request reports the hit.
        let stats = submit_once(&endpoint, &Request { id: 3, client: None, body: RequestBody::Stats })
            .expect("stats");
        let stats = stats.result.expect("stats payload");
        assert_eq!(stats.get("cache_hits"), Some(&Value::U64(1)));

        // Graceful shutdown over the wire.
        let bye = submit_once(&endpoint, &Request { id: 4, client: None, body: RequestBody::Shutdown })
            .expect("shutdown ack");
        assert_eq!(bye.event, "done");
        server.join().expect("server thread").expect("clean exit");
    }
}
