//! Stable canonical hashing for request deduplication.
//!
//! The result cache and single-flight registry key on *semantic*
//! equality of a request, not on its wire bytes: two clients writing the
//! same config with fields in a different order (JSON objects are
//! unordered) must land on the same cache entry. The canonical form is
//! the serde [`Value`] tree with every map's entries sorted by key,
//! recursively; the hash is 64-bit FNV-1a over a type-tagged walk of
//! that tree.
//!
//! FNV-1a is used deliberately: it is stable across processes, runs, and
//! platforms (unlike `std::hash`'s randomly-seeded SipHash), which is
//! what lets a daemon's cache keys mean the same thing on every restart
//! and in every test.

use serde::{Serialize, Value};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1000_0000_01b3;

/// Incremental FNV-1a over byte chunks.
#[derive(Debug, Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(FNV_OFFSET)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    fn write_u64(&mut self, n: u64) {
        self.write(&n.to_le_bytes());
    }
}

/// Rebuild `v` with every map's entries sorted by key, recursively.
/// Sequences keep their order — element order in an array is semantic
/// (a sweep's point list is not a set).
pub fn canonicalize(v: &Value) -> Value {
    match v {
        Value::Seq(items) => Value::Seq(items.iter().map(canonicalize).collect()),
        Value::Map(entries) => {
            let mut sorted: Vec<(String, Value)> =
                entries.iter().map(|(k, item)| (k.clone(), canonicalize(item))).collect();
            sorted.sort_by(|a, b| a.0.cmp(&b.0));
            Value::Map(sorted)
        }
        other => other.clone(),
    }
}

fn hash_value(v: &Value, h: &mut Fnv) {
    // Each arm starts with a distinct tag byte so e.g. the string "1"
    // and the integer 1 can never collide structurally.
    match v {
        Value::Null => h.write(&[0]),
        Value::Bool(b) => h.write(&[1, *b as u8]),
        // U64 and I64 share a tag for non-negative values: the serde
        // stand-in serializes a non-negative i64 as Value::U64 already,
        // but a parse round-trip can land either way, and 7 is 7.
        Value::U64(n) => {
            h.write(&[2]);
            h.write_u64(*n);
        }
        Value::I64(n) => {
            if *n >= 0 {
                h.write(&[2]);
                h.write_u64(*n as u64);
            } else {
                h.write(&[3]);
                h.write_u64(*n as u64);
            }
        }
        Value::F64(x) => {
            h.write(&[4]);
            // Canonicalize the one equal-but-differently-encoded float:
            // -0.0 hashes as 0.0. NaNs keep their payload bits — a NaN
            // config is never equal to anything, including itself, so
            // any stable encoding is fine.
            let bits = if *x == 0.0 { 0f64.to_bits() } else { x.to_bits() };
            h.write_u64(bits);
        }
        Value::Str(s) => {
            h.write(&[5]);
            h.write_u64(s.len() as u64);
            h.write(s.as_bytes());
        }
        Value::Seq(items) => {
            h.write(&[6]);
            h.write_u64(items.len() as u64);
            for item in items {
                hash_value(item, h);
            }
        }
        Value::Map(entries) => {
            h.write(&[7]);
            h.write_u64(entries.len() as u64);
            for (k, item) in entries {
                h.write_u64(k.len() as u64);
                h.write(k.as_bytes());
                hash_value(item, h);
            }
        }
    }
}

/// The canonical 64-bit key of any serializable value: serialize to the
/// data model, sort every map, FNV-1a the type-tagged tree. Two values
/// that serialize to semantically equal trees — regardless of field
/// order — hash equal; any single field change hashes differently (up
/// to 64-bit collision odds).
pub fn canonical_hash<T: Serialize + ?Sized>(value: &T) -> u64 {
    canonical_value_hash(&value.to_value())
}

/// [`canonical_hash`] for an already-built [`Value`] tree.
pub fn canonical_value_hash(v: &Value) -> u64 {
    let mut h = Fnv::new();
    hash_value(&canonicalize(v), &mut h);
    h.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_key_order_does_not_matter() {
        let a = Value::Map(vec![
            ("x".into(), Value::U64(1)),
            ("y".into(), Value::Map(vec![
                ("p".into(), Value::Bool(true)),
                ("q".into(), Value::Str("s".into())),
            ])),
        ]);
        let b = Value::Map(vec![
            ("y".into(), Value::Map(vec![
                ("q".into(), Value::Str("s".into())),
                ("p".into(), Value::Bool(true)),
            ])),
            ("x".into(), Value::U64(1)),
        ]);
        assert_eq!(canonical_value_hash(&a), canonical_value_hash(&b));
    }

    #[test]
    fn sequence_order_does_matter() {
        let a = Value::Seq(vec![Value::U64(1), Value::U64(2)]);
        let b = Value::Seq(vec![Value::U64(2), Value::U64(1)]);
        assert_ne!(canonical_value_hash(&a), canonical_value_hash(&b));
    }

    #[test]
    fn nonnegative_i64_and_u64_are_the_same_number() {
        assert_eq!(
            canonical_value_hash(&Value::I64(7)),
            canonical_value_hash(&Value::U64(7))
        );
        assert_ne!(
            canonical_value_hash(&Value::I64(-7)),
            canonical_value_hash(&Value::U64(7))
        );
    }

    #[test]
    fn scalar_types_do_not_collide() {
        let values = [
            Value::Null,
            Value::Bool(false),
            Value::U64(0),
            Value::F64(0.0),
            Value::Str(String::new()),
            Value::Seq(vec![]),
            Value::Map(vec![]),
            Value::Str("0".into()),
        ];
        for (i, a) in values.iter().enumerate() {
            for b in &values[i + 1..] {
                assert_ne!(
                    canonical_value_hash(a),
                    canonical_value_hash(b),
                    "{a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn negative_zero_hashes_like_zero() {
        assert_eq!(
            canonical_value_hash(&Value::F64(0.0)),
            canonical_value_hash(&Value::F64(-0.0))
        );
    }

    /// Reverse every map's entry order, recursively — a semantically
    /// equal tree with maximally different wire order.
    fn reverse_maps(v: &Value) -> Value {
        match v {
            Value::Seq(items) => Value::Seq(items.iter().map(reverse_maps).collect()),
            Value::Map(entries) => Value::Map(
                entries.iter().rev().map(|(k, item)| (k.clone(), reverse_maps(item))).collect(),
            ),
            other => other.clone(),
        }
    }

    #[test]
    fn sim_config_hashes_by_semantics_not_field_order() {
        let base = iosim::SimConfig::buffered(32 * sim_core::units::MB);
        let h0 = canonical_hash(&base);
        assert_eq!(h0, canonical_hash(&base.clone()), "equal configs hash equal");
        assert_eq!(
            h0,
            canonical_value_hash(&reverse_maps(&base.to_value())),
            "field order is not semantic"
        );
        // Any single field change re-keys the config.
        let mut n_disks = base.clone();
        n_disks.n_disks += 1;
        let mut cpus = base.clone();
        cpus.n_cpus += 1;
        let mut speedup = base.clone();
        speedup.cpu_speedup *= 2;
        let mut flush = base.clone();
        flush.flush_batch = !flush.flush_batch;
        let mut block = base.clone();
        block.cache.as_mut().expect("buffered").block_size *= 2;
        for (what, changed) in [
            ("n_disks", &n_disks),
            ("n_cpus", &cpus),
            ("cpu_speedup", &speedup),
            ("flush_batch", &flush),
            ("cache.block_size", &block),
        ] {
            assert_ne!(h0, canonical_hash(changed), "{what} change must re-key");
        }
    }

    #[test]
    fn campaign_spec_hashes_by_semantics_not_field_order() {
        let base = experiments::CampaignSpec::datacenter(24, 16);
        let h0 = canonical_hash(&base);
        assert_eq!(h0, canonical_hash(&base.clone()), "equal specs hash equal");
        assert_eq!(
            h0,
            canonical_value_hash(&reverse_maps(&base.to_value())),
            "field order is not semantic"
        );
        // One variant per field: every field must reach the key.
        let variants: Vec<(&str, experiments::CampaignSpec)> = vec![
            ("groups", { let mut s = base.clone(); s.groups += 1; s }),
            ("procs_per_group", { let mut s = base.clone(); s.procs_per_group += 1; s }),
            ("disks_per_group", { let mut s = base.clone(); s.disks_per_group += 1; s }),
            ("cache_budget", { let mut s = base.clone(); s.cache_budget *= 2; s }),
            ("epoch", { let mut s = base.clone(); s.epoch = s.epoch * 2; s }),
            ("max_active", { let mut s = base.clone(); s.max_active = None; s }),
            ("shared_file_every", { let mut s = base.clone(); s.shared_file_every += 1; s }),
            ("reads_per_shared", { let mut s = base.clone(); s.reads_per_shared += 1; s }),
            ("scale", { let mut s = base.clone(); s.scale = experiments::Scale::quick(8); s }),
            ("seed", { let mut s = base.clone(); s.seed += 1; s }),
        ];
        for (what, changed) in &variants {
            assert_ne!(h0, canonical_hash(changed), "{what} change must re-key");
        }
    }

    #[test]
    fn hash_is_stable_across_calls() {
        // A fixed input must map to a fixed key forever: the result
        // cache key survives daemon restarts via this property.
        let v = Value::Map(vec![("cache_mb".into(), Value::U64(32))]);
        assert_eq!(canonical_value_hash(&v), canonical_value_hash(&v.clone()));
    }
}
