//! The `mio serve` wire protocol: JSON lines in both directions.
//!
//! A client writes one [`Request`] per line; the server answers with a
//! stream of [`Response`] lines tagged with the request's `id` — an
//! `accepted` acknowledgement, zero or more `progress` heartbeats while
//! the request sits in the queue or runs, and exactly one terminal line:
//! `done` (carrying the full `SimReport`/`ClusterReport` JSON in
//! `result`) or `error`. Responses for concurrent requests interleave;
//! the `id` is the correlation key, so clients may pipeline freely.
//!
//! Determinism contract: the `result` payload of a `done` line is
//! byte-identical (once pretty-printed) to the JSON the one-shot
//! `repro-sim` binary writes for the same point, at any worker count —
//! whether it was computed, coalesced onto a concurrent duplicate, or
//! served from the result cache.

use serde::{Deserialize, Serialize, Value};

/// What one request asks the daemon to simulate (or report).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RequestBody {
    /// One Figure 6/7/8 sweep point: two venus copies against a
    /// read-ahead + write-behind cache. Equivalent to
    /// `repro-sim --fig8-point MB:BLOCK`; `fig6`/`fig7` are the 32 MB
    /// and 128 MB points of the same family.
    Fig8Point(Fig8PointSpec),
    /// A sharded datacenter campaign, equivalent to
    /// `repro-sim --campaign GROUPSxPROCS --shards N`.
    Campaign(CampaignPointSpec),
    /// Obs counters and engine statistics as deterministic JSON.
    Stats,
    /// The engine's RED metrics as a Prometheus text exposition
    /// (`mio stats --prom`). Answered inline like `Stats`; the payload
    /// is a single `Value::Str` holding the exposition body.
    Metrics,
    /// Begin graceful shutdown: drain in-flight work, refuse new
    /// requests, exit once drained.
    Shutdown,
}

/// Parameters of one two-venus cache point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig8PointSpec {
    /// Cache capacity in MB.
    pub cache_mb: u64,
    /// Cache block size in bytes.
    pub block: u64,
    /// Trace scale divisor (1 = the paper's full run lengths, 8 =
    /// `--quick`).
    pub scale: u32,
    /// Base trace seed (venus#2 uses `seed + 1`, like every figure).
    pub seed: u64,
}

/// Parameters of one sharded campaign point. Defaults mirror
/// `CampaignSpec::datacenter`, so a `{groups, procs, shards}` request
/// reproduces `repro-sim --campaign` exactly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignPointSpec {
    /// Node groups.
    pub groups: usize,
    /// Processes per group.
    pub procs: usize,
    /// Engine shard (worker thread) count for this campaign.
    pub shards: usize,
    /// Trace scale divisor; `repro-sim --campaign` uses 16.
    pub scale: u32,
    /// Base trace seed; `repro-sim --campaign` uses 42.
    pub seed: u64,
}

impl CampaignPointSpec {
    /// The spec matching `repro-sim --campaign GROUPSxPROCS --shards N`.
    pub fn datacenter(groups: usize, procs: usize, shards: usize) -> CampaignPointSpec {
        CampaignPointSpec { groups, procs, shards, scale: 16, seed: 42 }
    }
}

/// One client request line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Client-chosen correlation id, echoed on every response line.
    pub id: u64,
    /// Client name for fair queueing; requests sharing a name share one
    /// deficit-round-robin queue. Empty/absent means the connection's
    /// default client.
    pub client: Option<String>,
    /// What to run.
    pub body: RequestBody,
}

/// One server response line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Response {
    /// The request's correlation id.
    pub id: u64,
    /// `accepted`, `progress`, `done`, or `error`.
    pub event: String,
    /// On `done`: whether the result came from the bounded result cache
    /// (or was coalesced onto an identical in-flight request) rather
    /// than freshly computed.
    pub cached: Option<bool>,
    /// On `done`: the full report JSON.
    pub result: Option<Value>,
    /// On `error`: what went wrong (`queue full`, `shutting down`, a
    /// parse failure...).
    pub error: Option<String>,
    /// On `progress`: simulated events per second since the request was
    /// accepted (whole-process rate, like the sweep heartbeat).
    pub rate: Option<f64>,
    /// On `progress`: estimated seconds to completion from the mean
    /// observed service time of this request type; `None` when no
    /// execution of the type has finished yet.
    pub eta_secs: Option<u64>,
}

impl Response {
    fn base(id: u64, event: &str) -> Response {
        Response {
            id,
            event: event.into(),
            cached: None,
            result: None,
            error: None,
            rate: None,
            eta_secs: None,
        }
    }

    /// An `accepted` acknowledgement.
    pub fn accepted(id: u64) -> Response {
        Response::base(id, "accepted")
    }

    /// A `progress` heartbeat carrying the current simulated-event rate
    /// and (when service-time history exists) an ETA.
    pub fn progress(id: u64, rate: f64, eta_secs: Option<u64>) -> Response {
        Response { rate: Some(rate), eta_secs, ..Response::base(id, "progress") }
    }

    /// A terminal `done` line carrying the report.
    pub fn done(id: u64, result: Value, cached: bool) -> Response {
        Response { cached: Some(cached), result: Some(result), ..Response::base(id, "done") }
    }

    /// A terminal `error` line.
    pub fn error(id: u64, msg: impl Into<String>) -> Response {
        Response { error: Some(msg.into()), ..Response::base(id, "error") }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canon::canonical_hash;

    #[test]
    fn request_roundtrips_through_json() {
        let req = Request {
            id: 7,
            client: Some("bench".into()),
            body: RequestBody::Fig8Point(Fig8PointSpec {
                cache_mb: 32,
                block: 4096,
                scale: 8,
                seed: 42,
            }),
        };
        let line = serde_json::to_string(&req).expect("serialize");
        let back: Request = serde_json::from_str(&line).expect("parse");
        assert_eq!(back, req);
    }

    #[test]
    fn unit_variants_roundtrip() {
        for body in [RequestBody::Stats, RequestBody::Metrics, RequestBody::Shutdown] {
            let line = serde_json::to_string(&body).expect("serialize");
            let back: RequestBody = serde_json::from_str(&line).expect("parse");
            assert_eq!(back, body);
        }
    }

    #[test]
    fn field_order_on_the_wire_does_not_change_the_key() {
        let a: RequestBody = serde_json::from_str(
            r#"{"Fig8Point":{"cache_mb":32,"block":4096,"scale":8,"seed":42}}"#,
        )
        .expect("parse");
        let b: RequestBody = serde_json::from_str(
            r#"{"Fig8Point":{"seed":42,"scale":8,"block":4096,"cache_mb":32}}"#,
        )
        .expect("parse");
        assert_eq!(canonical_hash(&a), canonical_hash(&b));
    }

    #[test]
    fn each_field_reaches_the_key() {
        let base = Fig8PointSpec { cache_mb: 32, block: 4096, scale: 8, seed: 42 };
        let h0 = canonical_hash(&RequestBody::Fig8Point(base.clone()));
        let variants = [
            Fig8PointSpec { cache_mb: 33, ..base.clone() },
            Fig8PointSpec { block: 8192, ..base.clone() },
            Fig8PointSpec { scale: 16, ..base.clone() },
            Fig8PointSpec { seed: 43, ..base.clone() },
        ];
        for v in variants {
            assert_ne!(h0, canonical_hash(&RequestBody::Fig8Point(v.clone())), "{v:?}");
        }
        let c = CampaignPointSpec::datacenter(24, 16, 4);
        let hc = canonical_hash(&RequestBody::Campaign(c.clone()));
        assert_ne!(h0, hc, "different request kinds never collide");
        assert_ne!(
            hc,
            canonical_hash(&RequestBody::Campaign(CampaignPointSpec {
                seed: 43,
                ..c.clone()
            }))
        );
    }
}
