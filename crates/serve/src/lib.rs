//! Simulation-as-a-service for the Miller reproduction: the `mio serve`
//! daemon and its building blocks.
//!
//! Every prior layer of this workspace made *one* simulation fast; this
//! crate serves *many*. The FBench framing (see PAPERS.md) is the
//! target workload: interactive what-if exploration produces thousands
//! of small, heavily overlapping sweep-point queries, where throughput
//! comes from amortization — a warm [`TraceStore`] shared across
//! requests, canonical-hash deduplication, single-flight coalescing of
//! concurrent duplicates, and a bounded result cache — rather than from
//! single-run speed.
//!
//! The crate splits into:
//!
//! * [`canon`] — stable, field-order-independent canonical hashing of
//!   any serializable config (the cache/coalescing key).
//! * [`protocol`] — the JSON-lines request/response wire types.
//! * [`engine`] — the in-process worker pool: fair queueing, admission
//!   control, the warm store, the result cache.
//! * [`server`] — the socket front end (`mio serve` / `mio submit`)
//!   with heartbeats and graceful drain.
//!
//! The contract that makes the service trustworthy is determinism: a
//! served response is byte-identical to the corresponding one-shot
//! `repro-sim` run at any worker count, whether computed, coalesced, or
//! cached. CI holds this with a live socket `cmp` against the one-shot
//! binaries; the proptest suite holds it for shuffled concurrent
//! request streams.
//!
//! [`TraceStore`]: experiments::TraceStore

pub mod canon;
pub mod engine;
pub mod protocol;
pub mod server;

pub use canon::{canonical_hash, canonical_value_hash, canonicalize};
pub use engine::{Engine, EngineConfig, SubmitError, Ticket};
pub use protocol::{CampaignPointSpec, Fig8PointSpec, Request, RequestBody, Response};
pub use server::{request_shutdown, serve, submit_once, Endpoint, ServeOptions};
