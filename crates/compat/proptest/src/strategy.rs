//! The [`Strategy`] trait and core combinators: ranges, tuples,
//! [`Just`], [`Map`], [`Union`], and type-erased [`BoxedStrategy`].

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no value tree / shrinking: a
/// strategy is just a deterministic function of the test RNG stream.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with a function.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Erase the concrete strategy type (used by `prop_oneof!`, whose
    /// arms generally have distinct types).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Object-safe sampling, so differently-typed strategies can share a
/// `BoxedStrategy<T>`.
trait DynStrategy<T> {
    fn sample_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// A type-erased strategy handle.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample_dyn(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.sample(rng))
    }
}

/// Uniform choice among same-valued strategies (built by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from the already-erased arms.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.usize_in(0..self.options.len());
        self.options[idx].sample(rng)
    }
}

/// String-literal strategies, as in proptest's regex support — for the
/// tiny subset this workspace uses: `<atom>{min,max}` where the atom is
/// `.` (any char except newline) or a character class like `[ -~]`.
/// Any other pattern samples as the literal string itself.
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        match parse_simple_regex(self) {
            Some((atom, min, max)) => {
                let len = rng.usize_in(min..max + 1);
                (0..len).map(|_| atom.sample_char(rng)).collect()
            }
            None => (*self).to_owned(),
        }
    }
}

enum CharAtom {
    /// `.` — any char except `\n`.
    AnyChar,
    /// `[...]` — inclusive ranges and single chars.
    Class(Vec<(char, char)>),
}

impl CharAtom {
    fn sample_char(&self, rng: &mut TestRng) -> char {
        match self {
            CharAtom::AnyChar => {
                // Mostly printable ASCII, with occasional multi-byte
                // chars so UTF-8 boundary handling gets exercised too.
                match rng.usize_in(0..10) {
                    0 => ['é', 'λ', '中', '\u{2603}', '\t', '\u{7f}']
                        [rng.usize_in(0..6)],
                    _ => (0x20 + rng.usize_in(0..0x5f) as u32)
                        .try_into()
                        .expect("printable ASCII"),
                }
            }
            CharAtom::Class(ranges) => {
                let (lo, hi) = ranges[rng.usize_in(0..ranges.len())];
                let span = hi as u32 - lo as u32 + 1;
                char::from_u32(lo as u32 + rng.usize_in(0..span as usize) as u32)
                    .expect("class range stays in valid scalar values")
            }
        }
    }
}

fn parse_simple_regex(pattern: &str) -> Option<(CharAtom, usize, usize)> {
    let (atom, rest) = if let Some(rest) = pattern.strip_prefix('.') {
        (CharAtom::AnyChar, rest)
    } else if let Some(body_and_rest) = pattern.strip_prefix('[') {
        let close = body_and_rest.find(']')?;
        let body: Vec<char> = body_and_rest[..close].chars().collect();
        let mut ranges = Vec::new();
        let mut i = 0;
        while i < body.len() {
            if i + 2 < body.len() && body[i + 1] == '-' {
                ranges.push((body[i], body[i + 2]));
                i += 3;
            } else {
                ranges.push((body[i], body[i]));
                i += 1;
            }
        }
        if ranges.is_empty() {
            return None;
        }
        (CharAtom::Class(ranges), &body_and_rest[close + 1..])
    } else {
        return None;
    };
    let counts = rest.strip_prefix('{')?.strip_suffix('}')?;
    let (min_s, max_s) = counts.split_once(',')?;
    let min = min_s.trim().parse().ok()?;
    let max = max_s.trim().parse().ok()?;
    (min <= max).then_some((atom, min, max))
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.int_in_u64_span(
                    self.start as u64,
                    (self.end as u64).wrapping_sub(self.start as u64),
                ) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (*self.end() as u64)
                    .wrapping_sub(*self.start() as u64)
                    .wrapping_add(1);
                rng.int_in_u64_span(*self.start() as u64, span) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.f64_in(self.start, self.end)
    }
}

macro_rules! tuple_strategy {
    ($(($($S:ident . $idx:tt),+))*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10, L.11)
}
