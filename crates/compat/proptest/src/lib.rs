//! Offline stand-in for `proptest`, covering the surface this workspace's
//! property tests use: the `proptest!`/`prop_assert*`/`prop_oneof!`
//! macros, range and tuple strategies, `Just`, `prop_map`,
//! `collection::vec`, `sample::select`, `option::of`, and `any::<bool>()`.
//!
//! Two deliberate simplifications versus the registry crate:
//! - **no shrinking** — a failing case reports its case index and message
//!   but is not minimized;
//! - **deterministic seeds** — case N of a test always draws from the
//!   same ChaCha8 stream, so failures reproduce exactly across runs and
//!   machines with no persistence file.

pub mod strategy;

pub mod test_runner;

/// `proptest::collection` — strategies for containers.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<T>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec` strategy: length uniform in `size`, elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.usize_in(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// `proptest::sample` — choosing from explicit alternatives.
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy drawing uniformly from a fixed list.
    pub struct Select<T> {
        items: Vec<T>,
    }

    /// Uniform choice among the given values.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select needs at least one item");
        Select { items }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            self.items[rng.usize_in(0..self.items.len())].clone()
        }
    }
}

/// `proptest::option` — optional values.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding `None` or `Some(inner)`.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Option` strategy: `None` for a quarter of cases (like upstream's
    /// default 0.75 probability of `Some`).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.usize_in(0..4) == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

/// `proptest::arbitrary` — canonical strategy per type.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draw an unconstrained value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    /// Strategy wrapper produced by [`any`].
    pub struct Any<T>(PhantomData<T>);

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

/// Aborts the current test case with a message unless the condition
/// holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!(
            $cond,
            concat!("assertion failed: ", stringify!($cond))
        )
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right),
            format!($($fmt)+), left, right
        );
    }};
}

/// Uniform choice among several strategies producing the same value
/// type. Weights are not supported (this workspace never uses them).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies; the body may bail early via `prop_assert*`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)]
     $($(#[$meta:meta])*
       fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     )*) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                $crate::test_runner::run_cases(
                    config,
                    stringify!($name),
                    |__proptest_rng| {
                        $(
                            let $arg = $crate::strategy::Strategy::sample(
                                &($strat),
                                &mut *__proptest_rng,
                            );
                        )+
                        let mut __proptest_case = ||
                            -> ::std::result::Result<
                                (),
                                $crate::test_runner::TestCaseError,
                            > {
                            $body
                            ::std::result::Result::Ok(())
                        };
                        __proptest_case()
                    },
                );
            }
        )*
    };
    ($($tt:tt)+) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $($tt)+
        }
    };
}

/// Everything a property-test module needs in scope.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_even() -> impl Strategy<Value = u64> {
        (0u64..1000).prop_map(|n| n * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        fn mapped_values_hold_invariant(n in arb_even()) {
            prop_assert_eq!(n % 2, 0);
            prop_assert!(n < 2000, "n was {}", n);
        }

        fn vec_lengths_respect_range(
            v in crate::collection::vec(0u32..10, 2..5),
            flag in any::<bool>(),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|&x| x < 10));
            let _ = flag;
        }

        fn oneof_covers_all_arms(
            pick in prop_oneof![Just(1u8), Just(2u8), (5u8..7)]
        ) {
            prop_assert!(pick == 1 || pick == 2 || pick == 5 || pick == 6);
        }

        fn select_and_option(
            size in prop::sample::select(vec![512u64, 4096]),
            extra in prop::option::of(1u64..4),
        ) {
            prop_assert!(size == 512 || size == 4096);
            if let Some(e) = extra {
                prop_assert!((1..4).contains(&e));
            }
        }
    }

    #[test]
    #[should_panic(expected = "falsified")]
    fn failures_panic_with_case_info() {
        crate::test_runner::run_cases(
            ProptestConfig::with_cases(4),
            "always_fails",
            |_rng| Err(TestCaseError::fail("nope".to_string())),
        );
    }

    #[test]
    fn cases_are_deterministic_across_runs() {
        let mut first = Vec::new();
        crate::test_runner::run_cases(
            ProptestConfig::with_cases(8),
            "capture",
            |rng| {
                first.push(rng.next_u64());
                Ok(())
            },
        );
        let mut second = Vec::new();
        crate::test_runner::run_cases(
            ProptestConfig::with_cases(8),
            "capture",
            |rng| {
                second.push(rng.next_u64());
                Ok(())
            },
        );
        assert_eq!(first, second);
        assert_eq!(first.len(), 8);
    }
}
