//! `#[derive(Serialize, Deserialize)]` for the vendored serde stand-in.
//!
//! The registry crates (`syn`, `quote`) are unavailable offline, so the
//! input item is parsed directly from the `proc_macro` token stream. The
//! supported shapes are exactly what this workspace derives on: plain
//! structs with named fields, tuple structs, and enums whose variants are
//! unit, tuple, or struct-like. Generic types are rejected with a clear
//! error rather than silently mis-handled.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A parsed `struct` or `enum` item.
enum Item {
    /// Struct with named fields.
    Struct { name: String, fields: Vec<String> },
    /// Tuple struct with `arity` unnamed fields.
    TupleStruct { name: String, arity: usize },
    /// Unit struct.
    UnitStruct { name: String },
    /// Enum.
    Enum { name: String, variants: Vec<Variant> },
}

/// One enum variant shape.
enum Variant {
    Unit(String),
    Tuple(String, usize),
    Struct(String, Vec<String>),
}

/// Skip attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2, // '#' + [...]
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Split a token list at top-level commas. "Top-level" must also ignore
/// commas inside generic arguments (`HashMap<u32, f64>`): angle brackets
/// are plain punctuation in a token stream, not delimited groups, so
/// their nesting depth is tracked by hand.
fn split_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut angle_depth = 0usize;
    for t in tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
                continue;
            }
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                // `->` in fn-pointer types is not a closing bracket.
                let after_dash = matches!(
                    cur.last(),
                    Some(TokenTree::Punct(prev)) if prev.as_char() == '-'
                );
                if !after_dash {
                    angle_depth = angle_depth.saturating_sub(1);
                }
            }
            _ => {}
        }
        cur.push(t.clone());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Field names of a named-fields body (`{ a: T, b: U }`).
fn named_fields(body: &[TokenTree]) -> Vec<String> {
    split_commas(body)
        .into_iter()
        .filter_map(|chunk| {
            let i = skip_attrs_and_vis(&chunk, 0);
            match chunk.get(i) {
                Some(TokenTree::Ident(id)) => Some(id.to_string()),
                _ => None,
            }
        })
        .collect()
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, got {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "serde stand-in derive does not support generic type `{name}`"
            ));
        }
    }
    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                Ok(Item::Struct { name, fields: named_fields(&body) })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                Ok(Item::TupleStruct { name, arity: split_commas(&body).len() })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::UnitStruct { name }),
            other => Err(format!("unsupported struct body: {other:?}")),
        },
        "enum" => {
            let g = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
                other => return Err(format!("expected enum body, got {other:?}")),
            };
            let body: Vec<TokenTree> = g.stream().into_iter().collect();
            let variants = split_commas(&body)
                .into_iter()
                .map(|chunk| {
                    let j = skip_attrs_and_vis(&chunk, 0);
                    let vname = match chunk.get(j) {
                        Some(TokenTree::Ident(id)) => id.to_string(),
                        other => return Err(format!("expected variant name, got {other:?}")),
                    };
                    match chunk.get(j + 1) {
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                            Ok(Variant::Tuple(vname, split_commas(&inner).len()))
                        }
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                            Ok(Variant::Struct(vname, named_fields(&inner)))
                        }
                        _ => Ok(Variant::Unit(vname)),
                    }
                })
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Item::Enum { name, variants })
        }
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(String::from({f:?}), serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         serde::Value::Map(vec![{}])\n\
                     }}\n\
                 }}",
                entries.join(", ")
            )
        }
        Item::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                // Newtype structs serialize transparently, like serde.
                "serde::Serialize::to_value(&self.0)".to_string()
            } else {
                let elems: Vec<String> = (0..*arity)
                    .map(|k| format!("serde::Serialize::to_value(&self.{k})"))
                    .collect();
                format!("serde::Value::Seq(vec![{}])", elems.join(", "))
            };
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::UnitStruct { name } => format!(
            "impl serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> serde::Value {{ serde::Value::Null }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| match v {
                    Variant::Unit(vn) => format!(
                        "{name}::{vn} => serde::Value::Str(String::from({vn:?}))"
                    ),
                    Variant::Tuple(vn, arity) => {
                        let binds: Vec<String> =
                            (0..*arity).map(|k| format!("f{k}")).collect();
                        let inner = if *arity == 1 {
                            "serde::Serialize::to_value(f0)".to_string()
                        } else {
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("serde::Serialize::to_value({b})"))
                                .collect();
                            format!("serde::Value::Seq(vec![{}])", elems.join(", "))
                        };
                        format!(
                            "{name}::{vn}({}) => serde::Value::Map(vec![(String::from({vn:?}), {inner})])",
                            binds.join(", ")
                        )
                    }
                    Variant::Struct(vn, fields) => {
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(String::from({f:?}), serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{vn} {{ {} }} => serde::Value::Map(vec![(String::from({vn:?}), serde::Value::Map(vec![{}]))])",
                            fields.join(", "),
                            entries.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join(",\n")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: serde::field(v, {f:?})?"))
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {{\n\
                         if v.as_map().is_none() {{\n\
                             return Err(serde::DeError::expected(\"map for struct {name}\"));\n\
                         }}\n\
                         Ok({name} {{ {} }})\n\
                     }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Item::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                format!("Ok({name}(serde::Deserialize::from_value(v)?))")
            } else {
                let elems: Vec<String> = (0..*arity)
                    .map(|k| {
                        format!(
                            "serde::Deserialize::from_value(s.get({k}).ok_or_else(|| serde::DeError::expected(\"element {k} of {name}\"))?)?"
                        )
                    })
                    .collect();
                format!(
                    "let s = v.as_seq().ok_or_else(|| serde::DeError::expected(\"array for {name}\"))?;\n\
                     Ok({name}({}))",
                    elems.join(", ")
                )
            };
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {{ {body} }}\n\
                 }}"
            )
        }
        Item::UnitStruct { name } => format!(
            "impl serde::Deserialize for {name} {{\n\
                 fn from_value(_v: &serde::Value) -> Result<Self, serde::DeError> {{ Ok({name}) }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| match v {
                    Variant::Unit(vn) => Some(format!("{vn:?} => return Ok({name}::{vn})")),
                    _ => None,
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| match v {
                    Variant::Unit(_) => None,
                    Variant::Tuple(vn, arity) => {
                        let body = if *arity == 1 {
                            format!("return Ok({name}::{vn}(serde::Deserialize::from_value(inner)?))")
                        } else {
                            let elems: Vec<String> = (0..*arity)
                                .map(|k| {
                                    format!(
                                        "serde::Deserialize::from_value(s.get({k}).ok_or_else(|| serde::DeError::expected(\"element {k} of {name}::{vn}\"))?)?"
                                    )
                                })
                                .collect();
                            format!(
                                "let s = inner.as_seq().ok_or_else(|| serde::DeError::expected(\"array for {name}::{vn}\"))?;\n\
                                 return Ok({name}::{vn}({}))",
                                elems.join(", ")
                            )
                        };
                        Some(format!("{vn:?} => {{ {body} }}"))
                    }
                    Variant::Struct(vn, fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| format!("{f}: serde::field(inner, {f:?})?"))
                            .collect();
                        Some(format!(
                            "{vn:?} => {{ return Ok({name}::{vn} {{ {} }}) }}",
                            inits.join(", ")
                        ))
                    }
                })
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {{\n\
                         if let serde::Value::Str(s) = v {{\n\
                             match s.as_str() {{ {unit} _ => {{}} }}\n\
                         }}\n\
                         if let Some(m) = v.as_map() {{\n\
                             if let Some((tag, inner)) = m.first() {{\n\
                                 match tag.as_str() {{ {data} _ => {{}} }}\n\
                                 let _ = inner;\n\
                             }}\n\
                         }}\n\
                         Err(serde::DeError::expected(\"variant of {name}\"))\n\
                     }}\n\
                 }}",
                unit = if unit_arms.is_empty() {
                    String::new()
                } else {
                    format!("{},", unit_arms.join(",\n"))
                },
                data = if data_arms.is_empty() {
                    String::new()
                } else {
                    format!("{},", data_arms.join(",\n"))
                },
            )
        }
    }
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item).parse().unwrap(),
        Err(e) => compile_error(&e),
    }
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item).parse().unwrap(),
        Err(e) => compile_error(&e),
    }
}
