//! Offline stand-in for `serde_json`: renders the serde stand-in's
//! [`serde::Value`] tree to JSON text and parses it back.
//!
//! Output is deterministic — map entries emit in insertion order, and
//! float formatting uses Rust's shortest-roundtrip `Display`, so repeated
//! runs of the same simulation produce byte-identical files.

use serde::{DeError, Deserialize, Serialize, Value};

/// Error type mirroring `serde_json::Error`: parse or decode failure.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Error {
        Error(e.0)
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn fmt_f64(x: f64, out: &mut String) {
    if x.is_finite() {
        // Match serde_json: integral floats print with a trailing `.0`.
        if x == x.trunc() && x.abs() < 1e15 {
            out.push_str(&format!("{x:.1}"));
        } else {
            out.push_str(&format!("{x}"));
        }
    } else {
        // serde_json emits null for non-finite floats.
        out.push_str("null");
    }
}

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => fmt_f64(*x, out),
        Value::Str(s) => escape_into(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(k, out);
                out.push(':');
                write_compact(item, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    const STEP: &str = "  ";
    match v {
        Value::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&STEP.repeat(indent + 1));
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&STEP.repeat(indent));
            out.push(']');
        }
        Value::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&STEP.repeat(indent + 1));
                escape_into(k, out);
                out.push_str(": ");
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&STEP.repeat(indent));
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&value.to_value(), &mut out);
    Ok(out)
}

/// Serialize to a two-space-indented JSON string.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&value.to_value(), 0, &mut out);
    Ok(out)
}

/// Parse a JSON string into any `Deserialize` type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing data at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(Error(format!("expected `{word}` at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => {
                self.literal("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.literal("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.literal("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => {
                            return Err(Error(format!(
                                "expected `,` or `]` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let k = self.string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    self.skip_ws();
                    let v = self.value()?;
                    entries.push((k, v));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => {
                            return Err(Error(format!(
                                "expected `,` or `}}` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error(format!(
                "unexpected {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("bad \\u escape".into()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error("bad \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u escape".into()))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!("bad escape {other:?}")))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("bad number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error(format!("bad number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error(format!("bad number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error(format!("bad number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-3i32).unwrap(), "-3");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<bool>(" true ").unwrap(), true);
    }

    #[test]
    fn roundtrip_containers() {
        let v: Vec<u64> = vec![1, 2, 3];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,2,3]");
        assert_eq!(from_str::<Vec<u64>>(&s).unwrap(), v);
    }

    #[test]
    fn string_escapes() {
        let s = String::from("a\"b\\c\nd");
        let json = to_string(&s).unwrap();
        assert_eq!(json, r#""a\"b\\c\nd""#);
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn pretty_is_stable() {
        let v = Value::Map(vec![
            ("b".into(), Value::U64(1)),
            ("a".into(), Value::Seq(vec![Value::U64(2)])),
        ]);
        let mut out = String::new();
        write_pretty(&v, 0, &mut out);
        assert_eq!(out, "{\n  \"b\": 1,\n  \"a\": [\n    2\n  ]\n}");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<u64>("42 xyz").is_err());
    }
}
