//! Offline stand-in for `rustc-hash`: the Fx multiply-rotate hasher.
//!
//! This is the same add-rotate-multiply mixing rustc uses. Two
//! properties matter on the simulator's per-request hot path: it is far
//! cheaper than SipHash for the small integer-tuple keys the cache and
//! engine use, and it has no per-process random state, so map iteration
//! order (where it leaks into behavior) is identical across runs —
//! a prerequisite for byte-identical sweep results.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;
/// Stateless builder for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Fast non-cryptographic hasher (deterministic, not DoS-resistant —
/// fine here: all keys are simulator-internal integers).
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline(always)]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let word = u64::from_le_bytes(bytes[..8].try_into().unwrap());
            self.add_to_hash(word);
            bytes = &bytes[8..];
        }
        if bytes.len() >= 4 {
            let word = u32::from_le_bytes(bytes[..4].try_into().unwrap());
            self.add_to_hash(word as u64);
            bytes = &bytes[4..];
        }
        if bytes.len() >= 2 {
            let word = u16::from_le_bytes(bytes[..2].try_into().unwrap());
            self.add_to_hash(word as u64);
            bytes = &bytes[2..];
        }
        if let Some(&b) = bytes.first() {
            self.add_to_hash(b as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_builders() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(0xDEAD_BEEF);
        b.write_u64(0xDEAD_BEEF);
        assert_eq!(a.finish(), b.finish());
        assert_ne!(a.finish(), 0);
    }

    #[test]
    fn map_basics() {
        let mut m: FxHashMap<(u32, u64), u32> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert((i, i as u64 * 7), i);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&(41, 287)), Some(&41));
        let s: FxHashSet<u64> = (0..100).collect();
        assert!(s.contains(&99));
    }

    #[test]
    fn byte_paths_agree_on_word_boundaries() {
        // 8 bytes via write() must equal one write_u64 for the same LE
        // word, because tuple keys hash through write_u64.
        let mut a = FxHasher::default();
        a.write(&42u64.to_le_bytes());
        let mut b = FxHasher::default();
        b.write_u64(42);
        assert_eq!(a.finish(), b.finish());
    }
}
