//! Offline stand-in for `criterion`: same macro/group/bencher call
//! surface, with a much simpler measurement core (fixed sample count,
//! wall-clock per sample, mean/min/max report to stdout).
//!
//! Statistical rigor (outlier rejection, bootstrap CIs, HTML reports) is
//! intentionally out of scope — the repo's perf tracking flows through
//! the `repro_bench` binary's JSON output; these benches are for quick
//! relative comparisons.

use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a benchmarked computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Work-rate annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Logical elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver (a name registry plus defaults).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\ngroup: {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 20,
            throughput: None,
        }
    }
}

/// A set of benchmarks sharing sample-count and throughput settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (min 1).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Attach a throughput so the report includes a rate.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Time one benchmark closure.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { samples: Vec::new(), budget: self.sample_size };
        f(&mut b);
        report(name, &b.samples, self.throughput);
        self
    }

    /// End the group (report already printed incrementally).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; owns the timing loop.
pub struct Bencher {
    samples: Vec<Duration>,
    budget: usize,
}

impl Bencher {
    /// Run the routine `sample_size` times, timing each run.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warmup pass populates caches and lazy statics.
        black_box(routine());
        for _ in 0..self.budget {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn report(name: &str, samples: &[Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("  {name}: no samples");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().unwrap();
    let max = samples.iter().max().unwrap();
    let rate = throughput.map(|t| {
        let per_sec = |n: u64| n as f64 / mean.as_secs_f64();
        match t {
            Throughput::Elements(n) => format!(" ({:.0} elem/s)", per_sec(n)),
            Throughput::Bytes(n) => format!(" ({:.0} B/s)", per_sec(n)),
        }
    });
    println!(
        "  {name}: mean {mean:?} min {min:?} max {max:?} over {} samples{}",
        samples.len(),
        rate.unwrap_or_default(),
    );
}

/// Bundle benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_requested_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        let mut runs = 0u32;
        g.bench_function("count", |b| b.iter(|| runs += 1));
        g.finish();
        // 3 timed + 1 warmup.
        assert_eq!(runs, 4);
    }
}
