//! Offline stand-in for `rand_chacha`: a real ChaCha8 keystream behind
//! the workspace's [`rand`] stand-in traits.
//!
//! The block function is the genuine ChaCha quarter-round construction
//! (8 rounds), so the stream has the statistical quality the simulator's
//! distribution tests expect. The `seed_from_u64` key expansion is a
//! SplitMix64 fill rather than upstream's PCG-based one — value-for-value
//! compatibility with the registry crate is not a goal, deterministic
//! self-consistency is.

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 rounds, 64-bit block counter, zero nonce.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key + constants + counter state fed to the block function.
    state: [u32; 16],
    /// Current 16-word output block.
    block: [u32; 16],
    /// Next unread word index in `block`; 16 means exhausted.
    word: usize,
}

#[inline(always)]
fn quarter(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds (column + diagonal).
            quarter(&mut working, 0, 4, 8, 12);
            quarter(&mut working, 1, 5, 9, 13);
            quarter(&mut working, 2, 6, 10, 14);
            quarter(&mut working, 3, 7, 11, 15);
            quarter(&mut working, 0, 5, 10, 15);
            quarter(&mut working, 1, 6, 11, 12);
            quarter(&mut working, 2, 7, 8, 13);
            quarter(&mut working, 3, 4, 9, 14);
        }
        for i in 0..16 {
            self.block[i] = working[i].wrapping_add(self.state[i]);
        }
        // Advance the 64-bit counter in words 12..14.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32))
            .wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.word = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut state = [0u32; 16];
        // "expand 32-byte k" constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..4 {
            let k = splitmix64(&mut sm);
            state[4 + 2 * i] = k as u32;
            state[5 + 2 * i] = (k >> 32) as u32;
        }
        // Counter (12, 13) and nonce (14, 15) start at zero.
        ChaCha8Rng { state, block: [0; 16], word: 16 }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.word >= 16 {
            self.refill();
        }
        let w = self.block[self.word];
        self.word += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(123);
        let mut b = ChaCha8Rng::seed_from_u64(123);
        for _ in 0..200 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(124);
        let same = (0..64).filter(|_| b.next_u64() == c.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn output_looks_balanced() {
        // Crude sanity: bit population over many words near 50%.
        let mut r = ChaCha8Rng::seed_from_u64(7);
        let ones: u32 = (0..1024).map(|_| r.next_u64().count_ones()).sum();
        let frac = ones as f64 / (1024.0 * 64.0);
        assert!((0.48..0.52).contains(&frac), "bit fraction {frac}");
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..7 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
