//! Offline stand-in for the `rand` trait surface this workspace uses:
//! [`RngCore`], [`SeedableRng`], and the [`Rng`] extension with
//! `gen_range`/`gen_bool`.
//!
//! Distribution sampling is self-consistent and deterministic for a given
//! generator stream, which is the property the reproduction depends on
//! (the upstream crate's exact value sequences are not part of any
//! contract here — every expectation in this repo is derived from these
//! implementations).

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: raw 32/64-bit output.
pub trait RngCore {
    /// Next raw 32 bits.
    fn next_u32(&mut self) -> u32;
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;
}

/// RNGs constructible from seed material.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed, expanding it to full key width.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A half-open or inclusive range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw a uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased-enough uniform draw in `[0, span)` via 128-bit widening
/// multiply (Lemire's method without the rejection step; the residual
/// bias at 64-bit width is far below anything the statistics tests can
/// observe).
fn mul_shift(word: u64, span: u64) -> u64 {
    ((word as u128 * span as u128) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(mul_shift(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every word is a valid draw.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(mul_shift(rng.next_u64(), span) as $t)
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform in `[0, 1)` with 53 random bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let v = self.start + (self.end - self.start) * unit_f64(rng);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.end.next_down()
        } else {
            v
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range");
        let v = self.start + (self.end - self.start) * unit_f64(rng) as f32;
        if v >= self.end {
            self.end.next_down()
        } else {
            v
        }
    }
}

/// Convenience extension over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform draw from an integer or float range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p` (which must be in
    /// `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        if p >= 1.0 {
            // Consume a word anyway so the stream advances uniformly.
            let _ = self.next_u64();
            return true;
        }
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Counter(1);
        for _ in 0..1000 {
            let v: u64 = r.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: u64 = r.gen_range(5..=5);
            assert_eq!(w, 5);
            let x: f64 = r.gen_range(0.25..0.5);
            assert!((0.25..0.5).contains(&x));
            let y: usize = r.gen_range(0..3);
            assert!(y < 3);
        }
    }

    #[test]
    fn bool_extremes() {
        let mut r = Counter(2);
        assert!(r.gen_bool(1.0));
        assert!(!r.gen_bool(0.0));
    }
}
