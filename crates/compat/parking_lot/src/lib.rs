//! Offline stand-in for `parking_lot`: the `Mutex` API this workspace
//! uses, backed by `std::sync::Mutex`. Matches parking_lot's
//! no-poisoning contract by recovering the guard from a poisoned lock.

use std::sync::MutexGuard;

/// Mutual exclusion with parking_lot's panic-free `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning (parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutable access without locking (exclusive borrow proves unique
    /// ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1u32);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }
}
