//! Offline stand-in for `serde`, vendored because this build environment
//! has no access to crates.io.
//!
//! It keeps the call-surface the workspace actually uses — `#[derive(
//! Serialize, Deserialize)]` on plain structs and enums, plus the
//! `serde_json` entry points — while shrinking the machinery to a single
//! JSON-shaped [`Value`] tree. Field order is declaration order and map
//! iteration is a `Vec`, so serialization is fully deterministic: the
//! byte-identical-results guarantees in `crates/experiments` rely on
//! that.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value: the single data model both serialization and
/// deserialization pass through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating point number.
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Seq(Vec<Value>),
    /// JSON object, in insertion order (deterministic output).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, when this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The elements, when this is an array.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Look up a field in a map value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Deserialization failure: a human-readable mismatch description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Build an "expected X" error.
    pub fn expected(what: &str) -> DeError {
        DeError(format!("expected {what}"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Convert to the data model.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Convert from the data model.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Fetch and decode a struct field; absent fields decode from `Null` so
/// `Option` fields tolerate omission, like serde's derive.
pub fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, DeError> {
    match v.get(name) {
        Some(inner) => T::from_value(inner)
            .map_err(|e| DeError(format!("field `{name}`: {}", e.0))),
        None => T::from_value(&Value::Null)
            .map_err(|_| DeError(format!("missing field `{name}`"))),
    }
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match *v {
                    Value::U64(n) => <$t>::try_from(n)
                        .map_err(|_| DeError::expected(stringify!($t))),
                    Value::I64(n) => <$t>::try_from(n)
                        .map_err(|_| DeError::expected(stringify!($t))),
                    _ => Err(DeError::expected(stringify!($t))),
                }
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match *v {
                    Value::U64(n) => i64::try_from(n)
                        .ok()
                        .and_then(|n| <$t>::try_from(n).ok())
                        .ok_or_else(|| DeError::expected(stringify!($t))),
                    Value::I64(n) => <$t>::try_from(n)
                        .map_err(|_| DeError::expected(stringify!($t))),
                    _ => Err(DeError::expected(stringify!($t))),
                }
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

macro_rules! ser_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match *v {
                    Value::F64(x) => Ok(x as $t),
                    Value::U64(n) => Ok(n as $t),
                    Value::I64(n) => Ok(n as $t),
                    _ => Err(DeError::expected(stringify!($t))),
                }
            }
        }
    )*};
}
ser_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match *v {
            Value::Bool(b) => Ok(b),
            _ => Err(DeError::expected("bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_seq()
            .ok_or_else(|| DeError::expected("array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

/// Render a serialized key as a JSON object key, like serde_json: only
/// strings, integers, and bools can key a map.
fn key_string(v: &Value) -> String {
    match v {
        Value::Str(s) => s.clone(),
        Value::U64(n) => n.to_string(),
        Value::I64(n) => n.to_string(),
        Value::Bool(b) => b.to_string(),
        other => panic!("unsupported map key: {other:?}"),
    }
}

/// Rebuild the value a map key serialized from. Integer-looking keys
/// decode as numbers so `HashMap<u32, _>` round-trips.
fn key_value(s: &str) -> Value {
    if let Ok(n) = s.parse::<u64>() {
        return Value::U64(n);
    }
    if let Ok(n) = s.parse::<i64>() {
        return Value::I64(n);
    }
    Value::Str(s.to_owned())
}

impl<K, V, S> Serialize for std::collections::HashMap<K, V, S>
where
    K: Serialize,
    V: Serialize,
{
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_string(&k.to_value()), v.to_value()))
            .collect();
        // Hash iteration order is not deterministic (and with random
        // hashers not even stable across runs); sorted keys make every
        // serialization byte-identical.
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<K, V, S> Deserialize for std::collections::HashMap<K, V, S>
where
    K: Deserialize + Eq + std::hash::Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_map()
            .ok_or_else(|| DeError::expected("object"))?
            .iter()
            .map(|(k, item)| {
                Ok((K::from_value(&key_value(k))?, V::from_value(item)?))
            })
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

macro_rules! ser_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let s = v.as_seq().ok_or_else(|| DeError::expected("tuple array"))?;
                Ok(($($name::from_value(
                    s.get($idx).ok_or_else(|| DeError::expected("tuple element"))?
                )?,)+))
            }
        }
    )*};
}
ser_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()), Ok(42));
        assert_eq!(i32::from_value(&(-7i32).to_value()), Ok(-7));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(
            String::from_value(&String::from("x").to_value()),
            Ok(String::from("x"))
        );
    }

    #[test]
    fn containers_roundtrip() {
        let v: Vec<u64> = vec![1, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&v.to_value()), Ok(v));
        let t = (1u64, 2u64, 3u32);
        assert_eq!(<(u64, u64, u32)>::from_value(&t.to_value()), Ok(t));
        assert_eq!(Option::<u64>::from_value(&Value::Null), Ok(None));
        assert_eq!(Option::<u64>::from_value(&Value::U64(9)), Ok(Some(9)));
    }

    #[test]
    fn missing_option_field_is_none() {
        let v = Value::Map(vec![]);
        assert_eq!(field::<Option<u64>>(&v, "gone"), Ok(None));
        assert!(field::<u64>(&v, "gone").is_err());
    }
}
