//! The timing-wheel [`EventQueue`] must be observationally identical to
//! the `BinaryHeap`-with-sequence-numbers queue it replaced: for any
//! interleaving of schedules and pops — including ties at one tick,
//! deltas past the wheel horizon, and long idle jumps — both pop the
//! exact same `(time, payload)` sequence. The heap model below *is* the
//! old implementation, kept here as the executable specification.

use proptest::prelude::*;
use sim_core::{EventQueue, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// The pre-timing-wheel queue: a max-heap inverted on `(time, seq)`.
struct HeapModel<E> {
    heap: BinaryHeap<ModelEntry<E>>,
    next_seq: u64,
    now: SimTime,
}

struct ModelEntry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for ModelEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for ModelEntry<E> {}
impl<E> PartialOrd for ModelEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for ModelEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other.at.cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> HeapModel<E> {
    fn new() -> Self {
        HeapModel { heap: BinaryHeap::new(), next_seq: 0, now: SimTime::ZERO }
    }

    fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ModelEntry { at, seq, event });
    }

    fn pop(&mut self) -> Option<(SimTime, E)> {
        let ModelEntry { at, event, .. } = self.heap.pop()?;
        self.now = at;
        Some((at, event))
    }
}

#[derive(Debug, Clone)]
enum Op {
    /// Schedule at `now + delta` (ticks).
    Schedule { delta: u64 },
    /// Pop once.
    Pop,
}

fn arb_op() -> impl Strategy<Value = Op> {
    // Deltas cover every interesting regime: zero (schedule-at-now),
    // same level-0 window, level boundaries, multi-level cascades, and
    // far past the 2^30-tick wheel horizon.
    prop_oneof![
        Just(Op::Pop),
        Just(Op::Pop),
        prop::sample::select(vec![
            0u64,
            1,
            2,
            63,
            64,
            65,
            1000,
            4095,
            4096,
            100_000,
            262_143,
            262_144,
            50_000_000,
            (1u64 << 30) - 1,
            1u64 << 30,
            (1u64 << 30) + 12345,
            1u64 << 34,
        ])
        .prop_map(|delta| Op::Schedule { delta }),
        (0u64..200).prop_map(|delta| Op::Schedule { delta }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn wheel_matches_heap_model(ops in proptest::collection::vec(arb_op(), 1..400)) {
        let mut wheel: EventQueue<u64> = EventQueue::new();
        let mut model: HeapModel<u64> = HeapModel::new();
        let mut id = 0u64;
        for op in &ops {
            match *op {
                Op::Schedule { delta } => {
                    // Both queues agree on `now` (checked below), so the
                    // same absolute time goes to each.
                    let at = SimTime::from_ticks(wheel.now().ticks() + delta);
                    wheel.schedule(at, id);
                    model.schedule(at, id);
                    id += 1;
                }
                Op::Pop => {
                    let got = wheel.pop();
                    let want = model.pop();
                    prop_assert_eq!(got, want);
                }
            }
            prop_assert_eq!(wheel.len(), model.heap.len());
            if let Some(peek) = wheel.peek_time() {
                prop_assert_eq!(Some(peek), model.heap.peek().map(|e| e.at));
            } else {
                prop_assert!(model.heap.is_empty());
            }
        }
        // Drain both to the end: the full tail must match too.
        loop {
            let got = wheel.pop();
            let want = model.pop();
            prop_assert_eq!(got, want);
            if got.is_none() {
                break;
            }
        }
        prop_assert!(wheel.is_empty());
    }
}
