//! A deterministic discrete-event queue.
//!
//! Events are ordered by firing time; ties are broken by insertion order
//! (FIFO), which makes every simulation built on this queue fully
//! deterministic for a given seed — a property the integration tests
//! assert end-to-end.
//!
//! # Implementation: hierarchical timing wheel
//!
//! The queue is a five-level, 64-slot-per-level timing wheel over raw
//! ticks. Level `k` buckets span `64^k` ticks, so the wheel covers a
//! `64^5 = 2^30`-tick horizon (~3 simulated hours at 10 µs ticks);
//! events beyond the horizon wait in a small overflow heap and are
//! pulled into the wheel once the clock gets close enough.
//!
//! An event is placed at the lowest level whose *current window*
//! contains both the event and the clock — equivalently, the level of
//! the highest bit in which `at` and `now` differ. Level-0 slots
//! therefore hold exactly one tick each, and every slot above level 0
//! cascades into the levels below it when the clock enters its window.
//! A per-level 64-bit occupancy bitmap finds the next non-empty bucket
//! with a single `trailing_zeros`, so arbitrarily long idle jumps (far
//! larger than one wheel rotation) cost a handful of bitmap probes
//! instead of a walk over empty slots.
//!
//! Scheduling and popping are O(1) amortized and allocation-free in
//! steady state: bucket storage and the due-event buffer recycle their
//! capacity via swaps rather than reallocating. Pop order is exactly
//! the `(time, seq)` order of the previous `BinaryHeap` implementation
//! — all events due at one tick land in the same level-0 bucket and are
//! drained in sequence-number order — which the property tests pin
//! against a heap model.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Operation counters for one queue's lifetime, reported as the
/// `timing_wheel` section of a simulation's observability report.
///
/// These are plain `u64` adds on paths that already own the queue, so
/// they are collected unconditionally — the counts are deterministic
/// and identical whether or not span profiling is enabled.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueueStats {
    /// Events scheduled (wheel placements and overflow parks alike).
    pub inserts: u64,
    /// Events popped.
    pub pops: u64,
    /// Bucket cascades: one upper-level bucket redistributed into the
    /// levels below it.
    pub cascades: u64,
    /// Events that landed beyond the wheel horizon and parked in the
    /// overflow heap.
    pub overflow_spills: u64,
}

impl QueueStats {
    /// Fold another queue's counters in — shard aggregation: a sharded
    /// run reports one `timing_wheel` section summed over its per-shard
    /// wheels.
    pub fn merge(&mut self, other: &QueueStats) {
        self.inserts += other.inserts;
        self.pops += other.pops;
        self.cascades += other.cascades;
        self.overflow_spills += other.overflow_spills;
    }
}

/// A scheduled event: a payload tagged with its firing time.
#[derive(Debug, Clone)]
pub struct Scheduled<E> {
    /// When the event fires.
    pub at: SimTime,
    /// Monotonic insertion sequence number; breaks ties FIFO.
    seq: u64,
    /// The event payload.
    pub event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// log2 of the slots per level.
const SLOT_BITS: usize = 6;
/// Slots per wheel level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Wheel levels; level `k` buckets span `64^k` ticks.
const LEVELS: usize = 5;
/// Ticks covered by the wheel before the overflow heap takes over.
const HORIZON_BITS: usize = SLOT_BITS * LEVELS;

/// One event stored inside the wheel.
#[derive(Debug, Clone)]
struct Entry<E> {
    /// Firing time in raw ticks.
    at: u64,
    /// FIFO tie-breaker.
    seq: u64,
    event: E,
}

/// The level an event at `at` belongs to when the clock reads `cur`:
/// the lowest level whose current window contains both, i.e. the level
/// of the highest differing bit. `None` when the event lies beyond the
/// wheel horizon.
#[inline]
fn place_level(at: u64, cur: u64) -> Option<usize> {
    let xor = at ^ cur;
    if xor == 0 {
        return Some(0);
    }
    let level = (63 - xor.leading_zeros() as usize) / SLOT_BITS;
    (level < LEVELS).then_some(level)
}

/// A time-ordered event queue with FIFO tie-breaking.
#[derive(Debug)]
pub struct EventQueue<E> {
    /// `LEVELS * SLOTS` buckets, flattened.
    slots: Vec<Vec<Entry<E>>>,
    /// Per-level occupancy bitmap: bit `s` set ⇔ `slots[level*SLOTS+s]`
    /// is non-empty.
    occ: [u64; LEVELS],
    /// Events due at `cur`, sorted by *descending* seq so the next event
    /// pops off the end.
    current: Vec<Entry<E>>,
    /// Scratch for cascading a bucket down a level without reallocating.
    cascade_buf: Vec<Entry<E>>,
    /// Events beyond the wheel horizon.
    overflow: BinaryHeap<Scheduled<E>>,
    len: usize,
    next_seq: u64,
    /// Clock in raw ticks: the firing time of the most recently popped
    /// event.
    cur: u64,
    /// Lifetime operation counters.
    stats: QueueStats,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occ: [0; LEVELS],
            current: Vec::new(),
            cascade_buf: Vec::new(),
            overflow: BinaryHeap::new(),
            len: 0,
            next_seq: 0,
            cur: 0,
            stats: QueueStats::default(),
        }
    }

    /// Lifetime operation counters.
    pub fn stats(&self) -> &QueueStats {
        &self.stats
    }

    /// The current simulation time: the firing time of the most recently
    /// popped event (monotonically non-decreasing).
    #[inline]
    pub fn now(&self) -> SimTime {
        SimTime::from_ticks(self.cur)
    }

    /// Schedule `event` to fire at absolute time `at`.
    ///
    /// # Panics
    /// In debug builds, panics if `at` is in the past — scheduling behind
    /// the clock would silently violate causality.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        debug_assert!(
            at >= self.now(),
            "event scheduled in the past: {at} < now {}",
            self.now()
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.len += 1;
        self.stats.inserts += 1;
        if let Some(e) = self.place(Entry { at: at.ticks(), seq, event }) {
            self.stats.overflow_spills += 1;
            self.overflow.push(Scheduled { at, seq: e.seq, event: e.event });
        }
    }

    /// Insert an entry into the wheel; hands it back when it lies beyond
    /// the horizon (the caller routes it to the overflow heap).
    #[inline]
    fn place(&mut self, e: Entry<E>) -> Option<Entry<E>> {
        let Some(level) = place_level(e.at, self.cur) else { return Some(e) };
        let slot = ((e.at >> (SLOT_BITS * level)) & (SLOTS as u64 - 1)) as usize;
        self.occ[level] |= 1 << slot;
        self.slots[level * SLOTS + slot].push(e);
        None
    }

    /// Advance the clock to the next pending tick and load that tick's
    /// events (sequence-ordered) into `current`. False when nothing is
    /// pending.
    fn refill(&mut self) -> bool {
        debug_assert!(self.current.is_empty());
        loop {
            // Level 0: buckets hold exactly one tick each, and slots
            // below `cur`'s are necessarily empty, so the lowest set bit
            // is the next due tick.
            if self.occ[0] != 0 {
                let s = self.occ[0].trailing_zeros() as usize;
                self.occ[0] &= !(1u64 << s);
                std::mem::swap(&mut self.slots[s], &mut self.current);
                self.cur = (self.cur >> SLOT_BITS << SLOT_BITS) | s as u64;
                // All entries share the tick; descending seq pops FIFO
                // off the end.
                self.current.sort_unstable_by_key(|e| std::cmp::Reverse(e.seq));
                debug_assert!(self.current.iter().all(|e| e.at == self.cur));
                return true;
            }
            // Cascade the earliest occupied bucket of the lowest
            // non-empty level into the levels below it.
            let mut cascaded = false;
            for level in 1..LEVELS {
                if self.occ[level] == 0 {
                    continue;
                }
                let p = self.occ[level].trailing_zeros() as usize;
                self.occ[level] &= !(1u64 << p);
                self.stats.cascades += 1;
                let shift = SLOT_BITS * level;
                let width = shift + SLOT_BITS;
                // Jump the clock to the bucket's window start; every
                // pending event is inside or beyond this bucket, so the
                // clock never overtakes one.
                self.cur = (self.cur >> width << width) | ((p as u64) << shift);
                let mut buf = std::mem::take(&mut self.cascade_buf);
                std::mem::swap(&mut self.slots[level * SLOTS + p], &mut buf);
                for e in buf.drain(..) {
                    debug_assert!(place_level(e.at, self.cur).is_some_and(|l| l < level));
                    let back = self.place(e);
                    debug_assert!(back.is_none(), "cascaded entry left the horizon");
                }
                self.cascade_buf = buf;
                cascaded = true;
                break;
            }
            if cascaded {
                continue;
            }
            // Wheel empty: re-anchor on the overflow heap and pull every
            // event now inside the horizon window into the wheel.
            let Some(top) = self.overflow.peek() else { return false };
            self.cur = top.at.ticks();
            while let Some(s) = self.overflow.peek() {
                if s.at.ticks() >> HORIZON_BITS != self.cur >> HORIZON_BITS {
                    break;
                }
                let Scheduled { at, seq, event } = self.overflow.pop().expect("just peeked");
                let back = self.place(Entry { at: at.ticks(), seq, event });
                debug_assert!(back.is_none(), "drained entry fits the horizon window");
            }
        }
    }

    /// Pop the earliest event, advancing the clock to its firing time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.current.is_empty() && !self.refill() {
            return None;
        }
        let e = self.current.pop().expect("refill loaded at least one entry");
        self.len -= 1;
        self.stats.pops += 1;
        debug_assert_eq!(e.at, self.cur, "due buffer out of sync with the clock");
        Some((SimTime::from_ticks(e.at), e.event))
    }

    /// Pop the earliest event only if it fires at or before `limit` —
    /// the epoch-bounded drain a sharded simulation advances with. The
    /// clock only moves when an event is actually popped, so after a
    /// bounded drain `now()` never exceeds `limit` and barrier-time
    /// scheduling stays causal.
    pub fn pop_before(&mut self, limit: SimTime) -> Option<(SimTime, E)> {
        match self.peek_time() {
            Some(t) if t <= limit => self.pop(),
            _ => None,
        }
    }

    /// Firing time of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        if let Some(e) = self.current.last() {
            return Some(SimTime::from_ticks(e.at));
        }
        if self.occ[0] != 0 {
            let s = self.occ[0].trailing_zeros() as u64;
            return Some(SimTime::from_ticks((self.cur >> SLOT_BITS << SLOT_BITS) | s));
        }
        // The first occupied bucket of the lowest non-empty level bounds
        // everything above it (higher levels differ from the clock in a
        // higher bit), so its earliest entry is the queue minimum.
        for level in 1..LEVELS {
            if self.occ[level] == 0 {
                continue;
            }
            let p = self.occ[level].trailing_zeros() as usize;
            let min = self.slots[level * SLOTS + p]
                .iter()
                .map(|e| e.at)
                .min()
                .expect("occupancy bit set on an empty bucket");
            return Some(SimTime::from_ticks(min));
        }
        // Overflow events differ from the clock above the horizon bit,
        // so they are later than anything the wheel could hold.
        self.overflow.peek().map(|s| s.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ticks(30), "c");
        q.schedule(SimTime::from_ticks(10), "a");
        q.schedule(SimTime::from_ticks(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ticks(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ticks(7), ());
        q.schedule(SimTime::from_ticks(3), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_ticks(3));
        q.pop();
        assert_eq!(q.now(), SimTime::from_ticks(7));
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ticks(9), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_ticks(9)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    #[cfg(debug_assertions)]
    fn scheduling_in_the_past_panics_in_debug() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ticks(10), ());
        q.pop();
        q.schedule(SimTime::from_ticks(10) - SimDuration::from_ticks(1), ());
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ticks(10), 1);
        q.schedule(SimTime::from_ticks(40), 4);
        assert_eq!(q.pop().unwrap().1, 1);
        // Schedule between now (10) and the pending event (40).
        q.schedule(SimTime::from_ticks(20), 2);
        q.schedule(SimTime::from_ticks(30), 3);
        let rest: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(rest, [2, 3, 4]);
    }

    #[test]
    fn schedule_at_now_fires_after_already_due_events() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ticks(50);
        q.schedule(t, 1);
        q.schedule(t, 2);
        assert_eq!(q.pop().unwrap(), (t, 1));
        // The clock now reads 50; a zero-delay event at exactly `now`
        // must fire after the rest of the tick-50 batch, in seq order.
        q.schedule(q.now(), 3);
        assert_eq!(q.pop().unwrap(), (t, 2));
        assert_eq!(q.pop().unwrap(), (t, 3));
        q.schedule(q.now(), 4);
        assert_eq!(q.pop().unwrap(), (t, 4));
        assert!(q.pop().is_none());
    }

    #[test]
    fn jump_past_a_full_wheel_rotation() {
        // Far beyond the 2^30-tick horizon: the event parks in the
        // overflow heap and the wheel re-anchors when everything nearer
        // has drained.
        let far = 1u64 << 40;
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ticks(far), "far");
        q.schedule(SimTime::from_ticks(3), "near");
        assert_eq!(q.pop().unwrap(), (SimTime::from_ticks(3), "near"));
        assert_eq!(q.peek_time(), Some(SimTime::from_ticks(far)));
        assert_eq!(q.pop().unwrap(), (SimTime::from_ticks(far), "far"));
        assert_eq!(q.now(), SimTime::from_ticks(far));
        assert!(q.is_empty());
    }

    #[test]
    fn same_tick_fifo_across_near_and_far_scheduling() {
        // Two events for the same tick arrive via different routes — one
        // scheduled far ahead (parked high in the wheel, cascaded down),
        // one scheduled moments before it fires (placed directly at level
        // 0). FIFO order by insertion seq must survive the merge.
        let t = SimTime::from_ticks(100_000);
        let mut q = EventQueue::new();
        q.schedule(t, "early-seq");
        q.schedule(SimTime::from_ticks(99_999), "warmup");
        let (_, w) = q.pop().unwrap();
        assert_eq!(w, "warmup");
        q.schedule(t, "late-seq");
        assert_eq!(q.pop().unwrap(), (t, "early-seq"));
        assert_eq!(q.pop().unwrap(), (t, "late-seq"));
    }

    #[test]
    fn dense_ticks_across_level_boundaries() {
        // Every tick in a range spanning several level-0 windows and a
        // level-1 boundary pops in order.
        let mut q = EventQueue::new();
        for t in (0..300u64).rev() {
            q.schedule(SimTime::from_ticks(t), t);
        }
        for want in 0..300u64 {
            let (at, got) = q.pop().unwrap();
            assert_eq!(at, SimTime::from_ticks(want));
            assert_eq!(got, want);
        }
        assert!(q.is_empty());
    }

    #[test]
    fn pop_before_respects_the_limit_and_the_clock() {
        let mut q = EventQueue::new();
        for t in [4095u64, 4096, 4097] {
            q.schedule(SimTime::from_ticks(t), t);
        }
        // Limit exactly on a level-1→2 wheel boundary (4096 = 64²): the
        // boundary event itself is due, the next tick is not.
        let limit = SimTime::from_ticks(4096);
        assert_eq!(q.pop_before(limit), Some((SimTime::from_ticks(4095), 4095)));
        assert_eq!(q.pop_before(limit), Some((SimTime::from_ticks(4096), 4096)));
        assert_eq!(q.pop_before(limit), None);
        // A bounded drain must not advance the clock past the limit —
        // scheduling at limit-time afterwards has to stay legal.
        assert!(q.now() <= limit);
        q.schedule(limit, 9999);
        assert_eq!(q.pop_before(limit), Some((limit, 9999)));
        assert_eq!(q.pop_before(SimTime::from_ticks(u64::MAX)), Some((SimTime::from_ticks(4097), 4097)));
        assert!(q.pop_before(SimTime::from_ticks(u64::MAX)).is_none());
    }

    #[test]
    fn queue_stats_merge_sums_all_counters() {
        let a = QueueStats { inserts: 1, pops: 2, cascades: 3, overflow_spills: 4 };
        let mut b = QueueStats { inserts: 10, pops: 20, cascades: 30, overflow_spills: 40 };
        b.merge(&a);
        assert_eq!(b, QueueStats { inserts: 11, pops: 22, cascades: 33, overflow_spills: 44 });
    }

    #[test]
    fn stats_count_inserts_pops_cascades_and_spills() {
        let mut q = EventQueue::new();
        assert_eq!(*q.stats(), QueueStats::default());
        // One near event, one needing a cascade (level ≥ 1), one beyond
        // the horizon.
        q.schedule(SimTime::from_ticks(3), ());
        q.schedule(SimTime::from_ticks(100), ());
        q.schedule(SimTime::from_ticks(1u64 << 40), ());
        assert_eq!(q.stats().inserts, 3);
        assert_eq!(q.stats().overflow_spills, 1);
        while q.pop().is_some() {}
        let s = q.stats().clone();
        assert_eq!(s.pops, 3);
        // Tick 100 parked at level 1 and cascaded down when the clock
        // reached its window.
        assert!(s.cascades >= 1, "expected at least one cascade: {s:?}");
        // Draining the overflow heap back into the wheel must not
        // recount the insert.
        assert_eq!(s.inserts, 3);
    }

    #[test]
    fn len_counts_wheel_overflow_and_due_buffer() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ticks(1), ());
        q.schedule(SimTime::from_ticks(1), ());
        q.schedule(SimTime::from_ticks(1u64 << 35), ());
        assert_eq!(q.len(), 3);
        q.pop();
        // The second tick-1 event sits in the due buffer now.
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_ticks(1)));
        q.pop();
        q.pop();
        assert_eq!(q.len(), 0);
        assert!(q.is_empty());
    }
}
