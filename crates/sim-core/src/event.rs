//! A deterministic discrete-event queue.
//!
//! Events are ordered by firing time; ties are broken by insertion order
//! (FIFO), which makes every simulation built on this queue fully
//! deterministic for a given seed — a property the integration tests
//! assert end-to-end.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled event: a payload tagged with its firing time.
#[derive(Debug, Clone)]
pub struct Scheduled<E> {
    /// When the event fires.
    pub at: SimTime,
    /// Monotonic insertion sequence number; breaks ties FIFO.
    seq: u64,
    /// The event payload.
    pub event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue with FIFO tie-breaking.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current simulation time: the firing time of the most recently
    /// popped event (monotonically non-decreasing).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` to fire at absolute time `at`.
    ///
    /// # Panics
    /// In debug builds, panics if `at` is in the past — scheduling behind
    /// the clock would silently violate causality.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        debug_assert!(
            at >= self.now,
            "event scheduled in the past: {at} < now {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Pop the earliest event, advancing the clock to its firing time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Scheduled { at, event, .. } = self.heap.pop()?;
        debug_assert!(at >= self.now, "event queue went backwards in time");
        self.now = at;
        Some((at, event))
    }

    /// Firing time of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(debug_assertions)]
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ticks(30), "c");
        q.schedule(SimTime::from_ticks(10), "a");
        q.schedule(SimTime::from_ticks(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ticks(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ticks(7), ());
        q.schedule(SimTime::from_ticks(3), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_ticks(3));
        q.pop();
        assert_eq!(q.now(), SimTime::from_ticks(7));
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ticks(9), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_ticks(9)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    #[cfg(debug_assertions)]
    fn scheduling_in_the_past_panics_in_debug() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ticks(10), ());
        q.pop();
        q.schedule(SimTime::from_ticks(10) - SimDuration::from_ticks(1), ());
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ticks(10), 1);
        q.schedule(SimTime::from_ticks(40), 4);
        assert_eq!(q.pop().unwrap().1, 1);
        // Schedule between now (10) and the pending event (40).
        q.schedule(SimTime::from_ticks(20), 2);
        q.schedule(SimTime::from_ticks(30), 3);
        let rest: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(rest, [2, 3, 4]);
    }
}
