//! Epoch barriers for conservative parallel simulation.
//!
//! A sharded simulation advances its partitions independently between
//! **barriers** placed on multiples of a fixed epoch duration. Between
//! barriers no cross-partition interaction happens; at a barrier the
//! coordinator exchanges whatever messages accumulated and picks the
//! next barrier. Two properties make the scheme deterministic at any
//! shard count:
//!
//! 1. The barrier schedule is a pure function of *simulation state*
//!    (the minimum pending event time across partitions), never of
//!    which worker thread ran what.
//! 2. Barriers land on epoch multiples, so a partition advanced "too
//!    far" can never exist — every partition stops at exactly the same
//!    simulated instant.
//!
//! [`EpochClock::next_barrier`] additionally skips empty epochs: when
//! the nearest pending event is many epochs away, the next barrier
//! jumps straight to the epoch window containing it instead of
//! ticking through silence one epoch at a time.

use crate::time::{SimDuration, SimTime};

/// The barrier schedule of one sharded run: barriers sit on multiples
/// of `epoch`.
#[derive(Debug, Clone, Copy)]
pub struct EpochClock {
    /// Barrier spacing in ticks (always ≥ 1).
    epoch: u64,
}

impl EpochClock {
    /// A schedule with barriers every `epoch` (clamped to ≥ 1 tick).
    pub fn new(epoch: SimDuration) -> EpochClock {
        EpochClock { epoch: epoch.ticks().max(1) }
    }

    /// Barrier spacing.
    pub fn epoch(&self) -> SimDuration {
        SimDuration::from_ticks(self.epoch)
    }

    /// The earliest barrier at or after `min_pending`: the smallest
    /// multiple of the epoch that is ≥ `min_pending`. Because the caller
    /// passes the minimum pending event time — which is strictly past
    /// the previous barrier once that barrier has been fully advanced —
    /// consecutive calls yield a strictly increasing barrier sequence
    /// without ever stepping through event-free epochs.
    ///
    /// Saturates at `u64::MAX` rather than overflowing for pathological
    /// far-future events.
    pub fn next_barrier(&self, min_pending: SimTime) -> SimTime {
        let t = min_pending.ticks();
        let k = t / self.epoch + u64::from(!t.is_multiple_of(self.epoch));
        SimTime::from_ticks(k.saturating_mul(self.epoch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn barriers_land_on_epoch_multiples() {
        let c = EpochClock::new(SimDuration::from_ticks(100));
        assert_eq!(c.next_barrier(SimTime::ZERO), SimTime::ZERO);
        assert_eq!(c.next_barrier(SimTime::from_ticks(1)), SimTime::from_ticks(100));
        assert_eq!(c.next_barrier(SimTime::from_ticks(100)), SimTime::from_ticks(100));
        assert_eq!(c.next_barrier(SimTime::from_ticks(101)), SimTime::from_ticks(200));
    }

    #[test]
    fn empty_epochs_are_skipped() {
        let c = EpochClock::new(SimDuration::from_ticks(100));
        // An event 10k epochs out jumps the barrier straight there.
        assert_eq!(
            c.next_barrier(SimTime::from_ticks(1_000_050)),
            SimTime::from_ticks(1_000_100)
        );
    }

    #[test]
    fn zero_epoch_clamps_to_one_tick() {
        let c = EpochClock::new(SimDuration::ZERO);
        assert_eq!(c.epoch(), SimDuration::from_ticks(1));
        assert_eq!(c.next_barrier(SimTime::from_ticks(7)), SimTime::from_ticks(7));
    }

    #[test]
    fn far_future_saturates() {
        let c = EpochClock::new(SimDuration::from_ticks(3));
        let far = SimTime::from_ticks(u64::MAX - 1);
        assert!(c.next_barrier(far) >= far);
    }

    #[test]
    fn barrier_sequence_is_strictly_increasing() {
        // Simulates the coordinator loop: after advancing to barrier E,
        // the minimum pending time is > E, so the next barrier is > E.
        let c = EpochClock::new(SimDuration::from_ticks(64));
        let mut barrier = SimTime::ZERO;
        for step in [1u64, 63, 64, 65, 4096, 4097] {
            let min_pending = barrier + SimDuration::from_ticks(step);
            let next = c.next_barrier(min_pending);
            assert!(next > barrier, "{next} !> {barrier}");
            assert!(next >= min_pending);
            barrier = next;
        }
    }
}
