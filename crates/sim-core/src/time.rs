//! Simulation time in the paper's native unit: 10 µs ticks.
//!
//! §4.1: "For traces in our standard format, this value was converted to
//! 10 µs units, as we believed this was sufficient time resolution for I/O
//! traces." All timestamps in the trace format are differences in this
//! unit, and the simulator clock advances in it too.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Number of microseconds represented by one tick.
pub const TICK_MICROS: u64 = 10;

/// Number of nanoseconds represented by one tick (10 000). Interval
/// flags specified in nanoseconds (e.g. `--timeline`) divide by this to
/// land on the tick grid.
pub const TICK_NANOS: u64 = TICK_MICROS * 1_000;

/// Number of ticks in one second (100 000).
pub const TICKS_PER_SECOND: u64 = 1_000_000 / TICK_MICROS;

/// An absolute instant on the simulation clock, counted in 10 µs ticks
/// since the start of the simulation (or of the trace).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of simulation time, counted in 10 µs ticks.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The origin of the simulation clock.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from raw 10 µs ticks.
    #[inline]
    pub const fn from_ticks(ticks: u64) -> Self {
        SimTime(ticks)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * TICKS_PER_SECOND)
    }

    /// Construct from microseconds, rounding down to tick resolution.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us / TICK_MICROS)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000 / TICK_MICROS)
    }

    /// Raw tick count.
    #[inline]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Time as (possibly fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / TICKS_PER_SECOND as f64
    }

    /// Duration elapsed since `earlier`, saturating at zero if `earlier`
    /// is actually later (clock skew never occurs in the simulator, but
    /// decoded traces may be adversarial).
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference; `None` when `earlier > self`.
    #[inline]
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from raw 10 µs ticks.
    #[inline]
    pub const fn from_ticks(ticks: u64) -> Self {
        SimDuration(ticks)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * TICKS_PER_SECOND)
    }

    /// Construct from microseconds, rounding down.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us / TICK_MICROS)
    }

    /// Construct from microseconds, rounding *up* so that nonzero physical
    /// latencies never collapse to a free (zero-tick) operation.
    #[inline]
    pub const fn from_micros_ceil(us: u64) -> Self {
        SimDuration(us.div_ceil(TICK_MICROS))
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000 / TICK_MICROS)
    }

    /// Construct from fractional seconds, rounding to the nearest tick.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        debug_assert!(secs >= 0.0, "negative duration");
        SimDuration((secs * TICKS_PER_SECOND as f64).round() as u64)
    }

    /// Raw tick count.
    #[inline]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Span as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / TICKS_PER_SECOND as f64
    }

    /// Span as fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 * TICK_MICROS as f64 / 1_000.0
    }

    /// True when the span is zero ticks.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// The larger of two spans.
    #[inline]
    pub fn max(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.max(rhs.0))
    }

    /// The smaller of two spans.
    #[inline]
    pub fn min(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.min(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_is_hundred_thousand_ticks() {
        assert_eq!(SimTime::from_secs(1).ticks(), 100_000);
        assert_eq!(SimDuration::from_secs(1).ticks(), 100_000);
    }

    #[test]
    fn micros_round_down_but_ceil_rounds_up() {
        assert_eq!(SimDuration::from_micros(19).ticks(), 1);
        assert_eq!(SimDuration::from_micros(9).ticks(), 0);
        assert_eq!(SimDuration::from_micros_ceil(9).ticks(), 1);
        assert_eq!(SimDuration::from_micros_ceil(10).ticks(), 1);
        assert_eq!(SimDuration::from_micros_ceil(11).ticks(), 2);
    }

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::from_secs(3);
        let d = SimDuration::from_millis(250);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_ticks(5);
        let b = SimTime::from_ticks(9);
        assert_eq!(b.saturating_since(a).ticks(), 4);
        assert_eq!(a.saturating_since(b).ticks(), 0);
        assert_eq!(a.checked_since(b), None);
    }

    #[test]
    fn seconds_conversion_is_exactly_invertible_for_whole_seconds() {
        for s in [0u64, 1, 17, 1897] {
            assert_eq!(SimTime::from_secs(s).as_secs_f64(), s as f64);
        }
    }

    #[test]
    fn from_secs_f64_rounds_to_nearest_tick() {
        // 0.000014 s = 1.4 ticks -> 1 tick; 0.000016 s = 1.6 ticks -> 2.
        assert_eq!(SimDuration::from_secs_f64(0.000_014).ticks(), 1);
        assert_eq!(SimDuration::from_secs_f64(0.000_016).ticks(), 2);
    }

    #[test]
    fn display_formats_as_seconds() {
        assert_eq!(format!("{}", SimTime::from_secs(2)), "2.0000s");
        assert_eq!(format!("{}", SimDuration::from_millis(1500)), "1.5000s");
    }

    #[test]
    fn min_max_behave() {
        let a = SimDuration::from_ticks(3);
        let b = SimDuration::from_ticks(7);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(b.saturating_sub(a).ticks(), 4);
        assert_eq!(a.saturating_sub(b).ticks(), 0);
    }
}
