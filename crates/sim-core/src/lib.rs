//! Discrete-event simulation kernel shared by every subsystem of the
//! Miller-1991 reproduction.
//!
//! The paper's trace format stores all times as deltas in **10 µs ticks**
//! ("we believed this was sufficient time resolution for I/O traces", §4.1),
//! so the whole reproduction standardizes on that unit via [`SimTime`] and
//! [`SimDuration`]. The kernel additionally provides:
//!
//! * [`event`] — a deterministic event queue with stable FIFO ordering for
//!   simultaneous events, the backbone of the buffering simulator;
//! * [`epoch`] — the barrier schedule sharded (conservative-parallel)
//!   simulations advance between;
//! * [`rng`] — seeded, reproducible random number generation (ChaCha8) plus
//!   the small set of distributions the workload models need;
//! * [`stats`] — streaming summary statistics, histograms, the 1-second
//!   time-series binning used by every figure in the paper, and the
//!   autocorrelation machinery used for cycle detection;
//! * [`units`] — Cray Y-MP era unit constants (8-byte words, megawords,
//!   512-byte trace blocks, device rates).

pub mod epoch;
pub mod event;
pub mod rng;
pub mod stats;
pub mod time;
pub mod units;

pub use epoch::EpochClock;
pub use event::{EventQueue, QueueStats, Scheduled};
pub use rng::SimRng;
pub use stats::{Autocorrelation, Histogram, RateSeries, StreamingStats};
pub use time::{SimDuration, SimTime, TICKS_PER_SECOND, TICK_MICROS, TICK_NANOS};
