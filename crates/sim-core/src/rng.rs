//! Deterministic random number generation for workload synthesis.
//!
//! Every random quantity in the reproduction flows through [`SimRng`],
//! a seeded ChaCha8 stream, so that a `(workload, seed)` pair always
//! produces bit-identical traces — the determinism the integration tests
//! rely on and a prerequisite for meaningful simulator comparisons
//! (the same trace is replayed under every cache configuration).

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Seeded deterministic RNG with the few distributions the workload
/// models need.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: ChaCha8Rng,
}

impl SimRng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Derive an independent child stream, e.g. one per simulated process,
    /// so adding a process never perturbs the randomness of another.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        let seed = self.inner.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::new(seed)
    }

    /// Uniform integer in `[lo, hi]` (inclusive). `lo == hi` is allowed.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "uniform_u64 range inverted: {lo} > {hi}");
        self.inner.gen_range(lo..=hi)
    }

    /// Uniform float in `[lo, hi)`.
    pub fn uniform_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "uniform_f64 range inverted");
        if lo == hi {
            return lo;
        }
        self.inner.gen_range(lo..hi)
    }

    /// Bernoulli draw with probability `p` of `true`. `p` is clamped to
    /// `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        self.inner.gen_bool(p)
    }

    /// Exponentially distributed value with the given mean (inter-arrival
    /// jitter for the checkpoint scheduler).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive");
        let u: f64 = self.inner.gen_range(f64::EPSILON..1.0);
        -mean * u.ln()
    }

    /// A value jittered multiplicatively by up to `frac` around `base`
    /// (uniform in `[base*(1-frac), base*(1+frac)]`), never negative.
    ///
    /// The paper notes access sizes and cycle shapes are "relatively
    /// constant within programs" (§5.2); this models the small residual
    /// variation without destroying the constancy.
    pub fn jitter(&mut self, base: f64, frac: f64) -> f64 {
        assert!((0.0..=1.0).contains(&frac), "jitter fraction out of range");
        if base == 0.0 || frac == 0.0 {
            return base;
        }
        self.uniform_f64(base * (1.0 - frac), base * (1.0 + frac)).max(0.0)
    }

    /// Raw u64, for hashing-style uses.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams suspiciously correlated");
    }

    #[test]
    fn forked_streams_are_independent_of_later_parent_use() {
        let mut parent1 = SimRng::new(7);
        let mut child1 = parent1.fork(1);
        let mut parent2 = SimRng::new(7);
        let mut child2 = parent2.fork(1);
        // Consume different amounts from the parents afterwards.
        parent1.next_u64();
        for _ in 0..10 {
            parent2.next_u64();
        }
        for _ in 0..50 {
            assert_eq!(child1.next_u64(), child2.next_u64());
        }
    }

    #[test]
    fn uniform_bounds_respected() {
        let mut rng = SimRng::new(3);
        for _ in 0..1000 {
            let v = rng.uniform_u64(10, 20);
            assert!((10..=20).contains(&v));
        }
        assert_eq!(rng.uniform_u64(5, 5), 5);
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = SimRng::new(9);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.exponential(4.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 4.0).abs() < 0.2, "mean {mean} too far from 4.0");
    }

    #[test]
    fn jitter_stays_in_band_and_zero_passthrough() {
        let mut rng = SimRng::new(11);
        for _ in 0..1000 {
            let v = rng.jitter(100.0, 0.25);
            assert!((75.0..=125.0).contains(&v), "jitter {v} escaped band");
        }
        assert_eq!(rng.jitter(0.0, 0.5), 0.0);
        assert_eq!(rng.jitter(42.0, 0.0), 42.0);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(13);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        // Out-of-range p is clamped rather than panicking.
        assert!(rng.chance(7.5));
        assert!(!rng.chance(-1.0));
    }
}
