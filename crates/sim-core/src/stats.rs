//! Statistics utilities shared by trace analysis, the simulator, and the
//! experiment harness.
//!
//! * [`StreamingStats`] — Welford single-pass mean/variance/min/max.
//! * [`Histogram`] — fixed-edge histogram with percentile queries, used for
//!   access-size distributions.
//! * [`RateSeries`] — the 1-second (configurable) binning that produces the
//!   "MB per CPU second" series of Figures 3, 4, 6 and 7.
//! * [`Autocorrelation`] — lag scan over a binned series, used to detect the
//!   evenly-spaced request-rate cycles of §5.3.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Single-pass summary statistics (Welford's algorithm).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StreamingStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl StreamingStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        StreamingStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Fold one observation in.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Coefficient of variation (stddev / mean); 0 when the mean is 0.
    /// The paper's burstiness discussion is essentially about this being
    /// large for supercomputer I/O.
    pub fn cv(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.stddev() / m
        }
    }

    /// Merge another accumulator into this one (parallel sweeps).
    pub fn merge(&mut self, other: &StreamingStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A histogram over explicit bucket edges. Values below the first edge go
/// to bucket 0; values at or above the last edge go to the final overflow
/// bucket.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    edges: Vec<f64>,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Build from strictly increasing edges (at least one).
    pub fn new(edges: Vec<f64>) -> Self {
        assert!(!edges.is_empty(), "histogram needs at least one edge");
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "histogram edges must be strictly increasing"
        );
        let n = edges.len();
        Histogram {
            edges,
            counts: vec![0; n + 1],
            total: 0,
        }
    }

    /// A power-of-two size histogram from `lo` bytes to `hi` bytes, the
    /// natural shape for I/O request sizes.
    pub fn pow2(lo: u64, hi: u64) -> Self {
        assert!(lo > 0 && lo < hi, "pow2 histogram needs 0 < lo < hi");
        let mut edges = Vec::new();
        let mut e = lo;
        loop {
            edges.push(e as f64);
            match e.checked_mul(2) {
                Some(next) if next <= hi => e = next,
                _ => break,
            }
        }
        Histogram::new(edges)
    }

    /// Record one observation.
    pub fn record(&mut self, value: f64) {
        self.record_n(value, 1);
    }

    /// Record `n` observations of the same value — the bulk entry point
    /// for callers that pre-bucket in their hot path (e.g. the disk
    /// model's power-of-two seek-distance array) and materialize a
    /// `Histogram` only at report time.
    pub fn record_n(&mut self, value: f64, n: u64) {
        let idx = self.edges.partition_point(|&e| e <= value);
        self.counts[idx] += n;
        self.total += n;
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Bucket counts; `counts()[i]` counts values in `[edges[i-1], edges[i])`
    /// with underflow at index 0 and overflow at the end.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Bucket edges.
    pub fn edges(&self) -> &[f64] {
        &self.edges
    }

    /// Merge another histogram's counts into this one. Both histograms
    /// must have been built over identical edges (e.g. per-disk seek
    /// histograms aggregated across a farm).
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.edges, other.edges,
            "can only merge histograms with identical edges"
        );
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.total += other.total;
    }

    /// Approximate quantile (`q` in `[0,1]`) by bucket upper edge;
    /// `None` when empty or `q` is NaN.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 || q.is_nan() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut acc = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                // Upper edge of this bucket (or last edge for the overflow
                // bucket).
                return Some(self.edges[i.min(self.edges.len() - 1)]);
            }
        }
        Some(*self.edges.last().unwrap())
    }
}

/// Accumulates (time, bytes) events into fixed-width bins and yields a rate
/// series — the paper's "MB per CPU second" plots at 1-second resolution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RateSeries {
    bin: SimDuration,
    bins: Vec<f64>,
}

impl RateSeries {
    /// A series with the given bin width (must be nonzero).
    pub fn new(bin: SimDuration) -> Self {
        assert!(!bin.is_zero(), "bin width must be nonzero");
        RateSeries { bin, bins: Vec::new() }
    }

    /// The conventional 1-second bins used by the paper's figures.
    pub fn per_second() -> Self {
        RateSeries::new(SimDuration::from_secs(1))
    }

    /// Add `amount` (e.g. bytes) at instant `at`.
    pub fn add(&mut self, at: SimTime, amount: f64) {
        let idx = (at.ticks() / self.bin.ticks()) as usize;
        if idx >= self.bins.len() {
            self.bins.resize(idx + 1, 0.0);
        }
        self.bins[idx] += amount;
    }

    /// Bin width.
    pub fn bin_width(&self) -> SimDuration {
        self.bin
    }

    /// Raw per-bin totals (amount per bin, not per second).
    pub fn bins(&self) -> &[f64] {
        &self.bins
    }

    /// Per-bin totals normalized to a per-second rate.
    pub fn rates_per_second(&self) -> Vec<f64> {
        let scale = 1.0 / self.bin.as_secs_f64();
        self.bins.iter().map(|&b| b * scale).collect()
    }

    /// Number of bins (i.e. series length).
    pub fn len(&self) -> usize {
        self.bins.len()
    }

    /// True when nothing has been added.
    pub fn is_empty(&self) -> bool {
        self.bins.is_empty()
    }

    /// Truncate the series to the first `n` bins (Figures 6–7 plot only the
    /// first 200 seconds of wall time).
    pub fn truncated(&self, n: usize) -> RateSeries {
        RateSeries {
            bin: self.bin,
            bins: self.bins.iter().copied().take(n).collect(),
        }
    }

    /// Summary statistics over the per-second rates.
    pub fn stats(&self) -> StreamingStats {
        let mut s = StreamingStats::new();
        for r in self.rates_per_second() {
            s.push(r);
        }
        s
    }
}

/// Lag-scan autocorrelation over a (mean-removed) series; used to find the
/// dominant cycle period of an application's I/O demand (§5.3: "request
/// rate peaks were generally evenly spaced").
#[derive(Debug, Clone)]
pub struct Autocorrelation {
    values: Vec<f64>,
}

impl Autocorrelation {
    /// Wrap a series of per-bin values.
    pub fn new(values: Vec<f64>) -> Self {
        Autocorrelation { values }
    }

    /// Normalized autocorrelation at `lag` (1.0 at lag 0; `None` when the
    /// series is shorter than `lag + 2` or has zero variance).
    pub fn at(&self, lag: usize) -> Option<f64> {
        let n = self.values.len();
        if n < lag + 2 {
            return None;
        }
        let mean = self.values.iter().sum::<f64>() / n as f64;
        let var: f64 = self.values.iter().map(|v| (v - mean).powi(2)).sum();
        if var == 0.0 {
            return None;
        }
        let cov: f64 = (0..n - lag)
            .map(|i| (self.values[i] - mean) * (self.values[i + lag] - mean))
            .sum();
        Some(cov / var)
    }

    /// The lag in `[min_lag, max_lag]` with the highest autocorrelation,
    /// together with that correlation; `None` when no lag is evaluable.
    pub fn dominant_period(&self, min_lag: usize, max_lag: usize) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for lag in min_lag..=max_lag {
            if let Some(r) = self.at(lag) {
                if best.is_none_or(|(_, br)| r > br) {
                    best = Some((lag, r));
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_stats_basics() {
        let mut s = StreamingStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert!((s.sum() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_benign() {
        let s = StreamingStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.cv(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 3.0).collect();
        let mut whole = StreamingStats::new();
        for &x in &data {
            whole.push(x);
        }
        let mut a = StreamingStats::new();
        let mut b = StreamingStats::new();
        for &x in &data[..37] {
            a.push(x);
        }
        for &x in &data[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = StreamingStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = (a.count(), a.mean(), a.variance());
        a.merge(&StreamingStats::new());
        assert_eq!((a.count(), a.mean(), a.variance()), before);

        let mut e = StreamingStats::new();
        e.merge(&a);
        assert_eq!(e.count(), 2);
        assert!((e.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(vec![10.0, 20.0, 40.0]);
        for v in [5.0, 10.0, 15.0, 25.0, 100.0] {
            h.record(v);
        }
        // under-10 | [10,20) | [20,40) | >=40
        assert_eq!(h.counts(), &[1, 2, 1, 1]);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn pow2_histogram_shape() {
        let h = Histogram::pow2(1024, 8192);
        assert_eq!(h.edges(), &[1024.0, 2048.0, 4096.0, 8192.0]);
        assert_eq!(h.counts().len(), 5);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::pow2(1, 1 << 10);
        for _ in 0..90 {
            h.record(3.0); // falls in [2,4) bucket, upper edge 4
        }
        for _ in 0..10 {
            h.record(600.0); // [512,1024) bucket, upper edge 1024
        }
        assert_eq!(h.quantile(0.5), Some(4.0));
        assert_eq!(h.quantile(0.99), Some(1024.0));
        assert_eq!(Histogram::pow2(1, 2).quantile(0.5), None);
    }

    #[test]
    fn histogram_quantile_edge_cases() {
        // Empty: every quantile is None, including the extremes.
        let empty = Histogram::new(vec![8.0]);
        assert_eq!(empty.quantile(0.0), None);
        assert_eq!(empty.quantile(1.0), None);

        // NaN never aliases to a real quantile.
        let mut h = Histogram::new(vec![8.0]);
        h.record(3.0);
        assert_eq!(h.quantile(f64::NAN), None);

        // Single-edge histogram (two buckets: below / at-or-above).
        assert_eq!(h.quantile(0.0), Some(8.0));
        assert_eq!(h.quantile(1.0), Some(8.0));
        h.record(9.0);
        // p0 reports the first occupied bucket's upper edge; p100 the last.
        assert_eq!(h.quantile(0.0), Some(8.0));
        assert_eq!(h.quantile(1.0), Some(8.0));

        // p0/p100 with a spread across buckets land on first/last occupied.
        let mut wide = Histogram::pow2(1, 1 << 10);
        wide.record(3.0); // [2,4) -> upper edge 4
        wide.record(600.0); // [512,1024) -> upper edge 1024
        assert_eq!(wide.quantile(0.0), Some(4.0));
        assert_eq!(wide.quantile(1.0), Some(1024.0));
        // Out-of-range q clamps rather than panicking.
        assert_eq!(wide.quantile(-3.0), Some(4.0));
        assert_eq!(wide.quantile(7.0), Some(1024.0));
    }

    #[test]
    fn pow2_survives_near_max_ranges() {
        // The doubling loop must not overflow even when hi is close to
        // u64::MAX (a naive `e *= 2` panics in debug builds here).
        let h = Histogram::pow2(1 << 62, u64::MAX);
        assert_eq!(h.edges().len(), 2);
        assert_eq!(h.edges()[0], (1u64 << 62) as f64);
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = Histogram::pow2(1024, 8192);
        a.record(1500.0);
        let mut b = Histogram::pow2(1024, 8192);
        b.record(1600.0);
        b.record(100_000.0);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        // [1024,2048) holds two, the overflow bucket holds one.
        assert_eq!(a.counts()[1], 2);
        assert_eq!(*a.counts().last().unwrap(), 1);
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut bulk = Histogram::pow2(1024, 8192);
        bulk.record_n(1500.0, 3);
        bulk.record_n(100_000.0, 2);
        let mut single = Histogram::pow2(1024, 8192);
        for v in [1500.0, 1500.0, 1500.0, 100_000.0, 100_000.0] {
            single.record(v);
        }
        assert_eq!(bulk.counts(), single.counts());
        assert_eq!(bulk.total(), single.total());
    }

    #[test]
    fn rate_series_binning() {
        let mut rs = RateSeries::per_second();
        rs.add(SimTime::from_secs(0), 100.0);
        rs.add(SimTime::from_ticks(50_000), 50.0); // 0.5 s -> bin 0
        rs.add(SimTime::from_secs(2), 10.0);
        assert_eq!(rs.len(), 3);
        assert_eq!(rs.bins(), &[150.0, 0.0, 10.0]);
        assert_eq!(rs.rates_per_second(), vec![150.0, 0.0, 10.0]);
    }

    #[test]
    fn rate_series_subsecond_bins_scale() {
        let mut rs = RateSeries::new(SimDuration::from_millis(100));
        rs.add(SimTime::ZERO, 5.0);
        assert_eq!(rs.rates_per_second()[0], 50.0);
    }

    #[test]
    fn rate_series_truncate() {
        let mut rs = RateSeries::per_second();
        for s in 0..10 {
            rs.add(SimTime::from_secs(s), 1.0);
        }
        let t = rs.truncated(4);
        assert_eq!(t.len(), 4);
        assert_eq!(t.bins(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn autocorrelation_detects_period() {
        // Period-8 sawtooth over 160 bins.
        let vals: Vec<f64> = (0..160).map(|i| (i % 8) as f64).collect();
        let ac = Autocorrelation::new(vals);
        let (lag, r) = ac.dominant_period(2, 20).unwrap();
        assert_eq!(lag, 8);
        assert!(r > 0.9, "period correlation too weak: {r}");
    }

    #[test]
    fn autocorrelation_flat_series_is_none() {
        let ac = Autocorrelation::new(vec![5.0; 50]);
        assert_eq!(ac.at(3), None);
        let short = Autocorrelation::new(vec![1.0, 2.0]);
        assert_eq!(short.at(5), None);
    }

    #[test]
    fn autocorrelation_lag_zero_is_one() {
        let ac = Autocorrelation::new(vec![1.0, 5.0, 2.0, 8.0, 3.0]);
        assert!((ac.at(0).unwrap() - 1.0).abs() < 1e-12);
    }
}
