//! Cray Y-MP era unit constants used throughout the paper.
//!
//! The paper measures memory in **megawords** (MW) with 8-byte words
//! (§2.2: "128 MW (each word is eight bytes long)"), trace offsets in
//! **512-byte blocks** (appendix: `TRACE_BLOCK_SIZE 512`), and device
//! bandwidths in MB/s.

/// Bytes per Cray word.
pub const WORD_BYTES: u64 = 8;

/// Bytes per kilobyte (binary, as the era used).
pub const KB: u64 = 1024;

/// Bytes per megabyte.
pub const MB: u64 = 1024 * 1024;

/// Bytes per gigabyte.
pub const GB: u64 = 1024 * 1024 * 1024;

/// Bytes per megaword (8 MB).
pub const MEGAWORD_BYTES: u64 = WORD_BYTES * 1024 * 1024;

/// The trace format's block unit (appendix `TRACE_BLOCK_SIZE`).
pub const TRACE_BLOCK_SIZE: u64 = 512;

/// Total main memory of the NASA Ames Cray Y-MP 8/832 (128 MW).
pub const YMP_MAIN_MEMORY_BYTES: u64 = 128 * MEGAWORD_BYTES;

/// Total SSD size at NASA Ames (256 MW).
pub const YMP_SSD_BYTES: u64 = 256 * MEGAWORD_BYTES;

/// Per-processor share of the SSD on the 8-CPU machine (32 MW = 256 MB).
pub const YMP_SSD_PER_CPU_BYTES: u64 = YMP_SSD_BYTES / 8;

/// Sustained transfer rate of one Y-MP disk (§2.2: 9.6 MB/sec).
pub const YMP_DISK_MB_PER_SEC: f64 = 9.6;

/// Aggregate disk capacity at NASA Ames (§2.2: 35.2 GB).
pub const YMP_DISK_FARM_BYTES: u64 = (35.2 * GB as f64) as u64;

/// SSD transfer rate used by the paper's simulations
/// (§6.3: "approximately 1 µs per kilobyte transferred (at 1 GB/sec)").
pub const SSD_GB_PER_SEC: f64 = 1.0;

/// Cray Y-MP CPU cycle time (§2.2: 6 ns).
pub const YMP_CYCLE_NS: f64 = 6.0;

/// Convert megawords to bytes.
#[inline]
pub const fn megawords(mw: u64) -> u64 {
    mw * MEGAWORD_BYTES
}

/// Convert a byte count to (possibly fractional) megabytes.
#[inline]
pub fn bytes_to_mb(bytes: u64) -> f64 {
    bytes as f64 / MB as f64
}

/// Convert a byte count to (possibly fractional) kilobytes.
#[inline]
pub fn bytes_to_kb(bytes: u64) -> f64 {
    bytes as f64 / KB as f64
}

/// Convert megabytes (fractional) to bytes, rounding to the nearest byte.
#[inline]
pub fn mb_to_bytes(mb: f64) -> u64 {
    (mb * MB as f64).round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn megaword_is_eight_megabytes() {
        assert_eq!(MEGAWORD_BYTES, 8 * MB);
        assert_eq!(megawords(4), 32 * MB);
    }

    #[test]
    fn ymp_configuration_matches_paper() {
        // 128 MW main memory = 1 GB; 256 MW SSD = 2 GB; 32 MW/CPU = 256 MB.
        assert_eq!(YMP_MAIN_MEMORY_BYTES, 1024 * MB);
        assert_eq!(YMP_SSD_BYTES, 2048 * MB);
        assert_eq!(YMP_SSD_PER_CPU_BYTES, 256 * MB);
    }

    #[test]
    fn byte_conversions_invert() {
        assert_eq!(mb_to_bytes(bytes_to_mb(123_456_789)), 123_456_789);
        assert_eq!(bytes_to_kb(2048), 2.0);
    }

    #[test]
    fn trace_block_matches_appendix() {
        assert_eq!(TRACE_BLOCK_SIZE, 512);
    }
}
