//! `miller-core` — the one-stop public API for the Miller-1991
//! reproduction.
//!
//! The crate wires the subsystems together behind two builders:
//!
//! * [`Study`] — characterize an application the way §5 of the paper
//!   does: generate (or load) its trace, optionally push it through the
//!   `procstat` collection pipeline, and compute summaries,
//!   sequentiality, cycles, burstiness, and the I/O-type taxonomy.
//! * [`CampaignBuilder`] — run §6-style buffering simulations: pick a
//!   cache tier/size/policy, add application processes, and get idle
//!   time, utilization, and disk-traffic series back.
//!
//! ```
//! use miller_core::{AppKind, CampaignBuilder, Study};
//!
//! // Characterize venus (1/16 scale for a fast doctest).
//! let report = Study::app(AppKind::Venus).scale(16).seed(7).characterize();
//! assert!(report.summary.mb_per_sec > 30.0);
//! assert!(report.sequentiality.same_size_fraction() > 0.8);
//!
//! // Simulate two venus copies against a 32 MB buffered cache.
//! let sim = CampaignBuilder::buffered_mb(32)
//!     .app(AppKind::Venus)
//!     .app(AppKind::Venus)
//!     .scale(16)
//!     .run();
//! assert!(sim.utilization() > 0.2);
//! ```

pub use batch_queue::{BatchMachine, Job, JobOutcome, QueueDef};
pub use buffer_cache::{BlockCache, CacheConfig, CacheStats, WritePolicy};
pub use fs_map::{measure as measure_amplification, translate as translate_to_physical, Amplification, FsConfig, FsLayout};
pub use experiments::{
    ablations, app_events, app_trace, claims, extras, figures, modern, nplus1, par_sweep, render,
    run_campaign, run_campaign_in, scaled_spec, serial_sweep, shard_count, tables, thread_count,
    CampaignSpec, ModernComparison, Scale, StoreConfig, StoreFootprint, TraceArtifact, TraceStore,
};
pub use iosim::{CacheTier, ClusterReport, DeviceSpec, SchedParams, SimConfig, SimReport, Simulation};
pub use iotrace::{
    encode_frames, measure_compression, read_trace, write_trace, CompressionReport, DataKind,
    Direction, FrameFile, IoEvent, Scope, Synchrony, Trace, TraceDecoder, TraceEncoder, TraceItem,
};
pub use procstat::{reconstruct, Collector, LibraryShim, Pipe, PipelineReport, ShimConfig};
pub use sim_core::{SimDuration, SimRng, SimTime};
pub use storage_model::{
    AnyDevice, BlockDevice, DiskModel, DiskParams, DiskSched, NvmeModel, NvmeParams, SsdModel,
    SsdParams, TapeModel, TapeParams, TieredDevice, TieredParams,
};
pub use trace_analysis::{
    amdahl::{AmdahlReport, YMP_DEFAULT_MIPS},
    analyze_seeks, analyze_sequentiality, classify_trace, cpu_time_series, detect_cycles, wall_time_series,
    AppSummary, Burstiness, ClassifiedIo, CycleReport, IoClass, SeekReport, Select,
    SequentialityReport,
};
pub use workload::{
    generate, paper_targets, AppKind, AppSpec, CheckpointDef, CycleDef, FileDef, PaperTargets,
    SweepOrder, ALL_APPS,
};

use sim_core::units::MB;

/// A §5-style characterization of one application trace.
#[derive(Debug, Clone)]
pub struct Characterization {
    /// The trace analyzed.
    pub trace: Trace,
    /// Table 1/2-style totals and rates.
    pub summary: AppSummary,
    /// Sequentiality and size constancy (§5.2).
    pub sequentiality: SequentialityReport,
    /// Cycle structure (§5.3).
    pub cycles: CycleReport,
    /// Required / checkpoint / data-swap taxonomy (§5.1).
    pub classes: ClassifiedIo,
    /// Burstiness of the per-CPU-second demand.
    pub burstiness: Burstiness,
}

/// Builder for application characterizations.
#[derive(Debug, Clone)]
pub struct Study {
    kind: AppKind,
    seed: u64,
    scale: u32,
    through_procstat: bool,
}

impl Study {
    /// Characterize `kind`.
    pub fn app(kind: AppKind) -> Study {
        Study { kind, seed: 42, scale: 1, through_procstat: false }
    }

    /// Workload seed (default 42).
    pub fn seed(mut self, seed: u64) -> Study {
        self.seed = seed;
        self
    }

    /// Shrink run length by `k` while preserving rates (default 1 =
    /// full paper scale).
    pub fn scale(mut self, k: u32) -> Study {
        self.scale = k;
        self
    }

    /// Route the trace through the emulated `procstat` collection
    /// pipeline (packetize → pipe → collector → reconstruct) before
    /// analysis, exactly as the paper's traces were gathered.
    pub fn through_procstat(mut self) -> Study {
        self.through_procstat = true;
        self
    }

    /// Generate the trace.
    pub fn trace(&self) -> Trace {
        let artifact =
            experiments::app_trace(self.kind, 1, self.seed, experiments::Scale(self.scale));
        if !self.through_procstat {
            return artifact.trace();
        }
        let pipe = Pipe::new();
        let mut shim = LibraryShim::new(ShimConfig::default(), pipe.clone());
        let mut collector = Collector::new(pipe);
        for e in artifact.events().iter() {
            shim.on_io(*e);
        }
        shim.close_all();
        collector.drain();
        let (events, _report) =
            reconstruct(collector.packets()).expect("pipeline reconstruction");
        let mut out = Trace::new();
        for (_, text) in artifact.comments() {
            out.push_comment(text.clone());
        }
        for e in events {
            out.push(e);
        }
        out
    }

    /// Run the full characterization.
    pub fn characterize(&self) -> Characterization {
        let trace = self.trace();
        let summary = AppSummary::from_trace(&trace);
        let sequentiality = analyze_sequentiality(&trace);
        let cycles = detect_cycles(&trace, SimDuration::from_secs(1));
        let classes = classify_trace(&trace);
        let series = cpu_time_series(&trace, SimDuration::from_secs(1), Select::Both);
        let burstiness = Burstiness::of(&series);
        Characterization { trace, summary, sequentiality, cycles, classes, burstiness }
    }
}

/// Builder for buffering-simulation campaigns.
#[derive(Debug)]
pub struct CampaignBuilder {
    config: SimConfig,
    apps: Vec<AppKind>,
    traces: Vec<(String, Trace)>,
    seed: u64,
    scale: u32,
}

impl CampaignBuilder {
    /// Start from an explicit simulator configuration.
    pub fn new(config: SimConfig) -> CampaignBuilder {
        CampaignBuilder { config, apps: Vec::new(), traces: Vec::new(), seed: 42, scale: 1 }
    }

    /// A main-memory buffered cache of `mb` megabytes with the paper's
    /// best policies (read-ahead + write-behind).
    pub fn buffered_mb(mb: u64) -> CampaignBuilder {
        CampaignBuilder::new(SimConfig::buffered(mb * MB))
    }

    /// The per-CPU SSD share as the cache (§6.3).
    pub fn ssd() -> CampaignBuilder {
        CampaignBuilder::new(SimConfig::ssd())
    }

    /// No cache: every request goes to disk.
    pub fn uncached() -> CampaignBuilder {
        CampaignBuilder::new(SimConfig::uncached())
    }

    /// Add one instance of a calibrated application. Instances of the
    /// same app get distinct seeds and data sets.
    pub fn app(mut self, kind: AppKind) -> CampaignBuilder {
        self.apps.push(kind);
        self
    }

    /// Add a custom pre-generated trace.
    pub fn trace(mut self, name: impl Into<String>, trace: Trace) -> CampaignBuilder {
        self.traces.push((name.into(), trace));
        self
    }

    /// Workload seed (default 42).
    pub fn seed(mut self, seed: u64) -> CampaignBuilder {
        self.seed = seed;
        self
    }

    /// Shrink run length by `k` (default 1).
    pub fn scale(mut self, k: u32) -> CampaignBuilder {
        self.scale = k;
        self
    }

    /// Mutate the simulator configuration in place.
    pub fn configure(mut self, f: impl FnOnce(&mut SimConfig)) -> CampaignBuilder {
        f(&mut self.config);
        self
    }

    /// Run the simulation.
    ///
    /// # Panics
    ///
    /// Panics if a pid or a custom trace's file ids overflow the
    /// simulator's 16-bit namespaces (see [`iosim::AddProcessError`]);
    /// the builder's own numbering never does.
    pub fn run(self) -> SimReport {
        let mut sim = Simulation::new(self.config);
        let mut pid = 1u32;
        for (i, kind) in self.apps.iter().enumerate() {
            let events = experiments::app_events(
                *kind,
                pid,
                self.seed + i as u64,
                experiments::Scale(self.scale),
            );
            sim.add_process_shared(pid, format!("{}#{}", kind.name(), i + 1), events)
                .expect("valid process");
            pid += 1;
        }
        for (name, trace) in &self.traces {
            sim.add_process(pid, name.clone(), trace).expect("valid process");
            pid += 1;
        }
        sim.run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn study_characterizes_venus() {
        let c = Study::app(AppKind::Venus).scale(16).characterize();
        assert!(c.summary.files_touched >= 6);
        assert!(c.sequentiality.modal_size_fraction() > 0.8);
        assert!(c.burstiness.peak_to_mean > 1.3);
        // venus's six data files are all swap files.
        let swaps = c
            .classes
            .file_class
            .values()
            .filter(|&&cl| cl == IoClass::DataSwap)
            .count();
        assert!(swaps >= 6, "venus staging files should classify as swap");
    }

    #[test]
    fn study_through_procstat_preserves_events() {
        let direct = Study::app(AppKind::Ccm).scale(16).seed(3);
        let piped = direct.clone().through_procstat();
        let a: Vec<_> = direct.trace().events().cloned().collect();
        let b: Vec<_> = piped.trace().events().cloned().collect();
        assert_eq!(a, b, "the collection pipeline must be lossless");
    }

    #[test]
    fn campaign_runs_mixed_apps() {
        let r = CampaignBuilder::buffered_mb(16)
            .app(AppKind::Gcm)
            .app(AppKind::Upw)
            .scale(16)
            .run();
        r.check_time_conservation();
        assert_eq!(r.processes.len(), 2);
        assert!(r.utilization() > 0.5, "compulsory-only apps should run well");
    }

    #[test]
    fn campaign_accepts_custom_traces() {
        let custom = Study::app(AppKind::Upw).scale(16).trace();
        let r = CampaignBuilder::uncached().trace("custom-upw", custom).run();
        assert_eq!(r.processes.len(), 1);
        assert_eq!(r.processes[0].name, "custom-upw");
    }

    #[test]
    fn configure_hook_applies() {
        let r = CampaignBuilder::buffered_mb(8)
            .configure(|c| {
                c.cache.as_mut().unwrap().write_policy = WritePolicy::WriteThrough;
            })
            .app(AppKind::Upw)
            .scale(16)
            .run();
        // Write-through means no dirty data ever buffered.
        assert_eq!(r.cache.dirty_evictions, 0);
    }
}
