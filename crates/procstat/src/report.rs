//! Pipeline accounting: amortization, buffering, and the <20 % overhead
//! bound.

use sim_core::SimDuration;

/// Summary of one collection run.
#[derive(Debug, Clone, Default)]
pub struct PipelineReport {
    /// Packets written to the trace log.
    pub packets: u64,
    /// Records carried.
    pub records: u64,
    /// Mean records per packet — the header-amortization factor (§4.3:
    /// "one header served for hundreds of I/O calls").
    pub records_per_packet: f64,
    /// Peak records the reconstruction had to buffer between flushes.
    pub peak_buffered_records: u64,
    /// Total tracing CPU overhead charged by the shim.
    pub tracing_overhead: SimDuration,
    /// Total time the traced application spent in I/O system calls
    /// (for the overhead-fraction bound).
    pub io_syscall_time: SimDuration,
}

impl PipelineReport {
    /// Tracing overhead as a fraction of I/O system-call time. The paper:
    /// "Overheads were less than 20% of I/O system call time."
    pub fn overhead_fraction(&self) -> f64 {
        if self.io_syscall_time.is_zero() {
            0.0
        } else {
            self.tracing_overhead.as_secs_f64() / self.io_syscall_time.as_secs_f64()
        }
    }

    /// True when the run satisfies the paper's overhead bound.
    pub fn within_paper_overhead_bound(&self) -> bool {
        self.overhead_fraction() < 0.20
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_fraction_basics() {
        let r = PipelineReport {
            tracing_overhead: SimDuration::from_millis(10),
            io_syscall_time: SimDuration::from_millis(100),
            ..Default::default()
        };
        assert!((r.overhead_fraction() - 0.1).abs() < 1e-12);
        assert!(r.within_paper_overhead_bound());
    }

    #[test]
    fn zero_io_time_is_benign() {
        let r = PipelineReport::default();
        assert_eq!(r.overhead_fraction(), 0.0);
        assert!(r.within_paper_overhead_bound());
    }

    #[test]
    fn excessive_overhead_flagged() {
        let r = PipelineReport {
            tracing_overhead: SimDuration::from_millis(30),
            io_syscall_time: SimDuration::from_millis(100),
            ..Default::default()
        };
        assert!(!r.within_paper_overhead_bound());
    }
}
