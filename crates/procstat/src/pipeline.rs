//! The shim → pipe → collector pipeline and the stream reconstruction.

use iotrace::IoEvent;
use parking_lot::Mutex;
use sim_core::SimDuration;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Shim configuration.
#[derive(Debug, Clone)]
pub struct ShimConfig {
    /// Maximum records batched into one packet before it is sent.
    pub max_records_per_packet: usize,
    /// Force *all* open packets out after this many I/Os process-wide
    /// (§4.3: "trace packets were forced out every hundred thousand
    /// I/Os").
    pub flush_every_ios: u64,
    /// Header size in 8-byte words (§4.3: "an 8 word header").
    pub header_words: u64,
    /// Per-record payload size in words (§4.3: "between three and five
    /// words" — we charge four).
    pub record_words: u64,
    /// Tracing CPU cost per record (library bookkeeping).
    pub per_record_overhead: SimDuration,
    /// Tracing CPU cost per packet sent (pipe write).
    pub per_packet_overhead: SimDuration,
}

impl Default for ShimConfig {
    fn default() -> Self {
        ShimConfig {
            max_records_per_packet: 512,
            flush_every_ios: 100_000,
            header_words: 8,
            record_words: 4,
            per_record_overhead: SimDuration::from_micros(10),
            per_packet_overhead: SimDuration::from_micros(50),
        }
    }
}

/// A packet header: identifies the (process, file) stream, the number of
/// records carried, and the global sequence number of the first record
/// (used only to *verify* reconstruction, never to perform it — the
/// merge itself works from timestamps like the original).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketHeader {
    /// Issuing process.
    pub process_id: u32,
    /// File all records in this packet belong to.
    pub file_id: u32,
    /// Records carried.
    pub record_count: u32,
    /// Global sequence number of the first record.
    pub first_seq: u64,
}

/// One trace packet: a header plus same-file records, each tagged with
/// its global sequence number.
#[derive(Debug, Clone)]
pub struct Packet {
    /// The 8-word header.
    pub header: PacketHeader,
    /// Records with their global sequence numbers.
    pub records: Vec<(u64, IoEvent)>,
}

/// An emulated Unix pipe: the channel between the instrumented library
/// and the `procstat` process. Thread-safe so the two ends can live on
/// different threads, as the originals lived in different processes.
#[derive(Debug, Clone, Default)]
pub struct Pipe {
    inner: Arc<Mutex<VecDeque<Packet>>>,
}

impl Pipe {
    /// A fresh, empty pipe.
    pub fn new() -> Self {
        Self::default()
    }

    /// Send a packet (shim side).
    pub fn send(&self, packet: Packet) {
        self.inner.lock().push_back(packet);
    }

    /// Receive the next packet if any (collector side).
    pub fn recv(&self) -> Option<Packet> {
        self.inner.lock().pop_front()
    }

    /// Packets currently in flight.
    pub fn depth(&self) -> usize {
        self.inner.lock().len()
    }
}

/// The instrumented-library end: batches records per file and sends
/// packets down the pipe.
#[derive(Debug)]
pub struct LibraryShim {
    config: ShimConfig,
    pipe: Pipe,
    /// Open per-(process, file) batches.
    batches: HashMap<(u32, u32), Vec<(u64, IoEvent)>>,
    /// Global I/O counter driving the forced flush.
    ios_seen: u64,
    /// Accumulated tracing CPU overhead.
    overhead: SimDuration,
    packets_sent: u64,
    records_sent: u64,
    forced_flushes: u64,
}

impl LibraryShim {
    /// A shim writing to `pipe`.
    pub fn new(config: ShimConfig, pipe: Pipe) -> Self {
        LibraryShim {
            config,
            pipe,
            batches: HashMap::new(),
            ios_seen: 0,
            overhead: SimDuration::ZERO,
            packets_sent: 0,
            records_sent: 0,
            forced_flushes: 0,
        }
    }

    /// Hook called on every read/write system call.
    pub fn on_io(&mut self, ev: IoEvent) {
        let seq = self.ios_seen;
        self.ios_seen += 1;
        self.overhead += self.config.per_record_overhead;
        let key = (ev.process_id, ev.file_id);
        let batch = self.batches.entry(key).or_default();
        batch.push((seq, ev));
        if batch.len() >= self.config.max_records_per_packet {
            self.flush_file(key);
        }
        // Forced flush: every N I/Os, every open packet goes out, so a
        // quiet file's old records can't linger arbitrarily (§4.3).
        if self.ios_seen.is_multiple_of(self.config.flush_every_ios) {
            self.forced_flushes += 1;
            self.flush_all();
        }
    }

    fn flush_file(&mut self, key: (u32, u32)) {
        if let Some(records) = self.batches.remove(&key) {
            if records.is_empty() {
                return;
            }
            self.overhead += self.config.per_packet_overhead;
            self.packets_sent += 1;
            self.records_sent += records.len() as u64;
            let header = PacketHeader {
                process_id: key.0,
                file_id: key.1,
                record_count: records.len() as u32,
                first_seq: records[0].0,
            };
            self.pipe.send(Packet { header, records });
        }
    }

    /// Flush every open batch (forced flush or shutdown).
    pub fn flush_all(&mut self) {
        let mut keys: Vec<_> = self.batches.keys().copied().collect();
        keys.sort_unstable();
        for key in keys {
            self.flush_file(key);
        }
    }

    /// File-close / process-exit hook: drain everything.
    pub fn close_all(&mut self) {
        self.flush_all();
    }

    /// Total tracing CPU overhead charged so far.
    pub fn overhead(&self) -> SimDuration {
        self.overhead
    }

    /// Packets sent so far.
    pub fn packets_sent(&self) -> u64 {
        self.packets_sent
    }

    /// Records sent so far.
    pub fn records_sent(&self) -> u64 {
        self.records_sent
    }

    /// Forced (every-N) flushes performed.
    pub fn forced_flushes(&self) -> u64 {
        self.forced_flushes
    }

    /// Trace-file bytes this shim's output occupies: headers + records,
    /// in words (§4.3's amortization arithmetic).
    pub fn trace_bytes(&self) -> u64 {
        (self.packets_sent * self.config.header_words
            + self.records_sent * self.config.record_words)
            * 8
    }

    /// Configuration in force.
    pub fn config(&self) -> &ShimConfig {
        &self.config
    }
}

/// The `procstat` end: drains the pipe and appends packets to the trace
/// log.
#[derive(Debug)]
pub struct Collector {
    pipe: Pipe,
    log: Vec<Packet>,
}

impl Collector {
    /// A collector reading from `pipe`.
    pub fn new(pipe: Pipe) -> Self {
        Collector { pipe, log: Vec::new() }
    }

    /// Pull everything currently in the pipe into the log.
    pub fn drain(&mut self) {
        while let Some(p) = self.pipe.recv() {
            self.log.push(p);
        }
    }

    /// The packet log, in arrival order.
    pub fn packets(&self) -> &[Packet] {
        &self.log
    }
}

/// Errors surfaced by [`reconstruct`].
#[derive(Debug, PartialEq, Eq)]
pub enum ReconstructError {
    /// A packet's header record count disagrees with its payload.
    HeaderMismatch {
        /// Index of the offending packet in the log.
        packet: usize,
    },
    /// The same global sequence number appeared twice.
    DuplicateSequence(u64),
}

impl std::fmt::Display for ReconstructError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReconstructError::HeaderMismatch { packet } => {
                write!(f, "packet {packet}: header record count disagrees with payload")
            }
            ReconstructError::DuplicateSequence(seq) => {
                write!(f, "duplicate record sequence number {seq}")
            }
        }
    }
}

impl std::error::Error for ReconstructError {}

/// Rebuild the single global I/O stream from the packet log.
///
/// Packets batch per-file records, so the log is not globally ordered; a
/// packet flushed late may carry records from long ago. The merge sorts
/// all records by (start time, sequence) — the paper's point is precisely
/// that this needs "buffering all the I/Os between flushes", so the
/// report records the peak number of records that had to be held.
pub fn reconstruct(
    packets: &[Packet],
) -> Result<(Vec<IoEvent>, crate::report::PipelineReport), ReconstructError> {
    let mut records: Vec<(u64, IoEvent)> = Vec::new();
    for (i, p) in packets.iter().enumerate() {
        if p.header.record_count as usize != p.records.len()
            || p.records.first().map(|r| r.0) != Some(p.header.first_seq)
        {
            return Err(ReconstructError::HeaderMismatch { packet: i });
        }
        records.extend(p.records.iter().cloned());
    }

    // Peak buffering: scan packets in arrival order; a record can be
    // emitted only once every earlier-sequence record has arrived. The
    // high-water mark of held records is the buffer the paper describes.
    let mut peak = 0usize;
    {
        let mut held: Vec<u64> = Vec::new();
        let mut next_emit: u64 = 0;
        for p in packets {
            for (seq, _) in &p.records {
                held.push(*seq);
            }
            held.sort_unstable();
            peak = peak.max(held.len());
            // Emit the contiguous prefix.
            let mut emitted = 0;
            for &s in held.iter() {
                if s == next_emit {
                    next_emit += 1;
                    emitted += 1;
                } else {
                    break;
                }
            }
            held.drain(..emitted);
            peak = peak.max(held.len() + emitted); // held before draining
        }
    }

    records.sort_by_key(|(seq, ev)| (ev.start, *seq));
    for w in records.windows(2) {
        if w[0].0 == w[1].0 {
            return Err(ReconstructError::DuplicateSequence(w[0].0));
        }
    }
    let n_packets = packets.len() as u64;
    let n_records = records.len() as u64;
    let report = crate::report::PipelineReport {
        packets: n_packets,
        records: n_records,
        records_per_packet: if n_packets == 0 {
            0.0
        } else {
            n_records as f64 / n_packets as f64
        },
        peak_buffered_records: peak as u64,
        ..Default::default()
    };
    Ok((records.into_iter().map(|(_, e)| e).collect(), report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotrace::Direction;
    use sim_core::SimTime;

    fn ev(seq: u64, file: u32) -> IoEvent {
        IoEvent::logical(
            Direction::Read,
            1,
            file,
            seq * 512,
            512,
            SimTime::from_ticks(seq * 10),
            SimDuration::ZERO,
        )
    }

    fn small_config() -> ShimConfig {
        ShimConfig { max_records_per_packet: 4, flush_every_ios: 1000, ..Default::default() }
    }

    #[test]
    fn packets_batch_per_file() {
        let pipe = Pipe::new();
        let mut shim = LibraryShim::new(small_config(), pipe.clone());
        for i in 0..8 {
            shim.on_io(ev(i, 1));
        }
        // Two full packets of 4 should have been sent, all for file 1.
        assert_eq!(pipe.depth(), 2);
        let p = pipe.recv().unwrap();
        assert_eq!(p.header.file_id, 1);
        assert_eq!(p.header.record_count, 4);
        assert_eq!(p.header.first_seq, 0);
    }

    #[test]
    fn interleaved_files_produce_separate_packets() {
        let pipe = Pipe::new();
        let mut shim = LibraryShim::new(small_config(), pipe.clone());
        for i in 0..8 {
            shim.on_io(ev(i, (i % 2) as u32));
        }
        shim.close_all();
        let mut files = std::collections::HashSet::new();
        while let Some(p) = pipe.recv() {
            files.insert(p.header.file_id);
            // Every record in a packet shares the packet's file.
            assert!(p.records.iter().all(|(_, e)| e.file_id == p.header.file_id));
        }
        assert_eq!(files.len(), 2);
    }

    #[test]
    fn forced_flush_fires_every_n_ios() {
        let config = ShimConfig {
            max_records_per_packet: 1_000_000, // never fills
            flush_every_ios: 100,
            ..Default::default()
        };
        let pipe = Pipe::new();
        let mut shim = LibraryShim::new(config, pipe.clone());
        for i in 0..250 {
            shim.on_io(ev(i, 1));
        }
        assert_eq!(shim.forced_flushes(), 2);
        assert_eq!(pipe.depth(), 2, "two forced flushes sent two packets");
    }

    #[test]
    fn quiet_file_records_escape_via_forced_flush() {
        // A parameter file with 2 I/Os separated by thousands of data-file
        // I/Os (the paper's motivating case for forced flushes).
        let config = ShimConfig {
            max_records_per_packet: 1_000_000,
            flush_every_ios: 100,
            ..Default::default()
        };
        let pipe = Pipe::new();
        let mut shim = LibraryShim::new(config, pipe.clone());
        shim.on_io(ev(0, 99)); // the quiet parameter file
        for i in 1..150 {
            shim.on_io(ev(i, 1));
        }
        // After the first forced flush the parameter-file record is out
        // even though its packet never filled.
        let mut saw_param = false;
        while let Some(p) = pipe.recv() {
            if p.header.file_id == 99 {
                saw_param = true;
            }
        }
        assert!(saw_param);
    }

    #[test]
    fn header_amortization_beats_per_record_packets() {
        let pipe = Pipe::new();
        let mut shim = LibraryShim::new(ShimConfig::default(), pipe.clone());
        for i in 0..10_000 {
            shim.on_io(ev(i, 1));
        }
        shim.close_all();
        let batched = shim.trace_bytes();
        // A per-record-packet shim pays a header per record.
        let cfg = shim.config();
        let per_record = 10_000 * (cfg.header_words + cfg.record_words) * 8;
        assert!(
            (batched as f64) < per_record as f64 / 2.0,
            "batching {batched} should cost far less than per-record {per_record}"
        );
    }

    #[test]
    fn reconstruction_restores_global_order() {
        let pipe = Pipe::new();
        let mut shim = LibraryShim::new(small_config(), pipe.clone());
        let events: Vec<IoEvent> = (0..100).map(|i| ev(i, (i % 3) as u32)).collect();
        for e in &events {
            shim.on_io(*e);
        }
        shim.close_all();
        let mut collector = Collector::new(pipe);
        collector.drain();
        let (rebuilt, report) = reconstruct(collector.packets()).unwrap();
        assert_eq!(rebuilt, events);
        assert!(report.records_per_packet > 1.0);
        assert_eq!(report.records, 100);
    }

    #[test]
    fn reconstruction_detects_corrupt_headers() {
        let pipe = Pipe::new();
        let mut shim = LibraryShim::new(small_config(), pipe.clone());
        for i in 0..4 {
            shim.on_io(ev(i, 1));
        }
        let mut collector = Collector::new(pipe);
        collector.drain();
        let mut packets = collector.packets().to_vec();
        packets[0].header.record_count = 99;
        assert!(matches!(
            reconstruct(&packets),
            Err(ReconstructError::HeaderMismatch { packet: 0 })
        ));
    }

    #[test]
    fn reconstruction_detects_duplicate_sequences() {
        let pipe = Pipe::new();
        let mut shim = LibraryShim::new(small_config(), pipe.clone());
        for i in 0..4 {
            shim.on_io(ev(i, 1));
        }
        let mut collector = Collector::new(pipe);
        collector.drain();
        let mut packets = collector.packets().to_vec();
        let dup = packets[0].clone();
        packets.push(dup);
        assert!(matches!(
            reconstruct(&packets),
            Err(ReconstructError::HeaderMismatch { .. }) | Err(ReconstructError::DuplicateSequence(_))
        ));
    }

    #[test]
    fn peak_buffering_grows_with_batching() {
        // Bigger packets hold records back longer, so reconstruction must
        // buffer more — the §4.3 tradeoff.
        let run = |max_records| {
            let pipe = Pipe::new();
            let mut shim = LibraryShim::new(
                ShimConfig { max_records_per_packet: max_records, ..Default::default() },
                pipe.clone(),
            );
            for i in 0..2_000 {
                shim.on_io(ev(i, (i % 4) as u32));
            }
            shim.close_all();
            let mut c = Collector::new(pipe);
            c.drain();
            reconstruct(c.packets()).unwrap().1.peak_buffered_records
        };
        assert!(run(256) > run(8), "larger packets need more reassembly buffer");
    }

    #[test]
    fn overhead_scales_only_with_io() {
        let pipe = Pipe::new();
        let mut shim = LibraryShim::new(ShimConfig::default(), pipe);
        assert_eq!(shim.overhead(), SimDuration::ZERO);
        for i in 0..100 {
            shim.on_io(ev(i, 1));
        }
        let after_100 = shim.overhead();
        for i in 100..200 {
            shim.on_io(ev(i, 1));
        }
        // Linear in record count (no packet boundary crossed at default
        // sizes): double the I/O, double the overhead.
        assert_eq!(shim.overhead().ticks(), 2 * after_100.ticks());
    }
}
