//! Emulation of the UNICOS trace-collection pipeline (§4.3).
//!
//! On the Cray, Miller instrumented the user-level I/O libraries rather
//! than the kernel. The instrumented library batched trace records into
//! **packets** — one 8-word header per packet, records for *one file*
//! per packet — and sent them over a pipe to a collector process called
//! `procstat`, which appended them to the trace file. Three properties
//! the paper calls out, all reproduced and tested here:
//!
//! 1. **Header amortization** — "one header served for hundreds of I/O
//!    calls and the header overhead was amortized over many calls";
//!    per-record packets would have drowned the data in headers.
//! 2. **Forced flushes** — "trace packets were forced out every hundred
//!    thousand I/Os", bounding how stale a low-activity file's packet can
//!    get.
//! 3. **Reconstruction requires buffering** — because a packet flushed
//!    late can contain an I/O from much earlier, rebuilding the single
//!    global stream "requires buffering all the I/Os between flushes."
//!    [`reconstruct`] implements that merge and reports the peak buffer.
//!
//! Overhead stays proportional to I/O activity only: "There was no
//! overhead during non-I/O operations … Overheads were less than 20% of
//! I/O system call time." [`PipelineReport::overhead_fraction`] checks
//! our model against that bound.

pub mod pipeline;
pub mod report;

pub use pipeline::{reconstruct, Collector, LibraryShim, Packet, PacketHeader, Pipe, ShimConfig};
pub use report::PipelineReport;

#[cfg(test)]
mod integration_tests {
    use super::*;
    use iotrace::{Direction, IoEvent};
    use sim_core::{SimDuration, SimTime};

    fn ev(i: u64, file: u32) -> IoEvent {
        IoEvent::logical(
            if i.is_multiple_of(3) { Direction::Write } else { Direction::Read },
            1,
            file,
            i * 4096,
            4096,
            SimTime::from_ticks(i * 100),
            SimDuration::from_ticks(40),
        )
    }

    #[test]
    fn end_to_end_pipeline_preserves_every_event_in_order() {
        let config = ShimConfig::default();
        let pipe = Pipe::new();
        let mut shim = LibraryShim::new(config, pipe.clone());
        let mut collector = Collector::new(pipe);

        let events: Vec<IoEvent> = (0..5_000).map(|i| ev(i, (i % 7) as u32)).collect();
        for e in &events {
            shim.on_io(*e);
            collector.drain();
        }
        shim.close_all();
        collector.drain();

        let (reconstructed, report) = reconstruct(collector.packets()).unwrap();
        assert_eq!(reconstructed, events);
        assert!(report.peak_buffered_records > 0);
    }

    #[test]
    fn overhead_stays_under_the_paper_bound() {
        // §4.3: "Overheads were less than 20% of I/O system call time."
        // Charge each traced I/O a realistic syscall cost and compare.
        let pipe = Pipe::new();
        let mut shim = LibraryShim::new(ShimConfig::default(), pipe.clone());
        let mut syscall_time = SimDuration::ZERO;
        for i in 0..10_000 {
            shim.on_io(ev(i, (i % 4) as u32));
            // A Cray-era I/O system call runs a few hundred microseconds
            // of kernel code even before the device is touched.
            syscall_time += SimDuration::from_micros(300);
        }
        shim.close_all();
        let mut collector = Collector::new(pipe);
        collector.drain();
        let (_, mut report) = reconstruct(collector.packets()).unwrap();
        report.tracing_overhead = shim.overhead();
        report.io_syscall_time = syscall_time;
        assert!(
            report.within_paper_overhead_bound(),
            "tracing overhead fraction {:.3} exceeds the paper's 20% bound",
            report.overhead_fraction()
        );
        // But it is not free either: it must scale with the I/O count.
        assert!(report.overhead_fraction() > 0.01);
    }

    #[test]
    fn pipeline_works_across_threads() {
        // The real shim and procstat were separate processes joined by a
        // pipe; exercise the same shape with threads.
        let pipe = Pipe::new();
        let writer_pipe = pipe.clone();
        let events: Vec<IoEvent> = (0..20_000).map(|i| ev(i, (i % 5) as u32)).collect();
        let expected = events.clone();

        let producer = std::thread::spawn(move || {
            let mut shim = LibraryShim::new(ShimConfig::default(), writer_pipe);
            for e in events {
                shim.on_io(e);
            }
            shim.close_all();
        });
        let mut collector = Collector::new(pipe);
        loop {
            collector.drain();
            if producer.is_finished() {
                collector.drain();
                break;
            }
            std::thread::yield_now();
        }
        producer.join().unwrap();
        let (reconstructed, _) = reconstruct(collector.packets()).unwrap();
        assert_eq!(reconstructed, expected);
    }
}
