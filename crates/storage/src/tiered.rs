//! A multi-tier storage hierarchy: RAM cache → NVMe → disk → tape.
//!
//! §2.2 describes exactly this shape at NASA Ames — main memory, the
//! SSD, striped DD-40 disks, and the Mass Storage System's nearline
//! tape — but the paper's simulations only ever exercise one device at
//! a time. This model composes the queue-aware devices into one
//! [`BlockDevice`] with inclusive staging:
//!
//! - Residency is tracked per fixed-size *segment*. A read is charged to
//!   the deepest tier holding any of its segments (the stage-in is the
//!   bottleneck), then every touched segment is promoted into all
//!   faster tiers.
//! - Writes are burst-buffer style: absorbed by the flash staging tier
//!   and considered durable there (drain to the capacity tiers is
//!   back-pressure-free in this model), so a write costs an NVMe access.
//! - RAM and flash have bounded capacity; staging evicts FIFO. Tape is
//!   the capacity tier and backs everything, so a segment no faster
//!   tier remembers is a tape access — mount, wind, and all.
//!
//! Eviction is demotion-free (the inclusive hierarchy means the slower
//! copy already exists), so evictions only bump the demotion counter.

use crate::device::{clamp_extent, AccessKind, BlockDevice, DeviceGauges, DeviceStats};
use crate::disk::{DiskModel, DiskParams};
use crate::nvme::{NvmeModel, NvmeParams};
use crate::tape::{TapeModel, TapeParams};
use serde::{Deserialize, Serialize};
use sim_core::units::{GB, MB};
use sim_core::{SimDuration, SimTime};
use std::collections::{HashSet, VecDeque};

/// Tunable hierarchy parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TieredParams {
    /// Residency-tracking granule in bytes.
    pub segment: u64,
    /// RAM cache capacity in bytes.
    pub ram_capacity: u64,
    /// RAM streaming bandwidth in GB/s.
    pub ram_gb_per_sec: f64,
    /// Disk-tier segment budget in bytes (how much of the disk the
    /// stager uses for recently-staged data).
    pub disk_stage_capacity: u64,
    /// The flash staging tier.
    pub ssd: NvmeParams,
    /// The capacity disk tier.
    pub disk: DiskParams,
    /// The archive tier; also defines the hierarchy's total capacity.
    pub tape: TapeParams,
}

impl Default for TieredParams {
    fn default() -> Self {
        Self::modern_2026()
    }
}

impl TieredParams {
    /// A 2026 burst-buffer hierarchy: 64 GB of RAM cache over a 2 TB
    /// NVMe stager over a 20 TB nearline disk over an 18 TB LTO
    /// cartridge.
    pub fn modern_2026() -> Self {
        TieredParams {
            segment: MB,
            ram_capacity: 64 * GB,
            ram_gb_per_sec: 100.0,
            disk_stage_capacity: 4 * 1024 * GB,
            ssd: NvmeParams::modern_2026(),
            disk: DiskParams::modern_2026(),
            tape: TapeParams::lto_2026(),
        }
    }
}

/// One tier's residency set: bounded, FIFO-evicting, membership-only.
/// (The `HashSet` is never iterated, so its nondeterministic order
/// cannot leak into simulation results.)
#[derive(Debug, Clone)]
struct TierSet {
    cap_segments: u64,
    fifo: VecDeque<u64>,
    set: HashSet<u64>,
}

impl TierSet {
    fn new(cap_segments: u64) -> Self {
        TierSet { cap_segments, fifo: VecDeque::new(), set: HashSet::new() }
    }

    fn contains(&self, seg: u64) -> bool {
        self.set.contains(&seg)
    }

    /// Insert a segment; returns the number of evictions that made room.
    fn insert(&mut self, seg: u64) -> u64 {
        if !self.set.insert(seg) {
            return 0;
        }
        self.fifo.push_back(seg);
        let mut evicted = 0;
        while self.fifo.len() as u64 > self.cap_segments.max(1) {
            if let Some(old) = self.fifo.pop_front() {
                self.set.remove(&old);
                evicted += 1;
            }
        }
        evicted
    }
}

/// The composed hierarchy.
#[derive(Debug, Clone)]
pub struct TieredDevice {
    params: TieredParams,
    name: String,
    stats: DeviceStats,
    ssd: NvmeModel,
    disk: DiskModel,
    tape: TapeModel,
    /// Residency sets for the ram / ssd / disk tiers (tape backs all).
    tiers: [TierSet; 3],
    promotions: u64,
    demotions: u64,
    /// Reads served per tier: [ram, ssd, disk, tape]; writes count as
    /// ssd (staging) hits.
    tier_hits: [u64; 4],
}

impl TieredDevice {
    /// A hierarchy with the given parameters.
    pub fn new(name: impl Into<String>, params: TieredParams) -> Self {
        let seg = params.segment.max(1);
        let tiers = [
            TierSet::new(params.ram_capacity / seg),
            TierSet::new(params.ssd.capacity / seg),
            TierSet::new(params.disk_stage_capacity / seg),
        ];
        TieredDevice {
            ssd: NvmeModel::new("tier-ssd", params.ssd.clone()),
            disk: DiskModel::new("tier-disk", params.disk.clone()),
            tape: TapeModel::new("tier-tape", params.tape.clone()),
            params,
            name: name.into(),
            stats: DeviceStats::default(),
            tiers,
            promotions: 0,
            demotions: 0,
            tier_hits: [0; 4],
        }
    }

    /// The 2026 burst-buffer hierarchy.
    pub fn modern() -> Self {
        TieredDevice::new("tiered", TieredParams::modern_2026())
    }

    /// Parameters in use.
    pub fn params(&self) -> &TieredParams {
        &self.params
    }

    /// Reads served per tier: `[ram, ssd, disk, tape]`.
    pub fn tier_hits(&self) -> [u64; 4] {
        self.tier_hits
    }

    /// Segments promoted into a faster tier.
    pub fn promotions(&self) -> u64 {
        self.promotions
    }

    /// Segments evicted from a bounded tier to make room.
    pub fn demotions(&self) -> u64 {
        self.demotions
    }

    /// RAM streaming time for `length` bytes.
    fn ram_time(&self, length: u64) -> SimDuration {
        let secs = length as f64 / (self.params.ram_gb_per_sec * GB as f64);
        SimDuration::from_secs_f64(secs)
    }

    /// The segments a `[offset, offset+length)` extent touches.
    fn segments(&self, offset: u64, length: u64) -> std::ops::RangeInclusive<u64> {
        let seg = self.params.segment.max(1);
        let first = offset / seg;
        let last = offset.saturating_add(length.saturating_sub(1)) / seg;
        first..=last
    }

    /// The slowest tier any touched segment lives in: 0 = ram, 1 = ssd,
    /// 2 = disk, 3 = tape.
    fn residency_level(&self, offset: u64, length: u64) -> usize {
        let mut level = 0;
        for seg in self.segments(offset, length) {
            let l = if self.tiers[0].contains(seg) {
                0
            } else if self.tiers[1].contains(seg) {
                1
            } else if self.tiers[2].contains(seg) {
                2
            } else {
                3
            };
            level = level.max(l);
        }
        level
    }

    /// Promote every touched segment into tiers `0..upto` (inclusive
    /// staging into all faster tiers).
    fn promote(&mut self, offset: u64, length: u64, upto: usize) {
        for seg in self.segments(offset, length) {
            for tier in self.tiers.iter_mut().take(upto) {
                if !tier.contains(seg) {
                    self.promotions += 1;
                    self.demotions += tier.insert(seg);
                }
            }
        }
    }

    /// Wrap an archive-address extent into a smaller inner device.
    fn wrap(offset: u64, length: u64, capacity: u64) -> u64 {
        offset % capacity.saturating_sub(length).max(1)
    }

    /// Observability counters: the inner queueing devices' histograms
    /// plus the tier traffic split.
    pub fn obs_counters(&self) -> obs::DiskCounters {
        let mut c = self.disk.obs_counters();
        c.merge(&self.ssd.obs_counters());
        c.tier_promotions = self.promotions;
        c.tier_demotions = self.demotions;
        c.tier_hits = self.tier_hits.to_vec();
        c
    }
}

impl BlockDevice for TieredDevice {
    fn name(&self) -> &str {
        &self.name
    }

    fn capacity(&self) -> u64 {
        self.params.tape.capacity
    }

    fn access(
        &mut self,
        now: SimTime,
        kind: AccessKind,
        offset: u64,
        length: u64,
    ) -> SimDuration {
        let (offset, length) =
            clamp_extent(&self.name, offset, length, self.params.tape.capacity);
        // Inner queue wait must not be double-counted into this device's
        // busy time: snapshot before, delta after.
        let wait_before =
            self.ssd.stats().queue_wait + self.disk.stats().queue_wait;
        let latency = match kind {
            AccessKind::Write => {
                // Burst-buffer write: absorbed by the flash stager, then
                // resident in ram + ssd.
                self.tier_hits[1] += 1;
                let o = Self::wrap(offset, length, self.ssd.capacity());
                let t = self.ssd.access(now, kind, o, length);
                self.promote(offset, length, 2);
                t
            }
            AccessKind::Read => {
                let level = self.residency_level(offset, length);
                self.tier_hits[level] += 1;
                let t = match level {
                    0 => self.ram_time(length),
                    1 => {
                        let o = Self::wrap(offset, length, self.ssd.capacity());
                        self.ssd.access(now, kind, o, length)
                    }
                    2 => {
                        let o = Self::wrap(offset, length, self.disk.capacity());
                        self.disk.access(now, kind, o, length)
                    }
                    _ => self.tape.access(now, kind, offset, length),
                };
                self.promote(offset, length, level.min(3));
                t
            }
        };
        let wait =
            (self.ssd.stats().queue_wait + self.disk.stats().queue_wait)
                .saturating_sub(wait_before);
        self.stats.note(kind, length, latency.saturating_sub(wait));
        self.stats.note_queue_wait(wait);
        latency
    }

    fn stats(&self) -> &DeviceStats {
        &self.stats
    }

    fn gauges(&self, now: SimTime) -> DeviceGauges {
        let ssd = self.ssd.gauges(now);
        let disk = self.disk.gauges(now);
        DeviceGauges {
            queue_depth: ssd.queue_depth + disk.queue_depth,
            // The hierarchy's own busy time already excludes inner queue
            // wait, so it is the honest utilization gauge.
            busy: self.stats.busy,
            tier_promotions: self.promotions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hierarchy() -> TieredDevice {
        TieredDevice::modern()
    }

    #[test]
    fn cold_read_pays_tape_mount() {
        let mut h = hierarchy();
        let cold = h.access(SimTime::ZERO, AccessKind::Read, 0, MB);
        assert!(cold >= h.params().tape.mount, "cold read {cold} should mount tape");
        assert_eq!(h.tier_hits(), [0, 0, 0, 1]);
    }

    #[test]
    fn reread_hits_ram() {
        let mut h = hierarchy();
        let cold = h.access(SimTime::ZERO, AccessKind::Read, 0, MB);
        let warm = h.access(SimTime::from_secs(100), AccessKind::Read, 0, MB);
        assert!(warm < cold, "warm {warm} vs cold {cold}");
        assert!(warm <= SimDuration::from_millis(1), "ram read {warm}");
        assert_eq!(h.tier_hits(), [1, 0, 0, 1]);
        assert!(h.promotions() > 0);
    }

    #[test]
    fn writes_land_in_flash_stager() {
        let mut h = hierarchy();
        let w = h.access(SimTime::ZERO, AccessKind::Write, 10 * GB, MB);
        // Far cheaper than tape, charged as an NVMe access.
        assert!(w < SimDuration::from_millis(10), "write {w}");
        assert_eq!(h.tier_hits(), [0, 1, 0, 0]);
        // The written range is now readable from ram.
        let r = h.access(SimTime::from_secs(1), AccessKind::Read, 10 * GB, MB);
        assert!(r <= SimDuration::from_millis(1), "read-after-write {r}");
    }

    #[test]
    fn ram_eviction_falls_back_to_flash() {
        // Tiny RAM: 4 segments. Write 8 distinct segments, then re-read
        // the first — it fell out of ram but still lives in flash.
        let mut params = TieredParams::modern_2026();
        params.ram_capacity = 4 * params.segment;
        let mut h = TieredDevice::new("t", params);
        for i in 0..8u64 {
            h.access(SimTime::ZERO, AccessKind::Write, i * h.params().segment, 1024);
        }
        assert!(h.demotions() > 0, "bounded ram must have evicted");
        h.access(SimTime::from_secs(1), AccessKind::Read, 0, 1024);
        assert_eq!(h.tier_hits()[1], 8 + 1, "first segment re-read from flash");
    }

    #[test]
    fn busy_excludes_inner_queue_wait() {
        // 32 simultaneous 1 MB writes serialize on the NVMe bandwidth:
        // their bus wait must land in queue_wait, with busy + queue_wait
        // adding back up to the summed latencies.
        let mut h = hierarchy();
        let mut total = SimDuration::ZERO;
        for i in 0..32u64 {
            let o = i * h.params().segment;
            total += h.access(SimTime::ZERO, AccessKind::Write, o, h.params().segment);
        }
        assert_eq!(h.stats().busy + h.stats().queue_wait, total);
        assert!(h.stats().queue_wait > SimDuration::ZERO);
    }

    #[test]
    fn obs_counters_carry_tier_traffic() {
        let mut h = hierarchy();
        h.access(SimTime::ZERO, AccessKind::Read, 0, MB);
        h.access(SimTime::from_secs(100), AccessKind::Read, 0, MB);
        h.access(SimTime::from_secs(100), AccessKind::Write, GB, MB);
        let c = h.obs_counters();
        assert_eq!(c.tier_hits, vec![1, 1, 0, 1]);
        assert_eq!(c.tier_promotions, h.promotions());
        assert!(c.queue_depth.is_some(), "inner queueing devices report depth");
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "exceeds device capacity"))]
    fn out_of_range_access_is_clamped() {
        let mut h = hierarchy();
        let cap = h.capacity();
        h.access(SimTime::ZERO, AccessKind::Read, cap - 100, 1024);
        assert_eq!(h.stats().bytes_read, 100);
    }
}
