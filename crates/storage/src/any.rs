//! Enum dispatch over the device models the simulator can drive.
//!
//! The engine stores its disk farm as `Vec<AnyDevice>`: static dispatch
//! on the hot path (no vtable, the paper-mode `DiskModel` arm inlines
//! exactly as before) while configs pick the model at run time.

use crate::device::{AccessKind, BlockDevice, DeviceGauges, DeviceStats};
use crate::disk::DiskModel;
use crate::nvme::NvmeModel;
use crate::tiered::TieredDevice;
use sim_core::{SimDuration, SimTime};

/// Any device model the simulator can place files on.
// DiskModel dominates the size (its inline seek-bucket array), but it is
// also the paper-mode arm every figure drives on every access — boxing it
// would trade a few hundred bytes per farm entry (a farm is ~8 devices)
// for an extra indirection on the hot path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum AnyDevice {
    /// The paper's disk (optionally with FIFO/elevator queueing).
    Disk(DiskModel),
    /// A multi-queue NVMe flash device.
    Nvme(NvmeModel),
    /// The RAM → NVMe → disk → tape hierarchy. Boxed: it embeds three
    /// inner models and would otherwise double the size of every
    /// paper-mode farm entry.
    Tiered(Box<TieredDevice>),
}

impl AnyDevice {
    /// Observability counters for the `obs` report section.
    pub fn obs_counters(&self) -> obs::DiskCounters {
        match self {
            AnyDevice::Disk(d) => d.obs_counters(),
            AnyDevice::Nvme(d) => d.obs_counters(),
            AnyDevice::Tiered(d) => d.obs_counters(),
        }
    }
}

impl BlockDevice for AnyDevice {
    fn name(&self) -> &str {
        match self {
            AnyDevice::Disk(d) => d.name(),
            AnyDevice::Nvme(d) => d.name(),
            AnyDevice::Tiered(d) => d.name(),
        }
    }

    fn capacity(&self) -> u64 {
        match self {
            AnyDevice::Disk(d) => d.capacity(),
            AnyDevice::Nvme(d) => d.capacity(),
            AnyDevice::Tiered(d) => d.capacity(),
        }
    }

    #[inline]
    fn access(
        &mut self,
        now: SimTime,
        kind: AccessKind,
        offset: u64,
        length: u64,
    ) -> SimDuration {
        match self {
            AnyDevice::Disk(d) => d.access(now, kind, offset, length),
            AnyDevice::Nvme(d) => d.access(now, kind, offset, length),
            AnyDevice::Tiered(d) => d.access(now, kind, offset, length),
        }
    }

    fn suspends_process(&self) -> bool {
        match self {
            AnyDevice::Disk(d) => d.suspends_process(),
            AnyDevice::Nvme(d) => d.suspends_process(),
            AnyDevice::Tiered(d) => d.suspends_process(),
        }
    }

    fn stats(&self) -> &DeviceStats {
        match self {
            AnyDevice::Disk(d) => d.stats(),
            AnyDevice::Nvme(d) => d.stats(),
            AnyDevice::Tiered(d) => d.stats(),
        }
    }

    fn gauges(&self, now: SimTime) -> DeviceGauges {
        match self {
            AnyDevice::Disk(d) => d.gauges(now),
            AnyDevice::Nvme(d) => d.gauges(now),
            AnyDevice::Tiered(d) => d.gauges(now),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::DiskParams;
    use sim_core::units::MB;

    #[test]
    fn dispatch_matches_inner_model() {
        let mut plain = DiskModel::new("d", DiskParams::ymp());
        let mut wrapped = AnyDevice::Disk(DiskModel::new("d", DiskParams::ymp()));
        let a = plain.access(SimTime::ZERO, AccessKind::Read, 100 * MB, 4096);
        let b = wrapped.access(SimTime::ZERO, AccessKind::Read, 100 * MB, 4096);
        assert_eq!(a, b);
        assert_eq!(wrapped.capacity(), plain.capacity());
        assert_eq!(wrapped.stats().reads, 1);
    }

    #[test]
    fn every_variant_reports_obs_counters() {
        let mut devices = [
            AnyDevice::Disk(DiskModel::new("d", DiskParams::ymp_with_elevator())),
            AnyDevice::Nvme(NvmeModel::modern()),
            AnyDevice::Tiered(Box::new(TieredDevice::modern())),
        ];
        for d in &mut devices {
            d.access(SimTime::ZERO, AccessKind::Read, 0, 4096);
            assert!(d.obs_counters().queue_depth.is_some(), "{} reports depth", d.name());
        }
    }
}
