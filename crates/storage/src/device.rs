//! The device interface the buffering simulator drives, plus shared
//! per-device accounting.

use serde::{Deserialize, Serialize};
use sim_core::{SimDuration, SimTime};

/// Read or write, from the device's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// Data moves device → memory.
    Read,
    /// Data moves memory → device.
    Write,
}

/// Per-device accounting, accumulated by every [`BlockDevice`]
/// implementation.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DeviceStats {
    /// Number of read requests serviced.
    pub reads: u64,
    /// Number of write requests serviced.
    pub writes: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Total time the device spent actively servicing requests
    /// (positioning + transfer + per-request overhead). Time a request
    /// spent waiting behind earlier requests accumulates in
    /// [`DeviceStats::queue_wait`] instead, so `busy / wall` is a true
    /// per-device utilization and cannot exceed 1.
    pub busy: SimDuration,
    /// Total time requests spent queued behind earlier requests before
    /// the device began servicing them. Zero for non-queueing models.
    pub queue_wait: SimDuration,
}

impl DeviceStats {
    /// Total requests serviced.
    pub fn total_requests(&self) -> u64 {
        self.reads + self.writes
    }

    /// Total bytes moved.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Accumulate another device's counters into this one (disk-farm and
    /// cross-shard totals).
    pub fn merge(&mut self, other: &DeviceStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
        self.busy += other.busy;
        self.queue_wait += other.queue_wait;
    }

    /// Account one serviced request. `service` is pure device work —
    /// queue wait is reported separately via
    /// [`DeviceStats::note_queue_wait`].
    pub(crate) fn note(&mut self, kind: AccessKind, bytes: u64, service: SimDuration) {
        match kind {
            AccessKind::Read => {
                self.reads += 1;
                self.bytes_read += bytes;
            }
            AccessKind::Write => {
                self.writes += 1;
                self.bytes_written += bytes;
            }
        }
        self.busy += service;
    }

    /// Account time a request spent waiting behind earlier requests.
    pub(crate) fn note_queue_wait(&mut self, wait: SimDuration) {
        self.queue_wait += wait;
    }
}

/// An instantaneous gauge snapshot of a device, read by the timeline
/// sampler. Pure observation: computing it must not mutate the device
/// (queue purges stay lazy) or allocate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeviceGauges {
    /// Requests currently in flight or queued (still completing after
    /// `now`).
    pub queue_depth: u64,
    /// Cumulative busy time (see [`DeviceStats::busy`]); the sampler
    /// differences consecutive samples into a busy fraction.
    pub busy: SimDuration,
    /// Cumulative tier promotions (tiered hierarchy only; 0 elsewhere).
    pub tier_promotions: u64,
}

/// Clamp a request extent to the device capacity.
///
/// Workloads are expected to stay within the device — an overrun is a
/// bug in file placement or trace generation — so debug builds assert
/// with the offending extent. Release builds saturate instead of
/// silently addressing past the end: the access is truncated to the tail
/// of the device (possibly to zero length when `offset` itself is past
/// the end).
#[inline]
pub fn clamp_extent(device: &str, offset: u64, length: u64, capacity: u64) -> (u64, u64) {
    debug_assert!(
        offset.saturating_add(length) <= capacity,
        "{device}: access [{offset}, +{length}) exceeds device capacity {capacity}"
    );
    let offset = offset.min(capacity);
    let length = length.min(capacity - offset);
    (offset, length)
}

/// A storage device that can service block requests.
///
/// `access` is called with the current simulation time and returns the
/// latency until the request completes — including any positioning cost
/// and (for queueing models) the wait behind earlier requests.
pub trait BlockDevice {
    /// Human-readable device name for reports.
    fn name(&self) -> &str;

    /// Device capacity in bytes.
    fn capacity(&self) -> u64;

    /// Service a request for `length` bytes at `offset`, returning the
    /// time until completion measured from `now`.
    fn access(&mut self, now: SimTime, kind: AccessKind, offset: u64, length: u64)
        -> SimDuration;

    /// Whether a request to this device suspends the issuing process.
    /// Disks do; the SSD does not (§3: "I/Os to and from the SSD are done
    /// without suspending the process, because the data is retrieved
    /// quickly").
    fn suspends_process(&self) -> bool {
        true
    }

    /// Accumulated accounting.
    fn stats(&self) -> &DeviceStats;

    /// Instantaneous gauges at `now` for the timeline sampler. The
    /// default suits non-queueing models: zero depth, cumulative busy.
    /// Must be read-only and allocation-free — the sampler calls it
    /// between event pops and must not perturb results.
    fn gauges(&self, now: SimTime) -> DeviceGauges {
        let _ = now;
        DeviceGauges { queue_depth: 0, busy: self.stats().busy, tier_promotions: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_accumulate_by_kind() {
        let mut s = DeviceStats::default();
        s.note(AccessKind::Read, 4096, SimDuration::from_millis(2));
        s.note(AccessKind::Write, 1024, SimDuration::from_millis(3));
        s.note(AccessKind::Read, 100, SimDuration::from_millis(1));
        assert_eq!(s.reads, 2);
        assert_eq!(s.writes, 1);
        assert_eq!(s.bytes_read, 4196);
        assert_eq!(s.bytes_written, 1024);
        assert_eq!(s.total_requests(), 3);
        assert_eq!(s.total_bytes(), 5220);
        assert_eq!(s.busy, SimDuration::from_millis(6));
        assert_eq!(s.queue_wait, SimDuration::ZERO);
    }

    #[test]
    fn queue_wait_accumulates_separately_from_busy() {
        let mut s = DeviceStats::default();
        s.note(AccessKind::Read, 4096, SimDuration::from_millis(2));
        s.note_queue_wait(SimDuration::from_millis(5));
        s.note_queue_wait(SimDuration::from_millis(1));
        assert_eq!(s.busy, SimDuration::from_millis(2));
        assert_eq!(s.queue_wait, SimDuration::from_millis(6));
    }

    #[test]
    fn merge_sums_queue_wait() {
        let mut a = DeviceStats::default();
        a.note(AccessKind::Write, 100, SimDuration::from_millis(1));
        a.note_queue_wait(SimDuration::from_millis(2));
        let mut b = DeviceStats::default();
        b.note(AccessKind::Read, 200, SimDuration::from_millis(3));
        b.note_queue_wait(SimDuration::from_millis(4));
        a.merge(&b);
        assert_eq!(a.busy, SimDuration::from_millis(4));
        assert_eq!(a.queue_wait, SimDuration::from_millis(6));
        assert_eq!(a.total_bytes(), 300);
    }

    #[test]
    fn clamp_extent_passes_in_range_requests_through() {
        assert_eq!(clamp_extent("d", 0, 4096, 8192), (0, 4096));
        assert_eq!(clamp_extent("d", 4096, 4096, 8192), (4096, 4096));
        assert_eq!(clamp_extent("d", 8192, 0, 8192), (8192, 0));
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "exceeds device capacity"))]
    fn clamp_extent_saturates_overruns() {
        // Debug builds assert (the workload is buggy); release builds
        // truncate to the device tail.
        assert_eq!(clamp_extent("d", 6000, 4096, 8192), (6000, 2192));
        assert_eq!(clamp_extent("d", 10_000, 4096, 8192), (8192, 0));
    }
}
