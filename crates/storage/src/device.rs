//! The device interface the buffering simulator drives, plus shared
//! per-device accounting.

use serde::{Deserialize, Serialize};
use sim_core::{SimDuration, SimTime};

/// Read or write, from the device's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// Data moves device → memory.
    Read,
    /// Data moves memory → device.
    Write,
}

/// Per-device accounting, accumulated by every [`BlockDevice`]
/// implementation.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DeviceStats {
    /// Number of read requests serviced.
    pub reads: u64,
    /// Number of write requests serviced.
    pub writes: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Total time the device spent servicing requests (includes any
    /// queueing wait when the model queues).
    pub busy: SimDuration,
}

impl DeviceStats {
    /// Total requests serviced.
    pub fn total_requests(&self) -> u64 {
        self.reads + self.writes
    }

    /// Total bytes moved.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Accumulate another device's counters into this one (disk-farm and
    /// cross-shard totals).
    pub fn merge(&mut self, other: &DeviceStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
        self.busy += other.busy;
    }

    pub(crate) fn note(&mut self, kind: AccessKind, bytes: u64, service: SimDuration) {
        match kind {
            AccessKind::Read => {
                self.reads += 1;
                self.bytes_read += bytes;
            }
            AccessKind::Write => {
                self.writes += 1;
                self.bytes_written += bytes;
            }
        }
        self.busy += service;
    }
}

/// A storage device that can service block requests.
///
/// `access` is called with the current simulation time and returns the
/// latency until the request completes — including any positioning cost
/// and (for queueing models) the wait behind earlier requests.
pub trait BlockDevice {
    /// Human-readable device name for reports.
    fn name(&self) -> &str;

    /// Device capacity in bytes.
    fn capacity(&self) -> u64;

    /// Service a request for `length` bytes at `offset`, returning the
    /// time until completion measured from `now`.
    fn access(&mut self, now: SimTime, kind: AccessKind, offset: u64, length: u64)
        -> SimDuration;

    /// Whether a request to this device suspends the issuing process.
    /// Disks do; the SSD does not (§3: "I/Os to and from the SSD are done
    /// without suspending the process, because the data is retrieved
    /// quickly").
    fn suspends_process(&self) -> bool {
        true
    }

    /// Accumulated accounting.
    fn stats(&self) -> &DeviceStats;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_accumulate_by_kind() {
        let mut s = DeviceStats::default();
        s.note(AccessKind::Read, 4096, SimDuration::from_millis(2));
        s.note(AccessKind::Write, 1024, SimDuration::from_millis(3));
        s.note(AccessKind::Read, 100, SimDuration::from_millis(1));
        assert_eq!(s.reads, 2);
        assert_eq!(s.writes, 1);
        assert_eq!(s.bytes_read, 4196);
        assert_eq!(s.bytes_written, 1024);
        assert_eq!(s.total_requests(), 3);
        assert_eq!(s.total_bytes(), 5220);
        assert_eq!(s.busy, SimDuration::from_millis(6));
    }
}
