//! Nearline tape model for the Mass Storage System (MSS).
//!
//! §2.2: "several terabytes of nearline and offline tape storage … a
//! nearline storage facility called the Mass Storage System (MSS), which
//! can automatically mount tapes with requested data". The buffering
//! simulations never touch tape, but the storage-hierarchy example uses
//! this model to show why staging through disk/SSD matters: a cold access
//! pays a robot mount measured in seconds.

use crate::device::{clamp_extent, AccessKind, BlockDevice, DeviceStats};
use serde::{Deserialize, Serialize};
use sim_core::units::{GB, MB};
use sim_core::{SimDuration, SimTime};

/// Tunable tape parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TapeParams {
    /// Capacity of one cartridge in bytes.
    pub capacity: u64,
    /// Robot pick + thread + load time for a cartridge not currently
    /// mounted.
    pub mount: SimDuration,
    /// Time to wind between positions, proportional to distance; this is
    /// the full end-to-end wind time.
    pub full_wind: SimDuration,
    /// Streaming rate in MB/s once positioned.
    pub transfer_mb_per_sec: f64,
    /// How long a mounted cartridge stays loaded with no activity before
    /// the robot unloads it.
    pub dismount_after: SimDuration,
}

impl Default for TapeParams {
    fn default() -> Self {
        TapeParams {
            capacity: 2 * GB,
            mount: SimDuration::from_secs(12),
            full_wind: SimDuration::from_secs(60),
            transfer_mb_per_sec: 3.0,
            dismount_after: SimDuration::from_secs(120),
        }
    }
}

impl TapeParams {
    /// A 2026 LTO-class cartridge in a robot library: 18 TB native,
    /// ~300 MB/s streaming, faster robotics than the MSS but still
    /// seconds per mount and a long full-tape wind.
    pub fn lto_2026() -> Self {
        TapeParams {
            capacity: 18 * 1024 * GB,
            mount: SimDuration::from_secs(20),
            full_wind: SimDuration::from_secs(90),
            transfer_mb_per_sec: 300.0,
            dismount_after: SimDuration::from_secs(300),
        }
    }
}

/// A nearline tape drive with robot-mounted cartridges.
#[derive(Debug, Clone)]
pub struct TapeModel {
    params: TapeParams,
    name: String,
    /// Position of the head along the tape (byte address), `None` when no
    /// cartridge is mounted.
    position: Option<u64>,
    /// Last activity, for dismount-on-idle.
    last_use: SimTime,
    stats: DeviceStats,
    mounts: u64,
}

impl TapeModel {
    /// A drive with the given parameters.
    pub fn new(name: impl Into<String>, params: TapeParams) -> Self {
        TapeModel {
            params,
            name: name.into(),
            position: None,
            last_use: SimTime::ZERO,
            stats: DeviceStats::default(),
            mounts: 0,
        }
    }

    /// The default MSS-class drive.
    pub fn mss() -> Self {
        TapeModel::new("mss-tape", TapeParams::default())
    }

    /// Number of robot mounts performed.
    pub fn mounts(&self) -> u64 {
        self.mounts
    }

    /// Parameters in use.
    pub fn params(&self) -> &TapeParams {
        &self.params
    }

    fn wind_time(&self, from: u64, to: u64) -> SimDuration {
        let frac = from.abs_diff(to) as f64 / self.params.capacity.max(1) as f64;
        SimDuration::from_secs_f64(self.params.full_wind.as_secs_f64() * frac.min(1.0))
    }
}

impl BlockDevice for TapeModel {
    fn name(&self) -> &str {
        &self.name
    }

    fn capacity(&self) -> u64 {
        self.params.capacity
    }

    fn access(
        &mut self,
        now: SimTime,
        kind: AccessKind,
        offset: u64,
        length: u64,
    ) -> SimDuration {
        let (offset, length) = clamp_extent(&self.name, offset, length, self.params.capacity);
        // Idle dismount: if too long since the last use, the cartridge was
        // put away and must be re-mounted.
        if self.position.is_some()
            && now.saturating_since(self.last_use) > self.params.dismount_after
        {
            self.position = None;
        }
        let mut service = SimDuration::ZERO;
        let from = match self.position {
            Some(p) => p,
            None => {
                service += self.params.mount;
                self.mounts += 1;
                0
            }
        };
        service += self.wind_time(from, offset);
        let secs = length as f64 / (self.params.transfer_mb_per_sec * MB as f64);
        service += SimDuration::from_secs_f64(secs);
        self.position = Some(offset + length);
        self.last_use = now + service;
        self.stats.note(kind, length, service);
        service
    }

    fn stats(&self) -> &DeviceStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_access_pays_mount() {
        let mut t = TapeModel::mss();
        let cold = t.access(SimTime::ZERO, AccessKind::Read, 0, 1024);
        assert!(cold >= t.params().mount);
        assert_eq!(t.mounts(), 1);
    }

    #[test]
    fn warm_sequential_access_streams() {
        let mut t = TapeModel::mss();
        t.access(SimTime::ZERO, AccessKind::Read, 0, MB);
        let warm = t.access(SimTime::from_secs(1), AccessKind::Read, MB, MB);
        // 1 MB at 3 MB/s ≈ 0.333 s, no mount, no wind.
        assert!(warm < SimDuration::from_millis(400), "warm access {warm}");
        assert_eq!(t.mounts(), 1);
    }

    #[test]
    fn idle_cartridge_is_dismounted() {
        let mut t = TapeModel::mss();
        t.access(SimTime::ZERO, AccessKind::Read, 0, 1024);
        let much_later = SimTime::from_secs(10_000);
        let cold_again = t.access(much_later, AccessKind::Read, 2048, 1024);
        assert!(cold_again >= t.params().mount);
        assert_eq!(t.mounts(), 2);
    }

    #[test]
    fn wind_cost_scales_with_distance() {
        let mut t = TapeModel::mss();
        t.access(SimTime::ZERO, AccessKind::Read, 0, 1024);
        let t_clone = t.clone();
        let near = t.access(SimTime::from_secs(1), AccessKind::Read, 10 * MB, 1024);
        let mut far_drive = t_clone;
        let far = far_drive.access(SimTime::from_secs(1), AccessKind::Read, GB, 1024);
        assert!(far > near);
    }

    #[test]
    fn tape_suspends_processes() {
        assert!(TapeModel::mss().suspends_process());
    }

    #[test]
    fn lto_2026_is_bigger_and_faster() {
        let old = TapeParams::default();
        let new = TapeParams::lto_2026();
        assert!(new.capacity > old.capacity);
        assert!(new.transfer_mb_per_sec > old.transfer_mb_per_sec);
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "exceeds device capacity"))]
    fn out_of_range_access_is_clamped() {
        let mut t = TapeModel::mss();
        let cap = t.capacity();
        t.access(SimTime::ZERO, AccessKind::Read, cap - 100, 1024);
        // Debug builds assert; release builds truncate to the device tail.
        assert_eq!(t.stats().bytes_read, 100);
    }
}
