//! Storage device models for the Cray Y-MP era I/O system the paper
//! simulates against (§2.2, §6.1, §6.3).
//!
//! Three devices:
//!
//! * [`DiskModel`] — a 9.6 MB/s disk whose access time depends only on the
//!   request's distance from the previous request, exactly the
//!   simplification the paper used ("the completion time of a specific I/O
//!   was dependent only on the location of the I/O and how 'close' the I/O
//!   was to the previous I/O"). An optional queueing mode models the
//!   queueing delay the paper acknowledged omitting.
//! * [`SsdModel`] — the solid-state disk: zero seek, ~1 µs per KB
//!   transferred (1 GB/s) plus a fixed setup overhead.
//! * [`TapeModel`] — the Mass Storage System's nearline tape: a large mount
//!   penalty, then streaming; used by the storage-hierarchy example.
//!
//! All devices implement [`BlockDevice`], the interface the buffering
//! simulator drives.

pub mod device;
pub mod disk;
pub mod ssd;
pub mod tape;

pub use device::{AccessKind, BlockDevice, DeviceStats};
pub use disk::{DiskModel, DiskParams};
pub use ssd::{SsdModel, SsdParams};
pub use tape::{TapeModel, TapeParams};
