//! Storage device models for the Cray Y-MP era I/O system the paper
//! simulates against (§2.2, §6.1, §6.3) — plus the queue-aware 2026
//! models the paper's rerun uses.
//!
//! Paper-era devices:
//!
//! * [`DiskModel`] — a 9.6 MB/s disk whose access time depends only on the
//!   request's distance from the previous request, exactly the
//!   simplification the paper used ("the completion time of a specific I/O
//!   was dependent only on the location of the I/O and how 'close' the I/O
//!   was to the previous I/O"). Optional queueing modes model the delay
//!   the paper acknowledged omitting: FIFO, or an elevator (SCAN)
//!   scheduler ([`DiskSched`]).
//! * [`SsdModel`] — the solid-state disk: zero seek, ~1 µs per KB
//!   transferred (1 GB/s) plus a fixed setup overhead.
//! * [`TapeModel`] — the Mass Storage System's nearline tape: a large mount
//!   penalty, then streaming.
//!
//! Modern (2026) devices:
//!
//! * [`NvmeModel`] — a multi-queue flash device with bounded per-queue
//!   depth, per-command submission overhead, and aggregate bandwidth
//!   saturation.
//! * [`TieredDevice`] — a RAM → NVMe → disk → tape hierarchy with
//!   segment-granular inclusive staging and burst-buffer writes.
//!
//! All devices implement [`BlockDevice`], the interface the buffering
//! simulator drives; [`AnyDevice`] is the enum the engine's disk farm
//! stores so configs pick the model at run time without dynamic
//! dispatch.

pub mod any;
pub mod device;
pub mod disk;
pub mod nvme;
pub mod ssd;
pub mod tape;
pub mod tiered;

pub use any::AnyDevice;
pub use device::{clamp_extent, AccessKind, BlockDevice, DeviceGauges, DeviceStats};
pub use disk::{DiskModel, DiskParams, DiskSched};
pub use nvme::{NvmeModel, NvmeParams};
pub use ssd::{SsdModel, SsdParams};
pub use tape::{TapeModel, TapeParams};
pub use tiered::{TieredDevice, TieredParams};
