//! The paper's disk model: positional seek + rotation + streaming
//! transfer, with optional request queueing.
//!
//! §6.1: "The disk model, like the scheduler, is a simple one. … seek
//! times could only be approximated. There was no queueing at the disks,
//! so the completion time of a specific I/O was dependent only on the
//! location of the I/O and how 'close' the I/O was to the previous I/O."
//!
//! §6.2 adds the two numbers the model must reproduce: a sustained
//! transfer rate of 9.6 MB/s and large-transfer seeks of "as long as
//! 15 ms (the Cray Y-MP disks seek relatively slowly)".
//!
//! The reproduction keeps the paper-faithful *no-queueing* mode as the
//! default and offers two queueing modes as the ablation the paper says
//! it lacked (its explanation for why read-ahead failed to smooth disk
//! traffic in Figure 6): plain FIFO, and an elevator (SCAN) scheduler
//! that amortizes the positioning stroke across the requests sharing a
//! sweep.

use crate::device::{clamp_extent, AccessKind, BlockDevice, DeviceGauges, DeviceStats};
use serde::{Deserialize, Serialize};
use sim_core::units::MB;
use sim_core::{Histogram, SimDuration, SimTime};

/// How a queueing disk orders its outstanding requests. Only meaningful
/// when [`DiskParams::queueing`] is true.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DiskSched {
    /// First-come first-served: each request waits behind everything
    /// issued before it and pays its full positioning cost.
    Fifo,
    /// Elevator (SCAN): the arm sweeps the platter and services queued
    /// requests in position order. Completion times are promised at
    /// issue in this simulator, so the model keeps FIFO *completion*
    /// order but amortizes the positioning stroke across the requests
    /// sharing the sweep — the deeper the queue, the cheaper each seek.
    Elevator,
}

/// Tunable disk parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DiskParams {
    /// Capacity in bytes; also normalizes seek distance.
    pub capacity: u64,
    /// Sustained transfer rate in MB/s.
    pub transfer_mb_per_sec: f64,
    /// Positioning cost for an access adjacent to the previous one
    /// (track-to-track / settle).
    pub min_seek: SimDuration,
    /// Positioning cost for a full-stroke seek.
    pub max_seek: SimDuration,
    /// Average rotational latency added to every seek-requiring access
    /// (half a revolution of a 3600 RPM era drive ≈ 8.3 ms).
    pub avg_rotation: SimDuration,
    /// Fixed controller/command overhead per request.
    pub overhead: SimDuration,
    /// When true, requests queue behind one another; when false (the
    /// paper's mode) every request is serviced as if the device were
    /// idle.
    pub queueing: bool,
    /// Request ordering for the queueing mode.
    pub scheduler: DiskSched,
}

impl Default for DiskParams {
    /// The Cray Y-MP DD-40-class disk of §2.2/§6.2.
    fn default() -> Self {
        DiskParams {
            capacity: 1200 * MB,
            transfer_mb_per_sec: sim_core::units::YMP_DISK_MB_PER_SEC,
            min_seek: SimDuration::from_millis(4),
            max_seek: SimDuration::from_millis(15),
            avg_rotation: SimDuration::from_micros(8_300),
            overhead: SimDuration::from_micros(500),
            queueing: false,
            scheduler: DiskSched::Fifo,
        }
    }
}

impl DiskParams {
    /// The paper-faithful configuration (no queueing).
    pub fn ymp() -> Self {
        Self::default()
    }

    /// Same drive with FIFO queueing enabled — the ablation for the
    /// paper's admitted simplification.
    pub fn ymp_with_queueing() -> Self {
        DiskParams { queueing: true, ..Self::default() }
    }

    /// Same drive with an elevator (SCAN) scheduler on the queue.
    pub fn ymp_with_elevator() -> Self {
        DiskParams { queueing: true, scheduler: DiskSched::Elevator, ..Self::default() }
    }

    /// A 2026 nearline hard drive (capacity tier): ~20 TB, ~280 MB/s
    /// sustained, 7200 RPM, fast settle — with an elevator scheduler,
    /// the way any modern drive is actually driven.
    pub fn modern_2026() -> Self {
        DiskParams {
            capacity: 20 * 1024 * sim_core::units::GB,
            transfer_mb_per_sec: 280.0,
            min_seek: SimDuration::from_micros(500),
            max_seek: SimDuration::from_millis(8),
            // Half a revolution at 7200 RPM ≈ 4.17 ms.
            avg_rotation: SimDuration::from_micros(4_170),
            overhead: SimDuration::from_micros(100),
            queueing: true,
            scheduler: DiskSched::Elevator,
        }
    }
}

/// A single disk. Tracks head position (as a byte address) and, when
/// queueing, the time the device becomes free.
#[derive(Debug, Clone)]
pub struct DiskModel {
    params: DiskParams,
    name: String,
    /// Byte address the head is parked at after the previous request.
    head: u64,
    /// When the device finishes its current queue (queueing mode only).
    free_at: SimTime,
    stats: DeviceStats,
    /// Accesses that moved the head.
    seeks: u64,
    /// Accesses exactly sequential with the previous one.
    seq_accesses: u64,
    /// Head travel per seek, pre-bucketed by `ilog2(bytes)`: one array
    /// increment on the access path instead of a `Histogram` edge
    /// search; [`DiskModel::obs_counters`] folds the buckets into the
    /// reported power-of-two histogram.
    seek_buckets: [u64; 64],
    /// Completion times of requests still outstanding (queueing modes
    /// only; stays empty in the paper's no-queueing mode). Purged lazily
    /// at each arrival; the surviving count is the queue depth that
    /// arrival observed.
    inflight: Vec<SimTime>,
    /// Queue depth seen by each arriving request (queueing modes only).
    queue_depths: Histogram,
}

/// Power-of-two queue-depth histogram edges shared by every queueing
/// device model, so per-device histograms merge across a farm.
pub(crate) fn queue_depth_histogram() -> Histogram {
    Histogram::pow2(1, 256)
}

impl DiskModel {
    /// A disk with the given parameters.
    pub fn new(name: impl Into<String>, params: DiskParams) -> Self {
        DiskModel {
            params,
            name: name.into(),
            head: 0,
            free_at: SimTime::ZERO,
            stats: DeviceStats::default(),
            seeks: 0,
            seq_accesses: 0,
            seek_buckets: [0; 64],
            inflight: Vec::new(),
            queue_depths: queue_depth_histogram(),
        }
    }

    /// The Y-MP disk, paper-faithful mode.
    pub fn ymp() -> Self {
        DiskModel::new("ymp-disk", DiskParams::ymp())
    }

    /// Parameters in use.
    pub fn params(&self) -> &DiskParams {
        &self.params
    }

    /// Positioning (seek + rotation) cost for a request at `offset` given
    /// the current head position. Zero when the request is exactly
    /// sequential with the previous one (the head is already there and the
    /// platter keeps streaming).
    #[inline]
    pub fn position_cost(&self, offset: u64) -> SimDuration {
        if offset == self.head {
            return SimDuration::ZERO;
        }
        let distance = self.head.abs_diff(offset) as f64 / self.params.capacity.max(1) as f64;
        // Square-root seek curve: short seeks dominated by settle time,
        // long seeks approach the full stroke linearly-in-sqrt — the usual
        // first-order fit for drives of this era.
        let frac = distance.min(1.0).sqrt();
        let min = self.params.min_seek.ticks() as f64;
        let max = self.params.max_seek.ticks() as f64;
        let seek = SimDuration::from_ticks((min + (max - min) * frac).round() as u64);
        seek + self.params.avg_rotation
    }

    /// Positioning cost under the elevator: with `depth` requests already
    /// queued, the arm serves the sweep in position order, so the stroke
    /// above the settle-plus-rotation floor is shared `depth + 1` ways.
    /// At depth 0 this equals [`DiskModel::position_cost`].
    fn elevator_position_cost(&self, offset: u64, depth: u64) -> SimDuration {
        if offset == self.head {
            return SimDuration::ZERO;
        }
        let full = self.position_cost(offset);
        let floor = self.params.min_seek + self.params.avg_rotation;
        let excess = full.saturating_sub(floor);
        floor + SimDuration::from_ticks(excess.ticks() / (depth + 1))
    }

    /// Pure transfer time for `length` bytes at the sustained rate.
    pub fn transfer_time(&self, length: u64) -> SimDuration {
        let secs = length as f64 / (self.params.transfer_mb_per_sec * MB as f64);
        SimDuration::from_secs_f64(secs)
    }

    /// Observability counters for the `obs` report section: seek vs.
    /// sequential-access split, the seek-distance distribution, and (in
    /// queueing modes) the queue-depth distribution.
    pub fn obs_counters(&self) -> obs::DiskCounters {
        // Power-of-two edges make the bucket representative `2^i` land
        // in exactly the bucket every distance in `[2^i, 2^(i+1))`
        // would, so the folded histogram is identical to recording each
        // seek directly. The low edge is 1 byte so sub-4 KB head travel
        // (e.g. a 512-byte short seek) keeps its own bucket instead of
        // collapsing into a 4 KB floor.
        let mut seek_hist = Histogram::pow2(1, self.params.capacity.max(8 * 1024));
        for (i, &n) in self.seek_buckets.iter().enumerate() {
            if n > 0 {
                seek_hist.record_n((1u64 << i) as f64, n);
            }
        }
        obs::DiskCounters {
            seeks: self.seeks,
            sequential_accesses: self.seq_accesses,
            seek_distance_bytes: Some(seek_hist),
            queue_depth: self.params.queueing.then(|| self.queue_depths.clone()),
            ..Default::default()
        }
    }

    /// The `queueing: true` service computation, kept out of line so the
    /// paper-faithful no-queueing path — the canonical hot path every
    /// figure runs — inlines as the same tight body it had before the
    /// queue-aware modes existed.
    #[inline(never)]
    fn queued_service(
        &mut self,
        now: SimTime,
        offset: u64,
        length: u64,
    ) -> (SimDuration, SimDuration) {
        // Purge completed requests; what survives is the queue this
        // arrival waits behind.
        let mut i = 0;
        while i < self.inflight.len() {
            if self.inflight[i] <= now {
                self.inflight.swap_remove(i);
            } else {
                i += 1;
            }
        }
        let depth = self.inflight.len() as u64;
        self.queue_depths.record(depth as f64);
        let pos = match self.params.scheduler {
            DiskSched::Fifo => self.position_cost(offset),
            DiskSched::Elevator => self.elevator_position_cost(offset, depth),
        };
        let service = self.params.overhead + pos + self.transfer_time(length);
        let begin = self.free_at.max(now);
        let done = begin + service;
        self.free_at = done;
        self.inflight.push(done);
        (service, done.saturating_since(now))
    }
}

impl BlockDevice for DiskModel {
    fn name(&self) -> &str {
        &self.name
    }

    fn capacity(&self) -> u64 {
        self.params.capacity
    }

    #[inline]
    fn access(
        &mut self,
        now: SimTime,
        kind: AccessKind,
        offset: u64,
        length: u64,
    ) -> SimDuration {
        let (offset, length) = clamp_extent(&self.name, offset, length, self.params.capacity);
        if offset == self.head {
            self.seq_accesses += 1;
        } else {
            self.seeks += 1;
            // abs_diff is nonzero here, so ilog2 is defined.
            self.seek_buckets[self.head.abs_diff(offset).ilog2() as usize] += 1;
        }
        let (service, latency) = if self.params.queueing {
            self.queued_service(now, offset, length)
        } else {
            let service =
                self.params.overhead + self.position_cost(offset) + self.transfer_time(length);
            (service, service)
        };
        self.head = offset + length;
        self.stats.note(kind, length, service);
        self.stats.note_queue_wait(latency.saturating_sub(service));
        latency
    }

    fn stats(&self) -> &DeviceStats {
        &self.stats
    }

    fn gauges(&self, now: SimTime) -> DeviceGauges {
        DeviceGauges {
            // `inflight` is purged lazily by `queued_service`; counting
            // the entries still completing after `now` without mutating
            // keeps the sampler invisible to results.
            queue_depth: self.inflight.iter().filter(|&&t| t > now).count() as u64,
            busy: self.stats.busy,
            tier_promotions: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> DiskModel {
        DiskModel::ymp()
    }

    #[test]
    fn sequential_access_pays_no_seek() {
        let mut d = disk();
        d.access(SimTime::ZERO, AccessKind::Read, 0, 4096);
        // Head is now at 4096; the next sequential request skips seek and
        // rotation entirely.
        assert_eq!(d.position_cost(4096), SimDuration::ZERO);
        let seq = d.access(SimTime::ZERO, AccessKind::Read, 4096, 4096);
        let expected = d.params().overhead + d.transfer_time(4096);
        assert_eq!(seq, expected);
    }

    #[test]
    fn long_seek_costs_more_than_short() {
        let d = disk();
        let near = d.position_cost(MB);
        let far = d.position_cost(1000 * MB);
        assert!(far > near, "far {far} should exceed near {near}");
        // And the far seek is bounded by max_seek + rotation.
        assert!(far <= d.params().max_seek + d.params().avg_rotation);
        assert!(near >= d.params().min_seek);
    }

    #[test]
    fn transfer_rate_matches_spec() {
        let d = disk();
        // 9.6 MB at 9.6 MB/s = 1 second.
        let t = d.transfer_time((9.6 * MB as f64) as u64);
        assert!((t.as_secs_f64() - 1.0).abs() < 1e-3, "got {t}");
    }

    #[test]
    fn fifteen_ms_seek_claim_holds_for_full_stroke() {
        // §6.2: "Such a transfer might take as long as 15 ms".
        let d = disk();
        let full = d.position_cost(d.capacity());
        assert!(full >= SimDuration::from_millis(15));
    }

    #[test]
    fn no_queueing_ignores_device_business() {
        let mut d = disk();
        let t1 = d.access(SimTime::ZERO, AccessKind::Read, 500 * MB, 4096);
        // Issue another far request at the same instant: in the paper's
        // model it is serviced as if the disk were idle.
        let t2 = d.access(SimTime::ZERO, AccessKind::Read, 0, 4096);
        assert!(t2 <= d.params().overhead + d.params().max_seek + d.params().avg_rotation
            + d.transfer_time(4096));
        let _ = t1;
    }

    #[test]
    fn queueing_serializes_simultaneous_requests() {
        let mut d = DiskModel::new("q", DiskParams::ymp_with_queueing());
        let t1 = d.access(SimTime::ZERO, AccessKind::Read, 100 * MB, 65536);
        let t2 = d.access(SimTime::ZERO, AccessKind::Read, 200 * MB, 65536);
        assert!(t2 > t1, "second queued request must finish later");
    }

    #[test]
    fn queueing_drains_when_idle() {
        let mut d = DiskModel::new("q", DiskParams::ymp_with_queueing());
        let t1 = d.access(SimTime::ZERO, AccessKind::Read, 0, 4096);
        // Far in the future the queue is empty again.
        let later = SimTime::from_secs(100);
        let t2 = d.access(later, AccessKind::Read, 4096, 4096);
        assert!(t2 <= t1 + d.params().max_seek, "idle disk should not queue");
    }

    #[test]
    fn queued_busy_excludes_queue_wait() {
        // Two simultaneous queued requests: the second waits for the
        // first, so wall time for the pair is the later completion. Busy
        // is pure service and must not exceed it (the old accounting
        // summed full latencies, double-counting the wait).
        let mut d = DiskModel::new("q", DiskParams::ymp_with_queueing());
        let t1 = d.access(SimTime::ZERO, AccessKind::Read, 100 * MB, 65536);
        let t2 = d.access(SimTime::ZERO, AccessKind::Read, 200 * MB, 65536);
        let wall = t1.max(t2);
        assert!(
            d.stats().busy <= wall,
            "busy {} exceeds wall {wall}",
            d.stats().busy
        );
        // Conservation: service + wait adds back up to the two latencies.
        assert_eq!(d.stats().busy + d.stats().queue_wait, t1 + t2);
        assert!(d.stats().queue_wait > SimDuration::ZERO);
    }

    #[test]
    fn paper_mode_records_no_queue_wait() {
        let mut d = disk();
        d.access(SimTime::ZERO, AccessKind::Read, 0, 4096);
        d.access(SimTime::ZERO, AccessKind::Read, 500 * MB, 4096);
        assert_eq!(d.stats().queue_wait, SimDuration::ZERO);
        assert!(d.obs_counters().queue_depth.is_none());
    }

    #[test]
    fn elevator_amortizes_positioning_under_load() {
        // Eight far-flung requests issued at the same instant: the
        // elevator shares the stroke across the sweep, so the batch
        // drains sooner than FIFO ordering.
        let drain = |params: DiskParams| {
            let mut d = DiskModel::new("d", params);
            let mut last = SimDuration::ZERO;
            for i in 0..8u64 {
                let offset = (i * 131) % 1000 * MB;
                last = last.max(d.access(SimTime::ZERO, AccessKind::Read, offset, 65536));
            }
            last
        };
        let fifo = drain(DiskParams::ymp_with_queueing());
        let scan = drain(DiskParams::ymp_with_elevator());
        assert!(scan < fifo, "elevator {scan} should beat FIFO {fifo}");
    }

    #[test]
    fn idle_elevator_matches_fifo() {
        // With nothing queued there is no sweep to share: both schedulers
        // charge the identical positioning cost.
        let mut fifo = DiskModel::new("f", DiskParams::ymp_with_queueing());
        let mut scan = DiskModel::new("e", DiskParams::ymp_with_elevator());
        let a = fifo.access(SimTime::ZERO, AccessKind::Read, 300 * MB, 4096);
        let b = scan.access(SimTime::ZERO, AccessKind::Read, 300 * MB, 4096);
        assert_eq!(a, b);
    }

    #[test]
    fn queueing_modes_record_queue_depths() {
        let mut d = DiskModel::new("e", DiskParams::ymp_with_elevator());
        for i in 0..5u64 {
            d.access(SimTime::ZERO, AccessKind::Read, i * 100 * MB, 4096);
        }
        let h = d.obs_counters().queue_depth.expect("queueing disks report depth");
        assert_eq!(h.total(), 5);
        // Depths seen: 0,1,2,3,4 — at least one arrival saw a deep queue.
        assert!(h.quantile(1.0).unwrap() >= 4.0);
    }

    #[test]
    fn stats_track_requests() {
        let mut d = disk();
        d.access(SimTime::ZERO, AccessKind::Read, 0, 4096);
        d.access(SimTime::ZERO, AccessKind::Write, 4096, 8192);
        assert_eq!(d.stats().reads, 1);
        assert_eq!(d.stats().writes, 1);
        assert_eq!(d.stats().total_bytes(), 12288);
        assert!(d.stats().busy > SimDuration::ZERO);
    }

    #[test]
    fn obs_counters_split_seeks_from_sequential() {
        let mut d = disk();
        // First access from head 0 to offset 0 is "sequential" (no head
        // movement); the follow-on at 4096 streams; the jump seeks.
        d.access(SimTime::ZERO, AccessKind::Read, 0, 4096);
        d.access(SimTime::ZERO, AccessKind::Read, 4096, 4096);
        d.access(SimTime::ZERO, AccessKind::Read, 500 * MB, 4096);
        let o = d.obs_counters();
        assert_eq!(o.sequential_accesses, 2);
        assert_eq!(o.seeks, 1);
        let h = o.seek_distance_bytes.expect("disks always carry a histogram");
        assert_eq!(h.total(), 1);
        // The recorded distance is the actual head travel (~500 MB − 8 KB).
        assert!(h.quantile(0.5).unwrap() >= (256 * MB) as f64);
    }

    #[test]
    fn sub_4k_seeks_keep_their_own_bucket() {
        // A 512-byte head move: with the old 4 KB low edge this collapsed
        // into the underflow bucket whose upper edge is 4096, losing the
        // sub-4K short-seek shape. With the edge widened to 1 the
        // distance lands in its own power-of-two bucket.
        let mut d = disk();
        d.access(SimTime::ZERO, AccessKind::Read, 0, 4096); // head -> 4096
        d.access(SimTime::ZERO, AccessKind::Read, 4608, 4096); // 512-byte seek
        let h = d.obs_counters().seek_distance_bytes.expect("histogram");
        assert_eq!(h.total(), 1);
        let p50 = h.quantile(0.5).unwrap();
        assert!(
            (512.0..=1024.0).contains(&p50),
            "512-byte seek should bucket near 512, got {p50}"
        );
    }

    #[test]
    fn disk_suspends_processes() {
        assert!(disk().suspends_process());
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "exceeds device capacity"))]
    fn out_of_range_access_is_clamped() {
        let mut d = disk();
        let cap = d.capacity();
        d.access(SimTime::ZERO, AccessKind::Read, cap - 1024, 8192);
        // Debug builds assert above; release builds truncate the access
        // to the 1024 bytes that exist.
        assert_eq!(d.stats().bytes_read, 1024);
    }

    #[test]
    fn zero_length_transfer_is_free_but_not_negative() {
        let d = disk();
        assert_eq!(d.transfer_time(0), SimDuration::ZERO);
    }
}
