//! An NVMe-style multi-queue flash device.
//!
//! The paper-era [`SsdModel`](crate::SsdModel) charges `setup + transfer`
//! to every request independently — infinite concurrency and infinite
//! aggregate bandwidth. Real flash devices expose many submission queues
//! with bounded depth, and their aggregate throughput saturates at the
//! device's internal bandwidth no matter how many queues are pounding
//! it. This model captures both effects while staying deterministic:
//!
//! - Requests are assigned to one of `n_queues` submission queues
//!   round-robin (arrival order, not load — deterministic and what an
//!   unpinned multi-core host effectively does).
//! - A queue holds at most `queue_depth` outstanding commands; an
//!   arrival to a full queue waits for the earliest completion in that
//!   queue before it can even be submitted.
//! - Data transfer serializes on the device's internal bandwidth
//!   (`transfer_gb_per_sec`): concurrent requests queue behind one
//!   another on the "bus", so 64 simultaneous 1 MB reads drain at the
//!   device rate, not 64× it.

use crate::device::{clamp_extent, AccessKind, BlockDevice, DeviceGauges, DeviceStats};
use crate::disk::queue_depth_histogram;
use serde::{Deserialize, Serialize};
use sim_core::units::GB;
use sim_core::{Histogram, SimDuration, SimTime};

/// Tunable NVMe parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NvmeParams {
    /// Capacity in bytes.
    pub capacity: u64,
    /// Number of hardware submission queues.
    pub n_queues: usize,
    /// Maximum outstanding commands per queue.
    pub queue_depth: usize,
    /// Aggregate device bandwidth in GB/s; concurrent transfers
    /// serialize against it.
    pub transfer_gb_per_sec: f64,
    /// Per-command submission/doorbell/completion overhead.
    pub submit: SimDuration,
}

impl Default for NvmeParams {
    fn default() -> Self {
        Self::modern_2026()
    }
}

impl NvmeParams {
    /// A 2026 datacenter NVMe drive: 2 TB, 16 queues × depth 64,
    /// ~7 GB/s sustained, ~10 µs per-command overhead.
    pub fn modern_2026() -> Self {
        NvmeParams {
            capacity: 2 * 1024 * GB,
            n_queues: 16,
            queue_depth: 64,
            transfer_gb_per_sec: 7.0,
            submit: SimDuration::from_micros(10),
        }
    }
}

/// A multi-queue flash device.
#[derive(Debug, Clone)]
pub struct NvmeModel {
    params: NvmeParams,
    name: String,
    stats: DeviceStats,
    /// Completion times of outstanding commands, per submission queue.
    queues: Vec<Vec<SimTime>>,
    /// Next queue for round-robin assignment.
    next_queue: usize,
    /// When the device's internal bandwidth is free for the next
    /// transfer.
    bus_free_at: SimTime,
    /// Device-wide outstanding-command count seen by each arrival.
    queue_depths: Histogram,
}

impl NvmeModel {
    /// A device with the given parameters.
    pub fn new(name: impl Into<String>, params: NvmeParams) -> Self {
        let n = params.n_queues.max(1);
        NvmeModel {
            params,
            name: name.into(),
            stats: DeviceStats::default(),
            queues: vec![Vec::new(); n],
            next_queue: 0,
            bus_free_at: SimTime::ZERO,
            queue_depths: queue_depth_histogram(),
        }
    }

    /// A drive with the 2026 defaults.
    pub fn modern() -> Self {
        NvmeModel::new("nvme", NvmeParams::modern_2026())
    }

    /// Parameters in use.
    pub fn params(&self) -> &NvmeParams {
        &self.params
    }

    /// Pure transfer time for `length` bytes at the device bandwidth.
    pub fn transfer_time(&self, length: u64) -> SimDuration {
        let secs = length as f64 / (self.params.transfer_gb_per_sec * GB as f64);
        SimDuration::from_secs_f64(secs)
    }

    /// Observability counters: the queue-depth distribution (flash has
    /// no head, so the seek counters stay zero).
    pub fn obs_counters(&self) -> obs::DiskCounters {
        obs::DiskCounters {
            queue_depth: Some(self.queue_depths.clone()),
            ..Default::default()
        }
    }
}

impl BlockDevice for NvmeModel {
    fn name(&self) -> &str {
        &self.name
    }

    fn capacity(&self) -> u64 {
        self.params.capacity
    }

    #[inline]
    fn access(
        &mut self,
        now: SimTime,
        kind: AccessKind,
        offset: u64,
        length: u64,
    ) -> SimDuration {
        let (_offset, length) = clamp_extent(&self.name, offset, length, self.params.capacity);
        // Retire completed commands everywhere; what's left is the
        // device-wide outstanding depth this arrival observes.
        let mut depth = 0usize;
        for q in &mut self.queues {
            let mut i = 0;
            while i < q.len() {
                if q[i] <= now {
                    q.swap_remove(i);
                } else {
                    i += 1;
                }
            }
            depth += q.len();
        }
        self.queue_depths.record(depth as f64);

        let qi = self.next_queue;
        self.next_queue = (self.next_queue + 1) % self.queues.len();

        // A full submission queue blocks the host until its earliest
        // outstanding command completes (first index wins ties, so the
        // scan is deterministic).
        let mut begin = now;
        if self.queues[qi].len() >= self.params.queue_depth.max(1) {
            let mut min_i = 0;
            for (i, &t) in self.queues[qi].iter().enumerate() {
                if t < self.queues[qi][min_i] {
                    min_i = i;
                }
            }
            begin = begin.max(self.queues[qi].swap_remove(min_i));
        }

        // Transfers serialize on the device's internal bandwidth.
        let start = begin.max(self.bus_free_at);
        let service = self.params.submit + self.transfer_time(length);
        let done = start + service;
        self.bus_free_at = done;
        self.queues[qi].push(done);

        let latency = done.saturating_since(now);
        self.stats.note(kind, length, service);
        self.stats.note_queue_wait(latency.saturating_sub(service));
        latency
    }

    fn stats(&self) -> &DeviceStats {
        &self.stats
    }

    fn gauges(&self, now: SimTime) -> DeviceGauges {
        DeviceGauges {
            // Commands are retired lazily on the next arrival; count the
            // ones still completing after `now` without mutating.
            queue_depth: self
                .queues
                .iter()
                .map(|q| q.iter().filter(|&&t| t > now).count() as u64)
                .sum(),
            busy: self.stats.busy,
            tier_promotions: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::units::MB;

    fn small() -> NvmeModel {
        NvmeModel::new(
            "t",
            NvmeParams {
                capacity: GB,
                n_queues: 2,
                queue_depth: 2,
                transfer_gb_per_sec: 1.0,
                submit: SimDuration::from_micros(10),
            },
        )
    }

    #[test]
    fn single_request_pays_submit_plus_transfer() {
        let mut d = small();
        let t = d.access(SimTime::ZERO, AccessKind::Read, 0, MB);
        let expected = d.params().submit + d.transfer_time(MB);
        assert_eq!(t, expected);
    }

    #[test]
    fn bandwidth_saturates_across_queues() {
        // Eight simultaneous 1 MB reads on a 1 GB/s device cannot all
        // finish in ~1 ms: they serialize on the internal bandwidth, so
        // the last one takes at least 8× a lone transfer.
        let mut d = small();
        let lone = d.transfer_time(MB);
        let mut last = SimDuration::ZERO;
        for i in 0..8u64 {
            last = last.max(d.access(SimTime::ZERO, AccessKind::Read, i * MB, MB));
        }
        assert!(
            last >= SimDuration::from_ticks(lone.ticks() * 8),
            "8 concurrent transfers finished in {last}, lone transfer {lone}"
        );
    }

    #[test]
    fn full_queue_blocks_submission() {
        // depth 2 × 2 queues = 4 outstanding commands; the 5th lands on
        // queue 0 which is full, so it must wait for a completion there
        // in addition to bus serialization.
        let mut d = small();
        let mut times = Vec::new();
        for i in 0..5u64 {
            times.push(d.access(SimTime::ZERO, AccessKind::Read, i * MB, MB));
        }
        assert!(times.windows(2).all(|w| w[1] > w[0]), "latencies grow: {times:?}");
        assert!(d.stats().queue_wait > SimDuration::ZERO);
    }

    #[test]
    fn busy_stays_within_wall_time() {
        let mut d = small();
        let mut wall = SimDuration::ZERO;
        for i in 0..16u64 {
            wall = wall.max(d.access(SimTime::ZERO, AccessKind::Write, i * MB, MB));
        }
        assert!(
            d.stats().busy <= wall,
            "busy {} exceeds wall {wall}",
            d.stats().busy
        );
    }

    #[test]
    fn idle_device_resets_depth() {
        let mut d = small();
        d.access(SimTime::ZERO, AccessKind::Read, 0, MB);
        let later = SimTime::from_secs(10);
        let t = d.access(later, AccessKind::Read, MB, MB);
        assert_eq!(t, d.params().submit + d.transfer_time(MB));
    }

    #[test]
    fn depth_histogram_counts_every_arrival() {
        let mut d = small();
        for i in 0..6u64 {
            d.access(SimTime::ZERO, AccessKind::Read, i * MB, MB);
        }
        let h = d.obs_counters().queue_depth.expect("nvme reports depth");
        assert_eq!(h.total(), 6);
        // Later arrivals saw several outstanding commands.
        assert!(h.quantile(1.0).unwrap() >= 4.0);
    }

    #[test]
    fn nvme_suspends_processes() {
        // Unlike the paper SSD, a modern NVMe request still goes through
        // the kernel block layer; the issuing process blocks.
        assert!(small().suspends_process());
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "exceeds device capacity"))]
    fn out_of_range_access_is_clamped() {
        let mut d = small();
        let cap = d.capacity();
        d.access(SimTime::ZERO, AccessKind::Write, cap - 1024, 4096);
        assert_eq!(d.stats().bytes_written, 1024);
    }
}
