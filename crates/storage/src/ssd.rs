//! The solid-state disk model.
//!
//! §6.3: "To simulate the SSD on the Cray Y-MP, we treated it as a huge
//! main-memory cache, and added per-block penalties for cache hits. These
//! were approximately 1 µs per kilobyte transferred (at 1 GB/sec), with
//! some additional overhead to set up the transfer. These times were
//! relatively small compared to the time required to execute a system
//! call."
//!
//! §3 (bvi): "I/Os to and from the SSD are done without suspending the
//! process requesting the I/O, because the data is retrieved quickly" —
//! hence [`BlockDevice::suspends_process`] is `false` for the SSD.

use crate::device::{clamp_extent, AccessKind, BlockDevice, DeviceStats};
use serde::{Deserialize, Serialize};
use sim_core::units::GB;
use sim_core::{SimDuration, SimTime};

/// Tunable SSD parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SsdParams {
    /// Capacity in bytes (the NASA machine's per-CPU share is 32 MW =
    /// 256 MB of the 256 MW device).
    pub capacity: u64,
    /// Transfer rate in GB/s (the paper's 1 GB/s → 1 µs per KB).
    pub transfer_gb_per_sec: f64,
    /// Fixed per-request setup overhead.
    pub setup: SimDuration,
}

impl Default for SsdParams {
    fn default() -> Self {
        SsdParams {
            capacity: sim_core::units::YMP_SSD_PER_CPU_BYTES,
            transfer_gb_per_sec: sim_core::units::SSD_GB_PER_SEC,
            setup: SimDuration::from_micros(20),
        }
    }
}

impl SsdParams {
    /// The per-processor share of the NASA Ames SSD.
    pub fn ymp_per_cpu() -> Self {
        Self::default()
    }
}

/// The SSD device.
#[derive(Debug, Clone)]
pub struct SsdModel {
    params: SsdParams,
    name: String,
    stats: DeviceStats,
}

impl SsdModel {
    /// An SSD with the given parameters.
    pub fn new(name: impl Into<String>, params: SsdParams) -> Self {
        SsdModel { params, name: name.into(), stats: DeviceStats::default() }
    }

    /// The paper's per-CPU SSD share.
    pub fn ymp() -> Self {
        SsdModel::new("ymp-ssd", SsdParams::ymp_per_cpu())
    }

    /// Parameters in use.
    pub fn params(&self) -> &SsdParams {
        &self.params
    }

    /// Pure transfer time: 1 µs per KB at 1 GB/s.
    pub fn transfer_time(&self, length: u64) -> SimDuration {
        let secs = length as f64 / (self.params.transfer_gb_per_sec * GB as f64);
        SimDuration::from_secs_f64(secs)
    }
}

impl BlockDevice for SsdModel {
    fn name(&self) -> &str {
        &self.name
    }

    fn capacity(&self) -> u64 {
        self.params.capacity
    }

    fn access(
        &mut self,
        _now: SimTime,
        kind: AccessKind,
        offset: u64,
        length: u64,
    ) -> SimDuration {
        let (_offset, length) = clamp_extent(&self.name, offset, length, self.params.capacity);
        let service = self.params.setup + self.transfer_time(length);
        self.stats.note(kind, length, service);
        service
    }

    fn suspends_process(&self) -> bool {
        false
    }

    fn stats(&self) -> &DeviceStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::units::{KB, MB};

    #[test]
    fn one_microsecond_per_kilobyte() {
        let s = SsdModel::ymp();
        // 100 KB ≈ 100 µs (within tick rounding: 10 ticks).
        let t = s.transfer_time(100 * KB);
        assert_eq!(t.ticks(), 10);
    }

    #[test]
    fn access_is_position_independent() {
        let mut s = SsdModel::ymp();
        let a = s.access(SimTime::ZERO, AccessKind::Read, 0, 64 * KB);
        let b = s.access(SimTime::ZERO, AccessKind::Read, 200 * MB, 64 * KB);
        assert_eq!(a, b, "SSD has no positional cost");
    }

    #[test]
    fn ssd_does_not_suspend_process() {
        assert!(!SsdModel::ymp().suspends_process());
    }

    #[test]
    fn ssd_is_far_faster_than_disk_for_small_io() {
        use crate::disk::DiskModel;
        let mut ssd = SsdModel::ymp();
        let mut disk = DiskModel::ymp();
        let ssd_t = ssd.access(SimTime::ZERO, AccessKind::Read, 123 * MB, 16 * KB);
        let disk_t = disk.access(SimTime::ZERO, AccessKind::Read, 123 * MB, 16 * KB);
        assert!(
            disk_t.ticks() > 20 * ssd_t.ticks().max(1),
            "disk {disk_t} vs ssd {ssd_t}"
        );
    }

    #[test]
    fn capacity_matches_per_cpu_share() {
        assert_eq!(SsdModel::ymp().capacity(), 256 * MB);
    }

    #[test]
    fn stats_accumulate() {
        let mut s = SsdModel::ymp();
        s.access(SimTime::ZERO, AccessKind::Write, 0, 1024);
        assert_eq!(s.stats().writes, 1);
        assert_eq!(s.stats().bytes_written, 1024);
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "exceeds device capacity"))]
    fn out_of_range_access_is_clamped() {
        let mut s = SsdModel::ymp();
        let cap = s.capacity();
        s.access(SimTime::ZERO, AccessKind::Read, cap - 512, 2048);
        // Debug builds assert; release builds truncate to the device tail.
        assert_eq!(s.stats().bytes_read, 512);
    }
}
