//! Benchmarks for the design-choice ablations.

use criterion::{criterion_group, criterion_main, Criterion};
use miller_core::ablations::{
    block_size_ablation, quantum_ablation, queueing_ablation, readahead_ablation,
    write_policy_ablation,
};
use miller_core::Scale;

fn bench_ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.bench_function("readahead_on_off", |b| b.iter(|| readahead_ablation(Scale(16), 42)));
    g.bench_function("write_policies", |b| b.iter(|| write_policy_ablation(Scale(16), 42)));
    g.bench_function("block_sizes", |b| b.iter(|| block_size_ablation(Scale(16), 42)));
    g.bench_function("quanta", |b| b.iter(|| quantum_ablation(Scale(16), 42)));
    g.bench_function("disk_queueing", |b| b.iter(|| queueing_ablation(Scale(16), 42)));
    g.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
