//! Benchmarks regenerating Tables 1 and 2 end-to-end (trace synthesis +
//! analysis for all seven applications).

use criterion::{criterion_group, criterion_main, Criterion};
use miller_core::tables::{table1, table2};
use miller_core::Scale;

fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables");
    g.sample_size(10);
    g.bench_function("table1_quarter_scale", |b| {
        b.iter(|| {
            let r = table1(Scale(4), 42);
            assert_eq!(r.rows.len(), 7);
            r
        })
    });
    g.bench_function("table2_quarter_scale", |b| {
        b.iter(|| {
            let r = table2(Scale(4), 42);
            assert_eq!(r.rows.len(), 7);
            r
        })
    });
    g.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
