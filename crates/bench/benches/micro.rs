//! Microbenchmarks of the substrates: trace codec throughput, cache
//! operation rate, and raw simulator event rate.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use miller_core::{
    read_trace, write_trace, AppKind, CacheConfig, Direction, IoEvent, SimDuration, SimTime,
    Trace,
};

fn synthetic_trace(n: u64) -> Trace {
    let mut t = Trace::new();
    for i in 0..n {
        t.push(IoEvent::logical(
            if i % 3 == 0 { Direction::Write } else { Direction::Read },
            1,
            1 + (i % 4) as u32,
            (i / 4) * 65536,
            65536,
            SimTime::from_ticks(i * 500),
            SimDuration::from_ticks(500),
        ));
    }
    t
}

fn bench_codec(c: &mut Criterion) {
    let trace = synthetic_trace(20_000);
    let mut encoded = Vec::new();
    write_trace(&trace, &mut encoded).unwrap();

    let mut g = c.benchmark_group("codec");
    g.throughput(Throughput::Elements(20_000));
    g.bench_function("encode_20k_records", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(encoded.len());
            write_trace(&trace, &mut buf).unwrap();
            buf
        })
    });
    g.bench_function("decode_20k_records", |b| {
        b.iter(|| read_trace(std::io::Cursor::new(&encoded)).unwrap())
    });
    g.finish();
}

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("sequential_reads_10k", |b| {
        b.iter(|| {
            let mut cache =
                miller_core::BlockCache::new(CacheConfig::buffered(16 * 1024 * 1024));
            for i in 0..10_000u64 {
                cache.read(SimTime::from_ticks(i), 1, 1, i * 4096, 4096);
            }
            cache.stats().hit_blocks
        })
    });
    g.bench_function("write_flush_cycle_10k", |b| {
        b.iter(|| {
            let mut cache =
                miller_core::BlockCache::new(CacheConfig::buffered(16 * 1024 * 1024));
            for i in 0..10_000u64 {
                cache.write(SimTime::from_ticks(i), 1, 1, (i % 1000) * 4096, 4096);
                if i % 64 == 0 {
                    cache.take_flush_batch(SimTime::from_ticks(i), u64::MAX);
                }
            }
            cache.dirty_bytes()
        })
    });
    g.finish();
}

fn bench_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("workload");
    g.sample_size(10);
    g.bench_function("generate_venus_full", |b| {
        b.iter(|| {
            let t = miller_core::generate(&AppKind::Venus.spec(1), 42);
            assert!(t.io_count() > 30_000);
            t
        })
    });
    g.finish();
}

fn bench_fsmap(c: &mut Criterion) {
    let trace = synthetic_trace(20_000);
    let mut g = c.benchmark_group("fsmap");
    g.throughput(Throughput::Elements(20_000));
    g.bench_function("translate_20k_records", |b| {
        b.iter(|| {
            let mut layout =
                miller_core::FsLayout::new(miller_core::FsConfig::default());
            miller_core::translate_to_physical(&trace, &mut layout)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_codec, bench_cache, bench_generation, bench_fsmap);
criterion_main!(benches);
