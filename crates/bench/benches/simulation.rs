//! Benchmarks regenerating Figures 6, 7 and 8 (the buffering
//! simulations).

use criterion::{criterion_group, criterion_main, Criterion};
use miller_core::figures::{fig8, two_venus};
use miller_core::Scale;

fn bench_simulation(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulation");
    g.sample_size(10);
    g.bench_function("fig6_two_venus_32mb", |b| {
        b.iter(|| two_venus(32, Scale(16), 42))
    });
    g.bench_function("fig7_two_venus_128mb", |b| {
        b.iter(|| two_venus(128, Scale(16), 42))
    });
    g.bench_function("fig8_cache_sweep", |b| {
        b.iter(|| {
            let r = fig8(Scale(16), 42);
            assert_eq!(r.points.len(), 14);
            r
        })
    });
    g.finish();
}

criterion_group!(benches, bench_simulation);
criterion_main!(benches);
