//! Benchmarks of the simulator hot path: the fixed Figure 6 two-venus
//! run, the full Figure 8 cache sweep (which fans out over the parallel
//! harness), and an LRU churn microbench sized to a 64 MB cache.

use buffer_cache::lru::LruIndex;
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use miller_core::figures::{fig8, two_venus};
use miller_core::Scale;

fn bench_simulation(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulation");
    g.sample_size(10);
    g.bench_function("fig6_two_venus_32mb", |b| {
        b.iter(|| two_venus(32, Scale(16), 42))
    });
    g.bench_function("fig7_two_venus_128mb", |b| {
        b.iter(|| two_venus(128, Scale(16), 42))
    });
    g.bench_function("fig8_cache_sweep", |b| {
        b.iter(|| {
            let r = fig8(Scale(16), 42);
            assert_eq!(r.points.len(), 14);
            r
        })
    });
    g.finish();
}

/// The pre-rewrite recency index — `HashMap` sequence numbers plus a
/// `BTreeMap` recency order, O(log n) per touch — reproduced here so the
/// benchmark reports a direct before/after for the intrusive-list
/// rewrite in `buffer_cache::lru`.
struct BTreeLru {
    next_seq: u64,
    by_key: std::collections::HashMap<(u32, u64), u64>,
    by_seq: std::collections::BTreeMap<u64, (u32, u64)>,
}

impl BTreeLru {
    fn new() -> Self {
        BTreeLru {
            next_seq: 0,
            by_key: std::collections::HashMap::new(),
            by_seq: std::collections::BTreeMap::new(),
        }
    }

    fn touch(&mut self, key: (u32, u64)) {
        if let Some(old) = self.by_key.insert(key, self.next_seq) {
            self.by_seq.remove(&old);
        }
        self.by_seq.insert(self.next_seq, key);
        self.next_seq += 1;
    }

    fn pop_lru(&mut self) -> Option<(u32, u64)> {
        let (&seq, _) = self.by_seq.iter().next()?;
        let key = self.by_seq.remove(&seq).expect("seq just observed");
        self.by_key.remove(&key);
        Some(key)
    }

    fn len(&self) -> usize {
        self.by_key.len()
    }
}

/// Churn an LRU sized for a 64 MB cache of 4 KB blocks (16384 resident
/// keys) with a working set twice that size, touching and evicting the
/// way a venus-style staging pass does. This is the operation the
/// intrusive-list rewrite made O(1); the old `BTreeMap` index paid
/// O(log n) per touch and is benchmarked alongside for the before/after.
fn bench_lru_churn(c: &mut Criterion) {
    const RESIDENT: usize = 64 * 1024 * 1024 / 4096;
    const OPS: u64 = 500_000;
    let mut g = c.benchmark_group("lru");
    g.sample_size(10);
    g.throughput(Throughput::Elements(OPS));
    g.bench_function("churn_64mb_4k_blocks", |b| {
        b.iter(|| {
            let mut lru: LruIndex<(u32, u64)> = LruIndex::new();
            let mut x = 0x9e37_79b9_7f4a_7c15u64;
            for _ in 0..OPS {
                // xorshift64: cheap deterministic key stream.
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                lru.touch((1, x % (2 * RESIDENT as u64)));
                if lru.len() > RESIDENT {
                    black_box(lru.pop_lru());
                }
            }
            lru.len()
        })
    });
    g.bench_function("churn_64mb_4k_blocks_btreemap_before", |b| {
        b.iter(|| {
            let mut lru = BTreeLru::new();
            let mut x = 0x9e37_79b9_7f4a_7c15u64;
            for _ in 0..OPS {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                lru.touch((1, x % (2 * RESIDENT as u64)));
                if lru.len() > RESIDENT {
                    black_box(lru.pop_lru());
                }
            }
            lru.len()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_simulation, bench_lru_churn);
criterion_main!(benches);
