//! Benchmarks regenerating Figures 3 and 4 (per-app demand series +
//! cycle detection).

use criterion::{criterion_group, criterion_main, Criterion};
use miller_core::figures::{fig3, fig4};
use miller_core::Scale;

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig3_venus_demand", |b| {
        b.iter(|| {
            let f = fig3(Scale(4), 42);
            assert!(f.mean_mb_per_s > 20.0);
            f
        })
    });
    g.bench_function("fig4_les_demand", |b| {
        b.iter(|| {
            let f = fig4(Scale(4), 42);
            assert!(f.mean_mb_per_s > 20.0);
            f
        })
    });
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
