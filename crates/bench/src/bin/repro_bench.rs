//! `repro_bench` — machine-readable timing of the simulation sweeps.
//!
//! Runs the Figure 6/7 fixed simulations, the Figure 8 cache sweep
//! (through the parallel harness), and the 64 MB LRU churn microbench,
//! then writes `BENCH_sim.json` with wall seconds and an events-per-
//! second rate for each sweep. "Events" are simulated I/O requests for
//! the simulator sweeps and index operations for the LRU microbench.
//!
//! Thread count follows the harness: `MILLER_THREADS`, then
//! `RAYON_NUM_THREADS`, then all available cores.

use buffer_cache::lru::LruIndex;
use buffer_cache::WritePolicy;
use miller_core::figures::two_venus_report;
use miller_core::{par_sweep, thread_count, Scale, SimReport};
use serde::Serialize;
use std::time::Instant;

const MB: u64 = 1024 * 1024;

/// One timed sweep.
#[derive(Debug, Serialize)]
struct SweepTiming {
    /// Sweep label.
    name: String,
    /// Host wall-clock seconds for the sweep.
    wall_secs: f64,
    /// Events processed (simulated I/O requests, or LRU operations).
    events: u64,
    /// Events per host second.
    events_per_sec: f64,
}

/// The whole `BENCH_sim.json` document.
#[derive(Debug, Serialize)]
struct BenchReport {
    /// Worker threads the parallel harness used.
    threads: usize,
    /// Scale divisor the simulations ran at.
    scale: u32,
    /// Per-sweep timings.
    sweeps: Vec<SweepTiming>,
}

fn ios_issued(r: &SimReport) -> u64 {
    r.processes.iter().map(|p| p.ios_issued).sum()
}

fn timed(name: &str, f: impl FnOnce() -> u64) -> SweepTiming {
    let start = Instant::now();
    let events = f();
    let wall_secs = start.elapsed().as_secs_f64();
    SweepTiming {
        name: name.to_string(),
        wall_secs,
        events,
        events_per_sec: if wall_secs > 0.0 { events as f64 / wall_secs } else { 0.0 },
    }
}

fn main() {
    let scale = Scale(16);
    let seed = 42;
    let mut sweeps = Vec::new();

    sweeps.push(timed("fig6_two_venus_32mb", || {
        let r = two_venus_report(32 * MB, 4096, true, WritePolicy::WriteBehind, scale, seed);
        ios_issued(&r)
    }));

    sweeps.push(timed("fig7_two_venus_128mb", || {
        let r = two_venus_report(128 * MB, 4096, true, WritePolicy::WriteBehind, scale, seed);
        ios_issued(&r)
    }));

    // The Figure 8 grid, fanned out over the parallel harness exactly
    // like `fig8()` — reproduced here so per-point I/O counts are
    // visible for the rate.
    sweeps.push(timed("fig8_cache_sweep_14pt", || {
        let sizes = [4u64, 8, 16, 32, 64, 128, 256];
        let mut jobs = Vec::new();
        for &block in &[4096u64, 8192] {
            for &mb in &sizes {
                jobs.push((mb, block));
            }
        }
        let counts = par_sweep(&jobs, |&(mb, block)| {
            let r = two_venus_report(mb * MB, block, true, WritePolicy::WriteBehind, scale, seed);
            ios_issued(&r)
        });
        counts.iter().sum()
    }));

    sweeps.push(timed("lru_churn_64mb_4k_blocks", || {
        const RESIDENT: usize = 64 * 1024 * 1024 / 4096;
        const OPS: u64 = 2_000_000;
        let mut lru: LruIndex<(u32, u64)> = LruIndex::new();
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        for _ in 0..OPS {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            lru.touch((1, x % (2 * RESIDENT as u64)));
            if lru.len() > RESIDENT {
                std::hint::black_box(lru.pop_lru());
            }
        }
        OPS
    }));

    let report = BenchReport { threads: thread_count(), scale: scale.0, sweeps };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_sim.json", &json).expect("write BENCH_sim.json");
    println!("{json}");
}
