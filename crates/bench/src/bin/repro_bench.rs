//! `repro_bench` — machine-readable timing of the simulation sweeps.
//!
//! Runs the Figure 6/7 fixed simulations, the Figure 8 cache sweep
//! (through the parallel harness), the `fig8_modern_sweep` rerun of the
//! same grid on the 2026 tiered device hierarchy (exercising the
//! queue-aware NVMe/elevator models), the trace-generation and cold/warm
//! trace-store benches (interleaved best-of-five pairs against fresh
//! stores; a warm sweep slower than cold fails the run), the
//! `shard_scale_10k` campaign — 1000 groups x 10 processes x 1 disk
//! through the sharded engine at 1 and 8 shards, gated at >= 3x speedup
//! on machines with >= 8 cores — the 64 MB LRU churn microbench, the
//! `stream_v2` frame-codec churn pair (encode + `trace_codec_churn`
//! decode, the latter gated at >= 2M events/s), and the streamed
//! 100x100 campaign replayed from spilled frame files under a 64 MB
//! trace budget (its peak residency lands in the report as
//! `peak_trace_bytes`, gated at <= the budget), and the
//! `serve_sustained_rps` serving scenario — a closed-loop mixed
//! campaign (every fig8 grid point plus two sharded campaign points,
//! each duplicated `MILLER_SERVE_DUP` times, default 3, and shuffled)
//! driven by 4 concurrent clients against a warm `serve::Engine`,
//! gated at >= 2x the cold spawn-per-request baseline and at
//! byte-identical responses vs one-shot runs at worker counts 1 and 4 —
//! then writes
//! `BENCH_sim.json` with wall seconds and an events-per-second rate for
//! each sweep. "Events" are simulated I/O requests for the simulator
//! sweeps, generated trace records for the generation bench, codec
//! events for the churn pair, and index operations for the LRU
//! microbench.
//!
//! Thread count follows the harness: `MILLER_THREADS`, then
//! `RAYON_NUM_THREADS`, then all available cores. `MILLER_BENCH_SCALE`
//! overrides the scale divisor (default 16; CI uses a higher divisor
//! for a quicker run).
//!
//! The engine-phase microbenches (`event_queue_churn`, `cache_ops_churn`,
//! `device_model_access`) time each hot-path component in isolation at
//! workload-representative parameters; `1e9 / events_per_sec` gives the
//! ns/op share each phase contributes to a simulated I/O, making the next
//! bottleneck visible straight from `BENCH_sim.json`. The binary also
//! runs under a counting global allocator and reports `alloc_per_event` —
//! the marginal heap allocations per simulated I/O, measured by
//! differencing two warm single-point runs — which must stay at zero.
//!
//! `--baseline <path>` compares this run against a previously written
//! `BENCH_sim.json` and exits non-zero if any shared sweep's
//! `events_per_sec` regressed beyond tolerance, or if the request path
//! started allocating. The tolerance is 30 % for most sweeps but a tight
//! 3 % for the canonical `fig8_cache_sweep_14pt` — that sweep runs with
//! span profiling forcibly *disabled*, timed as the best of five
//! repetitions interleaved with the profiling-on sweep, so it guards
//! the zero-overhead claim of the observability layer against the
//! hot-path baseline. The rate comparison is skipped (with a note)
//! when the baseline was recorded at a different thread count or scale,
//! since rates are only comparable like-for-like; the allocation gates
//! are absolute and always apply.
//!
//! Observability: the same grid is re-run as `fig8_sweep_obs_on` with
//! the span recorder enabled, and the report's `obs` section summarizes
//! recorder occupancy plus the enabled-vs-disabled overhead.
//! `alloc_per_event_obs` repeats the allocation differencing with spans
//! on — recording must stay allocation-free too (the ring drops, never
//! grows). `--profile PATH` (or `MILLER_PROFILE=PATH`) additionally
//! exports everything recorded as a Chrome trace-event / Perfetto JSON
//! timeline.

use buffer_cache::lru::LruIndex;
use buffer_cache::{BlockCache, CacheConfig, ReadOutcome, WritePolicy, WriteOutcome};
use miller_core::figures::{two_venus_report, two_venus_report_in};
use miller_core::{
    encode_frames, generate, par_sweep, run_campaign, run_campaign_in, scaled_spec, thread_count,
    AppKind, BlockDevice, CampaignSpec, DiskModel, DiskParams, FrameFile, IoEvent, Scale,
    SimDuration, SimReport, SimTime, StoreConfig, TraceStore,
};
use serde::{Deserialize, Serialize};
use serve::engine::execute;
use serve::{CampaignPointSpec, Engine, EngineConfig, Fig8PointSpec, RequestBody};
use sim_core::EventQueue;
use std::alloc::{GlobalAlloc, Layout, System};
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;
use storage_model::AccessKind;

const MB: u64 = 1024 * 1024;

/// Tolerated events-per-second regression vs the baseline.
const REGRESSION_TOLERANCE: f64 = 0.30;

/// The canonical hot-path sweep: spans forced off, best of five
/// repetitions interleaved with the spans-on sweep.
const HOT_SWEEP: &str = "fig8_cache_sweep_14pt";

/// The hot sweep gets a far tighter gate than the generic whisker: it is
/// the guard that the observability layer costs nothing when disabled.
const HOT_SWEEP_TOLERANCE: f64 = 0.03;

fn tolerance_for(name: &str) -> f64 {
    if name == HOT_SWEEP {
        HOT_SWEEP_TOLERANCE
    } else {
        REGRESSION_TOLERANCE
    }
}

/// Allocations per simulated I/O above which the run fails: the steady
/// state must be allocation-free (the whisker of slack absorbs the
/// `RateSeries` bins doubling a few more times in the longer run).
const ALLOC_PER_EVENT_LIMIT: f64 = 0.01;

/// In-memory trace budget for the streamed 100x100 campaign; its peak
/// resident bytes are gated absolutely at this figure.
const TRACE_BUDGET: usize = 64 * MB as usize;

/// Absolute floor on `trace_codec_churn`'s decode rate: streamed replay
/// reads every event through the frame decoder, so it must comfortably
/// outrun the simulator's own event rate for spilling to stay off the
/// critical path.
const DECODE_FLOOR: f64 = 2_000_000.0;

/// Minimum `serve_sustained_rps` over the cold spawn-per-request
/// baseline: warm-store reuse plus coalescing/caching of the duplicated
/// stream must at least double throughput, or the daemon isn't paying
/// for its existence.
const SERVE_SPEEDUP_FLOOR: f64 = 2.0;

/// Counts heap allocations so `alloc_per_event` can be measured in-process.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// One timed sweep.
#[derive(Debug, Serialize, Deserialize)]
struct SweepTiming {
    /// Sweep label.
    name: String,
    /// Host wall-clock seconds for the sweep.
    wall_secs: f64,
    /// Events processed (simulated I/O requests, or LRU operations).
    events: u64,
    /// Events per host second.
    events_per_sec: f64,
}

/// What the observability layer did and cost during this run.
#[derive(Debug, Serialize, Deserialize)]
struct ObsBenchSummary {
    /// Span events sitting in the flight-recorder ring at report time.
    events_recorded: u64,
    /// Span events dropped because the ring was full.
    events_dropped: u64,
    /// Perfetto tracks registered (per-process, per-disk, per-worker).
    tracks: usize,
    /// Hot sweep rate with span recording disabled (the canonical rate).
    off_events_per_sec: f64,
    /// The same sweep with span recording enabled.
    on_events_per_sec: f64,
    /// Slowdown of the enabled sweep relative to disabled, in percent
    /// (positive = enabled is slower). Informational, not gated.
    on_overhead_pct: f64,
}

/// What `mio serve`'s engine delivered under the closed-loop mixed
/// campaign, versus the cold spawn-per-request baseline.
#[derive(Debug, Serialize, Deserialize)]
struct ServeBenchSummary {
    /// Requests per second through the warm engine (dedup + coalescing
    /// + warm store), closed-loop from 4 concurrent clients.
    warm_rps: f64,
    /// Requests per second when every request pays a fresh store — the
    /// one-shot spawn-per-request world, at the same parallelism.
    cold_rps: f64,
    /// `warm_rps / cold_rps`; gated at >= 2x.
    speedup: f64,
    /// How many times each distinct request appears in the stream
    /// (`MILLER_SERVE_DUP`, default 3).
    duplicate_ratio: usize,
    /// Whether every served response was byte-identical to its one-shot
    /// run at worker counts 1 and 4. Gated: must be true.
    responses_identical: bool,
    /// Per-request-type latency percentiles from the warm engine's own
    /// Prometheus exposition, taken right after the sustained-RPS
    /// stream. Wall-clock seconds (log₂-bucket upper edges), purely
    /// informational — never gated, and absent in older reports.
    latency: Option<Vec<ServeTypeLatency>>,
}

/// One request type's queue-wait / service-time percentiles, parsed
/// from `serve_*_seconds_p50/p99` in the engine's exposition.
#[derive(Debug, Serialize, Deserialize)]
struct ServeTypeLatency {
    /// `type` label on the serve histograms (`fig8_point`, `campaign`).
    req_type: String,
    /// Executions the worker pool completed for this type.
    completed: u64,
    /// p50 queue wait, seconds.
    queue_wait_p50_s: f64,
    /// p99 queue wait, seconds.
    queue_wait_p99_s: f64,
    /// p50 service time, seconds.
    service_p50_s: f64,
    /// p99 service time, seconds.
    service_p99_s: f64,
}

/// Read the warm engine's RED percentiles back through the same text
/// exposition `mio stats --prom` serves, exercising the round-trip
/// parser on a live registry.
fn serve_latency(engine: &Engine) -> Vec<ServeTypeLatency> {
    let samples = obs::metrics::parse_exposition(&engine.prometheus_text()).unwrap_or_default();
    let get = |name: &str, ty: &str| {
        samples
            .iter()
            .find(|s| {
                s.name == name && s.labels.iter().any(|(k, v)| k == "type" && v == ty)
            })
            .map_or(0.0, |s| s.value)
    };
    ["fig8_point", "campaign"]
        .iter()
        .map(|&ty| ServeTypeLatency {
            req_type: ty.to_string(),
            completed: get("serve_service_time_seconds_count", ty) as u64,
            queue_wait_p50_s: get("serve_queue_wait_seconds_p50", ty),
            queue_wait_p99_s: get("serve_queue_wait_seconds_p99", ty),
            service_p50_s: get("serve_service_time_seconds_p50", ty),
            service_p99_s: get("serve_service_time_seconds_p99", ty),
        })
        .collect()
}

/// The whole `BENCH_sim.json` document.
#[derive(Debug, Serialize, Deserialize)]
struct BenchReport {
    /// Worker threads the parallel harness used.
    threads: usize,
    /// Scale divisor the simulations ran at.
    scale: u32,
    /// Marginal heap allocations per simulated I/O on the warm sweep
    /// path, measured by differencing two runs of different length.
    /// Absent (`None`) in reports written before the gate existed.
    alloc_per_event: Option<f64>,
    /// The same differencing with the span recorder enabled: recording
    /// must not allocate either. Absent in pre-observability reports.
    alloc_per_event_obs: Option<f64>,
    /// Observability-layer summary. Absent in pre-observability reports.
    obs: Option<ObsBenchSummary>,
    /// Peak resident bytes in the streamed campaign's trace store — the
    /// working set of 10k processes replaying from spilled frame files,
    /// gated absolutely at the 64 MB budget. Absent in pre-streaming
    /// reports.
    peak_trace_bytes: Option<u64>,
    /// `mio serve` sustained-throughput summary. Absent in pre-serving
    /// reports.
    serve: Option<ServeBenchSummary>,
    /// Per-sweep timings.
    sweeps: Vec<SweepTiming>,
}

fn ios_issued(r: &SimReport) -> u64 {
    r.processes.iter().map(|p| p.ios_issued).sum()
}

fn timed(name: &str, f: impl FnOnce() -> u64) -> SweepTiming {
    let start = Instant::now();
    let events = f();
    let wall_secs = start.elapsed().as_secs_f64();
    SweepTiming {
        name: name.to_string(),
        wall_secs,
        events,
        events_per_sec: if wall_secs > 0.0 { events as f64 / wall_secs } else { 0.0 },
    }
}

/// The Figure 8 parameter grid (cache MB, block size).
fn fig8_jobs() -> Vec<(u64, u64)> {
    let sizes = [4u64, 8, 16, 32, 64, 128, 256];
    let mut jobs = Vec::new();
    for &block in &[4096u64, 8192] {
        for &mb in &sizes {
            jobs.push((mb, block));
        }
    }
    jobs
}

fn run_benches(scale: Scale, seed: u64) -> Vec<SweepTiming> {
    let mut sweeps = Vec::new();

    // Raw workload generation, bypassing the store: the cost the
    // memoized sweeps no longer pay per point.
    sweeps.push(timed("trace_gen_two_venus_x5", || {
        let mut events = 0u64;
        for _ in 0..5 {
            let t1 = generate(&scaled_spec(AppKind::Venus, 1, scale), seed);
            let t2 = generate(&scaled_spec(AppKind::Venus, 2, scale), seed + 1);
            events += (t1.io_count() + t2.io_count()) as u64;
        }
        events
    }));

    sweeps.push(timed("fig6_two_venus_32mb", || {
        let r = two_venus_report(32 * MB, 4096, true, WritePolicy::WriteBehind, scale, seed);
        ios_issued(&r)
    }));

    sweeps.push(timed("fig7_two_venus_128mb", || {
        let r = two_venus_report(128 * MB, 4096, true, WritePolicy::WriteBehind, scale, seed);
        ios_issued(&r)
    }));

    // The Figure 8 grid, fanned out over the parallel harness exactly
    // like `fig8()` — reproduced here so per-point I/O counts are
    // visible for the rate. The global store is warm by now (fig6/fig7
    // above), so this is the steady-state sweep rate.
    //
    // Run it twice: once with span recording forced off (the canonical
    // hot-path rate, gated at 3 % vs baseline) and once forced on, so
    // the report states the observability layer's overhead directly.
    let fig8_once = || {
        let counts = par_sweep(&fig8_jobs(), |&(mb, block)| {
            let r = two_venus_report(mb * MB, block, true, WritePolicy::WriteBehind, scale, seed);
            ios_issued(&r)
        });
        counts.iter().sum()
    };
    // Interleaved off/on repetitions: on a shared machine the load
    // regime drifts over the seconds a sweep block takes, so measuring
    // all-off then all-on would compare different windows and report
    // phantom overhead. Alternating pairs sample the same windows; the
    // minimum over the pairs is each mode's true capability.
    let spans_were_on = obs::enabled();
    obs::init(1 << 18);
    let mut off_best: Option<SweepTiming> = None;
    let mut on_best: Option<SweepTiming> = None;
    for _ in 0..5 {
        obs::set_enabled(false);
        let off = timed(HOT_SWEEP, fig8_once);
        if off_best.as_ref().is_none_or(|b| off.wall_secs < b.wall_secs) {
            off_best = Some(off);
        }
        obs::set_enabled(true);
        let on = timed("fig8_sweep_obs_on", fig8_once);
        if on_best.as_ref().is_none_or(|b| on.wall_secs < b.wall_secs) {
            on_best = Some(on);
        }
    }
    obs::set_enabled(spans_were_on);
    sweeps.push(off_best.expect("five off repetitions ran"));
    sweeps.push(on_best.expect("five on repetitions ran"));

    // The same grid against a private store: cold pays the one-time
    // generation of both venus traces, warm re-runs with them memoized —
    // cold − warm ≈ the total generation cost amortized over the sweep,
    // and a warm sweep can never legitimately be slower than a cold one
    // (main gates on that). Measured like the hot sweep above: five
    // interleaved cold/warm pairs, each pair against a FRESH store, best
    // rep wins. The old single cold-block-then-warm-block measurement
    // compared two different load windows on a shared machine and could
    // report warm < cold.
    let store_sweep = |store: &TraceStore| -> u64 {
        let counts = par_sweep(&fig8_jobs(), |&(mb, block)| {
            let r = two_venus_report_in(
                store,
                mb * MB,
                block,
                true,
                WritePolicy::WriteBehind,
                scale,
                seed,
            );
            ios_issued(&r)
        });
        counts.iter().sum()
    };
    let mut cold_best: Option<SweepTiming> = None;
    let mut warm_best: Option<SweepTiming> = None;
    for _ in 0..5 {
        let store = TraceStore::new();
        let cold = timed("fig8_sweep_cold_store", || store_sweep(&store));
        if cold_best.as_ref().is_none_or(|b| cold.wall_secs < b.wall_secs) {
            cold_best = Some(cold);
        }
        let warm = timed("fig8_sweep_warm_store", || store_sweep(&store));
        if warm_best.as_ref().is_none_or(|b| warm.wall_secs < b.wall_secs) {
            warm_best = Some(warm);
        }
    }
    sweeps.push(cold_best.expect("five cold repetitions ran"));
    sweeps.push(warm_best.expect("five warm repetitions ran"));

    // The 2026-device rerun (`repro-sim --devices modern`): the same
    // cache sweep against the tiered NVMe/elevator/tape hierarchy, so
    // the queue-aware device models sit on a gated hot path too.
    sweeps.push(timed("fig8_modern_sweep", || {
        miller_core::modern::modern_sweep_ios(scale, seed)
    }));

    // Cluster scale-out: the 10k-process / 1k-disk datacenter campaign
    // through the sharded engine at 1 shard and at 8. Both runs produce
    // the byte-identical report (pinned by the determinism tests); what
    // this times is pure execution scaling. Campaign traces shrink with
    // the bench divisor so the default run stays within minutes.
    let mut spec = CampaignSpec::datacenter(1000, 10);
    spec.scale = Scale(scale.0.saturating_mul(32).max(1));
    spec.shared_file_every = 10; // one shared-file reader per group
    for shards in [1usize, 8] {
        let spec = spec.clone();
        sweeps.push(timed(&format!("shard_scale_10k_s{shards}"), move || {
            run_campaign(&spec, shards).ios_issued
        }));
    }

    // Engine-phase microbenches: each hot-path component in isolation,
    // at workload-representative parameters. 1e9 / events_per_sec is the
    // ns/op that phase contributes to one simulated I/O.

    // Queue phase: schedule/pop churn through the timing wheel with the
    // simulator's mix of deltas — mostly near-future (slice and I/O
    // completions within milliseconds of now), a few far-future (the
    // 30-second flush aging timer), at ~1k events in flight.
    sweeps.push(timed("event_queue_churn", || {
        const OPS: u64 = 4_000_000;
        const IN_FLIGHT: u64 = 1024;
        let deltas = [
            100u64, 250, 1_000, 1_500, 4_000, 10_000, 100_000, 500_000, 3_000_000,
        ];
        let mut q: EventQueue<u32> = EventQueue::new();
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        for i in 0..OPS {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let delta = if x.is_multiple_of(997) {
                3_000_000_000 // the flush aging timer, ~30 s out
            } else {
                deltas[(x % deltas.len() as u64) as usize]
            };
            q.schedule(q.now() + SimDuration::from_ticks(delta), i as u32);
            if q.len() as u64 > IN_FLIGHT {
                std::hint::black_box(q.pop());
            }
        }
        while q.pop().is_some() {}
        OPS
    }));

    // Cache phase: read/write bookkeeping through the reusable-outcome
    // API over a working set twice the cache, no engine or device model.
    sweeps.push(timed("cache_ops_churn", || {
        const OPS: u64 = 1_000_000;
        let mut cache = BlockCache::new(CacheConfig::buffered(32 * MB));
        let mut read_out = ReadOutcome::default();
        let mut write_out = WriteOutcome::default();
        let mut x = 0x2545_f491_4f6c_dd1du64;
        for i in 0..OPS {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let now = SimTime::from_ticks(i * 100);
            let offset = (x % (2 * 32 * MB / 4096)) * 4096;
            if x.is_multiple_of(4) {
                cache.write_into(now, 1, 1, offset, 4096, &mut write_out);
                std::hint::black_box(write_out.dirtied_blocks);
            } else {
                cache.read_into(now, 1, 1, offset, 4096, &mut read_out);
                std::hint::black_box(read_out.miss_blocks);
            }
        }
        OPS
    }));

    // Device phase: the seek/rotate/transfer model alone, alternating
    // short seeks within a file and long cross-file strides.
    sweeps.push(timed("device_model_access", || {
        const OPS: u64 = 2_000_000;
        let mut disk = DiskModel::new("bench", DiskParams::default());
        let mut x = 0x853c_49e6_748f_ea9bu64;
        let mut total = SimDuration::ZERO;
        for i in 0..OPS {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let now = SimTime::from_ticks(i * 1_000);
            // Strides stay within the ~1.2 GB Y-MP platter: the device
            // model clamps (and under debug asserts on) out-of-range
            // extents, so the bench must issue well-formed ones.
            let offset = (x % (4 * 1024)) * 4096 + (x % 4) * 256 * MB;
            let kind = if x.is_multiple_of(4) { AccessKind::Write } else { AccessKind::Read };
            total += disk.access(now, kind, offset, 4096);
        }
        std::hint::black_box(total);
        OPS
    }));

    sweeps.push(timed("lru_churn_64mb_4k_blocks", || {
        const RESIDENT: usize = 64 * 1024 * 1024 / 4096;
        const OPS: u64 = 2_000_000;
        let mut lru: LruIndex<(u32, u64)> = LruIndex::new();
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        for _ in 0..OPS {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            lru.touch((1, x % (2 * RESIDENT as u64)));
            if lru.len() > RESIDENT {
                std::hint::black_box(lru.pop_lru());
            }
        }
        OPS
    }));

    codec_benches(scale, seed, &mut sweeps);

    sweeps
}

/// Frame-codec churn: the `stream_v2` hot loops in isolation. One venus
/// trace is encoded into an in-memory frame (4096-event blocks, the
/// codec default) and decoded back through a block cursor, enough
/// repetitions of each to push ~2M events through either direction.
/// `trace_codec_churn` is the decode side, gated absolutely in `main`
/// at [`DECODE_FLOOR`]; encode is timed alongside and the wire rates in
/// MB/s go to stderr.
fn codec_benches(scale: Scale, seed: u64, sweeps: &mut Vec<SweepTiming>) {
    const TARGET_EVENTS: u64 = 2_000_000;
    let trace = generate(&scaled_spec(AppKind::Venus, 1, scale), seed);
    let events: Vec<IoEvent> = trace.events().cloned().collect();
    let per_rep = (events.len() as u64).max(1);
    let reps = TARGET_EVENTS.div_ceil(per_rep);
    let mut frame = Vec::new();
    let enc = timed("trace_codec_encode", || {
        for _ in 0..reps {
            frame = encode_frames(&events, 4096);
        }
        reps * per_rep
    });
    let frame_bytes = frame.len() as u64;
    let file = FrameFile::from_bytes(frame).expect("freshly encoded frame parses");
    let dec = timed("trace_codec_churn", || {
        let mut n = 0u64;
        for _ in 0..reps {
            let mut cur = file.cursor();
            while let Some(e) = cur.next().expect("freshly encoded frame decodes") {
                std::hint::black_box(e.length);
                n += 1;
            }
        }
        n
    });
    let wire_mb_per_sec = |t: &SweepTiming| {
        if t.wall_secs > 0.0 {
            (frame_bytes * reps) as f64 / MB as f64 / t.wall_secs
        } else {
            0.0
        }
    };
    eprintln!(
        "trace codec: {:.1} wire bytes/event; encode {:.0} MB/s, decode {:.0} MB/s",
        frame_bytes as f64 / per_rep as f64,
        wire_mb_per_sec(&enc),
        wire_mb_per_sec(&dec),
    );
    sweeps.push(enc);
    sweeps.push(dec);
}

/// The streaming-store memory gate: the 100x100 datacenter campaign
/// (10k processes) replayed entirely from spilled `stream_v2` frame
/// files under the [`TRACE_BUDGET`] in-memory budget — the flag-level
/// equivalent is `repro-sim --campaign 100x100 --trace-mem-budget 64`.
/// Returns the sweep timing plus the store's peak resident bytes, which
/// `main` gates at <= the budget: the trace working set must stay
/// bounded by the live cursors' decoded blocks no matter how many
/// processes replay. Campaign traces shrink with the bench divisor,
/// like `shard_scale_10k`.
fn measure_streamed_campaign(scale: Scale) -> (SweepTiming, u64) {
    let dir = std::env::temp_dir().join(format!("miller-bench-traces-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = TraceStore::with_config(StoreConfig {
        mem_budget: Some(TRACE_BUDGET),
        spill_dir: Some(dir.clone()),
    });
    let mut spec = CampaignSpec::datacenter(100, 100);
    spec.scale = Scale(scale.0.saturating_mul(32).max(1));
    let timing =
        timed("campaign_streamed_100x100", || run_campaign_in(&store, &spec, 8).ios_issued);
    let peak = store.footprint().peak_bytes as u64;
    let _ = std::fs::remove_dir_all(&dir);
    (timing, peak)
}

/// The mixed request campaign the serving benches drive: every Figure 8
/// grid point (which subsumes the fig6/fig7 32 MB and 128 MB points)
/// plus two sharded campaign points, at the bench scale.
fn serve_request_pool(scale: Scale, seed: u64) -> Vec<RequestBody> {
    let mut pool: Vec<RequestBody> = fig8_jobs()
        .iter()
        .map(|&(mb, block)| {
            RequestBody::Fig8Point(Fig8PointSpec { cache_mb: mb, block, scale: scale.0, seed })
        })
        .collect();
    // Campaign traces shrink with the bench divisor, like shard_scale_10k.
    let campaign_scale = scale.0.saturating_mul(32).max(1);
    for (groups, procs) in [(8usize, 8usize), (8, 16)] {
        let mut c = CampaignPointSpec::datacenter(groups, procs, 4);
        c.scale = campaign_scale;
        c.seed = seed;
        pool.push(RequestBody::Campaign(c));
    }
    pool
}

/// `dup` copies of every pool index, deterministically shuffled
/// (xorshift Fisher-Yates) so duplicates arrive interleaved across the
/// stream rather than back-to-back.
fn shuffled_stream(pool_len: usize, dup: usize) -> Vec<usize> {
    let mut stream: Vec<usize> =
        (0..pool_len).flat_map(|i| std::iter::repeat_n(i, dup)).collect();
    let mut x = 0x9e37_79b9_7f4a_7c15u64;
    for i in (1..stream.len()).rev() {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        stream.swap(i, (x % (i as u64 + 1)) as usize);
    }
    stream
}

/// Closed-loop drive: 4 concurrent clients deal the stream round-robin,
/// each submitting its next request only after the previous one
/// resolved. Returns every response with its pool index.
fn drive_engine(
    engine: &Engine,
    pool: &[RequestBody],
    stream: &[usize],
) -> Vec<(usize, std::sync::Arc<serde::Value>)> {
    const CLIENTS: usize = 4;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                scope.spawn(move || {
                    let client = format!("client{c}");
                    stream
                        .iter()
                        .copied()
                        .skip(c)
                        .step_by(CLIENTS)
                        .map(|i| {
                            let ticket =
                                engine.submit(&client, &pool[i]).expect("within max_inflight");
                            (i, ticket.wait().expect("engine running"))
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("client thread")).collect()
    })
}

/// The `serve_sustained_rps` scenario: the closed-loop mixed campaign
/// against a warm serving engine versus the cold spawn-per-request
/// baseline (fresh trace store per request, same parallelism, no
/// dedup/cache), plus the response-identity check at worker counts
/// {1, 4}. Events are *requests*, so `events_per_sec` is RPS and the
/// warm/cold rate ratio is the amortization speedup `main` gates at 2x.
fn measure_serve(scale: Scale, seed: u64) -> (SweepTiming, SweepTiming, ServeBenchSummary) {
    let pool = serve_request_pool(scale, seed);
    let dup = std::env::var("MILLER_SERVE_DUP")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&d| d >= 1)
        .unwrap_or(3);
    let stream = shuffled_stream(pool.len(), dup);
    let engine_config = |workers: usize| EngineConfig {
        workers,
        max_inflight: 256,
        result_cache: 512,
        store: StoreConfig::default(),
    };

    // Determinism first: every served response — computed, coalesced,
    // or cached — must match its sequential one-shot bytes, at 1 worker
    // and at 4.
    let one_shot: Vec<String> = pool
        .iter()
        .map(|body| {
            let store = TraceStore::new();
            serde_json::to_string_pretty(&execute(&store, body)).expect("report serializes")
        })
        .collect();
    let mut responses_identical = true;
    for workers in [1usize, 4] {
        let engine = Engine::new(engine_config(workers));
        for (i, value) in drive_engine(&engine, &pool, &stream) {
            let text = serde_json::to_string_pretty(value.as_ref()).expect("report serializes");
            if text != one_shot[i] {
                responses_identical = false;
                eprintln!(
                    "serve: response diverged from its one-shot run at {workers} worker(s): {:?}",
                    pool[i]
                );
            }
        }
    }

    // Warm sustained throughput: a fresh engine at the harness thread
    // count, timed end to end — the first requests pay trace generation
    // exactly once, duplicates coalesce or hit the result cache.
    let engine = Engine::new(engine_config(thread_count()));
    let warm = timed("serve_sustained_rps", || {
        drive_engine(&engine, &pool, &stream);
        stream.len() as u64
    });
    let latency = serve_latency(&engine);
    drop(engine);

    // Cold baseline: the same stream at the same parallelism, but every
    // request spawns its own store and recomputes — the one-shot world
    // the daemon replaces.
    let cold = timed("serve_cold_spawn_per_request", || {
        let ones = par_sweep(&stream, |&i| {
            let store = TraceStore::new();
            std::hint::black_box(execute(&store, &pool[i]));
            1u64
        });
        ones.iter().sum()
    });

    let summary = ServeBenchSummary {
        warm_rps: warm.events_per_sec,
        cold_rps: cold.events_per_sec,
        speedup: if cold.events_per_sec > 0.0 {
            warm.events_per_sec / cold.events_per_sec
        } else {
            0.0
        },
        duplicate_ratio: dup,
        responses_identical,
        latency: Some(latency),
    };
    (warm, cold, summary)
}

/// Marginal heap allocations per simulated I/O, by differencing: two
/// single-point fig8 runs, identical except trace length (a 4× scale
/// gap), against a pre-warmed private store. Setup allocations are the
/// same in both and cancel; what remains is the steady-state cost of the
/// extra events — zero once the request path reuses its buffers.
///
/// With `with_obs` the span recorder runs enabled throughout: per-run
/// track registrations are identical in both runs and cancel, and the
/// ring's fixed slots never grow (a full ring drops), so this measures
/// that *recording itself* is allocation-free per event.
fn measure_alloc_per_event(scale: Scale, seed: u64, with_obs: bool) -> f64 {
    let spans_were_on = obs::enabled();
    if with_obs {
        obs::init(1 << 18);
    }
    obs::set_enabled(with_obs);
    let store = TraceStore::new();
    // The big run is ~16x the small one: a wide gap dilutes the few
    // logarithmic-count allocations that escape cancellation (per-run
    // structures such as `RateSeries` bins doubling a couple more times
    // in the longer run) across many extra events, so the measurement
    // reads ~0 rather than hovering near the gate.
    let big_scale = Scale(scale.0.div_ceil(16));
    let point = |s: Scale| {
        let r = two_venus_report_in(&store, 32 * MB, 4096, true, WritePolicy::WriteBehind, s, seed);
        ios_issued(&r)
    };
    // Warm both traces into the store (and lazy runtime structures) so
    // generation stays out of the differenced window.
    point(scale);
    point(big_scale);

    let a0 = ALLOCS.load(Ordering::Relaxed);
    let small_events = point(scale);
    let a1 = ALLOCS.load(Ordering::Relaxed);
    let big_events = point(big_scale);
    let a2 = ALLOCS.load(Ordering::Relaxed);

    let extra_allocs = (a2 - a1).saturating_sub(a1 - a0);
    let extra_events = big_events.saturating_sub(small_events).max(1);
    obs::set_enabled(spans_were_on);
    extra_allocs as f64 / extra_events as f64
}

/// Compare `report` against the already-parsed `base`line. Returns the
/// list of sweeps that regressed beyond tolerance (empty = pass).
fn compare_baseline(report: &BenchReport, base: &BenchReport) -> Vec<String> {
    if base.threads != report.threads || base.scale != report.scale {
        eprintln!(
            "baseline was recorded at threads={}/scale={}, this run is \
             threads={}/scale={}; rates are not comparable, skipping the check",
            base.threads, base.scale, report.threads, report.scale
        );
        return Vec::new();
    }
    let mut regressed = Vec::new();
    for s in &report.sweeps {
        let Some(b) = base.sweeps.iter().find(|b| b.name == s.name) else {
            eprintln!("{}: not in baseline, skipping", s.name);
            continue;
        };
        if b.events_per_sec <= 0.0 {
            continue;
        }
        let tolerance = tolerance_for(&s.name);
        let ratio = s.events_per_sec / b.events_per_sec;
        eprintln!(
            "{}: {:.0} events/s vs baseline {:.0} ({:+.1}%, limit -{:.0}%)",
            s.name,
            s.events_per_sec,
            b.events_per_sec,
            (ratio - 1.0) * 100.0,
            tolerance * 100.0
        );
        if ratio < 1.0 - tolerance {
            regressed.push(format!(
                "{} regressed {:.1}% (limit {:.0}%)",
                s.name,
                (1.0 - ratio) * 100.0,
                tolerance * 100.0
            ));
        }
    }
    regressed
}

fn main() -> ExitCode {
    let mut argv: Vec<String> = std::env::args().collect();
    if let Err(msg) = obs::apply_timeline_flags(&mut argv) {
        eprintln!("repro_bench: {msg}");
        return ExitCode::FAILURE;
    }
    if let Err(msg) = obs::apply_profile_capacity_flag(&mut argv) {
        eprintln!("repro_bench: {msg}");
        return ExitCode::FAILURE;
    }
    let profile = match obs::apply_profile_flag(&mut argv) {
        Ok(p) => p,
        Err(msg) => {
            eprintln!("repro_bench: {msg}");
            return ExitCode::FAILURE;
        }
    };
    let mut baseline = None;
    let mut args = argv.into_iter().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--baseline" => match args.next() {
                Some(p) => baseline = Some(p),
                None => {
                    eprintln!("repro_bench: --baseline needs a path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("repro_bench: unknown argument `{other}`");
                eprintln!("usage: repro_bench [--baseline BENCH_sim.json] [--profile trace.json]");
                return ExitCode::FAILURE;
            }
        }
    }

    // Parse the baseline up front: the baseline path is usually the
    // same BENCH_sim.json this run is about to overwrite. A missing
    // file is an error (a typoed path must not silently pass CI), but a
    // file that no longer parses as the current report shape — a
    // baseline recorded before a metric existed, or after one was
    // reshaped — only skips the comparison: new metrics must not brick
    // every checkout holding an older BENCH_sim.json.
    let base = match &baseline {
        Some(path) => match std::fs::read_to_string(path) {
            Err(e) => {
                eprintln!("repro_bench: {path}: {e}");
                return ExitCode::FAILURE;
            }
            Ok(text) => match serde_json::from_str::<BenchReport>(&text) {
                Ok(b) => Some(b),
                Err(e) => {
                    eprintln!(
                        "repro_bench: baseline {path} predates the current report \
                         shape ({e}); skipping the baseline comparison"
                    );
                    None
                }
            },
        },
        None => None,
    };

    let scale = Scale(
        std::env::var("MILLER_BENCH_SCALE")
            .ok()
            .and_then(|v| v.parse::<u32>().ok())
            .filter(|&k| k >= 1)
            .unwrap_or(16),
    );
    let seed = 42;

    let mut sweeps = run_benches(scale, seed);
    let (streamed_campaign, peak_trace_bytes) = measure_streamed_campaign(scale);
    sweeps.push(streamed_campaign);
    let (serve_warm, serve_cold, serve_summary) = measure_serve(scale, seed);
    let serve_speedup = serve_summary.speedup;
    let serve_identical = serve_summary.responses_identical;
    sweeps.push(serve_warm);
    sweeps.push(serve_cold);
    let alloc_per_event = measure_alloc_per_event(scale, seed, false);
    let alloc_per_event_obs = measure_alloc_per_event(scale, seed, true);

    let rate_of = |name: &str| {
        sweeps.iter().find(|s| s.name == name).map(|s| s.events_per_sec).unwrap_or(0.0)
    };
    let off_rate = rate_of(HOT_SWEEP);
    let on_rate = rate_of("fig8_sweep_obs_on");
    let cold_rate = rate_of("fig8_sweep_cold_store");
    let warm_rate = rate_of("fig8_sweep_warm_store");
    let shard1_rate = rate_of("shard_scale_10k_s1");
    let shard8_rate = rate_of("shard_scale_10k_s8");
    let decode_rate = rate_of("trace_codec_churn");
    let rec = obs::summary();
    let obs_summary = ObsBenchSummary {
        events_recorded: rec.recorded,
        events_dropped: rec.dropped,
        tracks: rec.tracks,
        off_events_per_sec: off_rate,
        on_events_per_sec: on_rate,
        on_overhead_pct: if on_rate > 0.0 { (off_rate / on_rate - 1.0) * 100.0 } else { 0.0 },
    };
    let report = BenchReport {
        threads: thread_count(),
        scale: scale.0,
        alloc_per_event: Some(alloc_per_event),
        alloc_per_event_obs: Some(alloc_per_event_obs),
        obs: Some(obs_summary),
        peak_trace_bytes: Some(peak_trace_bytes),
        serve: Some(serve_summary),
        sweeps,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_sim.json", &json).expect("write BENCH_sim.json");
    println!("{json}");

    let mut failed = false;
    // The allocation gates are absolute: the request path must stay
    // allocation-free regardless of what any baseline recorded, with
    // span recording off *and* on.
    for (label, value) in
        [("alloc_per_event", alloc_per_event), ("alloc_per_event_obs", alloc_per_event_obs)]
    {
        if value > ALLOC_PER_EVENT_LIMIT {
            eprintln!(
                "FAIL: {label} {value:.4} exceeds {ALLOC_PER_EVENT_LIMIT} — \
                 the request path is allocating in steady state"
            );
            failed = true;
        } else {
            eprintln!("{label} {value:.4} (limit {ALLOC_PER_EVENT_LIMIT})");
        }
    }

    // A warm store replays memoized traces the cold sweep had to
    // generate, so warm can only legitimately be slower by noise:
    // generation is ~1% of the sweep wall at the default scale. With
    // interleaved best-of-five pairs the residual jitter is a point or
    // two; 3% of slack clears that while still catching the 4.4%
    // inversion the old cold-block-then-warm-block measurement recorded.
    if warm_rate < cold_rate * 0.97 {
        eprintln!(
            "FAIL: warm store {warm_rate:.0} events/s is slower than cold {cold_rate:.0} — \
             trace memoization is not paying for itself"
        );
        failed = true;
    } else {
        eprintln!("warm store {warm_rate:.0} events/s >= cold {cold_rate:.0} (3% slack)");
    }

    // The sharded-engine scaling gate. Both campaign runs process the
    // same event count, so the rate ratio is the wall-clock speedup.
    // Only gate where 8 shards can actually run in parallel; on smaller
    // machines the number is still recorded, just informational.
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let speedup = if shard1_rate > 0.0 { shard8_rate / shard1_rate } else { 0.0 };
    if cores >= 8 && speedup < 3.0 {
        eprintln!(
            "FAIL: shard_scale_10k speedup {speedup:.2}x at 8 shards on {cores} cores \
             (gate: >= 3x)"
        );
        failed = true;
    } else {
        eprintln!(
            "shard_scale_10k: {speedup:.2}x speedup at 8 shards on {cores} cores{}",
            if cores >= 8 { " (gate: >= 3x)" } else { " (informational, gate needs >= 8 cores)" }
        );
    }

    // The streaming-store memory gate: replaying the 10k-process
    // campaign from spilled frame files must keep trace residency under
    // the budget — that bound is the whole point of spilling.
    if peak_trace_bytes > TRACE_BUDGET as u64 {
        eprintln!(
            "FAIL: peak_trace_bytes {:.1} MB exceeds the {} MB trace budget — \
             streamed replay is not bounding memory",
            peak_trace_bytes as f64 / MB as f64,
            TRACE_BUDGET as u64 / MB
        );
        failed = true;
    } else {
        eprintln!(
            "peak_trace_bytes {:.1} MB within the {} MB budget",
            peak_trace_bytes as f64 / MB as f64,
            TRACE_BUDGET as u64 / MB
        );
    }

    // The frame-decode floor: a streaming cursor must never become the
    // simulator's bottleneck, so decode throughput is gated absolutely
    // rather than against a baseline.
    if decode_rate < DECODE_FLOOR {
        eprintln!(
            "FAIL: trace_codec_churn decoded {decode_rate:.0} events/s \
             (floor {DECODE_FLOOR:.0})"
        );
        failed = true;
    } else {
        eprintln!("trace_codec_churn {decode_rate:.0} events/s (floor {DECODE_FLOOR:.0})");
    }

    // The serving gates. Identity is absolute — a daemon that answers
    // different bytes than the one-shot binary is wrong, full stop.
    // Throughput: with a warm trace store plus coalescing/caching of a
    // 3x-duplicated stream, the daemon must clear 2x the cold
    // spawn-per-request baseline, which regenerates traces per request
    // at the same parallelism.
    if !serve_identical {
        eprintln!(
            "FAIL: serve responses diverged from one-shot runs — see messages above"
        );
        failed = true;
    }
    if serve_speedup < SERVE_SPEEDUP_FLOOR {
        eprintln!(
            "FAIL: serve_sustained_rps {serve_speedup:.2}x over cold spawn-per-request \
             (gate: >= {SERVE_SPEEDUP_FLOOR}x)"
        );
        failed = true;
    } else {
        eprintln!(
            "serve_sustained_rps: {serve_speedup:.2}x over cold spawn-per-request \
             (gate: >= {SERVE_SPEEDUP_FLOOR}x), responses identical: {serve_identical}"
        );
    }

    if let Some(base) = base {
        let regressed = compare_baseline(&report, &base);
        if regressed.is_empty() {
            eprintln!("baseline check passed");
        } else {
            for r in &regressed {
                eprintln!("FAIL: {r}");
            }
            failed = true;
        }
    }
    if let Some(path) = &profile {
        obs::finish_profile(path);
    }
    obs::finish_timelines();
    if failed {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
