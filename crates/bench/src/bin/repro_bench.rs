//! `repro_bench` — machine-readable timing of the simulation sweeps.
//!
//! Runs the Figure 6/7 fixed simulations, the Figure 8 cache sweep
//! (through the parallel harness), the trace-generation and cold/warm
//! trace-store benches, and the 64 MB LRU churn microbench, then writes
//! `BENCH_sim.json` with wall seconds and an events-per-second rate for
//! each sweep. "Events" are simulated I/O requests for the simulator
//! sweeps, generated trace records for the generation bench, and index
//! operations for the LRU microbench.
//!
//! Thread count follows the harness: `MILLER_THREADS`, then
//! `RAYON_NUM_THREADS`, then all available cores. `MILLER_BENCH_SCALE`
//! overrides the scale divisor (default 16; CI uses a higher divisor
//! for a quicker run).
//!
//! `--baseline <path>` compares this run against a previously written
//! `BENCH_sim.json` and exits non-zero if any shared sweep's
//! `events_per_sec` regressed by more than 30 %. The comparison is
//! skipped (with a note) when the baseline was recorded at a different
//! thread count or scale, since rates are only comparable like-for-like.

use buffer_cache::lru::LruIndex;
use buffer_cache::WritePolicy;
use miller_core::figures::{two_venus_report, two_venus_report_in};
use miller_core::{
    generate, par_sweep, scaled_spec, thread_count, AppKind, Scale, SimReport, TraceStore,
};
use serde::{Deserialize, Serialize};
use std::process::ExitCode;
use std::time::Instant;

const MB: u64 = 1024 * 1024;

/// Tolerated events-per-second regression vs the baseline.
const REGRESSION_TOLERANCE: f64 = 0.30;

/// One timed sweep.
#[derive(Debug, Serialize, Deserialize)]
struct SweepTiming {
    /// Sweep label.
    name: String,
    /// Host wall-clock seconds for the sweep.
    wall_secs: f64,
    /// Events processed (simulated I/O requests, or LRU operations).
    events: u64,
    /// Events per host second.
    events_per_sec: f64,
}

/// The whole `BENCH_sim.json` document.
#[derive(Debug, Serialize, Deserialize)]
struct BenchReport {
    /// Worker threads the parallel harness used.
    threads: usize,
    /// Scale divisor the simulations ran at.
    scale: u32,
    /// Per-sweep timings.
    sweeps: Vec<SweepTiming>,
}

fn ios_issued(r: &SimReport) -> u64 {
    r.processes.iter().map(|p| p.ios_issued).sum()
}

fn timed(name: &str, f: impl FnOnce() -> u64) -> SweepTiming {
    let start = Instant::now();
    let events = f();
    let wall_secs = start.elapsed().as_secs_f64();
    SweepTiming {
        name: name.to_string(),
        wall_secs,
        events,
        events_per_sec: if wall_secs > 0.0 { events as f64 / wall_secs } else { 0.0 },
    }
}

/// The Figure 8 parameter grid (cache MB, block size).
fn fig8_jobs() -> Vec<(u64, u64)> {
    let sizes = [4u64, 8, 16, 32, 64, 128, 256];
    let mut jobs = Vec::new();
    for &block in &[4096u64, 8192] {
        for &mb in &sizes {
            jobs.push((mb, block));
        }
    }
    jobs
}

fn run_benches(scale: Scale, seed: u64) -> Vec<SweepTiming> {
    let mut sweeps = Vec::new();

    // Raw workload generation, bypassing the store: the cost the
    // memoized sweeps no longer pay per point.
    sweeps.push(timed("trace_gen_two_venus_x5", || {
        let mut events = 0u64;
        for _ in 0..5 {
            let t1 = generate(&scaled_spec(AppKind::Venus, 1, scale), seed);
            let t2 = generate(&scaled_spec(AppKind::Venus, 2, scale), seed + 1);
            events += (t1.io_count() + t2.io_count()) as u64;
        }
        events
    }));

    sweeps.push(timed("fig6_two_venus_32mb", || {
        let r = two_venus_report(32 * MB, 4096, true, WritePolicy::WriteBehind, scale, seed);
        ios_issued(&r)
    }));

    sweeps.push(timed("fig7_two_venus_128mb", || {
        let r = two_venus_report(128 * MB, 4096, true, WritePolicy::WriteBehind, scale, seed);
        ios_issued(&r)
    }));

    // The Figure 8 grid, fanned out over the parallel harness exactly
    // like `fig8()` — reproduced here so per-point I/O counts are
    // visible for the rate. The global store is warm by now (fig6/fig7
    // above), so this is the steady-state sweep rate.
    sweeps.push(timed("fig8_cache_sweep_14pt", || {
        let counts = par_sweep(&fig8_jobs(), |&(mb, block)| {
            let r = two_venus_report(mb * MB, block, true, WritePolicy::WriteBehind, scale, seed);
            ios_issued(&r)
        });
        counts.iter().sum()
    }));

    // The same grid against a private store: cold includes the one-time
    // generation of both venus traces, warm re-runs with them memoized.
    // cold − warm ≈ the total generation cost amortized over the sweep.
    let store = TraceStore::new();
    for name in ["fig8_sweep_cold_store", "fig8_sweep_warm_store"] {
        sweeps.push(timed(name, || {
            let counts = par_sweep(&fig8_jobs(), |&(mb, block)| {
                let r = two_venus_report_in(
                    &store,
                    mb * MB,
                    block,
                    true,
                    WritePolicy::WriteBehind,
                    scale,
                    seed,
                );
                ios_issued(&r)
            });
            counts.iter().sum()
        }));
    }

    sweeps.push(timed("lru_churn_64mb_4k_blocks", || {
        const RESIDENT: usize = 64 * 1024 * 1024 / 4096;
        const OPS: u64 = 2_000_000;
        let mut lru: LruIndex<(u32, u64)> = LruIndex::new();
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        for _ in 0..OPS {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            lru.touch((1, x % (2 * RESIDENT as u64)));
            if lru.len() > RESIDENT {
                std::hint::black_box(lru.pop_lru());
            }
        }
        OPS
    }));

    sweeps
}

/// Compare `report` against the already-parsed `base`line. Returns the
/// list of sweeps that regressed beyond tolerance (empty = pass).
fn compare_baseline(report: &BenchReport, base: &BenchReport) -> Vec<String> {
    if base.threads != report.threads || base.scale != report.scale {
        eprintln!(
            "baseline was recorded at threads={}/scale={}, this run is \
             threads={}/scale={}; rates are not comparable, skipping the check",
            base.threads, base.scale, report.threads, report.scale
        );
        return Vec::new();
    }
    let mut regressed = Vec::new();
    for s in &report.sweeps {
        let Some(b) = base.sweeps.iter().find(|b| b.name == s.name) else {
            eprintln!("{}: not in baseline, skipping", s.name);
            continue;
        };
        if b.events_per_sec <= 0.0 {
            continue;
        }
        let ratio = s.events_per_sec / b.events_per_sec;
        eprintln!(
            "{}: {:.0} events/s vs baseline {:.0} ({:+.1}%)",
            s.name,
            s.events_per_sec,
            b.events_per_sec,
            (ratio - 1.0) * 100.0
        );
        if ratio < 1.0 - REGRESSION_TOLERANCE {
            regressed.push(format!(
                "{} regressed {:.1}% (limit {:.0}%)",
                s.name,
                (1.0 - ratio) * 100.0,
                REGRESSION_TOLERANCE * 100.0
            ));
        }
    }
    regressed
}

fn main() -> ExitCode {
    let mut baseline = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--baseline" => match args.next() {
                Some(p) => baseline = Some(p),
                None => {
                    eprintln!("repro_bench: --baseline needs a path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("repro_bench: unknown argument `{other}`");
                eprintln!("usage: repro_bench [--baseline BENCH_sim.json]");
                return ExitCode::FAILURE;
            }
        }
    }

    // Parse the baseline up front: the baseline path is usually the
    // same BENCH_sim.json this run is about to overwrite.
    let base = match &baseline {
        Some(path) => match std::fs::read_to_string(path)
            .map_err(|e| format!("{path}: {e}"))
            .and_then(|text| {
                serde_json::from_str::<BenchReport>(&text).map_err(|e| format!("{path}: {e}"))
            }) {
            Ok(b) => Some(b),
            Err(e) => {
                eprintln!("repro_bench: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };

    let scale = Scale(
        std::env::var("MILLER_BENCH_SCALE")
            .ok()
            .and_then(|v| v.parse::<u32>().ok())
            .filter(|&k| k >= 1)
            .unwrap_or(16),
    );
    let seed = 42;

    let sweeps = run_benches(scale, seed);
    let report = BenchReport { threads: thread_count(), scale: scale.0, sweeps };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_sim.json", &json).expect("write BENCH_sim.json");
    println!("{json}");

    if let Some(base) = base {
        let regressed = compare_baseline(&report, &base);
        if regressed.is_empty() {
            eprintln!("baseline check passed");
        } else {
            for r in &regressed {
                eprintln!("FAIL: {r}");
            }
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
