//! Burstiness metrics over a binned demand series.
//!
//! "I/O was bursty, as expected, but the bursts came in cycles" (§5.3).
//! Burstiness here is quantified three ways: peak-to-mean ratio of the
//! binned rates, coefficient of variation, and the fraction of bins with
//! no I/O at all (the compute gaps).

use serde::{Deserialize, Serialize};
use sim_core::RateSeries;

/// Burstiness summary of one rate series.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Burstiness {
    /// Mean rate over all bins (per second units of the series).
    pub mean: f64,
    /// Highest single-bin rate.
    pub peak: f64,
    /// Peak divided by mean (1.0 = perfectly smooth).
    pub peak_to_mean: f64,
    /// Coefficient of variation of the bin rates.
    pub cv: f64,
    /// Fraction of bins with zero traffic.
    pub idle_fraction: f64,
}

impl Burstiness {
    /// Compute from a rate series.
    pub fn of(series: &RateSeries) -> Burstiness {
        let rates = series.rates_per_second();
        if rates.is_empty() {
            return Burstiness { mean: 0.0, peak: 0.0, peak_to_mean: 0.0, cv: 0.0, idle_fraction: 0.0 };
        }
        let stats = series.stats();
        let idle = rates.iter().filter(|&&r| r == 0.0).count();
        let mean = stats.mean();
        let peak = stats.max().unwrap_or(0.0);
        Burstiness {
            mean,
            peak,
            peak_to_mean: if mean > 0.0 { peak / mean } else { 0.0 },
            cv: stats.cv(),
            idle_fraction: idle as f64 / rates.len() as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::{SimDuration, SimTime};

    fn series(values: &[f64]) -> RateSeries {
        let mut s = RateSeries::new(SimDuration::from_secs(1));
        for (i, &v) in values.iter().enumerate() {
            s.add(SimTime::from_secs(i as u64), v);
        }
        s
    }

    #[test]
    fn smooth_series_is_not_bursty() {
        let b = Burstiness::of(&series(&[10.0, 10.0, 10.0, 10.0]));
        assert!((b.peak_to_mean - 1.0).abs() < 1e-12);
        assert_eq!(b.cv, 0.0);
        assert_eq!(b.idle_fraction, 0.0);
    }

    #[test]
    fn spiky_series_is_bursty() {
        let b = Burstiness::of(&series(&[0.0, 0.0, 0.0, 100.0]));
        assert_eq!(b.peak, 100.0);
        assert!((b.peak_to_mean - 4.0).abs() < 1e-12);
        assert!((b.idle_fraction - 0.75).abs() < 1e-12);
        assert!(b.cv > 1.0);
    }

    #[test]
    fn empty_series_is_benign() {
        let b = Burstiness::of(&RateSeries::per_second());
        assert_eq!(b.mean, 0.0);
        assert_eq!(b.peak_to_mean, 0.0);
    }
}
