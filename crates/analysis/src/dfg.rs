//! Per-process directly-follows graphs of I/O operations.
//!
//! A directly-follows graph (DFG) — the workhorse of process mining —
//! abstracts an event stream into a small graph: each node is an
//! *activity*, each edge `a → b` counts how often an operation of kind
//! `b` immediately followed one of kind `a` in the same process. Over
//! an I/O trace it surfaces access-pattern *structure* that totals and
//! rate series cannot express: a compute/checkpoint cycle shows up as a
//! tight `write/seq → write/seq` self-loop punctuated by `read/seek`
//! returns, data swapping as an alternating read/write figure-eight.
//!
//! The activity alphabet here is deliberately small and observable:
//! direction (read or write) × locality (`seq` when the request starts
//! exactly where the previous request to the same file ended, `seek`
//! otherwise; the first touch of a file is `seq` — a fresh stream
//! starts sequential).
//!
//! [`DfgBuilder`] is a streaming fold: feed it events one at a time (in
//! trace order — interleaved processes are fine, state is per pid) and
//! it never holds more than per-(process, file) cursor positions. This
//! is what lets the experiments layer build DFGs by replaying binary
//! frame files block-by-block in parallel without materializing any
//! trace in memory; see `experiments::dfg`.

use iotrace::stream_v2::FrameFile;
use iotrace::{Direction, IoEvent, TraceError};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::Path;

/// One node kind of the DFG: what a single I/O operation "is".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Activity {
    /// A read continuing where the file's previous request ended.
    ReadSeq,
    /// A read after a seek within the file.
    ReadSeek,
    /// A write continuing where the file's previous request ended.
    WriteSeq,
    /// A write after a seek within the file.
    WriteSeek,
}

impl Activity {
    /// Every activity, in the canonical (serialization) order.
    pub const ALL: [Activity; 4] =
        [Activity::ReadSeq, Activity::ReadSeek, Activity::WriteSeq, Activity::WriteSeek];

    /// Human-facing label (`read/seq`, …).
    pub fn label(self) -> &'static str {
        match self {
            Activity::ReadSeq => "read/seq",
            Activity::ReadSeek => "read/seek",
            Activity::WriteSeq => "write/seq",
            Activity::WriteSeek => "write/seek",
        }
    }

    /// DOT-safe identifier fragment.
    fn ident(self) -> &'static str {
        match self {
            Activity::ReadSeq => "read_seq",
            Activity::ReadSeek => "read_seek",
            Activity::WriteSeq => "write_seq",
            Activity::WriteSeek => "write_seek",
        }
    }

    fn index(self) -> usize {
        match self {
            Activity::ReadSeq => 0,
            Activity::ReadSeek => 1,
            Activity::WriteSeq => 2,
            Activity::WriteSeek => 3,
        }
    }
}

/// One activity's occurrence count within a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DfgNode {
    /// The activity.
    pub activity: Activity,
    /// Operations of this kind.
    pub count: u64,
}

/// One directly-follows edge within a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DfgEdge {
    /// Predecessor activity.
    pub from: Activity,
    /// Successor activity.
    pub to: Activity,
    /// Times `to` immediately followed `from`.
    pub count: u64,
}

/// The directly-follows graph of one process in one trace.
///
/// Nodes and edges are emitted in canonical order ([`Activity::ALL`]
/// order, zero-count entries omitted), so two identical traces always
/// produce byte-identical serialized graphs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcessDfg {
    /// Which trace the process came from (e.g. the frame-file stem).
    pub source: String,
    /// The process id inside that trace.
    pub process_id: u32,
    /// Total operations folded in.
    pub events: u64,
    /// Activity occurrence counts.
    pub nodes: Vec<DfgNode>,
    /// Directly-follows transition counts.
    pub edges: Vec<DfgEdge>,
    /// The first operation's activity.
    pub first: Option<Activity>,
    /// The last operation's activity.
    pub last: Option<Activity>,
}

impl ProcessDfg {
    /// Occurrences of `a` (0 when absent).
    pub fn node_count(&self, a: Activity) -> u64 {
        self.nodes.iter().find(|n| n.activity == a).map_or(0, |n| n.count)
    }

    /// Count of the `from → to` transition (0 when absent).
    pub fn edge_count(&self, from: Activity, to: Activity) -> u64 {
        self.edges.iter().find(|e| e.from == from && e.to == to).map_or(0, |e| e.count)
    }
}

/// DFGs for every process of an analysis run, ordered by
/// `(source, process_id)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DfgReport {
    /// Per-process graphs.
    pub processes: Vec<ProcessDfg>,
    /// Total operations across all processes.
    pub total_events: u64,
}

impl DfgReport {
    /// Assemble a report: sorts deterministically and totals events.
    pub fn from_processes(mut processes: Vec<ProcessDfg>) -> DfgReport {
        processes.sort_by(|a, b| {
            a.source.cmp(&b.source).then(a.process_id.cmp(&b.process_id))
        });
        let total_events = processes.iter().map(|p| p.events).sum();
        DfgReport { processes, total_events }
    }

    /// Render the whole report as a Graphviz DOT digraph, one cluster
    /// per process. Deterministic: clusters, nodes, and edges follow
    /// the report's canonical order.
    pub fn to_dot(&self) -> String {
        let mut out = String::new();
        out.push_str("digraph dfg {\n");
        out.push_str("  rankdir=LR;\n");
        out.push_str("  node [shape=box, fontname=\"monospace\"];\n");
        for (i, p) in self.processes.iter().enumerate() {
            let _ = writeln!(out, "  subgraph cluster_{i} {{");
            let _ = writeln!(
                out,
                "    label=\"{} pid {} ({} ops)\";",
                escape(&p.source),
                p.process_id,
                p.events
            );
            for n in &p.nodes {
                let _ = writeln!(
                    out,
                    "    p{i}_{} [label=\"{}\\n{}\"];",
                    n.activity.ident(),
                    n.activity.label(),
                    n.count
                );
            }
            for e in &p.edges {
                let _ = writeln!(
                    out,
                    "    p{i}_{} -> p{i}_{} [label=\"{}\"];",
                    e.from.ident(),
                    e.to.ident(),
                    e.count
                );
            }
            out.push_str("  }\n");
        }
        out.push_str("}\n");
        out
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[derive(Default)]
struct ProcFold {
    events: u64,
    counts: [u64; 4],
    edges: [[u64; 4]; 4],
    first: Option<Activity>,
    last: Option<Activity>,
    /// Where the last request to each file ended — the seq/seek oracle.
    file_end: HashMap<u32, u64>,
}

/// Streaming DFG fold over one trace's events.
///
/// State is per process id, so interleaved multi-process traces fold
/// correctly; per-process order must match replay order (which trace
/// order guarantees).
#[derive(Default)]
pub struct DfgBuilder {
    source: String,
    procs: HashMap<u32, ProcFold>,
}

impl DfgBuilder {
    /// A builder labeling its graphs with `source`.
    pub fn new(source: impl Into<String>) -> DfgBuilder {
        DfgBuilder { source: source.into(), procs: HashMap::new() }
    }

    /// Classify one operation against the folded state. Public so
    /// callers can label events consistently with the graphs.
    pub fn fold(&mut self, e: &IoEvent) -> Activity {
        let p = self.procs.entry(e.process_id).or_default();
        let seq = p.file_end.get(&e.file_id).is_none_or(|&end| e.offset == end);
        p.file_end.insert(e.file_id, e.end_offset());
        let a = match (e.dir, seq) {
            (Direction::Read, true) => Activity::ReadSeq,
            (Direction::Read, false) => Activity::ReadSeek,
            (Direction::Write, true) => Activity::WriteSeq,
            (Direction::Write, false) => Activity::WriteSeek,
        };
        p.events += 1;
        p.counts[a.index()] += 1;
        if let Some(prev) = p.last {
            p.edges[prev.index()][a.index()] += 1;
        } else {
            p.first = Some(a);
        }
        p.last = Some(a);
        a
    }

    /// Feed one event.
    pub fn push(&mut self, e: &IoEvent) {
        self.fold(e);
    }

    /// The per-process graphs, sorted by process id.
    pub fn finish(self) -> Vec<ProcessDfg> {
        let mut pids: Vec<u32> = self.procs.keys().copied().collect();
        pids.sort_unstable();
        pids.into_iter()
            .map(|pid| {
                let p = &self.procs[&pid];
                let nodes = Activity::ALL
                    .into_iter()
                    .filter(|a| p.counts[a.index()] > 0)
                    .map(|a| DfgNode { activity: a, count: p.counts[a.index()] })
                    .collect();
                let mut edges = Vec::new();
                for from in Activity::ALL {
                    for to in Activity::ALL {
                        let count = p.edges[from.index()][to.index()];
                        if count > 0 {
                            edges.push(DfgEdge { from, to, count });
                        }
                    }
                }
                ProcessDfg {
                    source: self.source.clone(),
                    process_id: pid,
                    events: p.events,
                    nodes,
                    edges,
                    first: p.first,
                    last: p.last,
                }
            })
            .collect()
    }
}

/// Build the DFGs of one stored frame file by streaming it one block at
/// a time — resident memory stays O(one block), independent of trace
/// size. Graphs are labeled with the file stem.
pub fn dfg_of_frame_file(path: &Path) -> Result<Vec<ProcessDfg>, TraceError> {
    let source = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.display().to_string());
    let file = FrameFile::open(path)?;
    let mut b = DfgBuilder::new(source);
    let mut cursor = file.cursor();
    while let Some(e) = cursor.next()? {
        b.push(&e);
    }
    Ok(b.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotrace::write_frame_file;
    use sim_core::{SimDuration, SimTime};

    fn ev(dir: Direction, pid: u32, file: u32, offset: u64, i: u64) -> IoEvent {
        IoEvent::logical(
            dir,
            pid,
            file,
            offset,
            4096,
            SimTime::from_ticks(i * 100),
            SimDuration::ZERO,
        )
    }

    #[test]
    fn sequential_reads_fold_into_a_self_loop() {
        let mut b = DfgBuilder::new("t");
        for i in 0..5u64 {
            b.push(&ev(Direction::Read, 1, 1, i * 4096, i));
        }
        let g = &b.finish()[0];
        assert_eq!(g.events, 5);
        assert_eq!(g.node_count(Activity::ReadSeq), 5);
        assert_eq!(g.edge_count(Activity::ReadSeq, Activity::ReadSeq), 4);
        assert_eq!(g.first, Some(Activity::ReadSeq));
        assert_eq!(g.last, Some(Activity::ReadSeq));
    }

    #[test]
    fn seeks_and_direction_changes_make_edges() {
        let mut b = DfgBuilder::new("t");
        b.push(&ev(Direction::Read, 1, 1, 0, 0)); // read/seq (fresh file)
        b.push(&ev(Direction::Write, 1, 2, 0, 1)); // write/seq (fresh file)
        b.push(&ev(Direction::Read, 1, 1, 4096, 2)); // read/seq (continues file 1)
        b.push(&ev(Direction::Read, 1, 1, 0, 3)); // read/seek (rewinds)
        let g = &b.finish()[0];
        assert_eq!(g.node_count(Activity::ReadSeq), 2);
        assert_eq!(g.node_count(Activity::WriteSeq), 1);
        assert_eq!(g.node_count(Activity::ReadSeek), 1);
        assert_eq!(g.edge_count(Activity::ReadSeq, Activity::WriteSeq), 1);
        assert_eq!(g.edge_count(Activity::WriteSeq, Activity::ReadSeq), 1);
        assert_eq!(g.edge_count(Activity::ReadSeq, Activity::ReadSeek), 1);
        assert_eq!(g.last, Some(Activity::ReadSeek));
    }

    #[test]
    fn interleaved_processes_fold_independently() {
        let mut b = DfgBuilder::new("t");
        b.push(&ev(Direction::Read, 1, 1, 0, 0));
        b.push(&ev(Direction::Write, 2, 1, 0, 1));
        b.push(&ev(Direction::Read, 1, 1, 4096, 2));
        b.push(&ev(Direction::Write, 2, 1, 4096, 3));
        let graphs = b.finish();
        assert_eq!(graphs.len(), 2);
        assert_eq!(graphs[0].process_id, 1);
        assert_eq!(graphs[0].edge_count(Activity::ReadSeq, Activity::ReadSeq), 1);
        assert_eq!(graphs[1].process_id, 2);
        assert_eq!(graphs[1].edge_count(Activity::WriteSeq, Activity::WriteSeq), 1);
    }

    #[test]
    fn frame_file_scan_matches_direct_fold() {
        let events: Vec<IoEvent> = (0..3000u64)
            .map(|i| {
                let dir = if i % 7 == 0 { Direction::Write } else { Direction::Read };
                ev(dir, 1 + (i % 2) as u32, (i % 5) as u32, (i / 5) * 4096, i)
            })
            .collect();
        let dir = std::env::temp_dir().join(format!("miller-dfg-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("scan.mio2");
        write_frame_file(&path, events.iter()).expect("write frame file");

        let mut direct = DfgBuilder::new("scan");
        for e in &events {
            direct.push(e);
        }
        let streamed = dfg_of_frame_file(&path).expect("scan frame file");
        assert_eq!(streamed, direct.finish(), "streamed fold must match in-memory fold");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn report_is_deterministic_and_renders_dot() {
        let mut b = DfgBuilder::new("b-trace");
        b.push(&ev(Direction::Read, 2, 1, 0, 0));
        let mut a = DfgBuilder::new("a-trace");
        a.push(&ev(Direction::Write, 1, 1, 0, 0));
        let mut procs = b.finish();
        procs.extend(a.finish());
        let report = DfgReport::from_processes(procs);
        assert_eq!(report.total_events, 2);
        assert_eq!(report.processes[0].source, "a-trace", "sorted by source then pid");
        let dot = report.to_dot();
        assert!(dot.starts_with("digraph dfg {"));
        assert!(dot.contains("p0_write_seq [label=\"write/seq\\n1\"];"));
        assert!(dot.contains("cluster_1"));
        assert!(dot.ends_with("}\n"));
    }
}
