//! Sequentiality and request-size constancy (§5.2).
//!
//! The paper's central characterization: supercomputer file access is
//! "highly sequential and very regular". We measure, per file and
//! overall, the fraction of consecutive same-file accesses that continue
//! exactly where the previous one ended, and the fraction of requests
//! matching the file's dominant request size.

use iotrace::Trace;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Sequentiality metrics for one trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SequentialityReport {
    /// Same-file consecutive access pairs examined.
    pub pairs: u64,
    /// Pairs where the later access starts exactly at the earlier one's
    /// end.
    pub sequential_pairs: u64,
    /// Pairs where both accesses have the same length.
    pub same_size_pairs: u64,
    /// Requests whose size equals their file's modal request size.
    pub modal_size_requests: u64,
    /// Total requests.
    pub requests: u64,
    /// Per-file sequential fraction, keyed by file id.
    pub per_file: HashMap<u32, f64>,
}

impl SequentialityReport {
    /// Fraction of same-file pairs that are strictly sequential.
    pub fn sequential_fraction(&self) -> f64 {
        if self.pairs == 0 {
            0.0
        } else {
            self.sequential_pairs as f64 / self.pairs as f64
        }
    }

    /// Fraction of same-file pairs with equal request sizes.
    pub fn same_size_fraction(&self) -> f64 {
        if self.pairs == 0 {
            0.0
        } else {
            self.same_size_pairs as f64 / self.pairs as f64
        }
    }

    /// Fraction of all requests at their file's modal size — §5.2's
    /// "typical I/O request size which stayed constant".
    pub fn modal_size_fraction(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.modal_size_requests as f64 / self.requests as f64
        }
    }
}

/// Analyze a trace's sequentiality.
pub fn analyze(trace: &Trace) -> SequentialityReport {
    // Per (process, file): previous end offset and length; per-file pair
    // tallies; per-file size frequency.
    let mut prev: HashMap<(u32, u32), (u64, u64)> = HashMap::new();
    let mut per_file_pairs: HashMap<u32, (u64, u64)> = HashMap::new();
    let mut size_freq: HashMap<(u32, iotrace::Direction), HashMap<u64, u64>> = HashMap::new();
    let mut report = SequentialityReport {
        pairs: 0,
        sequential_pairs: 0,
        same_size_pairs: 0,
        modal_size_requests: 0,
        requests: 0,
        per_file: HashMap::new(),
    };
    for e in trace.events() {
        report.requests += 1;
        *size_freq
            .entry((e.file_id, e.dir))
            .or_default()
            .entry(e.length)
            .or_insert(0) += 1;
        let key = (e.process_id, e.file_id);
        if let Some(&(end, len)) = prev.get(&key) {
            report.pairs += 1;
            let tally = per_file_pairs.entry(e.file_id).or_insert((0, 0));
            tally.1 += 1;
            if e.offset == end {
                report.sequential_pairs += 1;
                tally.0 += 1;
            }
            if e.length == len {
                report.same_size_pairs += 1;
            }
        }
        prev.insert(key, (e.end_offset(), e.length));
    }
    for (file, (seq, total)) in per_file_pairs {
        report.per_file.insert(file, if total == 0 { 0.0 } else { seq as f64 / total as f64 });
    }
    // Modal-size tally, per (file, direction): the paper's "typical
    // request size" is a per-program constant but reads and writes may
    // use different sizes (Table 2 reports them separately).
    let modal: HashMap<(u32, iotrace::Direction), u64> = size_freq
        .iter()
        .map(|(&key, sizes)| {
            let (&size, _) = sizes.iter().max_by_key(|&(s, c)| (*c, *s)).expect("nonempty");
            (key, size)
        })
        .collect();
    for e in trace.events() {
        if modal.get(&(e.file_id, e.dir)) == Some(&e.length) {
            report.modal_size_requests += 1;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotrace::{Direction, IoEvent};
    use sim_core::{SimDuration, SimTime};

    fn ev(file: u32, offset: u64, len: u64, i: u64) -> IoEvent {
        IoEvent::logical(
            Direction::Read,
            1,
            file,
            offset,
            len,
            SimTime::from_ticks(i * 100),
            SimDuration::ZERO,
        )
    }

    #[test]
    fn fully_sequential_trace_scores_one() {
        let t = Trace::from_events((0..10).map(|i| ev(1, i * 512, 512, i)).collect());
        let r = analyze(&t);
        assert_eq!(r.sequential_fraction(), 1.0);
        assert_eq!(r.same_size_fraction(), 1.0);
        assert_eq!(r.modal_size_fraction(), 1.0);
        assert_eq!(r.per_file[&1], 1.0);
    }

    #[test]
    fn random_trace_scores_low() {
        let t = Trace::from_events(
            (0..10).map(|i| ev(1, (i * 7919 + 13) % 100_000, 512, i)).collect(),
        );
        let r = analyze(&t);
        assert!(r.sequential_fraction() < 0.2);
    }

    #[test]
    fn interleaved_files_tracked_independently() {
        // Alternating between two files, each sequential within itself.
        let mut events = Vec::new();
        for i in 0..10u64 {
            events.push(ev(1 + (i % 2) as u32, (i / 2) * 512, 512, i));
        }
        let r = analyze(&Trace::from_events(events));
        assert_eq!(r.sequential_fraction(), 1.0, "per-file streams are sequential");
    }

    #[test]
    fn modal_size_tolerates_tail_chunks() {
        // 9 requests of 4096 and one trailing 100-byte request.
        let mut events: Vec<_> = (0..9).map(|i| ev(1, i * 4096, 4096, i)).collect();
        events.push(ev(1, 9 * 4096, 100, 9));
        let r = analyze(&Trace::from_events(events));
        assert!((r.modal_size_fraction() - 0.9).abs() < 1e-9);
    }

    #[test]
    fn empty_trace_is_benign() {
        let r = analyze(&Trace::new());
        assert_eq!(r.sequential_fraction(), 0.0);
        assert_eq!(r.modal_size_fraction(), 0.0);
    }

    #[test]
    fn per_process_prev_state_is_separate() {
        // Two processes interleave on one file; each is sequential in its
        // own stream.
        let mut events = Vec::new();
        for i in 0..10u64 {
            let mut e = ev(1, (i / 2) * 512, 512, i);
            e.process_id = 1 + (i % 2) as u32;
            events.push(e);
        }
        let r = analyze(&Trace::from_events(events));
        assert_eq!(r.sequential_fraction(), 1.0);
    }
}
