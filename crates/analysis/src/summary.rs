//! Per-application totals and rates: the machinery behind Tables 1 and 2.
//!
//! All rates are **per second of process CPU time**, as the paper
//! specifies ("These numbers are per second of CPU time used by the
//! process", §5.2) — never per wall-clock second.

use iotrace::{Direction, Trace};
use serde::{Deserialize, Serialize};
use sim_core::units::MB;
use std::collections::HashMap;

/// Totals and rates for one direction (the rows of Table 2 split these
/// out).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct DirectionSummary {
    /// Bytes moved.
    pub bytes: u64,
    /// Requests issued.
    pub count: u64,
    /// MB per CPU second.
    pub mb_per_sec: f64,
    /// Requests per CPU second.
    pub ios_per_sec: f64,
    /// Average request size in KB.
    pub avg_io_kb: f64,
}

/// The Table 1 + Table 2 row for one application trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AppSummary {
    /// CPU seconds consumed (sum of `processTime` deltas, §4.1).
    pub cpu_secs: f64,
    /// Wall-clock span of the trace, seconds.
    pub wall_secs: f64,
    /// Total data-set size in MB: per-file maximum extent touched, summed
    /// (the paper's "sum of the sizes of all the files the program
    /// accessed").
    pub data_mb: f64,
    /// Total I/O in MB (read + written).
    pub total_io_mb: f64,
    /// Total request count.
    pub num_ios: u64,
    /// Average request size in KB.
    pub avg_io_kb: f64,
    /// Total MB per CPU second.
    pub mb_per_sec: f64,
    /// Total requests per CPU second.
    pub ios_per_sec: f64,
    /// Read-side totals and rates.
    pub reads: DirectionSummary,
    /// Write-side totals and rates.
    pub writes: DirectionSummary,
    /// Read/write data ratio (bytes read / bytes written; infinity when
    /// nothing was written).
    pub rw_data_ratio: f64,
    /// Number of distinct files touched.
    pub files_touched: usize,
}

impl AppSummary {
    /// Compute the summary for a trace.
    pub fn from_trace(trace: &Trace) -> AppSummary {
        let mut cpu_ticks: u64 = 0;
        let mut read = DirectionSummary::default();
        let mut write = DirectionSummary::default();
        let mut extents: HashMap<u32, u64> = HashMap::new();
        for e in trace.events() {
            cpu_ticks += e.process_time.ticks();
            let d = if e.dir == Direction::Read { &mut read } else { &mut write };
            d.bytes += e.length;
            d.count += 1;
            let ext = extents.entry(e.file_id).or_insert(0);
            *ext = (*ext).max(e.end_offset());
        }
        let cpu_secs = cpu_ticks as f64 / sim_core::TICKS_PER_SECOND as f64;
        let wall_secs = match (trace.first_start(), trace.last_end()) {
            (Some(a), Some(b)) => b.saturating_since(a).as_secs_f64(),
            _ => 0.0,
        };
        let finish = |d: &mut DirectionSummary| {
            if cpu_secs > 0.0 {
                d.mb_per_sec = d.bytes as f64 / MB as f64 / cpu_secs;
                d.ios_per_sec = d.count as f64 / cpu_secs;
            }
            if d.count > 0 {
                d.avg_io_kb = d.bytes as f64 / 1024.0 / d.count as f64;
            }
        };
        finish(&mut read);
        finish(&mut write);
        let total_bytes = read.bytes + write.bytes;
        let num_ios = read.count + write.count;
        AppSummary {
            cpu_secs,
            wall_secs,
            data_mb: extents.values().sum::<u64>() as f64 / MB as f64,
            total_io_mb: total_bytes as f64 / MB as f64,
            num_ios,
            avg_io_kb: if num_ios > 0 {
                total_bytes as f64 / 1024.0 / num_ios as f64
            } else {
                0.0
            },
            mb_per_sec: if cpu_secs > 0.0 {
                total_bytes as f64 / MB as f64 / cpu_secs
            } else {
                0.0
            },
            ios_per_sec: if cpu_secs > 0.0 { num_ios as f64 / cpu_secs } else { 0.0 },
            reads: read,
            writes: write,
            rw_data_ratio: if write.bytes > 0 {
                read.bytes as f64 / write.bytes as f64
            } else if read.bytes > 0 {
                f64::INFINITY
            } else {
                0.0
            },
            files_touched: extents.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotrace::IoEvent;
    use sim_core::{SimDuration, SimTime};

    fn ev(dir: Direction, file: u32, offset: u64, len: u64, start: u64, cpu: u64) -> IoEvent {
        let mut e = IoEvent::logical(
            dir,
            1,
            file,
            offset,
            len,
            SimTime::from_ticks(start),
            SimDuration::from_ticks(cpu),
        );
        e.completion = SimDuration::from_ticks(10);
        e
    }

    #[test]
    fn empty_trace_summary_is_zeroes() {
        let s = AppSummary::from_trace(&Trace::new());
        assert_eq!(s.num_ios, 0);
        assert_eq!(s.mb_per_sec, 0.0);
        assert_eq!(s.rw_data_ratio, 0.0);
        assert_eq!(s.files_touched, 0);
    }

    #[test]
    fn totals_and_rates_compute() {
        // 2 reads of 1 MB + 1 write of 2 MB over 2 CPU seconds.
        let t = Trace::from_events(vec![
            ev(Direction::Read, 1, 0, MB, 0, 100_000),
            ev(Direction::Read, 1, MB, MB, 200_000, 50_000),
            ev(Direction::Write, 2, 0, 2 * MB, 400_000, 50_000),
        ]);
        let s = AppSummary::from_trace(&t);
        assert_eq!(s.num_ios, 3);
        assert!((s.cpu_secs - 2.0).abs() < 1e-9);
        assert!((s.total_io_mb - 4.0).abs() < 1e-9);
        assert!((s.mb_per_sec - 2.0).abs() < 1e-9);
        assert!((s.ios_per_sec - 1.5).abs() < 1e-9);
        assert!((s.reads.mb_per_sec - 1.0).abs() < 1e-9);
        assert!((s.writes.mb_per_sec - 1.0).abs() < 1e-9);
        assert!((s.rw_data_ratio - 1.0).abs() < 1e-9);
        assert_eq!(s.files_touched, 2);
        // Data size: file 1 extent 2 MB + file 2 extent 2 MB.
        assert!((s.data_mb - 4.0).abs() < 1e-9);
        assert!((s.avg_io_kb - 4.0 * 1024.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn write_only_trace_has_zero_ratio_read_only_infinite() {
        let w = Trace::from_events(vec![ev(Direction::Write, 1, 0, MB, 0, 1000)]);
        assert_eq!(AppSummary::from_trace(&w).rw_data_ratio, 0.0);
        let r = Trace::from_events(vec![ev(Direction::Read, 1, 0, MB, 0, 1000)]);
        assert!(AppSummary::from_trace(&r).rw_data_ratio.is_infinite());
    }

    #[test]
    fn wall_span_uses_completion() {
        let t = Trace::from_events(vec![
            ev(Direction::Read, 1, 0, MB, 0, 0),
            ev(Direction::Read, 1, MB, MB, 100_000, 0),
        ]);
        let s = AppSummary::from_trace(&t);
        // last start 1 s + 10 ticks completion.
        assert!((s.wall_secs - 1.0001).abs() < 1e-9);
    }
}
