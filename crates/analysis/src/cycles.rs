//! Cycle detection over binned I/O demand (§5.3).
//!
//! "Since all of the programs implemented iterative algorithms, the
//! programs' I/O patterns followed cycles … request rate peaks were
//! generally evenly spaced through the program's execution." We detect
//! the dominant period by autocorrelation of the CPU-time-binned demand
//! and quantify peak regularity by the dispersion of peak spacings.

use crate::timeseries::{cpu_time_series, Select};
use iotrace::Trace;
use serde::{Deserialize, Serialize};
use sim_core::{Autocorrelation, SimDuration};

/// Result of cycle analysis.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CycleReport {
    /// Bin width used, seconds.
    pub bin_secs: f64,
    /// Dominant period in bins, if one was detectable.
    pub period_bins: Option<usize>,
    /// Autocorrelation at the dominant period (strength of the cycle,
    /// 1.0 = perfectly periodic).
    pub strength: f64,
    /// Number of demand peaks found.
    pub peaks: usize,
    /// Coefficient of variation of peak-to-peak spacing (small = evenly
    /// spaced peaks, the paper's observation).
    pub peak_spacing_cv: f64,
}

/// Detect cycles in a trace's I/O demand, binned at `bin` over process
/// CPU time, scanning lags from 2 bins up to a third of the series.
pub fn detect(trace: &Trace, bin: SimDuration) -> CycleReport {
    let series = cpu_time_series(trace, bin, Select::Both);
    let rates = series.rates_per_second();
    let ac = Autocorrelation::new(rates.clone());
    let max_lag = (rates.len() / 3).max(2);
    let dominant = ac.dominant_period(2, max_lag);

    // Peak finding: a bin above the median-of-nonzero threshold that is
    // a local maximum. The median (rather than a higher percentile)
    // keeps every cycle's crest even when the cycle amplitude drifts
    // over the run — a high cutoff drops the weaker crests and the
    // surviving peaks then look unevenly spaced.
    let mut nonzero: Vec<f64> = rates.iter().copied().filter(|&r| r > 0.0).collect();
    nonzero.sort_by(|a, b| a.partial_cmp(b).expect("rates are finite"));
    let threshold = if nonzero.is_empty() {
        f64::INFINITY
    } else {
        nonzero[nonzero.len() / 2]
    };
    let mut peak_bins: Vec<usize> = Vec::new();
    for i in 0..rates.len() {
        let left = if i == 0 { 0.0 } else { rates[i - 1] };
        let right = if i + 1 == rates.len() { 0.0 } else { rates[i + 1] };
        if rates[i] >= threshold && rates[i] >= left && rates[i] > right {
            // Merge adjacent peaks (plateaus).
            if peak_bins.last().is_none_or(|&p| i > p + 1) {
                peak_bins.push(i);
            }
        }
    }
    let spacings: Vec<f64> =
        peak_bins.windows(2).map(|w| (w[1] - w[0]) as f64).collect();
    let peak_spacing_cv = if spacings.len() < 2 {
        0.0
    } else {
        let mut s = sim_core::StreamingStats::new();
        for v in &spacings {
            s.push(*v);
        }
        s.cv()
    };

    CycleReport {
        bin_secs: bin.as_secs_f64(),
        period_bins: dominant.map(|(lag, _)| lag),
        strength: dominant.map(|(_, r)| r).unwrap_or(0.0),
        peaks: peak_bins.len(),
        peak_spacing_cv,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotrace::{Direction, IoEvent};
    use sim_core::units::MB;
    use sim_core::SimTime;

    /// A synthetic perfectly-cyclic trace: every `period` CPU seconds, a
    /// burst of 10 I/Os (the burst itself consumes no CPU, so the period
    /// is exact and every burst lands in a single bin).
    fn cyclic_trace(cycles: u64, period_secs: u64) -> Trace {
        let mut events = Vec::new();
        let mut cpu = 0u64;
        for c in 0..cycles {
            for i in 0..10u64 {
                let gap = if i == 0 { period_secs * sim_core::TICKS_PER_SECOND } else { 0 };
                cpu += gap;
                let mut e = IoEvent::logical(
                    Direction::Read,
                    1,
                    1,
                    (c * 10 + i) * MB,
                    MB,
                    SimTime::from_ticks(cpu),
                    sim_core::SimDuration::from_ticks(gap),
                );
                e.completion = sim_core::SimDuration::from_ticks(100);
                events.push(e);
            }
        }
        Trace::from_events(events)
    }

    #[test]
    fn perfect_cycles_are_detected() {
        let t = cyclic_trace(20, 5);
        let r = detect(&t, SimDuration::from_secs(1));
        assert_eq!(r.period_bins, Some(5), "5-second cycle should dominate");
        assert!(r.strength > 0.5, "strength {}", r.strength);
        assert!(r.peaks >= 15, "one peak per cycle expected, got {}", r.peaks);
        assert!(r.peak_spacing_cv < 0.15, "peaks should be evenly spaced: cv {}", r.peak_spacing_cv);
    }

    #[test]
    fn aperiodic_trace_scores_weak() {
        // Irregular gaps destroy periodicity.
        let mut events = Vec::new();
        let mut cpu = 0u64;
        for i in 0..60u64 {
            let gap = (i * i * 7919 % 300_000) + 1_000;
            cpu += gap;
            events.push(IoEvent::logical(
                Direction::Read,
                1,
                1,
                i * MB,
                MB,
                SimTime::from_ticks(cpu),
                sim_core::SimDuration::from_ticks(gap),
            ));
        }
        let t = Trace::from_events(events);
        let r = detect(&t, SimDuration::from_secs(1));
        assert!(
            r.strength < 0.5,
            "aperiodic trace should correlate weakly, got {}",
            r.strength
        );
    }

    #[test]
    fn empty_trace_is_benign() {
        let r = detect(&Trace::new(), SimDuration::from_secs(1));
        assert_eq!(r.period_bins, None);
        assert_eq!(r.peaks, 0);
        assert_eq!(r.strength, 0.0);
    }
}
