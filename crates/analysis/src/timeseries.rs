//! Rate-over-time series: the machinery behind Figures 3, 4, 6 and 7.
//!
//! Figures 3–4 plot **MB per CPU second against process CPU time** —
//! binning each request at the process's cumulative CPU clock, so
//! multiprogramming delays cancel out (the point of the third timestamp,
//! §4.1). Figures 6–7 plot disk traffic against **wall** time.

use iotrace::{Direction, Trace};
use sim_core::{RateSeries, SimDuration, SimTime};
use std::collections::HashMap;

/// Which requests to include in a series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Select {
    /// Reads and writes.
    Both,
    /// Reads only.
    Reads,
    /// Writes only.
    Writes,
}

impl Select {
    fn admits(self, dir: Direction) -> bool {
        match self {
            Select::Both => true,
            Select::Reads => dir == Direction::Read,
            Select::Writes => dir == Direction::Write,
        }
    }
}

/// Bytes binned against the *process CPU* clock (Figures 3–4). Each
/// process carries its own CPU clock; multi-process traces bin each event
/// at its own process's cumulative CPU time.
pub fn cpu_time_series(trace: &Trace, bin: SimDuration, select: Select) -> RateSeries {
    let mut series = RateSeries::new(bin);
    let mut cpu_clock: HashMap<u32, u64> = HashMap::new();
    for e in trace.events() {
        let clock = cpu_clock.entry(e.process_id).or_insert(0);
        *clock += e.process_time.ticks();
        if select.admits(e.dir) {
            series.add(SimTime::from_ticks(*clock), e.length as f64);
        }
    }
    series
}

/// Bytes binned against the wall clock (Figures 6–7).
pub fn wall_time_series(trace: &Trace, bin: SimDuration, select: Select) -> RateSeries {
    let mut series = RateSeries::new(bin);
    for e in trace.events() {
        if select.admits(e.dir) {
            series.add(e.start, e.length as f64);
        }
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotrace::IoEvent;
    use sim_core::units::MB;

    fn ev(dir: Direction, start_s: u64, cpu_ticks: u64, len: u64) -> IoEvent {
        IoEvent::logical(
            dir,
            1,
            1,
            0,
            len,
            SimTime::from_secs(start_s),
            SimDuration::from_ticks(cpu_ticks),
        )
    }

    #[test]
    fn cpu_series_ignores_wall_gaps() {
        // Two events far apart on the wall clock but adjacent in CPU time
        // land in the same CPU-time bin.
        let t = Trace::from_events(vec![
            ev(Direction::Read, 0, 10_000, MB),
            ev(Direction::Read, 500, 10_000, MB), // 500 s later on the wall
        ]);
        let cpu = cpu_time_series(&t, SimDuration::from_secs(1), Select::Both);
        assert_eq!(cpu.len(), 1, "both events in CPU-second bin 0");
        assert_eq!(cpu.bins()[0], 2.0 * MB as f64);
        let wall = wall_time_series(&t, SimDuration::from_secs(1), Select::Both);
        assert_eq!(wall.len(), 501);
    }

    #[test]
    fn selection_filters_directions() {
        let t = Trace::from_events(vec![
            ev(Direction::Read, 0, 0, MB),
            ev(Direction::Write, 0, 0, 2 * MB),
        ]);
        let r = wall_time_series(&t, SimDuration::from_secs(1), Select::Reads);
        let w = wall_time_series(&t, SimDuration::from_secs(1), Select::Writes);
        let b = wall_time_series(&t, SimDuration::from_secs(1), Select::Both);
        assert_eq!(r.bins()[0], MB as f64);
        assert_eq!(w.bins()[0], 2.0 * MB as f64);
        assert_eq!(b.bins()[0], 3.0 * MB as f64);
    }

    #[test]
    fn multi_process_cpu_clocks_are_independent() {
        let mut e1 = ev(Direction::Read, 0, 150_000, MB); // p1 at cpu 1.5 s
        e1.process_id = 1;
        let mut e2 = ev(Direction::Read, 0, 50_000, MB); // p2 at cpu 0.5 s
        e2.process_id = 2;
        let t = Trace::from_events(vec![e1, e2]);
        let s = cpu_time_series(&t, SimDuration::from_secs(1), Select::Both);
        // p1's event in bin 1, p2's in bin 0.
        assert_eq!(s.bins()[0], MB as f64);
        assert_eq!(s.bins()[1], MB as f64);
    }
}
