//! The required / checkpoint / data-swapping taxonomy (§5.1).
//!
//! The paper divides application I/O into three types:
//!
//! * **Required** (compulsory): reading initial state, writing final
//!   results — once each.
//! * **Checkpoint**: periodic dumps of program state for failure
//!   recovery — a write-only file rewritten from the top repeatedly.
//! * **Data swapping**: staging an out-of-memory array through the file
//!   system — files both read and written, every cycle.
//!
//! The classifier works per file from observable behavior:
//! a file both read and written is a swap file; a write-only file
//! overwritten from offset zero more than once is a checkpoint file; the
//! rest (read-only inputs, written-once outputs) is required I/O.

use iotrace::{Direction, Trace};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The three I/O types of §5.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IoClass {
    /// Compulsory initial reads / final writes.
    Required,
    /// Periodic state dumps.
    Checkpoint,
    /// Memory-limitation staging traffic.
    DataSwap,
}

/// Per-class byte and request tallies.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ClassifiedIo {
    /// Bytes per class.
    pub bytes: HashMap<IoClass, u64>,
    /// Requests per class.
    pub requests: HashMap<IoClass, u64>,
    /// The class assigned to each file.
    pub file_class: HashMap<u32, IoClass>,
}

impl ClassifiedIo {
    /// Bytes attributed to `class`.
    pub fn bytes_of(&self, class: IoClass) -> u64 {
        self.bytes.get(&class).copied().unwrap_or(0)
    }

    /// Fraction of all bytes attributed to `class`.
    pub fn fraction_of(&self, class: IoClass) -> f64 {
        let total: u64 = self.bytes.values().sum();
        if total == 0 {
            0.0
        } else {
            self.bytes_of(class) as f64 / total as f64
        }
    }
}

#[derive(Default)]
struct FileObs {
    reads: u64,
    writes: u64,
    read_bytes: u64,
    write_bytes: u64,
    /// Times the write cursor returned to offset zero after progress.
    write_restarts: u64,
    last_write_end: Option<u64>,
}

/// Classify every file and request in the trace.
pub fn classify_trace(trace: &Trace) -> ClassifiedIo {
    let mut obs: HashMap<u32, FileObs> = HashMap::new();
    for e in trace.events() {
        let o = obs.entry(e.file_id).or_default();
        match e.dir {
            Direction::Read => {
                o.reads += 1;
                o.read_bytes += e.length;
            }
            Direction::Write => {
                o.writes += 1;
                o.write_bytes += e.length;
                if e.offset == 0 {
                    if let Some(end) = o.last_write_end {
                        if end > 0 {
                            o.write_restarts += 1;
                        }
                    }
                }
                o.last_write_end = Some(e.end_offset());
            }
        }
    }
    let mut out = ClassifiedIo::default();
    for (&file, o) in &obs {
        let class = if o.reads > 0 && o.writes > 0 {
            IoClass::DataSwap
        } else if o.writes > 0 && o.write_restarts >= 1 {
            IoClass::Checkpoint
        } else {
            IoClass::Required
        };
        out.file_class.insert(file, class);
        *out.bytes.entry(class).or_insert(0) += o.read_bytes + o.write_bytes;
        *out.requests.entry(class).or_insert(0) += o.reads + o.writes;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotrace::IoEvent;
    use sim_core::units::MB;
    use sim_core::{SimDuration, SimTime};

    fn ev(dir: Direction, file: u32, offset: u64, len: u64, i: u64) -> IoEvent {
        IoEvent::logical(dir, 1, file, offset, len, SimTime::from_ticks(i * 100), SimDuration::ZERO)
    }

    #[test]
    fn compulsory_pattern_is_required() {
        // Read input once, write output once: gcm/upw shape.
        let mut events: Vec<_> = (0..5).map(|i| ev(Direction::Read, 1, i * MB, MB, i)).collect();
        events.extend((0..5).map(|i| ev(Direction::Write, 2, i * MB, MB, 10 + i)));
        let c = classify_trace(&Trace::from_events(events));
        assert_eq!(c.file_class[&1], IoClass::Required);
        assert_eq!(c.file_class[&2], IoClass::Required);
        assert!((c.fraction_of(IoClass::Required) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn overwritten_write_only_file_is_checkpoint() {
        // Two full dumps to the same file, restarting at zero.
        let mut events = Vec::new();
        for round in 0..3u64 {
            for i in 0..4u64 {
                events.push(ev(Direction::Write, 7, i * MB, MB, round * 10 + i));
            }
        }
        let c = classify_trace(&Trace::from_events(events));
        assert_eq!(c.file_class[&7], IoClass::Checkpoint);
        assert_eq!(c.bytes_of(IoClass::Checkpoint), 12 * MB);
    }

    #[test]
    fn read_write_file_is_data_swap() {
        let events = vec![
            ev(Direction::Write, 3, 0, MB, 0),
            ev(Direction::Read, 3, 0, MB, 1),
            ev(Direction::Read, 3, 0, MB, 2),
        ];
        let c = classify_trace(&Trace::from_events(events));
        assert_eq!(c.file_class[&3], IoClass::DataSwap);
        assert_eq!(*c.requests.get(&IoClass::DataSwap).unwrap(), 3);
    }

    #[test]
    fn mixed_application_splits_by_file() {
        let events = vec![
            // Required input file 1.
            ev(Direction::Read, 1, 0, MB, 0),
            // Swap file 2.
            ev(Direction::Write, 2, 0, MB, 1),
            ev(Direction::Read, 2, 0, MB, 2),
            // Checkpoint file 3 (two dumps).
            ev(Direction::Write, 3, 0, MB, 3),
            ev(Direction::Write, 3, 0, MB, 4),
        ];
        let c = classify_trace(&Trace::from_events(events));
        assert_eq!(c.file_class[&1], IoClass::Required);
        assert_eq!(c.file_class[&2], IoClass::DataSwap);
        assert_eq!(c.file_class[&3], IoClass::Checkpoint);
    }

    #[test]
    fn empty_trace_is_benign() {
        let c = classify_trace(&Trace::new());
        assert_eq!(c.fraction_of(IoClass::Required), 0.0);
        assert!(c.file_class.is_empty());
    }
}
