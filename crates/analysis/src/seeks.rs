//! Device-level seek analysis for physical traces.
//!
//! The paper's disk model prices every access by "how 'close' the I/O
//! was to the previous I/O" (§6.1), and its venus discussion blames "the
//! seeks required by interleaving accesses to six different data files"
//! (§6.2). Given a mixed logical/physical trace (from `fs-map`), this
//! module measures exactly that: per-disk inter-access distances, the
//! fraction of device accesses that are strictly sequential, and a
//! histogram of seek distances.

use iotrace::{Scope, Trace};
use serde::{Deserialize, Serialize};
use sim_core::Histogram;
use std::collections::HashMap;

/// Seek behavior of one trace's physical records.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SeekReport {
    /// Physical accesses examined.
    pub accesses: u64,
    /// Accesses starting exactly where the same disk's previous access
    /// ended (no positioning cost at all).
    pub sequential: u64,
    /// Per-disk sequential fractions.
    pub per_disk: HashMap<u32, f64>,
    /// Histogram of nonzero seek distances in bytes (power-of-two
    /// buckets from 4 KB to 1 GB).
    pub distance_histogram: Histogram,
    /// Mean nonzero seek distance in bytes.
    pub mean_seek_distance: f64,
}

impl SeekReport {
    /// Overall fraction of seek-free accesses.
    pub fn sequential_fraction(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.sequential as f64 / self.accesses as f64
        }
    }
}

/// Analyze the physical records of `trace`. Logical records and
/// comments are ignored; an empty report results when the trace carries
/// no physical records (e.g. before `fs-map` translation).
pub fn analyze_seeks(trace: &Trace) -> SeekReport {
    let mut heads: HashMap<u32, u64> = HashMap::new();
    let mut per_disk: HashMap<u32, (u64, u64)> = HashMap::new();
    let mut hist = Histogram::pow2(4096, 1 << 30);
    let mut total_dist = 0u64;
    let mut nonzero = 0u64;
    let mut report_accesses = 0u64;
    let mut report_sequential = 0u64;

    for e in trace.events().filter(|e| e.scope == Scope::Physical) {
        report_accesses += 1;
        let tally = per_disk.entry(e.file_id).or_insert((0, 0));
        tally.1 += 1;
        match heads.get(&e.file_id) {
            Some(&head) if head == e.offset => {
                report_sequential += 1;
                tally.0 += 1;
            }
            Some(&head) => {
                let dist = head.abs_diff(e.offset);
                hist.record(dist as f64);
                total_dist += dist;
                nonzero += 1;
            }
            None => {
                // First access to this disk: counted as a seek from 0
                // only if it lands away from 0.
                if e.offset != 0 {
                    hist.record(e.offset as f64);
                    total_dist += e.offset;
                    nonzero += 1;
                } else {
                    report_sequential += 1;
                    tally.0 += 1;
                }
            }
        }
        heads.insert(e.file_id, e.end_offset());
    }
    SeekReport {
        accesses: report_accesses,
        sequential: report_sequential,
        per_disk: per_disk
            .into_iter()
            .map(|(d, (s, t))| (d, if t == 0 { 0.0 } else { s as f64 / t as f64 }))
            .collect(),
        distance_histogram: hist,
        mean_seek_distance: if nonzero == 0 { 0.0 } else { total_dist as f64 / nonzero as f64 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotrace::{Direction, IoEvent};
    use sim_core::{SimDuration, SimTime};

    fn phys(disk: u32, offset: u64, len: u64, i: u64) -> IoEvent {
        let mut e = IoEvent::logical(
            Direction::Read,
            1,
            disk,
            offset,
            len,
            SimTime::from_ticks(i * 100),
            SimDuration::ZERO,
        );
        e.scope = Scope::Physical;
        e
    }

    #[test]
    fn fully_sequential_stream_has_no_seeks() {
        let t = Trace::from_events((0..20).map(|i| phys(0, i * 4096, 4096, i)).collect());
        let r = analyze_seeks(&t);
        assert_eq!(r.accesses, 20);
        assert_eq!(r.sequential_fraction(), 1.0);
        assert_eq!(r.mean_seek_distance, 0.0);
    }

    #[test]
    fn interleaved_disks_stay_sequential_per_disk() {
        // Round-robin across two disks, each sequential in itself — the
        // reason the per-disk head model matters.
        let mut events = Vec::new();
        for i in 0..20u64 {
            events.push(phys((i % 2) as u32, (i / 2) * 4096, 4096, i));
        }
        let r = analyze_seeks(&Trace::from_events(events));
        assert_eq!(r.sequential_fraction(), 1.0);
        assert_eq!(r.per_disk.len(), 2);
    }

    #[test]
    fn venus_style_interleaving_on_one_disk_thrashes() {
        // Two files far apart on a single disk, accessed alternately:
        // every access seeks — §6.2's interleaving penalty.
        let mut events = Vec::new();
        for i in 0..20u64 {
            let base = if i % 2 == 0 { 0 } else { 512 * 1024 * 1024 };
            events.push(phys(0, base + (i / 2) * 4096, 4096, i));
        }
        let r = analyze_seeks(&Trace::from_events(events));
        assert!(r.sequential_fraction() < 0.1, "got {}", r.sequential_fraction());
        assert!(r.mean_seek_distance > 100.0 * 1024.0 * 1024.0);
        assert!(r.distance_histogram.total() >= 19);
    }

    #[test]
    fn logical_records_are_ignored() {
        let mut t = Trace::new();
        t.push(IoEvent::logical(
            Direction::Read,
            1,
            1,
            0,
            4096,
            SimTime::ZERO,
            SimDuration::ZERO,
        ));
        let r = analyze_seeks(&t);
        assert_eq!(r.accesses, 0);
        assert_eq!(r.sequential_fraction(), 0.0);
    }
}
