//! Amdahl's I/O balance metric (§1, §5.1).
//!
//! §1: "According to Amdahl's metric, each MIPS (million instructions
//! per second) should be accompanied by one Mbit per second of I/O."
//! §5.1 applies it to data-swapping: "If each data point consists of 3
//! words and requires 200 floating-point operations, there must be 24
//! bytes of I/O for every 200 FLOPS (this is quite close to Amdahl's
//! metric, which would require 200 bits, or 25 bytes of I/O for those
//! 200 FLOPS)."
//!
//! [`AmdahlReport`] places a measured application on that scale: its
//! achieved bytes-per-instruction against the 1 bit/instruction balance
//! point of a machine with the given MIPS rating.

use crate::summary::AppSummary;
use serde::{Deserialize, Serialize};

/// A machine's nominal instruction rate for the balance computation. The
/// paper's examples use a 200 MFLOPS processor; a Y-MP CPU is commonly
/// rated around 160–200 sustained.
pub const YMP_DEFAULT_MIPS: f64 = 200.0;

/// One application's position on Amdahl's balance scale.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AmdahlReport {
    /// MIPS rating used.
    pub mips: f64,
    /// The balance point: MB/s of I/O Amdahl prescribes for that rating
    /// (1 Mbit/s per MIPS = mips / 8 MB/s).
    pub balance_mb_per_sec: f64,
    /// The application's achieved MB per CPU second.
    pub achieved_mb_per_sec: f64,
    /// achieved / balance: 1.0 = perfectly balanced, <1 = compute-heavy,
    /// >1 = I/O-heavy.
    pub balance_ratio: f64,
}

impl AmdahlReport {
    /// Compute for a summarized application at the given MIPS rating.
    pub fn of(summary: &AppSummary, mips: f64) -> AmdahlReport {
        assert!(mips > 0.0, "MIPS rating must be positive");
        // 1 Mbit/s per MIPS; 8 bits per byte; the paper's MB are 2^20 but
        // Amdahl's Mbit is decimal — use the paper's own §5.1 rounding
        // (200 bits ≈ 25 bytes per 200 FLOPs → mips/8).
        let balance = mips / 8.0;
        let achieved = summary.mb_per_sec;
        AmdahlReport {
            mips,
            balance_mb_per_sec: balance,
            achieved_mb_per_sec: achieved,
            balance_ratio: if balance > 0.0 { achieved / balance } else { 0.0 },
        }
    }

    /// True when the application demands at least the full Amdahl
    /// balance — the memory-limited staging programs of §5.1.
    pub fn is_io_bound_by_amdahl(&self) -> bool {
        self.balance_ratio >= 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotrace::{Direction, IoEvent, Trace};
    use sim_core::units::MB;
    use sim_core::{SimDuration, SimTime};

    fn summary_with_rate(mb_per_cpu_sec: f64) -> AppSummary {
        // One CPU second of processTime, the requested number of MB.
        let mut t = Trace::new();
        let bytes = (mb_per_cpu_sec * MB as f64) as u64;
        t.push(IoEvent::logical(
            Direction::Read,
            1,
            1,
            0,
            bytes,
            SimTime::ZERO,
            SimDuration::from_secs(1),
        ));
        AppSummary::from_trace(&t)
    }

    #[test]
    fn balance_point_is_mips_over_eight() {
        let r = AmdahlReport::of(&summary_with_rate(25.0), 200.0);
        assert!((r.balance_mb_per_sec - 25.0).abs() < 1e-9);
        assert!((r.balance_ratio - 1.0).abs() < 0.01);
        assert!(r.is_io_bound_by_amdahl());
    }

    #[test]
    fn compute_heavy_app_scores_below_one() {
        // gcm-like: 0.14 MB/s against a 25 MB/s balance point.
        let r = AmdahlReport::of(&summary_with_rate(0.14), 200.0);
        assert!(r.balance_ratio < 0.01);
        assert!(!r.is_io_bound_by_amdahl());
    }

    #[test]
    fn io_heavy_app_scores_above_one() {
        // forma-like: 73.6 MB/s.
        let r = AmdahlReport::of(&summary_with_rate(73.6), 200.0);
        assert!(r.balance_ratio > 2.5);
    }

    #[test]
    fn paper_swap_arithmetic_checks_out() {
        // §5.1: 24 bytes per 200 FLOPs on a 200 MFLOPS processor is
        // "almost 25 MB/sec" — within 4 % of the balance point.
        let implied_rate = 24.0 * 200.0 / 200.0; // bytes per op × Mops = MB/s
        let r = AmdahlReport::of(&summary_with_rate(implied_rate), 200.0);
        assert!((r.balance_ratio - 0.96).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "MIPS rating must be positive")]
    fn zero_mips_rejected() {
        AmdahlReport::of(&summary_with_rate(1.0), 0.0);
    }
}
