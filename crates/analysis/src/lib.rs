//! Trace analysis: everything §5 of the paper computes from the gathered
//! traces.
//!
//! * [`summary`] — per-application totals and rates (Tables 1 and 2);
//! * [`timeseries`] — "MB per CPU second" rate series (Figures 3–4), built
//!   over either the process-CPU clock or the wall clock;
//! * [`seq`] — sequentiality and request-size constancy (§5.2);
//! * [`cycles`] — cycle detection over the binned demand (§5.3);
//! * [`classify`] — the required / checkpoint / data-swapping taxonomy of
//!   I/O types (§5.1);
//! * [`burst`] — burstiness metrics (peak/mean, CV, idle-bin fraction);
//! * [`amdahl`] — Amdahl's 1-Mbit-per-MIPS I/O balance metric (§1, §5.1);
//! * [`seeks`] — device-level seek behavior of physical traces;
//! * [`dfg`] — per-process directly-follows graphs streamed from binary
//!   frame files (post-1991 structure the paper's tables can't show).

pub mod amdahl;
pub mod burst;
pub mod classify;
pub mod cycles;
pub mod dfg;
pub mod seeks;
pub mod seq;
pub mod summary;
pub mod timeseries;

pub use amdahl::{AmdahlReport, YMP_DEFAULT_MIPS};
pub use burst::Burstiness;
pub use classify::{classify_trace, ClassifiedIo, IoClass};
pub use cycles::{detect as detect_cycles, CycleReport};
pub use dfg::{dfg_of_frame_file, Activity, DfgBuilder, DfgEdge, DfgNode, DfgReport, ProcessDfg};
pub use seeks::{analyze_seeks, SeekReport};
pub use seq::{analyze as analyze_sequentiality, SequentialityReport};
pub use summary::{AppSummary, DirectionSummary};
pub use timeseries::{cpu_time_series, wall_time_series, Select};
