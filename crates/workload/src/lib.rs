//! Synthetic application models calibrated to the seven programs the
//! paper traced (§3, Tables 1–2).
//!
//! The original traces came from proprietary NASA Ames production codes
//! and are lost; what the paper's analysis and simulations actually
//! consume is the trace-visible behavior — request sizes, directions,
//! offsets, per-file streams, inter-I/O CPU time, and the cyclic phase
//! structure. These generators reproduce exactly those statistics
//! deterministically from a seed (see DESIGN.md §2 for the substitution
//! argument and §4 for the recovered calibration table).
//!
//! Three layers:
//!
//! * [`spec`] — the declarative application description: files, phases,
//!   cycles, request sizes, CPU budget, synchrony;
//! * [`generator`] — turns an [`AppSpec`] into an `iotrace::Trace`,
//!   maintaining wall/CPU clocks and per-file cursors;
//! * [`apps`] — the seven calibrated presets plus the paper's target
//!   numbers ([`PaperTargets`]) used by tests and EXPERIMENTS.md.

pub mod apps;
pub mod generator;
pub mod spec;

pub use apps::{paper_targets, AppKind, PaperTargets, ALL_APPS};
pub use generator::generate;
pub use spec::{AppSpec, CheckpointDef, CycleDef, FileDef, LatencyModel, SweepOrder};
