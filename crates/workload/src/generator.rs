//! Turns an [`AppSpec`] into a logical I/O trace.
//!
//! The generator maintains two clocks: the **wall clock** (trace `start`
//! times; advances through compute *and* I/O completions for synchronous
//! apps) and the **process CPU clock** (trace `processTime` deltas;
//! advances only through compute) — mirroring §4.1's three-timestamp
//! scheme. Offsets advance sequentially per file with wraparound, which
//! is how forma re-reads its array multiple times per cycle and how every
//! app reproduces "essentially identical" per-cycle reference patterns
//! (§5.3).

use crate::spec::{AppSpec, SweepOrder};
use iotrace::{Direction, IoEvent, Synchrony, Trace};
use sim_core::{SimDuration, SimRng, SimTime};

/// Wall-clock cost of *issuing* an asynchronous request (the process does
/// not wait for the data; les's pattern).
const ASYNC_ISSUE: SimDuration = SimDuration::from_micros(200);

struct Clocks {
    wall: SimTime,
    cpu_since_io: SimDuration,
    cpu_total: SimDuration,
}

struct Cursors {
    /// (file index, intra-file offset) for the concatenated sequential
    /// walk used by reads.
    read: (usize, u64),
    /// Ditto for writes.
    write: (usize, u64),
    /// Per-file cursors for the interleaved order.
    per_file_read: Vec<u64>,
    per_file_write: Vec<u64>,
    /// Rotation indices for interleaved order.
    rot_read: usize,
    rot_write: usize,
}

/// Generate the complete logical trace for `spec`, deterministically from
/// `seed`.
pub fn generate(spec: &AppSpec, seed: u64) -> Trace {
    spec.validate();
    let mut rng = SimRng::new(seed ^ spec.pid as u64);
    let mut trace = Trace::new();
    trace.push_comment(format!("app {} pid {} seed {seed}", spec.name, spec.pid));
    for f in &spec.files {
        trace.push_comment(format!("fileId {} = {} ({} bytes)", f.id, f.name, f.size));
    }

    let mut clocks = Clocks {
        wall: SimTime::ZERO,
        cpu_since_io: SimDuration::ZERO,
        cpu_total: SimDuration::ZERO,
    };
    let mut cursors = Cursors {
        read: (0, 0),
        write: (0, 0),
        per_file_read: vec![0; spec.files.len()],
        per_file_write: vec![0; spec.files.len()],
        rot_read: 0,
        rot_write: 0,
    };

    // --- CPU budget ---------------------------------------------------
    let total = spec.cpu_time;
    let has_init = spec.init_read.0 > 0;
    let has_final = spec.final_write.0 > 0;
    let init_cpu = if has_init { total / 100 } else { SimDuration::ZERO };
    let final_cpu = if has_final { total / 100 } else { SimDuration::ZERO };
    let body_cpu = total - init_cpu - final_cpu;

    // --- compulsory startup read (§5.1 "required" I/O) ------------------
    if has_init {
        let (bytes, io, file) = spec.init_read;
        let n = chunk_count(bytes, io);
        let per_io = init_cpu / n.max(1);
        emit_stream(
            spec, &mut trace, &mut clocks, &mut rng, Direction::Read, file, bytes, io, per_io,
            &mut 0,
        );
    }

    // --- iterative body --------------------------------------------------
    if spec.cycles > 0 {
        let per_cycle = body_cpu / spec.cycles as u64;
        let sweep_cpu =
            SimDuration::from_ticks((per_cycle.ticks() as f64 * spec.cycle.sweep_cpu_frac) as u64);
        let gap_cpu = per_cycle - sweep_cpu;
        let n_r = chunk_count(spec.cycle.read_bytes, spec.cycle.read_io);
        let n_w = chunk_count(spec.cycle.write_bytes, spec.cycle.write_io);
        let per_io_cpu = sweep_cpu / (n_r + n_w).max(1);

        for cycle in 0..spec.cycles {
            compute(&mut clocks, &mut rng, gap_cpu / 2, spec.compute_jitter);
            match spec.cycle.order {
                SweepOrder::Sequential => {
                    sweep_sequential(
                        spec, &mut trace, &mut clocks, &mut rng, Direction::Read,
                        spec.cycle.read_bytes, spec.cycle.read_io, per_io_cpu, &mut cursors,
                    );
                    compute(&mut clocks, &mut rng, gap_cpu / 2, spec.compute_jitter);
                    sweep_sequential(
                        spec, &mut trace, &mut clocks, &mut rng, Direction::Write,
                        spec.cycle.write_bytes, spec.cycle.write_io, per_io_cpu, &mut cursors,
                    );
                }
                SweepOrder::Interleaved => {
                    sweep_interleaved(spec, &mut trace, &mut clocks, &mut rng, per_io_cpu, &mut cursors);
                    compute(&mut clocks, &mut rng, gap_cpu / 2, spec.compute_jitter);
                }
            }
            // --- checkpoint (§5.1, second I/O type) ----------------------
            if let Some(ck) = &spec.checkpoint {
                if ck.every_cycles > 0 && (cycle + 1) % ck.every_cycles == 0 {
                    emit_stream(
                        spec, &mut trace, &mut clocks, &mut rng, Direction::Write, ck.file_id,
                        ck.bytes, ck.io_size, SimDuration::from_micros(100), &mut 0,
                    );
                }
            }
        }
    } else {
        // Compulsory-only programs: one long compute (gcm, upw).
        compute(&mut clocks, &mut rng, body_cpu, spec.compute_jitter);
    }

    // --- compulsory final write -----------------------------------------
    if has_final {
        let (bytes, io, file) = spec.final_write;
        let n = chunk_count(bytes, io);
        let per_io = final_cpu / n.max(1);
        emit_stream(
            spec, &mut trace, &mut clocks, &mut rng, Direction::Write, file, bytes, io, per_io,
            &mut 0,
        );
    }

    trace.push_comment(format!(
        "end of {}: cpu {:.2}s wall {:.2}s ios {}",
        spec.name,
        clocks.cpu_total.as_secs_f64(),
        clocks.wall.as_secs_f64(),
        trace.io_count()
    ));
    trace
}

fn chunk_count(bytes: u64, io: u64) -> u64 {
    if bytes == 0 || io == 0 {
        0
    } else {
        bytes.div_ceil(io)
    }
}

fn compute(clocks: &mut Clocks, rng: &mut SimRng, d: SimDuration, jitter: f64) {
    if d.is_zero() {
        return;
    }
    let jittered = SimDuration::from_ticks(rng.jitter(d.ticks() as f64, jitter).round() as u64);
    clocks.wall += jittered;
    clocks.cpu_since_io += jittered;
    clocks.cpu_total += jittered;
}

fn emit(
    spec: &AppSpec,
    trace: &mut Trace,
    clocks: &mut Clocks,
    dir: Direction,
    file_id: u32,
    offset: u64,
    length: u64,
) {
    let completion = spec.latency.completion(length);
    let mut ev = IoEvent::logical(
        dir,
        spec.pid,
        file_id,
        offset,
        length,
        clocks.wall,
        clocks.cpu_since_io,
    );
    ev.sync = spec.sync;
    ev.completion = completion;
    trace.push(ev);
    clocks.cpu_since_io = SimDuration::ZERO;
    // Synchronous apps stall on the wall clock for the completion;
    // asynchronous ones (les) pay only the issue cost.
    clocks.wall += match spec.sync {
        Synchrony::Sync => completion,
        Synchrony::Async => ASYNC_ISSUE,
    };
}

/// Emit a sequential run of `bytes` in `io`-sized chunks against a single
/// file, wrapping at its size; used for compulsory and checkpoint phases.
#[allow(clippy::too_many_arguments)] // internal plumbing, not public API
fn emit_stream(
    spec: &AppSpec,
    trace: &mut Trace,
    clocks: &mut Clocks,
    rng: &mut SimRng,
    dir: Direction,
    file_id: u32,
    bytes: u64,
    io: u64,
    per_io_cpu: SimDuration,
    cursor: &mut u64,
) {
    let size = spec
        .files
        .iter()
        .find(|f| f.id == file_id)
        .map(|f| f.size)
        .unwrap_or(u64::MAX);
    let mut remaining = bytes;
    while remaining > 0 {
        let len = remaining.min(io);
        if *cursor + len > size {
            *cursor = 0;
        }
        compute(clocks, rng, per_io_cpu, spec.compute_jitter);
        emit(spec, trace, clocks, dir, file_id, *cursor, len);
        *cursor += len;
        remaining -= len;
    }
}

/// Walk the concatenation of all data files sequentially (file 0, then
/// file 1, …, wrapping to file 0), emitting `bytes` in `io` chunks.
#[allow(clippy::too_many_arguments)] // internal plumbing, not public API
fn sweep_sequential(
    spec: &AppSpec,
    trace: &mut Trace,
    clocks: &mut Clocks,
    rng: &mut SimRng,
    dir: Direction,
    bytes: u64,
    io: u64,
    per_io_cpu: SimDuration,
    cursors: &mut Cursors,
) {
    let cur = if dir == Direction::Read { &mut cursors.read } else { &mut cursors.write };
    let mut remaining = bytes;
    while remaining > 0 {
        let file = &spec.files[cur.0 % spec.files.len()];
        let room = file.size.saturating_sub(cur.1);
        if room == 0 {
            cur.0 = (cur.0 + 1) % spec.files.len();
            cur.1 = 0;
            continue;
        }
        let len = remaining.min(io).min(room);
        compute(clocks, rng, per_io_cpu, spec.compute_jitter);
        emit(spec, trace, clocks, dir, file.id, cur.1, len);
        cur.1 += len;
        remaining -= len;
    }
}

/// venus's pattern: reads and writes interleaved across files in short
/// *runs* of consecutive chunks. Runs keep each file's stream sequential
/// (the property §4.2 relies on for compression) while the request mix
/// rotates across all six staging files within every cycle.
fn sweep_interleaved(
    spec: &AppSpec,
    trace: &mut Trace,
    clocks: &mut Clocks,
    rng: &mut SimRng,
    per_io_cpu: SimDuration,
    cursors: &mut Cursors,
) {
    let run = spec.cycle.interleave_run.max(1) as u64;
    let n_r = chunk_count(spec.cycle.read_bytes, spec.cycle.read_io);
    let n_w = chunk_count(spec.cycle.write_bytes, spec.cycle.write_io);
    let runs_r = n_r.div_ceil(run);
    let runs_w = n_w.div_ceil(run);
    let total_runs = runs_r + runs_w;
    let mut acc_r: i64 = 0;
    let mut remaining_r = spec.cycle.read_bytes;
    let mut remaining_w = spec.cycle.write_bytes;
    for _ in 0..total_runs {
        acc_r += runs_r as i64;
        let do_read = (acc_r >= total_runs as i64 && remaining_r > 0) || remaining_w == 0;
        if acc_r >= total_runs as i64 {
            acc_r -= total_runs as i64;
        }
        let (dir, remaining, io, rot, pf) = if do_read {
            (
                Direction::Read,
                &mut remaining_r,
                spec.cycle.read_io,
                &mut cursors.rot_read,
                &mut cursors.per_file_read,
            )
        } else {
            (
                Direction::Write,
                &mut remaining_w,
                spec.cycle.write_io,
                &mut cursors.rot_write,
                &mut cursors.per_file_write,
            )
        };
        if *remaining == 0 {
            continue;
        }
        let fi = *rot % spec.files.len();
        *rot += 1;
        let file = &spec.files[fi];
        for _ in 0..run {
            if *remaining == 0 {
                break;
            }
            let mut off = pf[fi];
            let mut len = (*remaining).min(io);
            if off + len > file.size {
                off = 0;
            }
            len = len.min(file.size);
            compute(clocks, rng, per_io_cpu, spec.compute_jitter);
            emit(spec, trace, clocks, dir, file.id, off, len);
            pf[fi] = off + len;
            *remaining -= len;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{CheckpointDef, CycleDef, FileDef, LatencyModel};
    use sim_core::units::{KB, MB};

    fn toy_spec(order: SweepOrder) -> AppSpec {
        AppSpec {
            name: "toy".into(),
            pid: 7,
            files: vec![
                FileDef::new(1, 4 * MB, "a"),
                FileDef::new(2, 4 * MB, "b"),
            ],
            cpu_time: SimDuration::from_secs(20),
            init_read: (MB, 128 * KB, 1),
            final_write: (MB, 128 * KB, 2),
            cycles: 10,
            cycle: CycleDef {
                read_bytes: 2 * MB,
                write_bytes: MB,
                read_io: 128 * KB,
                write_io: 128 * KB,
                order,
                interleave_run: 2,
                sweep_cpu_frac: 0.5,
            },
            checkpoint: None,
            sync: Synchrony::Sync,
            latency: LatencyModel::ymp_disk(),
            compute_jitter: 0.05,
        }
    }

    #[test]
    fn totals_match_plan() {
        let spec = toy_spec(SweepOrder::Sequential);
        let trace = generate(&spec, 1);
        let read: u64 = trace.events().filter(|e| e.dir == Direction::Read).map(|e| e.length).sum();
        let written: u64 =
            trace.events().filter(|e| e.dir == Direction::Write).map(|e| e.length).sum();
        assert_eq!(read, spec.planned_read_bytes());
        assert_eq!(written, spec.planned_write_bytes());
    }

    #[test]
    fn cpu_time_is_calibrated() {
        let spec = toy_spec(SweepOrder::Sequential);
        let trace = generate(&spec, 1);
        let cpu: u64 = trace.events().map(|e| e.process_time.ticks()).sum();
        let target = spec.cpu_time.ticks() as f64;
        assert!(
            (cpu as f64 - target).abs() / target < 0.05,
            "cpu {} vs target {}",
            cpu,
            target
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = toy_spec(SweepOrder::Interleaved);
        assert_eq!(generate(&spec, 42), generate(&spec, 42));
        assert_ne!(generate(&spec, 42), generate(&spec, 43));
    }

    #[test]
    fn start_times_are_monotonic() {
        for order in [SweepOrder::Sequential, SweepOrder::Interleaved] {
            let trace = generate(&toy_spec(order), 5);
            assert!(trace.is_time_ordered());
        }
    }

    #[test]
    fn sequential_sweeps_are_mostly_sequential() {
        let spec = toy_spec(SweepOrder::Sequential);
        let trace = generate(&spec, 2);
        let events: Vec<_> = trace.events().cloned().collect();
        let mut seq = 0;
        let mut total = 0;
        for w in events.windows(2) {
            if w[0].dir == w[1].dir {
                total += 1;
                if w[0].is_sequential_with(&w[1]) {
                    seq += 1;
                }
            }
        }
        assert!(
            seq as f64 / total as f64 > 0.8,
            "sequentiality {seq}/{total} too low"
        );
    }

    #[test]
    fn interleaved_rotates_files() {
        let spec = toy_spec(SweepOrder::Interleaved);
        let trace = generate(&spec, 3);
        // Within a window of consecutive reads, both files should appear.
        let reads: Vec<u32> = trace
            .events()
            .filter(|e| e.dir == Direction::Read)
            .map(|e| e.file_id)
            .collect();
        let flips = reads.windows(2).filter(|w| w[0] != w[1]).count();
        // With a run length of 2, roughly every other read pair switches
        // files.
        assert!(
            flips * 3 > reads.len(),
            "interleaved order should rotate files often: {flips}/{}",
            reads.len()
        );
        let distinct: std::collections::HashSet<u32> = reads.iter().copied().collect();
        assert_eq!(distinct.len(), 2, "both files must participate");
    }

    #[test]
    fn request_sizes_are_constant_within_direction() {
        let spec = toy_spec(SweepOrder::Sequential);
        let trace = generate(&spec, 4);
        let mut sizes: Vec<u64> = trace
            .events()
            .filter(|e| e.dir == Direction::Read && e.length == 128 * KB)
            .map(|e| e.length)
            .collect();
        sizes.dedup();
        // §5.2: "each program had a typical I/O request size which stayed
        // constant": the dominant size is the configured one.
        let dominant = trace.events().filter(|e| e.length == 128 * KB).count();
        assert!(dominant as f64 / trace.io_count() as f64 > 0.9);
    }

    #[test]
    fn checkpoints_appear_at_configured_cadence() {
        // The checkpoint file is *not* part of the data-file list: data
        // sweeps must never walk it.
        let mut spec = toy_spec(SweepOrder::Sequential);
        spec.checkpoint = Some(CheckpointDef {
            bytes: MB,
            io_size: 512 * KB,
            every_cycles: 5,
            file_id: 50,
        });
        let trace = generate(&spec, 6);
        let ckpt_bytes: u64 =
            trace.events().filter(|e| e.file_id == 50).map(|e| e.length).sum();
        assert_eq!(ckpt_bytes, 2 * MB, "10 cycles / every 5 = 2 checkpoints");
    }

    #[test]
    fn compulsory_only_app_has_two_bursts() {
        let mut spec = toy_spec(SweepOrder::Sequential);
        spec.cycles = 0;
        let trace = generate(&spec, 7);
        let reads = trace.events().filter(|e| e.dir == Direction::Read).count();
        let writes = trace.events().filter(|e| e.dir == Direction::Write).count();
        assert_eq!(reads, 8); // 1 MB / 128 KB
        assert_eq!(writes, 8);
        // All reads come before all writes.
        let first_write = trace
            .events()
            .position(|_| false)
            .unwrap_or_else(|| {
                trace
                    .events()
                    .enumerate()
                    .find(|(_, e)| e.dir == Direction::Write)
                    .map(|(i, _)| i)
                    .unwrap()
            });
        let last_read = trace
            .events()
            .enumerate()
            .filter(|(_, e)| e.dir == Direction::Read)
            .map(|(i, _)| i)
            .max()
            .unwrap();
        assert!(last_read < first_write);
    }

    #[test]
    fn async_app_does_not_stall_wall_clock() {
        let mut sync_spec = toy_spec(SweepOrder::Sequential);
        let mut async_spec = toy_spec(SweepOrder::Sequential);
        sync_spec.sync = Synchrony::Sync;
        async_spec.sync = Synchrony::Async;
        let sync_trace = generate(&sync_spec, 8);
        let async_trace = generate(&async_spec, 8);
        let sync_wall = sync_trace.last_end().unwrap();
        let async_wall = async_trace.last_end().unwrap();
        assert!(
            async_wall < sync_wall,
            "async app should finish sooner: {async_wall} vs {sync_wall}"
        );
    }

    #[test]
    fn offsets_stay_within_file_bounds() {
        for order in [SweepOrder::Sequential, SweepOrder::Interleaved] {
            let spec = toy_spec(order);
            let trace = generate(&spec, 9);
            for e in trace.events() {
                let f = spec.files.iter().find(|f| f.id == e.file_id).unwrap();
                assert!(
                    e.end_offset() <= f.size,
                    "event at {}+{} overruns file {} of size {}",
                    e.offset,
                    e.length,
                    e.file_id,
                    f.size
                );
            }
        }
    }

    #[test]
    fn comments_identify_files() {
        let spec = toy_spec(SweepOrder::Sequential);
        let trace = generate(&spec, 10);
        let comments: Vec<&str> = trace
            .items()
            .iter()
            .filter_map(|i| match i {
                iotrace::TraceItem::Comment(c) => Some(c.as_str()),
                _ => None,
            })
            .collect();
        assert!(comments.iter().any(|c| c.contains("fileId 1")));
        assert!(comments.iter().any(|c| c.contains("end of toy")));
    }
}
