//! The seven traced applications, calibrated to Tables 1–2.
//!
//! Calibration policy (DESIGN.md §4): Table 1's totals (CPU time, data-set
//! size, total I/O, number of I/Os) are authoritative; Table 2 contributes
//! the read/write *splits* (data ratio and request-rate ratio). Where the
//! scanned tables disagree, the self-consistent reconstruction documented
//! in DESIGN.md wins. Request sizes follow as bytes/count per direction.

use crate::spec::{AppSpec, CycleDef, FileDef, LatencyModel, SweepOrder};
use iotrace::Synchrony;
use serde::{Deserialize, Serialize};
use sim_core::units::MB;
use sim_core::SimDuration;

/// The seven applications of §3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AppKind {
    /// Blade-vortex interaction CFD; designed for the SSD; many small I/Os.
    Bvi,
    /// Community Climate Model; intermediate memory/I/O tradeoff.
    Ccm,
    /// Sparse-matrix structural dynamics; highest I/O rate, R/W ≈ 11.
    Forma,
    /// Global Climate Model; in-memory, compulsory I/O only.
    Gcm,
    /// Large-eddy simulation; the only explicitly asynchronous program.
    Les,
    /// Venus atmosphere model; tiny memory, six interleaved staging files.
    Venus,
    /// Approximate polynomial factorization; a few large compulsory I/Os.
    Upw,
}

/// All seven, in the paper's table order.
pub const ALL_APPS: [AppKind; 7] = [
    AppKind::Bvi,
    AppKind::Ccm,
    AppKind::Forma,
    AppKind::Gcm,
    AppKind::Les,
    AppKind::Venus,
    AppKind::Upw,
];

impl AppKind {
    /// The program's name as the paper spells it.
    pub fn name(self) -> &'static str {
        match self {
            AppKind::Bvi => "bvi",
            AppKind::Ccm => "ccm",
            AppKind::Forma => "forma",
            AppKind::Gcm => "gcm",
            AppKind::Les => "les",
            AppKind::Venus => "venus",
            AppKind::Upw => "upw",
        }
    }

    /// Parse a paper-style name.
    pub fn from_name(name: &str) -> Option<AppKind> {
        ALL_APPS.into_iter().find(|a| a.name() == name)
    }

    /// Build the calibrated [`AppSpec`] for this application with the
    /// given trace process id.
    pub fn spec(self, pid: u32) -> AppSpec {
        spec_for(self, pid)
    }
}

/// The paper's published per-application numbers (reconstructed), used to
/// verify generated traces and to print the "paper" columns of
/// EXPERIMENTS.md.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PaperTargets {
    /// Running (CPU) time, seconds — Table 1.
    pub cpu_secs: f64,
    /// Total data-set size, MB — Table 1.
    pub data_mb: f64,
    /// Total I/O done, MB — Table 1.
    pub total_io_mb: f64,
    /// Number of I/Os — Table 1.
    pub num_ios: u64,
    /// Read/write data ratio — Table 2.
    pub rw_data_ratio: f64,
    /// Read:write request-count ratio — Table 2 (IOs/sec columns).
    pub rw_count_ratio: f64,
    /// Derived MB per CPU second.
    pub mb_per_sec: f64,
    /// Derived I/Os per CPU second.
    pub ios_per_sec: f64,
    /// Derived average request size, KB.
    pub avg_io_kb: f64,
}

impl PaperTargets {
    fn new(cpu_secs: f64, data_mb: f64, total_io_mb: f64, num_ios: u64, rw_data_ratio: f64, rw_count_ratio: f64) -> Self {
        PaperTargets {
            cpu_secs,
            data_mb,
            total_io_mb,
            num_ios,
            rw_data_ratio,
            rw_count_ratio,
            mb_per_sec: total_io_mb / cpu_secs,
            ios_per_sec: num_ios as f64 / cpu_secs,
            avg_io_kb: total_io_mb * 1024.0 / num_ios as f64,
        }
    }

    /// Bytes read over the run.
    pub fn read_bytes(&self) -> u64 {
        let mb = self.total_io_mb * self.rw_data_ratio / (1.0 + self.rw_data_ratio);
        (mb * MB as f64) as u64
    }

    /// Bytes written over the run.
    pub fn write_bytes(&self) -> u64 {
        (self.total_io_mb * MB as f64) as u64 - self.read_bytes()
    }

    /// Read request count.
    pub fn read_count(&self) -> u64 {
        let c = self.num_ios as f64 * self.rw_count_ratio / (1.0 + self.rw_count_ratio);
        c.round() as u64
    }

    /// Write request count.
    pub fn write_count(&self) -> u64 {
        self.num_ios - self.read_count()
    }
}

/// The reconstructed Tables 1–2 for `kind` (see DESIGN.md §4 for the OCR
/// notes).
pub fn paper_targets(kind: AppKind) -> PaperTargets {
    match kind {
        AppKind::Bvi => PaperTargets::new(128.0, 171.0, 2330.0, 140_416, 2.31, 913.0 / 185.0),
        AppKind::Ccm => PaperTargets::new(205.0, 11.6, 1804.0, 54_125, 1.07, 135.0 / 128.0),
        AppKind::Forma => PaperTargets::new(206.0, 30.0, 15_155.0, 475_826, 11.0, 1990.0 / 300.0),
        AppKind::Gcm => PaperTargets::new(1897.0, 229.0, 266.2, 7_953, 0.089, 0.34 / 3.85),
        AppKind::Les => PaperTargets::new(146.0, 224.0, 7_803.0, 22_384, 0.95, 74.0 / 81.0),
        // venus: equal-size requests, so the count ratio equals the data
        // ratio (Table 2's venus row is OCR-damaged; see DESIGN.md).
        AppKind::Venus => PaperTargets::new(379.0, 55.2, 16_712.0, 34_904, 1.80, 1.80),
        AppKind::Upw => PaperTargets::new(596.0, 61.5, 61.5, 140, 0.12, 0.12),
    }
}

/// Iteration counts chosen to match the burst spacing visible in
/// Figures 3–4 (venus ≈ 4 s cycles, les ≈ 5 s cycles) and the text's
/// qualitative descriptions for the rest.
fn cycle_count(kind: AppKind) -> u32 {
    match kind {
        AppKind::Bvi => 32,
        AppKind::Ccm => 50,
        AppKind::Forma => 42,
        AppKind::Les => 29,
        AppKind::Venus => 95,
        AppKind::Gcm | AppKind::Upw => 0,
    }
}

fn files_for(kind: AppKind) -> Vec<FileDef> {
    let mb = |x: f64| (x * MB as f64) as u64;
    match kind {
        AppKind::Bvi => vec![
            FileDef::new(1, mb(85.5), "/ssd/bvi/grid"),
            FileDef::new(2, mb(85.5), "/ssd/bvi/solution"),
        ],
        AppKind::Ccm => vec![
            FileDef::new(1, mb(5.8), "/scratch/ccm/history"),
            FileDef::new(2, mb(5.8), "/scratch/ccm/restart"),
        ],
        AppKind::Forma => vec![FileDef::new(1, mb(30.0), "/scratch/forma/matrix")],
        AppKind::Gcm => vec![
            FileDef::new(1, mb(21.8), "/scratch/gcm/initial"),
            FileDef::new(2, mb(207.2), "/scratch/gcm/results"),
        ],
        AppKind::Les => vec![
            FileDef::new(1, mb(112.0), "/scratch/les/field0"),
            FileDef::new(2, mb(112.0), "/scratch/les/field1"),
        ],
        AppKind::Venus => (0..6)
            .map(|i| FileDef::new(i + 1, mb(9.2), format!("/scratch/venus/atm{i}")))
            .collect(),
        AppKind::Upw => vec![
            FileDef::new(1, mb(6.6), "/scratch/upw/input"),
            FileDef::new(2, mb(54.9), "/scratch/upw/output"),
        ],
    }
}

fn spec_for(kind: AppKind, pid: u32) -> AppSpec {
    let t = paper_targets(kind);
    let files = files_for(kind);
    let cycles = cycle_count(kind);
    let read_io = (t.read_bytes() / t.read_count().max(1)).max(1);
    let write_io = (t.write_bytes() / t.write_count().max(1)).max(1);
    let (order, sweep_cpu_frac) = match kind {
        AppKind::Venus => (SweepOrder::Interleaved, 0.5),
        AppKind::Forma => (SweepOrder::Sequential, 0.6),
        AppKind::Les => (SweepOrder::Sequential, 0.55),
        _ => (SweepOrder::Sequential, 0.5),
    };
    let sync = if kind == AppKind::Les { Synchrony::Async } else { Synchrony::Sync };
    let latency = if kind == AppKind::Bvi { LatencyModel::Ssd } else { LatencyModel::ymp_disk() };

    let (init_read, final_write, cycle) = if cycles == 0 {
        (
            (t.read_bytes(), read_io, files[0].id),
            (t.write_bytes(), write_io, files[1].id),
            CycleDef {
                read_bytes: 0,
                write_bytes: 0,
                read_io: 1,
                write_io: 1,
                order,
                interleave_run: 4,
                sweep_cpu_frac,
            },
        )
    } else {
        (
            (0, 1, files[0].id),
            (0, 1, files[0].id),
            CycleDef {
                read_bytes: t.read_bytes() / cycles as u64,
                write_bytes: t.write_bytes() / cycles as u64,
                read_io,
                // Equal-size requests under interleaving: §5.2's constant
                // request size (and Table 1's single venus average).
                write_io: if order == SweepOrder::Interleaved { read_io } else { write_io },
                order,
                interleave_run: 4,
                sweep_cpu_frac,
            },
        )
    };

    AppSpec {
        name: kind.name().to_string(),
        pid,
        files,
        cpu_time: SimDuration::from_secs_f64(t.cpu_secs),
        init_read,
        final_write,
        cycles,
        cycle,
        checkpoint: None,
        sync,
        latency,
        compute_jitter: 0.05,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;
    use iotrace::Direction;

    /// Relative error helper.
    fn rel(actual: f64, target: f64) -> f64 {
        if target == 0.0 {
            actual.abs()
        } else {
            (actual - target).abs() / target
        }
    }

    #[test]
    fn every_app_builds_a_valid_spec() {
        for kind in ALL_APPS {
            let spec = kind.spec(1);
            spec.validate();
            assert_eq!(spec.name, kind.name());
        }
    }

    #[test]
    fn names_roundtrip() {
        for kind in ALL_APPS {
            assert_eq!(AppKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(AppKind::from_name("nonesuch"), None);
    }

    #[test]
    fn generated_totals_match_table1_within_tolerance() {
        for kind in ALL_APPS {
            let t = paper_targets(kind);
            let trace = generate(&kind.spec(1), 11);
            let total_mb = trace.total_bytes() as f64 / MB as f64;
            let n = trace.io_count() as f64;
            let cpu: f64 = trace
                .events()
                .map(|e| e.process_time.as_secs_f64())
                .sum();
            assert!(
                rel(total_mb, t.total_io_mb) < 0.03,
                "{}: total {total_mb:.1} MB vs {:.1}",
                kind.name(),
                t.total_io_mb
            );
            assert!(
                rel(n, t.num_ios as f64) < 0.05,
                "{}: {n} I/Os vs {}",
                kind.name(),
                t.num_ios
            );
            assert!(
                rel(cpu, t.cpu_secs) < 0.05,
                "{}: cpu {cpu:.1}s vs {:.1}",
                kind.name(),
                t.cpu_secs
            );
        }
    }

    #[test]
    fn read_write_split_matches_table2() {
        for kind in ALL_APPS {
            let t = paper_targets(kind);
            let trace = generate(&kind.spec(1), 13);
            let read: u64 =
                trace.events().filter(|e| e.dir == Direction::Read).map(|e| e.length).sum();
            let written: u64 =
                trace.events().filter(|e| e.dir == Direction::Write).map(|e| e.length).sum();
            let ratio = read as f64 / written.max(1) as f64;
            assert!(
                rel(ratio, t.rw_data_ratio) < 0.08,
                "{}: R/W {ratio:.3} vs {:.3}",
                kind.name(),
                t.rw_data_ratio
            );
        }
    }

    #[test]
    fn data_set_sizes_match_table1() {
        for kind in ALL_APPS {
            let t = paper_targets(kind);
            let spec = kind.spec(1);
            let data_mb = spec.data_size() as f64 / MB as f64;
            assert!(
                rel(data_mb, t.data_mb) < 0.01,
                "{}: data {data_mb:.1} vs {:.1}",
                kind.name(),
                t.data_mb
            );
        }
    }

    #[test]
    fn les_is_async_everyone_else_sync() {
        for kind in ALL_APPS {
            let spec = kind.spec(1);
            let trace = generate(&spec, 17);
            let async_count =
                trace.events().filter(|e| e.sync == iotrace::Synchrony::Async).count();
            if kind == AppKind::Les {
                assert_eq!(async_count, trace.io_count(), "les is fully async");
            } else {
                assert_eq!(async_count, 0, "{} must be sync", kind.name());
            }
        }
    }

    #[test]
    fn gcm_and_upw_are_compulsory_only() {
        for kind in [AppKind::Gcm, AppKind::Upw] {
            let trace = generate(&kind.spec(1), 19);
            let events: Vec<_> = trace.events().cloned().collect();
            // All reads precede all writes: required-I/O pattern (§5.1).
            let last_read =
                events.iter().rposition(|e| e.dir == Direction::Read).unwrap();
            let first_write =
                events.iter().position(|e| e.dir == Direction::Write).unwrap();
            assert!(last_read < first_write, "{}: reads must precede writes", kind.name());
        }
    }

    #[test]
    fn venus_interleaves_six_files() {
        let trace = generate(&AppKind::Venus.spec(1), 23);
        let mut seen = std::collections::HashSet::new();
        for e in trace.events().take(50) {
            seen.insert(e.file_id);
        }
        assert!(seen.len() >= 5, "venus should rotate its files early: {seen:?}");
    }

    #[test]
    fn bvi_uses_small_requests_on_ssd_latency() {
        let spec = AppKind::Bvi.spec(1);
        let trace = generate(&spec, 29);
        let avg = trace.total_bytes() as f64 / trace.io_count() as f64 / 1024.0;
        assert!(avg < 32.0, "bvi average request {avg:.1} KB should be small");
        // SSD latency: completions far below disk-class 12 ms.
        let mean_completion: f64 = trace
            .events()
            .map(|e| e.completion.as_secs_f64())
            .sum::<f64>()
            / trace.io_count() as f64;
        assert!(mean_completion < 0.001, "bvi completions {mean_completion}s should be SSD-fast");
    }

    #[test]
    fn forma_rereads_its_matrix() {
        let t = paper_targets(AppKind::Forma);
        // Per-cycle reads exceed the data-set size: multiple passes.
        let spec = AppKind::Forma.spec(1);
        assert!(
            spec.cycle.read_bytes > spec.data_size(),
            "forma must re-read its array each cycle"
        );
        assert!(t.rw_data_ratio > 10.0);
    }
}
