//! Declarative application descriptions.
//!
//! An [`AppSpec`] captures everything the paper's §3/§5 descriptions fix
//! about a program: its data files, its compulsory (required) I/O at start
//! and end, its iterative data-swapping cycles, optional checkpoints, the
//! constancy of its request sizes, how much CPU it burns, and whether its
//! I/O is synchronous (every app but les) or asynchronous (les).

use iotrace::Synchrony;
use serde::{Deserialize, Serialize};
use sim_core::units::MB;
use sim_core::SimDuration;

/// One data file in the application's working set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FileDef {
    /// Trace file id (unique per open; our apps open each file once).
    pub id: u32,
    /// File size in bytes.
    pub size: u64,
    /// Human-readable name, recorded as a trace comment (the paper used
    /// comment records for exactly this).
    pub name: String,
}

impl FileDef {
    /// Convenience constructor.
    pub fn new(id: u32, size: u64, name: impl Into<String>) -> FileDef {
        FileDef { id, size, name: name.into() }
    }
}

/// How a cycle's I/O sweep walks the data files.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SweepOrder {
    /// Finish one file before moving to the next (les, forma, ccm, bvi).
    Sequential,
    /// Rotate across files request by request, and interleave reads with
    /// writes — venus's signature pattern ("interleaving accesses to six
    /// different data files", §6.2).
    Interleaved,
}

/// The iterative heart of an application (§5.3): each cycle reads a fixed
/// amount, writes a fixed amount, and computes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CycleDef {
    /// Bytes read per cycle (may exceed the data-set size: forma re-reads
    /// each block ~11× per cycle; cursors wrap).
    pub read_bytes: u64,
    /// Bytes written per cycle.
    pub write_bytes: u64,
    /// Read request size (constant within a program, §5.2).
    pub read_io: u64,
    /// Write request size.
    pub write_io: u64,
    /// Sweep order over files.
    pub order: SweepOrder,
    /// For [`SweepOrder::Interleaved`]: how many consecutive chunks are
    /// issued against one file before rotating to the next. Runs keep
    /// per-file streams "highly sequential" (§5.2) while still
    /// interleaving across files the way venus did. Ignored for
    /// sequential sweeps.
    pub interleave_run: u32,
    /// Fraction of the cycle's CPU time spent *inside* the I/O sweep
    /// (processing each staged chunk); the rest forms pure-compute gaps.
    /// Controls the peak-to-mean ratio of the Figure 3/4 rate series.
    pub sweep_cpu_frac: f64,
}

/// Periodic checkpoint state dumps (§5.1, second I/O type).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CheckpointDef {
    /// Bytes of state saved per checkpoint.
    pub bytes: u64,
    /// Request size used for checkpoint writes.
    pub io_size: u64,
    /// A checkpoint is taken after every `every_cycles` cycles.
    pub every_cycles: u32,
    /// File id receiving the checkpoints.
    pub file_id: u32,
}

/// Nominal device latency used to fill the trace's completion-time field
/// (the simulator re-times everything; this only matters for trace
/// realism and the analysis of completion times).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub enum LatencyModel {
    /// Fixed overhead plus streaming at the given MB/s — a disk.
    Disk {
        /// Positioning + scheduling overhead per request.
        overhead: SimDuration,
        /// Transfer rate in MB/s.
        mb_per_sec: f64,
    },
    /// The SSD: tiny overhead plus ~1 GB/s streaming (bvi's world).
    Ssd,
}

impl LatencyModel {
    /// The Y-MP disk with average positioning (§6.2's 15 ms worst case,
    /// ~12 ms typical including rotation).
    pub fn ymp_disk() -> LatencyModel {
        LatencyModel::Disk {
            overhead: SimDuration::from_millis(12),
            mb_per_sec: sim_core::units::YMP_DISK_MB_PER_SEC,
        }
    }

    /// Completion time for a request of `bytes`.
    pub fn completion(&self, bytes: u64) -> SimDuration {
        match *self {
            LatencyModel::Disk { overhead, mb_per_sec } => {
                overhead + SimDuration::from_secs_f64(bytes as f64 / (mb_per_sec * MB as f64))
            }
            LatencyModel::Ssd => {
                SimDuration::from_micros(20)
                    + SimDuration::from_secs_f64(
                        bytes as f64 / (sim_core::units::SSD_GB_PER_SEC * sim_core::units::GB as f64),
                    )
            }
        }
    }
}

/// A complete application description.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AppSpec {
    /// Program name (e.g. "venus").
    pub name: String,
    /// Process id used in the trace.
    pub pid: u32,
    /// Data files (cycled over by sweeps).
    pub files: Vec<FileDef>,
    /// Total CPU time the program consumes.
    pub cpu_time: SimDuration,
    /// Compulsory read at startup: (bytes, io size, file id). Zero bytes
    /// disables it.
    pub init_read: (u64, u64, u32),
    /// Compulsory write at completion: (bytes, io size, file id).
    pub final_write: (u64, u64, u32),
    /// Number of iterations; zero for compulsory-only programs (gcm, upw).
    pub cycles: u32,
    /// Per-cycle behavior (ignored when `cycles == 0`).
    pub cycle: CycleDef,
    /// Optional checkpointing.
    pub checkpoint: Option<CheckpointDef>,
    /// Synchronous for every traced app except les.
    pub sync: Synchrony,
    /// Completion-time fill model.
    pub latency: LatencyModel,
    /// Multiplicative jitter applied to compute gaps (keeps two copies of
    /// one app from running in artificial lockstep without disturbing the
    /// calibrated totals; the paper's bunching emerges anyway).
    pub compute_jitter: f64,
}

impl AppSpec {
    /// Total bytes this spec will read over a full run.
    pub fn planned_read_bytes(&self) -> u64 {
        self.init_read.0 + self.cycles as u64 * self.cycle.read_bytes
    }

    /// Total bytes this spec will write over a full run.
    pub fn planned_write_bytes(&self) -> u64 {
        let ckpt = self.checkpoint.as_ref().map_or(0, |c| {
            self.cycles
                .checked_div(c.every_cycles)
                .map_or(0, |dumps| dumps as u64 * c.bytes)
        });
        self.final_write.0 + self.cycles as u64 * self.cycle.write_bytes + ckpt
    }

    /// Total data-set size (sum of file sizes), the paper's "total data
    /// size" column.
    pub fn data_size(&self) -> u64 {
        self.files.iter().map(|f| f.size).sum()
    }

    /// Sanity checks on the spec; panics on nonsense.
    pub fn validate(&self) {
        assert!(!self.files.is_empty(), "app needs at least one file");
        assert!(!self.cpu_time.is_zero(), "app needs CPU time");
        if self.cycles > 0 {
            assert!(self.cycle.read_io > 0 && self.cycle.write_io > 0);
            if self.cycle.order == SweepOrder::Interleaved {
                assert!(self.cycle.interleave_run >= 1, "interleaved sweeps need a run length");
            }
            assert!(
                (0.0..=1.0).contains(&self.cycle.sweep_cpu_frac),
                "sweep_cpu_frac must be a fraction"
            );
        }
        if self.init_read.0 > 0 {
            assert!(self.init_read.1 > 0, "init read needs an io size");
        }
        if self.final_write.0 > 0 {
            assert!(self.final_write.1 > 0, "final write needs an io size");
        }
        assert!((0.0..=1.0).contains(&self.compute_jitter));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::units::KB;

    fn spec() -> AppSpec {
        AppSpec {
            name: "toy".into(),
            pid: 1,
            files: vec![FileDef::new(1, 10 * MB, "data")],
            cpu_time: SimDuration::from_secs(10),
            init_read: (MB, 64 * KB, 1),
            final_write: (2 * MB, 64 * KB, 1),
            cycles: 5,
            cycle: CycleDef {
                read_bytes: 4 * MB,
                write_bytes: 2 * MB,
                read_io: 256 * KB,
                write_io: 256 * KB,
                order: SweepOrder::Sequential,
                interleave_run: 4,
                sweep_cpu_frac: 0.5,
            },
            checkpoint: Some(CheckpointDef {
                bytes: MB,
                io_size: 512 * KB,
                every_cycles: 2,
                file_id: 99,
            }),
            sync: Synchrony::Sync,
            latency: LatencyModel::ymp_disk(),
            compute_jitter: 0.05,
        }
    }

    #[test]
    fn planned_totals_add_up() {
        let s = spec();
        assert_eq!(s.planned_read_bytes(), MB + 5 * 4 * MB);
        // final 2 MB + 5 cycles × 2 MB + 2 checkpoints × 1 MB
        assert_eq!(s.planned_write_bytes(), 2 * MB + 10 * MB + 2 * MB);
        assert_eq!(s.data_size(), 10 * MB);
        s.validate();
    }

    #[test]
    fn latency_models_scale_with_size() {
        let disk = LatencyModel::ymp_disk();
        assert!(disk.completion(MB) > disk.completion(4 * KB));
        let ssd = LatencyModel::Ssd;
        assert!(ssd.completion(MB) < disk.completion(4 * KB), "SSD beats disk");
    }

    #[test]
    #[should_panic(expected = "at least one file")]
    fn empty_files_rejected() {
        let mut s = spec();
        s.files.clear();
        s.validate();
    }

    #[test]
    #[should_panic(expected = "sweep_cpu_frac")]
    fn bad_sweep_frac_rejected() {
        let mut s = spec();
        s.cycle.sweep_cpu_frac = 1.5;
        s.validate();
    }
}
