//! Property tests: translation coverage, linkage, and codec
//! compatibility hold for arbitrary logical traces and layout geometries.

use fs_map::{measure, translate, FsConfig, FsLayout};
use iotrace::{read_trace, write_trace, DataKind, Direction, IoEvent, Scope, Trace};
use proptest::prelude::*;
use sim_core::{SimDuration, SimTime};

fn arb_config() -> impl Strategy<Value = FsConfig> {
    (
        prop::sample::select(vec![512u64, 4096, 8192]),
        prop::sample::select(vec![8u64, 64, 256]),
        1u32..8,
        prop::sample::select(vec![64u64, 1024]),
    )
        .prop_map(|(block_size, extent_blocks, n_disks, ptrs_per_block)| FsConfig {
            block_size,
            extent_blocks,
            n_disks,
            ptrs_per_block,
        })
}

fn arb_trace() -> impl Strategy<Value = Trace> {
    proptest::collection::vec(
        (1u32..5, 0u64..5_000_000, 1u64..300_000, any::<bool>()),
        1..80,
    )
    .prop_map(|accesses| {
        let mut t = Trace::new();
        for (i, (file, offset, len, write)) in accesses.into_iter().enumerate() {
            t.push(IoEvent::logical(
                if write { Direction::Write } else { Direction::Read },
                1,
                file,
                offset,
                len,
                SimTime::from_ticks(i as u64 * 1000),
                SimDuration::from_ticks(500),
            ));
        }
        t
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn translation_invariants(config in arb_config(), trace in arb_trace()) {
        let bs = config.block_size;
        let n_disks = config.n_disks;
        let mut layout = FsLayout::new(config);
        let mixed = translate(&trace, &mut layout);

        // Logical records survive verbatim apart from the op id.
        let logical: Vec<&IoEvent> =
            mixed.events().filter(|e| e.scope == Scope::Logical).collect();
        let originals: Vec<&IoEvent> = trace.events().collect();
        prop_assert_eq!(logical.len(), originals.len());
        for (l, o) in logical.iter().zip(&originals) {
            prop_assert_eq!(l.offset, o.offset);
            prop_assert_eq!(l.length, o.length);
            prop_assert_eq!(l.dir, o.dir);
            prop_assert!(l.op_id > 0);
        }

        // Physical coverage: per op, data bytes cover the logical range
        // with at most block rounding.
        for l in &logical {
            let phys: u64 = mixed
                .events()
                .filter(|p| p.scope == Scope::Physical
                    && p.op_id == l.op_id
                    && p.kind == DataKind::FileData)
                .map(|p| p.length)
                .sum();
            prop_assert!(phys >= l.length);
            prop_assert!(phys < l.length + 2 * bs);
        }

        // All physical records block-aligned and on valid disks.
        for p in mixed.events().filter(|e| e.scope == Scope::Physical) {
            prop_assert_eq!(p.offset % 512, 0);
            prop_assert_eq!(p.length % 512, 0);
            prop_assert!(p.file_id < n_disks);
        }

        // The mixed trace stays codec-clean.
        prop_assert!(mixed.is_time_ordered());
        let mut buf = Vec::new();
        write_trace(&mixed, &mut buf).unwrap();
        let back = read_trace(std::io::Cursor::new(buf)).unwrap();
        prop_assert_eq!(back, mixed.clone());

        // Amplification bookkeeping agrees with the raw trace.
        let amp = measure(&mixed);
        prop_assert_eq!(amp.logical_ios as usize, originals.len());
        prop_assert!(amp.data_amplification() >= 1.0);
    }

    #[test]
    fn translation_is_deterministic(config in arb_config(), trace in arb_trace()) {
        let a = translate(&trace, &mut FsLayout::new(config.clone()));
        let b = translate(&trace, &mut FsLayout::new(config));
        prop_assert_eq!(a, b);
    }
}
