//! Logical → physical trace translation.
//!
//! The appendix's trace format carries **physical** records alongside
//! logical ones: `fileId` becomes a disk identifier, `offset`/`length`
//! address 512-byte device blocks, and the `operationId` field exists
//! precisely to associate "the logical record for that system call …
//! with all of the physical I/Os it generated", including metadata such
//! as indirect blocks (`TRACE_META_DATA`). The paper gathered only
//! logical traces on the Cray but designed the format for both; this
//! crate supplies the missing half: a file-system layout model that
//! expands a logical trace into the mixed logical+physical trace the
//! format describes.
//!
//! * [`layout`] — an extent-based allocator: each file's data lives in
//!   fixed-size extents placed round-robin across a disk farm, with one
//!   indirect (metadata) block per pointer-block's worth of data.
//! * [`translate`] — the expansion itself: every logical record gets a
//!   fresh `operationId` and is followed by the physical data records
//!   covering its byte range (block-aligned) plus first-touch metadata
//!   reads.
//! * [`amplification`] — measurement of what translation does to the
//!   traffic: alignment waste, metadata overhead, per-disk spread.

pub mod amplification;
pub mod layout;
pub mod translate;

pub use amplification::{measure, Amplification};
pub use layout::{FsConfig, FsLayout};
pub use translate::translate;
