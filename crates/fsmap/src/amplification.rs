//! What translation does to the traffic: alignment waste, metadata
//! overhead, and how the physical load spreads over the disk farm.

use iotrace::{DataKind, Scope, Trace};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Amplification report for a translated (mixed) trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Amplification {
    /// Bytes requested by logical records.
    pub logical_bytes: u64,
    /// Bytes moved by physical *data* records.
    pub physical_data_bytes: u64,
    /// Bytes moved by physical *metadata* records.
    pub metadata_bytes: u64,
    /// Logical record count.
    pub logical_ios: u64,
    /// Physical record count (data + metadata).
    pub physical_ios: u64,
    /// Physical data bytes per disk.
    pub per_disk_bytes: HashMap<u32, u64>,
}

impl Amplification {
    /// physical data bytes / logical bytes (≥ 1.0 for block-aligned
    /// layouts; the alignment waste).
    pub fn data_amplification(&self) -> f64 {
        if self.logical_bytes == 0 {
            0.0
        } else {
            self.physical_data_bytes as f64 / self.logical_bytes as f64
        }
    }

    /// Metadata bytes as a fraction of all physical bytes.
    pub fn metadata_fraction(&self) -> f64 {
        let total = self.physical_data_bytes + self.metadata_bytes;
        if total == 0 {
            0.0
        } else {
            self.metadata_bytes as f64 / total as f64
        }
    }

    /// Max/mean ratio of per-disk load (1.0 = perfectly balanced).
    pub fn disk_imbalance(&self) -> f64 {
        if self.per_disk_bytes.is_empty() {
            return 0.0;
        }
        let max = *self.per_disk_bytes.values().max().expect("nonempty") as f64;
        let mean = self.per_disk_bytes.values().sum::<u64>() as f64
            / self.per_disk_bytes.len() as f64;
        if mean == 0.0 {
            0.0
        } else {
            max / mean
        }
    }
}

/// Measure a translated trace.
pub fn measure(trace: &Trace) -> Amplification {
    let mut a = Amplification {
        logical_bytes: 0,
        physical_data_bytes: 0,
        metadata_bytes: 0,
        logical_ios: 0,
        physical_ios: 0,
        per_disk_bytes: HashMap::new(),
    };
    for e in trace.events() {
        match e.scope {
            Scope::Logical => {
                a.logical_bytes += e.length;
                a.logical_ios += 1;
            }
            Scope::Physical => {
                a.physical_ios += 1;
                match e.kind {
                    DataKind::MetaData => a.metadata_bytes += e.length,
                    _ => {
                        a.physical_data_bytes += e.length;
                        *a.per_disk_bytes.entry(e.file_id).or_insert(0) += e.length;
                    }
                }
            }
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{FsConfig, FsLayout};
    use crate::translate::translate;
    use iotrace::{Direction, IoEvent};
    use sim_core::{SimDuration, SimTime};

    fn sample() -> Amplification {
        let mut t = Trace::new();
        for i in 0..200u64 {
            t.push(IoEvent::logical(
                Direction::Read,
                1,
                1 + (i % 3) as u32,
                i * 50_000,
                30_000, // unaligned: guarantees alignment waste
                SimTime::from_ticks(i * 1000),
                SimDuration::from_ticks(500),
            ));
        }
        let mut layout = FsLayout::new(FsConfig::default());
        measure(&translate(&t, &mut layout))
    }

    #[test]
    fn amplification_is_at_least_one() {
        let a = sample();
        assert!(a.data_amplification() >= 1.0, "got {}", a.data_amplification());
        assert!(a.data_amplification() < 1.5, "alignment waste should be modest");
        assert_eq!(a.logical_ios, 200);
        assert!(a.physical_ios >= a.logical_ios);
    }

    #[test]
    fn metadata_is_a_small_fraction() {
        let a = sample();
        assert!(a.metadata_bytes > 0, "indirect blocks must be read");
        assert!(a.metadata_fraction() < 0.05, "got {}", a.metadata_fraction());
    }

    #[test]
    fn load_spreads_over_multiple_disks() {
        let a = sample();
        assert!(a.per_disk_bytes.len() >= 3, "disks used: {:?}", a.per_disk_bytes.keys());
        assert!(a.disk_imbalance() < 3.0, "imbalance {}", a.disk_imbalance());
    }

    #[test]
    fn empty_trace_is_benign() {
        let a = measure(&Trace::new());
        assert_eq!(a.data_amplification(), 0.0);
        assert_eq!(a.metadata_fraction(), 0.0);
        assert_eq!(a.disk_imbalance(), 0.0);
    }
}
