//! The logical → physical expansion.
//!
//! For each logical record the translator emits, in order:
//!
//! 1. first-touch **metadata** reads (`TRACE_META_DATA`, physical scope,
//!    sharing the logical record's `operationId`),
//! 2. the **logical record itself**, stamped with a fresh nonzero
//!    `operationId`,
//! 3. the **physical data records** covering its block-aligned byte
//!    range, one per contiguous disk run, again sharing the
//!    `operationId` — exactly the linkage the appendix defines ("The
//!    logical record for that system call … can then be associated with
//!    all of the physical I/Os it generated. This shows the translation
//!    from a logical file position to physical disk blocks").
//!
//! Physical records carry the disk id in `fileId` (the appendix: "for
//! physical records, fileId is an identifier for the disk written to")
//! and block-aligned device addresses. Their start times share the
//! logical record's start; completions split the logical completion
//! evenly, keeping the trace time-ordered and the wall-clock story
//! consistent.

use crate::layout::FsLayout;
use iotrace::{DataKind, Direction, Scope, Trace, TraceItem};
use sim_core::SimDuration;

/// Expand a logical trace into a mixed logical + physical trace.
/// Records already physical are passed through untouched; comments are
/// preserved.
pub fn translate(trace: &Trace, layout: &mut FsLayout) -> Trace {
    let mut out = Trace::new();
    let mut next_op: u32 = 1;
    for item in trace.items() {
        match item {
            TraceItem::Comment(c) => out.push_comment(c.clone()),
            TraceItem::Io(ev) if ev.scope == Scope::Physical => out.push(*ev),
            TraceItem::Io(ev) => {
                let op_id = next_op;
                next_op = next_op.wrapping_add(1).max(1);

                // 1. Metadata loads (reads, regardless of the logical
                //    direction — the FS must locate the blocks).
                for m in layout.metadata_for(ev.file_id, ev.offset, ev.length) {
                    let mut meta = *ev;
                    meta.scope = Scope::Physical;
                    meta.kind = DataKind::MetaData;
                    meta.dir = Direction::Read;
                    meta.file_id = m.disk;
                    meta.offset = m.addr;
                    meta.length = m.len;
                    meta.op_id = op_id;
                    meta.completion = SimDuration::ZERO;
                    meta.process_time = SimDuration::ZERO;
                    out.push(meta);
                }

                // 2. The logical record, op-id stamped.
                let mut logical = *ev;
                logical.op_id = op_id;
                out.push(logical);

                // 3. Physical data records.
                let runs = layout.map_range(ev.file_id, ev.offset, ev.length);
                let n = runs.len().max(1) as u64;
                for r in runs {
                    let mut phys = *ev;
                    phys.scope = Scope::Physical;
                    phys.kind = DataKind::FileData;
                    phys.file_id = r.disk;
                    phys.offset = r.addr;
                    phys.length = r.len;
                    phys.op_id = op_id;
                    phys.completion = ev.completion / n;
                    phys.process_time = SimDuration::ZERO;
                    out.push(phys);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::FsConfig;
    use iotrace::{read_trace, write_trace, IoEvent, Synchrony};
    use sim_core::SimTime;

    fn logical_trace() -> Trace {
        let mut t = Trace::new();
        t.push_comment("test trace");
        for i in 0..10u64 {
            let mut e = IoEvent::logical(
                if i % 2 == 0 { Direction::Read } else { Direction::Write },
                1,
                1 + (i % 2) as u32,
                i * 100_000,
                50_000,
                SimTime::from_ticks(i * 10_000),
                SimDuration::from_ticks(5_000),
            );
            e.completion = SimDuration::from_ticks(2_000);
            t.push(e);
        }
        t
    }

    fn translated() -> Trace {
        let mut layout = FsLayout::new(FsConfig::default());
        translate(&logical_trace(), &mut layout)
    }

    #[test]
    fn every_logical_record_survives_with_op_id() {
        let out = translated();
        let logical: Vec<_> =
            out.events().filter(|e| e.scope == Scope::Logical).collect();
        assert_eq!(logical.len(), 10);
        for e in &logical {
            assert!(e.op_id > 0, "logical records must carry a fresh op id");
        }
        // Op ids are unique per logical record.
        let mut ids: Vec<u32> = logical.iter().map(|e| e.op_id).collect();
        ids.dedup();
        assert_eq!(ids.len(), 10);
    }

    #[test]
    fn physical_records_cover_logical_ranges() {
        let out = translated();
        for log in out.events().filter(|e| e.scope == Scope::Logical) {
            let phys_bytes: u64 = out
                .events()
                .filter(|p| {
                    p.scope == Scope::Physical
                        && p.op_id == log.op_id
                        && p.kind == DataKind::FileData
                })
                .map(|p| p.length)
                .sum();
            assert!(
                phys_bytes >= log.length,
                "op {}: physical {} < logical {}",
                log.op_id,
                phys_bytes,
                log.length
            );
            // Alignment can add at most two FS blocks.
            assert!(phys_bytes <= log.length + 2 * 4096);
        }
    }

    #[test]
    fn physical_records_are_block_aligned_and_disk_addressed() {
        let out = translated();
        for p in out.events().filter(|e| e.scope == Scope::Physical) {
            assert_eq!(p.offset % 512, 0);
            assert_eq!(p.length % 512, 0);
            assert!(p.file_id < 8, "physical fileId is a disk id");
        }
    }

    #[test]
    fn metadata_reads_appear_once_per_region() {
        let out = translated();
        let metas: Vec<_> = out
            .events()
            .filter(|e| e.kind == DataKind::MetaData)
            .collect();
        // Two files, all accesses within one pointer region each.
        assert_eq!(metas.len(), 2);
        for m in metas {
            assert_eq!(m.dir, Direction::Read, "metadata loads are reads");
            assert_eq!(m.scope, Scope::Physical);
        }
    }

    #[test]
    fn mixed_trace_round_trips_through_the_codec() {
        let out = translated();
        assert!(out.is_time_ordered());
        let mut buf = Vec::new();
        write_trace(&out, &mut buf).expect("encode mixed trace");
        let back = read_trace(std::io::Cursor::new(buf)).expect("decode mixed trace");
        assert_eq!(back, out);
    }

    #[test]
    fn already_physical_records_pass_through() {
        let mut t = Trace::new();
        let mut e = IoEvent::logical(
            Direction::Read,
            1,
            3,
            4096,
            512,
            SimTime::ZERO,
            SimDuration::ZERO,
        );
        e.scope = Scope::Physical;
        e.sync = Synchrony::Sync;
        t.push(e);
        let mut layout = FsLayout::new(FsConfig::default());
        let out = translate(&t, &mut layout);
        assert_eq!(out.io_count(), 1);
        assert_eq!(out.events().next().unwrap(), &e);
    }

    #[test]
    fn comments_are_preserved() {
        let out = translated();
        assert!(out
            .items()
            .iter()
            .any(|i| matches!(i, TraceItem::Comment(c) if c == "test trace")));
    }

    #[test]
    fn direction_and_sync_flow_to_physical_data_records() {
        let out = translated();
        for log in out.events().filter(|e| e.scope == Scope::Logical) {
            for p in out.events().filter(|p| {
                p.scope == Scope::Physical && p.op_id == log.op_id && p.kind == DataKind::FileData
            }) {
                assert_eq!(p.dir, log.dir);
                assert_eq!(p.sync, log.sync);
            }
        }
    }
}
