//! The extent-based file-system layout model.
//!
//! Files are carved into fixed-size **extents** of file-system blocks;
//! extents are allocated on demand, round-robin across the disk farm per
//! file, and bump-allocated within each disk. One **indirect block** of
//! metadata maps each `ptrs_per_block` data blocks; the first touch of a
//! region requires reading it.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Layout parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FsConfig {
    /// File-system block size in bytes (must be a multiple of the trace
    /// format's 512-byte unit).
    pub block_size: u64,
    /// Extent size in FS blocks (contiguous-on-disk run).
    pub extent_blocks: u64,
    /// Number of disks in the farm.
    pub n_disks: u32,
    /// Data-block pointers per indirect block (determines metadata I/O
    /// frequency).
    pub ptrs_per_block: u64,
}

impl Default for FsConfig {
    fn default() -> Self {
        FsConfig {
            block_size: 4096,
            extent_blocks: 64, // 256 KB extents
            n_disks: 8,
            ptrs_per_block: 1024,
        }
    }
}

impl FsConfig {
    /// Validate invariants.
    pub fn validate(&self) {
        assert!(
            self.block_size >= 512 && self.block_size.is_multiple_of(512),
            "FS block must be a multiple of 512"
        );
        assert!(self.extent_blocks > 0, "extent must hold at least one block");
        assert!(self.n_disks > 0, "need at least one disk");
        assert!(self.ptrs_per_block > 0, "indirect blocks must map something");
    }
}

/// A contiguous run of physical blocks on one disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhysRun {
    /// Disk identifier (the physical record's `fileId`).
    pub disk: u32,
    /// Byte address on the disk (block aligned).
    pub addr: u64,
    /// Length in bytes (block aligned).
    pub len: u64,
}

/// The mutable layout state: per-file extent maps and per-disk
/// allocation cursors.
#[derive(Debug)]
pub struct FsLayout {
    config: FsConfig,
    /// file id → extents, indexed by extent ordinal within the file;
    /// each entry is (disk, starting byte address on that disk).
    extents: HashMap<u32, Vec<(u32, u64)>>,
    /// Next free byte address per disk.
    alloc: Vec<u64>,
    /// Indirect-block regions already read, per file: region ordinal set.
    meta_loaded: HashMap<u32, std::collections::HashSet<u64>>,
    /// Where each file's metadata lives (allocated on first need).
    meta_addr: HashMap<(u32, u64), PhysRun>,
}

impl FsLayout {
    /// An empty layout.
    pub fn new(config: FsConfig) -> Self {
        config.validate();
        let n = config.n_disks as usize;
        FsLayout {
            config,
            extents: HashMap::new(),
            alloc: vec![0; n],
            meta_loaded: HashMap::new(),
            meta_addr: HashMap::new(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &FsConfig {
        &self.config
    }

    fn extent_bytes(&self) -> u64 {
        self.config.extent_blocks * self.config.block_size
    }

    /// Ensure the extent covering file-relative byte `offset` exists and
    /// return (disk, disk byte address of the extent's start).
    fn extent_for(&mut self, file: u32, offset: u64) -> (u32, u64) {
        let eb = self.extent_bytes();
        let ordinal = (offset / eb) as usize;
        let n_disks = self.config.n_disks;
        let entry = self.extents.entry(file).or_default();
        while entry.len() <= ordinal {
            // Round-robin across disks per file, offset by the file id so
            // different files start on different spindles.
            let disk = (file as usize + entry.len()) % n_disks as usize;
            let addr = self.alloc[disk];
            self.alloc[disk] += eb;
            entry.push((disk as u32, addr));
        }
        entry[ordinal]
    }

    /// Map a logical byte range of a file onto physical runs,
    /// block-aligning both ends (a partial block touch moves the whole
    /// block). Runs on one disk crossing extent boundaries are split.
    pub fn map_range(&mut self, file: u32, offset: u64, length: u64) -> Vec<PhysRun> {
        if length == 0 {
            return Vec::new();
        }
        let bs = self.config.block_size;
        let eb = self.extent_bytes();
        let start = (offset / bs) * bs;
        let end = (offset + length).div_ceil(bs) * bs;
        let mut runs: Vec<PhysRun> = Vec::new();
        let mut pos = start;
        while pos < end {
            let within = pos % eb;
            let chunk = (eb - within).min(end - pos);
            let (disk, base) = self.extent_for(file, pos);
            let addr = base + within;
            match runs.last_mut() {
                Some(r) if r.disk == disk && r.addr + r.len == addr => r.len += chunk,
                _ => runs.push(PhysRun { disk, addr, len: chunk }),
            }
            pos += chunk;
        }
        runs
    }

    /// Metadata (indirect-block) reads needed before touching the given
    /// range: at most one FS block per pointer region, only on first
    /// touch. Returns the physical runs to read.
    pub fn metadata_for(&mut self, file: u32, offset: u64, length: u64) -> Vec<PhysRun> {
        if length == 0 {
            return Vec::new();
        }
        let bs = self.config.block_size;
        let region_bytes = self.config.ptrs_per_block * bs;
        let first = offset / region_bytes;
        let last = (offset + length - 1) / region_bytes;
        let mut out = Vec::new();
        for region in first..=last {
            let loaded = self.meta_loaded.entry(file).or_default();
            if loaded.insert(region) {
                let n_disks = self.config.n_disks as usize;
                let run = *self.meta_addr.entry((file, region)).or_insert_with(|| {
                    // Metadata lives near the front of the file's home
                    // disk.
                    let disk = file as usize % n_disks;
                    let addr = self.alloc[disk];
                    self.alloc[disk] += bs;
                    PhysRun { disk: disk as u32, addr, len: bs }
                });
                out.push(run);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> FsLayout {
        FsLayout::new(FsConfig::default())
    }

    #[test]
    fn mapping_covers_and_aligns() {
        let mut l = layout();
        let runs = l.map_range(1, 1000, 10_000);
        let total: u64 = runs.iter().map(|r| r.len).sum();
        // [1000, 11000) block-aligns to [0, 12288) = 3 FS blocks.
        assert_eq!(total, 3 * 4096);
        for r in &runs {
            assert_eq!(r.addr % 4096, 0);
            assert_eq!(r.len % 4096, 0);
        }
    }

    #[test]
    fn same_range_maps_identically_twice() {
        let mut l = layout();
        let a = l.map_range(1, 0, 300_000);
        let b = l.map_range(1, 0, 300_000);
        assert_eq!(a, b, "layout must be stable");
    }

    #[test]
    fn extents_rotate_across_disks() {
        let mut l = layout();
        // 3 extents' worth = 768 KB spans three disks.
        let runs = l.map_range(1, 0, 3 * 64 * 4096);
        let disks: Vec<u32> = runs.iter().map(|r| r.disk).collect();
        assert_eq!(runs.len(), 3, "one run per extent: {runs:?}");
        assert_eq!(disks.len(), 3);
        assert!(disks.windows(2).all(|w| w[0] != w[1]), "extents must rotate disks");
    }

    #[test]
    fn different_files_do_not_collide() {
        let mut l = layout();
        let a = l.map_range(1, 0, 64 * 4096);
        let b = l.map_range(2, 0, 64 * 4096);
        for ra in &a {
            for rb in &b {
                if ra.disk == rb.disk {
                    let overlap = ra.addr < rb.addr + rb.len && rb.addr < ra.addr + ra.len;
                    assert!(!overlap, "files share disk blocks: {ra:?} vs {rb:?}");
                }
            }
        }
    }

    #[test]
    fn metadata_read_once_per_region() {
        let mut l = layout();
        let m1 = l.metadata_for(1, 0, 4096);
        assert_eq!(m1.len(), 1, "first touch loads the indirect block");
        let m2 = l.metadata_for(1, 8192, 4096);
        assert!(m2.is_empty(), "same region already loaded");
        // A far region needs its own indirect block.
        let far = 1024 * 4096 * 3;
        let m3 = l.metadata_for(1, far, 4096);
        assert_eq!(m3.len(), 1);
    }

    #[test]
    fn range_spanning_regions_loads_each() {
        let mut l = layout();
        let region = 1024 * 4096;
        let m = l.metadata_for(1, region - 4096, 3 * 4096);
        assert_eq!(m.len(), 2, "range straddles two pointer regions");
    }

    #[test]
    fn zero_length_is_empty() {
        let mut l = layout();
        assert!(l.map_range(1, 500, 0).is_empty());
        assert!(l.metadata_for(1, 500, 0).is_empty());
    }

    #[test]
    #[should_panic(expected = "multiple of 512")]
    fn bad_block_size_rejected() {
        FsLayout::new(FsConfig { block_size: 1000, ..Default::default() });
    }
}
