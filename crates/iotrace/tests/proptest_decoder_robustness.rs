//! Adversarial-input robustness: the decoder must never panic, only
//! return errors, on arbitrary input — including near-miss corruptions
//! of valid traces.

use iotrace::{read_trace, write_trace, Direction, IoEvent, Trace, TraceDecoder};
use proptest::prelude::*;
use sim_core::{SimDuration, SimTime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn arbitrary_lines_never_panic(line in ".{0,200}") {
        let mut dec = TraceDecoder::new();
        let _ = dec.decode(&line); // Ok or Err, never panic
    }

    #[test]
    fn arbitrary_numeric_lines_never_panic(
        fields in proptest::collection::vec(0u64..u64::MAX, 0..12)
    ) {
        let line = fields
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join(" ");
        let mut dec = TraceDecoder::new();
        let _ = dec.decode(&line);
    }

    #[test]
    fn corrupted_valid_traces_error_cleanly(
        n in 1usize..30,
        corrupt_at in 0usize..2000,
        replacement in 0u8..128,
    ) {
        // Encode a valid trace, flip one byte, and decode: the result is
        // either a clean error or a decode (possibly of different
        // events) — never a panic.
        let mut t = Trace::new();
        for i in 0..n as u64 {
            t.push(IoEvent::logical(
                Direction::Read,
                1,
                1,
                i * 4096,
                4096,
                SimTime::from_ticks(i * 100),
                SimDuration::from_ticks(10),
            ));
        }
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        if !buf.is_empty() {
            let at = corrupt_at % buf.len();
            buf[at] = replacement;
        }
        let _ = read_trace(std::io::Cursor::new(buf));
    }

    #[test]
    fn whitespace_variations_do_not_panic(
        spaces in proptest::collection::vec(0usize..5, 0..20)
    ) {
        // Valid record content with pathological whitespace.
        let mut line = String::from("128 0 0 4096 0 0 0 1 1 0");
        for (i, &s) in spaces.iter().enumerate() {
            let pos = (i * 3) % (line.len() + 1);
            line.insert_str(pos.min(line.len()), &" ".repeat(s));
        }
        let mut dec = TraceDecoder::new();
        let _ = dec.decode(&line);
    }
}
