//! Frame-codec (stream_v2) robustness and round-trip properties,
//! mirroring `proptest_decoder_robustness.rs` for the binary container:
//!
//! * any event stream the ASCII codec's model can express round-trips
//!   bit-exactly through the frame format, via every replay mode;
//! * arbitrary bytes, truncations, and single-byte corruptions of valid
//!   frames decode to a clean [`iotrace::TraceError`] or to the original
//!   events — never a panic, and (for payload corruption) never a silent
//!   misdecode past the block checksum.

use iotrace::stream_v2::{encode_frames, read_frames, FrameFile};
use iotrace::{
    CacheOutcome, DataKind, Direction, IoEvent, Scope, Synchrony, TraceError,
};
use proptest::prelude::*;
use sim_core::{SimDuration, SimTime};

/// An arbitrary event covering the full flag space and wide numeric
/// ranges — the same model the ASCII codec encodes, minus the fields it
/// cannot (the ASCII format caps offset/length at 32 bits; the frame
/// format has no such limit, so we exercise the full u64 range too).
fn arb_event() -> impl Strategy<Value = IoEvent> {
    (
        (0usize..4, any::<bool>(), any::<bool>(), any::<bool>(), 0usize..3),
        (any::<u64>(), 0u64..(1 << 40), any::<u64>(), 0u64..(1 << 32)),
        (any::<u32>(), any::<u32>(), any::<u32>(), 0u64..(1 << 32)),
    )
        .prop_map(
            |(
                (kind, logical, write, is_async, cache),
                (offset, length, start, completion),
                (op_id, file_id, process_id, process_time),
            )| {
                IoEvent {
                    kind: [
                        DataKind::FileData,
                        DataKind::MetaData,
                        DataKind::ReadAhead,
                        DataKind::VirtualMem,
                    ][kind],
                    scope: if logical { Scope::Logical } else { Scope::Physical },
                    dir: if write { Direction::Write } else { Direction::Read },
                    sync: if is_async { Synchrony::Async } else { Synchrony::Sync },
                    cache: [CacheOutcome::Hit, CacheOutcome::ReadAheadHit, CacheOutcome::Miss]
                        [cache],
                    offset,
                    length,
                    start: SimTime::from_ticks(start),
                    completion: SimDuration::from_ticks(completion),
                    op_id,
                    file_id,
                    process_id,
                    process_time: SimDuration::from_ticks(process_time),
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn roundtrip_all_replay_modes(
        events in proptest::collection::vec(arb_event(), 0..300),
        block_events in 1usize..96,
    ) {
        let bytes = encode_frames(&events, block_events);

        // Indexed random-access replay (mmap-equivalent in-memory buffer).
        let file = FrameFile::from_bytes(bytes.clone()).expect("valid frame");
        prop_assert_eq!(file.total_events(), events.len() as u64);
        prop_assert_eq!(file.decode_all().expect("decodes"), events.clone());

        // Zero-allocation cursor replay.
        let mut cursor = file.cursor();
        let mut got = Vec::new();
        while let Some(e) = cursor.next().expect("decodes") {
            got.push(e);
        }
        prop_assert_eq!(got, events.clone());

        // Forward-only Read-based replay.
        prop_assert_eq!(
            read_frames(std::io::Cursor::new(bytes)).expect("decodes"),
            events
        );
    }

    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let _ = FrameFile::from_bytes(bytes.clone()).map(|f| f.decode_all());
        let _ = read_frames(std::io::Cursor::new(bytes));
    }

    #[test]
    fn truncations_never_panic(
        events in proptest::collection::vec(arb_event(), 1..200),
        cut_frac in 0.0f64..1.0,
    ) {
        let bytes = encode_frames(&events, 32);
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        let trunc = bytes[..cut.min(bytes.len().saturating_sub(1))].to_vec();
        // A truncated frame either fails to open, fails during decode, or
        // (for cuts inside the unused footer) yields the original events.
        if let Ok(got) = FrameFile::from_bytes(trunc.clone()).and_then(|f| f.decode_all()) {
            prop_assert_eq!(got, events.clone());
        }
        if let Ok(got) = read_frames(std::io::Cursor::new(trunc)) {
            prop_assert_eq!(got, events);
        }
    }

    #[test]
    fn payload_corruption_is_caught_by_the_checksum(
        events in proptest::collection::vec(arb_event(), 1..200),
        corrupt_at in any::<usize>(),
        flip in 1u8..=255,
    ) {
        // Flip one byte anywhere in a valid frame: decode must either
        // error or still produce the original events (flips in dead bytes
        // such as the reserved header word). A silent misdecode — Ok with
        // different events — is the one forbidden outcome.
        let bytes = encode_frames(&events, 32);
        let mut corrupt = bytes.clone();
        let at = corrupt_at % corrupt.len();
        corrupt[at] ^= flip;
        match FrameFile::from_bytes(corrupt.clone()).and_then(|f| f.decode_all()) {
            Ok(got) => prop_assert_eq!(got, events.clone()),
            Err(e) => prop_assert!(
                !matches!(e, TraceError::Io(_)),
                "corruption must map to a format error, not I/O"
            ),
        }
        if let Ok(got) = read_frames(std::io::Cursor::new(corrupt)) {
            prop_assert_eq!(got, events);
        }
    }
}
