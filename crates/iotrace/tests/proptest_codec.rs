//! Property tests: the compressed ASCII codec is lossless for every
//! conforming record sequence, and compression flags never change decoded
//! semantics.

use iotrace::{
    read_trace, write_trace, DataKind, Direction, IoEvent, Scope, Synchrony, Trace, TraceDecoder,
    TraceEncoder, TraceItem,
};
use proptest::prelude::*;
use sim_core::{SimDuration, SimTime};

fn arb_direction() -> impl Strategy<Value = Direction> {
    prop_oneof![Just(Direction::Read), Just(Direction::Write)]
}

fn arb_sync() -> impl Strategy<Value = Synchrony> {
    prop_oneof![Just(Synchrony::Sync), Just(Synchrony::Async)]
}

fn arb_kind() -> impl Strategy<Value = DataKind> {
    prop_oneof![
        Just(DataKind::FileData),
        Just(DataKind::MetaData),
        Just(DataKind::ReadAhead),
        Just(DataKind::VirtualMem),
    ]
}

/// A raw event shape before times are made monotonic.
#[derive(Debug, Clone)]
struct RawEvent {
    dir: Direction,
    sync: Synchrony,
    kind: DataKind,
    physical: bool,
    pid: u32,
    fid: u32,
    offset: u64,
    length: u64,
    start_gap: u64,
    completion: u64,
    ptime: u64,
    op_id: u32,
}

fn arb_raw_event() -> impl Strategy<Value = RawEvent> {
    (
        arb_direction(),
        arb_sync(),
        arb_kind(),
        any::<bool>(),
        1u32..5,
        1u32..8,
        0u64..10_000_000,
        0u64..5_000_000,
        0u64..200_000,
        0u64..50_000,
        0u64..100_000,
        0u32..4,
    )
        .prop_map(
            |(dir, sync, kind, physical, pid, fid, offset, length, start_gap, completion, ptime, op_id)| {
                RawEvent {
                    dir,
                    sync,
                    kind,
                    physical,
                    pid,
                    fid,
                    offset,
                    length,
                    start_gap,
                    completion,
                    ptime,
                    op_id,
                }
            },
        )
}

fn build_trace(raw: Vec<RawEvent>) -> Trace {
    let mut t = Trace::new();
    let mut clock = 0u64;
    for r in raw {
        clock += r.start_gap;
        let (scope, offset, length) = if r.physical {
            // Physical records must be block aligned.
            (Scope::Physical, (r.offset / 512) * 512, (r.length / 512) * 512)
        } else {
            (Scope::Logical, r.offset, r.length)
        };
        t.push(IoEvent {
            kind: r.kind,
            scope,
            dir: r.dir,
            sync: r.sync,
            cache: iotrace::CacheOutcome::Hit,
            offset,
            length,
            start: SimTime::from_ticks(clock),
            completion: SimDuration::from_ticks(r.completion),
            op_id: r.op_id,
            file_id: r.fid,
            process_id: r.pid,
            process_time: SimDuration::from_ticks(r.ptime),
        });
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn codec_roundtrip_is_lossless(raw in proptest::collection::vec(arb_raw_event(), 0..200)) {
        let trace = build_trace(raw);
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).unwrap();
        let back = read_trace(std::io::Cursor::new(buf)).unwrap();
        prop_assert_eq!(back, trace);
    }

    #[test]
    fn line_by_line_matches_batch(raw in proptest::collection::vec(arb_raw_event(), 1..100)) {
        let trace = build_trace(raw);
        let mut enc = TraceEncoder::new();
        let mut dec = TraceDecoder::new();
        for item in trace.items() {
            let line = enc.encode(item).unwrap();
            let got = dec.decode(&line).unwrap().unwrap();
            prop_assert_eq!(&got, item);
        }
    }

    #[test]
    fn comments_never_corrupt_state(
        raw in proptest::collection::vec(arb_raw_event(), 1..60),
        comment_at in 0usize..60,
        text in "[ -~]{0,40}",
    ) {
        let plain = build_trace(raw.clone());
        // Same events with a comment spliced in.
        let mut with_comment = Trace::new();
        for (i, item) in plain.items().iter().enumerate() {
            if i == comment_at.min(plain.items().len() - 1) {
                with_comment.push_comment(text.trim().to_string());
            }
            match item {
                TraceItem::Io(e) => with_comment.push(*e),
                TraceItem::Comment(c) => with_comment.push_comment(c.clone()),
            }
        }
        let mut buf = Vec::new();
        write_trace(&with_comment, &mut buf).unwrap();
        let back = read_trace(std::io::Cursor::new(buf)).unwrap();
        let events_back: Vec<_> = back.events().cloned().collect();
        let events_orig: Vec<_> = plain.events().cloned().collect();
        prop_assert_eq!(events_back, events_orig);
    }

    #[test]
    fn sequential_runs_compress_to_minimal_lines(
        n in 2usize..50,
        size in prop::sample::select(vec![512u64, 4096, 32768, 524288]),
    ) {
        // A perfectly sequential same-size run: every record after the first
        // must encode to exactly 5 fields.
        let mut t = Trace::new();
        for i in 0..n as u64 {
            t.push(IoEvent::logical(
                Direction::Read, 1, 1, i * size, size,
                SimTime::from_ticks(i * 1000), SimDuration::from_ticks(100),
            ));
        }
        let mut enc = TraceEncoder::new();
        let lines: Vec<String> =
            t.items().iter().map(|it| enc.encode(it).unwrap()).collect();
        for l in &lines[1..] {
            prop_assert_eq!(l.split_ascii_whitespace().count(), 5);
        }
    }
}
