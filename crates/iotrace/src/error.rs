//! Error type for trace encoding and decoding.

use std::fmt;

/// Everything that can go wrong reading or writing a trace.
#[derive(Debug)]
pub enum TraceError {
    /// An underlying I/O error from the reader/writer.
    Io(std::io::Error),
    /// A line had the wrong number of fields for its compression flags.
    FieldCount {
        /// 1-based line number.
        line: usize,
        /// Fields expected given the flags.
        expected: usize,
        /// Fields actually present.
        found: usize,
    },
    /// A field failed to parse as an integer.
    BadInteger {
        /// 1-based line number.
        line: usize,
        /// Name of the offending field.
        field: &'static str,
    },
    /// The recordType value had undefined bits set.
    BadRecordType {
        /// 1-based line number.
        line: usize,
        /// The raw value.
        bits: u16,
    },
    /// The compression value had undefined bits or contradictory flags.
    BadCompression {
        /// 1-based line number.
        line: usize,
        /// The raw value.
        bits: u16,
    },
    /// A record omitted a field (via a compression flag) but no previous
    /// record establishes its value.
    MissingContext {
        /// 1-based line number.
        line: usize,
        /// Name of the field that could not be inferred.
        field: &'static str,
    },
    /// A value exceeded the field width the format allows (offset/length
    /// are 32-bit, possibly block-scaled).
    FieldOverflow {
        /// Name of the field.
        field: &'static str,
        /// The value that did not fit.
        value: u64,
    },
    /// A binary frame container (stream_v2) structure was malformed.
    BadFrame {
        /// Best-effort byte offset where the problem was detected.
        offset: u64,
        /// What was wrong.
        what: &'static str,
    },
    /// A frame block's payload failed its checksum.
    ChecksumMismatch {
        /// Zero-based block index.
        block: usize,
    },
    /// The frame file or stream ended in the middle of a structure.
    Truncated,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::FieldCount { line, expected, found } => write!(
                f,
                "line {line}: expected {expected} fields for the compression flags, found {found}"
            ),
            TraceError::BadInteger { line, field } => {
                write!(f, "line {line}: field `{field}` is not a valid integer")
            }
            TraceError::BadRecordType { line, bits } => {
                write!(f, "line {line}: invalid recordType bits 0x{bits:x}")
            }
            TraceError::BadCompression { line, bits } => {
                write!(f, "line {line}: invalid compression bits 0x{bits:x}")
            }
            TraceError::MissingContext { line, field } => write!(
                f,
                "line {line}: field `{field}` omitted but no previous record establishes it"
            ),
            TraceError::FieldOverflow { field, value } => {
                write!(f, "field `{field}` value {value} exceeds the format's 32-bit width")
            }
            TraceError::BadFrame { offset, what } => {
                write!(f, "frame byte {offset}: {what}")
            }
            TraceError::ChecksumMismatch { block } => {
                write!(f, "frame block {block}: payload checksum mismatch")
            }
            TraceError::Truncated => write!(f, "frame truncated mid-structure"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = TraceError::FieldCount { line: 3, expected: 7, found: 5 };
        assert!(e.to_string().contains("line 3"));
        assert!(e.to_string().contains('7'));
        let e = TraceError::MissingContext { line: 1, field: "fileId" };
        assert!(e.to_string().contains("fileId"));
        let e = TraceError::FieldOverflow { field: "offset", value: u64::MAX };
        assert!(e.to_string().contains("offset"));
    }

    #[test]
    fn io_error_converts_and_sources() {
        use std::error::Error;
        let e: TraceError = std::io::Error::other("boom").into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("boom"));
    }
}
