//! Compression accounting: how well the format's field-inference and
//! block-scaling flags work on a given trace, and the appendix's
//! ASCII-vs-binary comparison.
//!
//! "Surprisingly, text traces were shorter than binary traces. This
//! savings occurred by converting integers which took 4 bytes in binary
//! format into variable-length printed ASCII. Since many values were
//! only 1 or 2 printed characters, this conversion saved space."
//! (appendix). [`measure`] quantifies both effects for a concrete trace.

use crate::codec::TraceEncoder;
use crate::error::TraceError;
use crate::flags::{
    TRACE_LENGTH_IN_BLOCKS, TRACE_NO_BLOCK, TRACE_NO_FILEID, TRACE_NO_LENGTH,
    TRACE_NO_OPERATIONID, TRACE_NO_PROCESSID, TRACE_OFFSET_IN_BLOCKS,
};
use crate::record::TraceItem;
use crate::stream::Trace;
use serde::{Deserialize, Serialize};

/// Size of one fixed-width binary record: the appendix `struct
/// traceRecord` packs 2×u16 + 2×u32 + 2×u64 + 4×u32 = 44 bytes.
pub const BINARY_RECORD_BYTES: u64 = 44;

/// Compression statistics for one encoded trace.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CompressionReport {
    /// I/O records encoded (comments excluded).
    pub records: u64,
    /// Total encoded ASCII bytes (including newlines).
    pub ascii_bytes: u64,
    /// Bytes a fixed-width binary encoding would take.
    pub binary_bytes: u64,
    /// Records that omitted the offset (sequential inference).
    pub no_offset: u64,
    /// Records that omitted the length (same-as-previous inference).
    pub no_length: u64,
    /// Records that omitted the file id.
    pub no_fileid: u64,
    /// Records that omitted the process id.
    pub no_processid: u64,
    /// Records that omitted the operation id.
    pub no_operationid: u64,
    /// Records whose offset was stored in 512-byte blocks.
    pub offset_in_blocks: u64,
    /// Records whose length was stored in 512-byte blocks.
    pub length_in_blocks: u64,
    /// Printed integer fields of 1–2 characters.
    pub short_fields: u64,
    /// All printed integer fields.
    pub total_fields: u64,
}

impl CompressionReport {
    /// Mean encoded bytes per record.
    pub fn bytes_per_record(&self) -> f64 {
        if self.records == 0 {
            0.0
        } else {
            self.ascii_bytes as f64 / self.records as f64
        }
    }

    /// Fraction saved versus the fixed binary layout; positive when the
    /// appendix's claim (text beats binary) holds for this trace.
    pub fn savings_vs_binary(&self) -> f64 {
        if self.binary_bytes == 0 {
            0.0
        } else {
            1.0 - self.ascii_bytes as f64 / self.binary_bytes as f64
        }
    }

    /// Fraction of records whose offset compressed away — the
    /// sequentiality the format was designed around.
    pub fn sequential_fraction(&self) -> f64 {
        if self.records == 0 {
            0.0
        } else {
            self.no_offset as f64 / self.records as f64
        }
    }

    /// Fraction of printed fields that are 1–2 characters (the appendix's
    /// explanation for ASCII beating binary).
    pub fn short_field_fraction(&self) -> f64 {
        if self.total_fields == 0 {
            0.0
        } else {
            self.short_fields as f64 / self.total_fields as f64
        }
    }
}

/// Encode `trace` and measure the compression achieved.
pub fn measure(trace: &Trace) -> Result<CompressionReport, TraceError> {
    let mut enc = TraceEncoder::new();
    let mut report = CompressionReport::default();
    for item in trace.items() {
        let line = enc.encode(item)?;
        if let TraceItem::Comment(_) = item {
            continue; // comments aren't records; skip the accounting
        }
        report.records += 1;
        report.ascii_bytes += line.len() as u64 + 1; // + newline
        report.binary_bytes += BINARY_RECORD_BYTES;
        let mut fields = line.split_ascii_whitespace();
        let _record_type = fields.next();
        let comp: u16 = fields
            .next()
            .and_then(|f| f.parse().ok())
            .unwrap_or(0);
        if comp & TRACE_NO_BLOCK != 0 {
            report.no_offset += 1;
        }
        if comp & TRACE_NO_LENGTH != 0 {
            report.no_length += 1;
        }
        if comp & TRACE_NO_FILEID != 0 {
            report.no_fileid += 1;
        }
        if comp & TRACE_NO_PROCESSID != 0 {
            report.no_processid += 1;
        }
        if comp & TRACE_NO_OPERATIONID != 0 {
            report.no_operationid += 1;
        }
        if comp & TRACE_OFFSET_IN_BLOCKS != 0 {
            report.offset_in_blocks += 1;
        }
        if comp & TRACE_LENGTH_IN_BLOCKS != 0 {
            report.length_in_blocks += 1;
        }
        for f in line.split_ascii_whitespace() {
            report.total_fields += 1;
            if f.len() <= 2 {
                report.short_fields += 1;
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flags::Direction;
    use crate::record::IoEvent;
    use sim_core::{SimDuration, SimTime};

    fn sequential_trace(n: u64) -> Trace {
        let mut t = Trace::new();
        for i in 0..n {
            t.push(IoEvent::logical(
                Direction::Read,
                1,
                1,
                i * 4096,
                4096,
                SimTime::from_ticks(i * 50),
                SimDuration::from_ticks(50),
            ));
        }
        t
    }

    #[test]
    fn sequential_trace_compresses_hard() {
        let r = measure(&sequential_trace(1000)).unwrap();
        assert_eq!(r.records, 1000);
        // All but the first record omit offset, length, file and process.
        assert_eq!(r.no_offset, 999);
        assert_eq!(r.no_length, 999);
        assert_eq!(r.no_fileid, 999);
        assert_eq!(r.no_processid, 999);
        assert!(r.sequential_fraction() > 0.99);
        // And the appendix's claim holds: text beats 44-byte binary.
        assert!(
            r.savings_vs_binary() > 0.5,
            "ASCII should save >50% vs binary, got {:.2}",
            r.savings_vs_binary()
        );
        assert!(r.bytes_per_record() < 18.0, "got {}", r.bytes_per_record());
    }

    #[test]
    fn random_trace_compresses_less() {
        let mut t = Trace::new();
        for i in 0..500u64 {
            t.push(IoEvent::logical(
                Direction::Read,
                1,
                1 + (i % 7) as u32,
                (i * 7919 + 13) % 1_000_000,
                100 + (i % 77) * 13,
                SimTime::from_ticks(i * 50),
                SimDuration::from_ticks(50),
            ));
        }
        let random = measure(&t).unwrap();
        let seq = measure(&sequential_trace(500)).unwrap();
        assert!(
            random.bytes_per_record() > seq.bytes_per_record(),
            "random {} should exceed sequential {}",
            random.bytes_per_record(),
            seq.bytes_per_record()
        );
        assert!(random.sequential_fraction() < 0.05);
    }

    #[test]
    fn block_scaling_is_counted() {
        let r = measure(&sequential_trace(10)).unwrap();
        // The first record carries offset (0, scaled) and length (4096 =
        // 8 blocks, scaled).
        assert_eq!(r.offset_in_blocks, 1);
        assert_eq!(r.length_in_blocks, 1);
    }

    #[test]
    fn short_fields_dominate_compressed_traces() {
        let r = measure(&sequential_trace(1000)).unwrap();
        assert!(
            r.short_field_fraction() > 0.4,
            "short-field fraction {:.2}",
            r.short_field_fraction()
        );
    }

    #[test]
    fn empty_trace_is_benign() {
        let r = measure(&Trace::new()).unwrap();
        assert_eq!(r.bytes_per_record(), 0.0);
        assert_eq!(r.savings_vs_binary(), 0.0);
    }

    #[test]
    fn comments_do_not_count_as_records() {
        let mut t = sequential_trace(5);
        t.push_comment("a note");
        let r = measure(&t).unwrap();
        assert_eq!(r.records, 5);
    }
}
