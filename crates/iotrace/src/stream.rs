//! In-memory traces, file-level read/write helpers, and multi-trace
//! merging.

use crate::codec::{TraceDecoder, TraceEncoder};
use crate::error::TraceError;
use crate::record::{IoEvent, TraceItem};
use sim_core::SimTime;
use std::io::{BufRead, Write};

/// An in-memory trace: an ordered sequence of records and comments.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    items: Vec<TraceItem>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace { items: Vec::new() }
    }

    /// Wrap an existing item sequence.
    pub fn from_items(items: Vec<TraceItem>) -> Self {
        Trace { items }
    }

    /// Build a trace of bare I/O events (no comments).
    pub fn from_events(events: Vec<IoEvent>) -> Self {
        Trace { items: events.into_iter().map(TraceItem::Io).collect() }
    }

    /// Append an I/O event.
    pub fn push(&mut self, ev: IoEvent) {
        self.items.push(TraceItem::Io(ev));
    }

    /// Append a comment record.
    pub fn push_comment(&mut self, text: impl Into<String>) {
        self.items.push(TraceItem::Comment(text.into()));
    }

    /// All items, in trace order.
    pub fn items(&self) -> &[TraceItem] {
        &self.items
    }

    /// Iterator over just the I/O events.
    pub fn events(&self) -> impl Iterator<Item = &IoEvent> + '_ {
        self.items.iter().filter_map(TraceItem::as_io)
    }

    /// Number of I/O records (comments excluded).
    pub fn io_count(&self) -> usize {
        self.events().count()
    }

    /// Total bytes moved by all I/O records.
    pub fn total_bytes(&self) -> u64 {
        self.events().map(|e| e.length).sum()
    }

    /// Start time of the first I/O record.
    pub fn first_start(&self) -> Option<SimTime> {
        self.events().next().map(|e| e.start)
    }

    /// Completion-inclusive end of the last I/O record.
    pub fn last_end(&self) -> Option<SimTime> {
        self.events().map(|e| e.start + e.completion).max()
    }

    /// True when every consecutive same-file pair of events is sorted by
    /// start time (a format precondition for encoding).
    pub fn is_time_ordered(&self) -> bool {
        let mut last: Option<SimTime> = None;
        for e in self.events() {
            if let Some(prev) = last {
                if e.start < prev {
                    return false;
                }
            }
            last = Some(e.start);
        }
        true
    }
}

/// Serialize a whole trace to a writer as compressed ASCII, one record per
/// line.
pub fn write_trace<W: Write>(trace: &Trace, mut w: W) -> Result<(), TraceError> {
    let mut enc = TraceEncoder::new();
    for item in trace.items() {
        let line = enc.encode(item)?;
        writeln!(w, "{line}")?;
    }
    Ok(())
}

/// Parse a whole trace from a reader of compressed ASCII lines.
pub fn read_trace<R: BufRead>(r: R) -> Result<Trace, TraceError> {
    let mut dec = TraceDecoder::new();
    let mut trace = Trace::new();
    for line in r.lines() {
        let line = line?;
        if let Some(item) = dec.decode(&line)? {
            trace.items.push(item);
        }
    }
    Ok(trace)
}

/// Merge several single-process traces into one multi-process trace,
/// ordered by event start time (stable: ties keep input order). Comments
/// are kept adjacent to the event that followed them in their source
/// trace; trailing comments come last.
///
/// This is how the simulator's multiprogramming inputs are built: one
/// calibrated application trace per process, interleaved on the wall
/// clock.
pub fn merge_traces(traces: &[Trace]) -> Trace {
    // Attach each comment to the next event in its trace so ordering is by
    // event time.
    struct Keyed {
        time: SimTime,
        source: usize,
        items: Vec<TraceItem>,
    }
    let mut keyed: Vec<Keyed> = Vec::new();
    for (src, t) in traces.iter().enumerate() {
        let mut pending: Vec<TraceItem> = Vec::new();
        for item in t.items() {
            match item {
                TraceItem::Comment(_) => pending.push(item.clone()),
                TraceItem::Io(ev) => {
                    let mut items = std::mem::take(&mut pending);
                    items.push(item.clone());
                    keyed.push(Keyed { time: ev.start, source: src, items });
                }
            }
        }
        if !pending.is_empty() {
            // Trailing comments: order after everything in this trace.
            let time = t.last_end().unwrap_or(SimTime::ZERO);
            keyed.push(Keyed { time, source: src, items: pending });
        }
    }
    keyed.sort_by_key(|k| (k.time, k.source));
    let mut out = Trace::new();
    for k in keyed {
        out.items.extend(k.items);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flags::Direction;
    use sim_core::SimDuration;

    fn ev(pid: u32, start: u64, offset: u64) -> IoEvent {
        IoEvent::logical(
            Direction::Read,
            pid,
            1,
            offset,
            512,
            SimTime::from_ticks(start),
            SimDuration::ZERO,
        )
    }

    #[test]
    fn trace_accessors() {
        let mut t = Trace::new();
        t.push_comment("hello");
        t.push(ev(1, 10, 0));
        t.push(ev(1, 20, 512));
        assert_eq!(t.io_count(), 2);
        assert_eq!(t.total_bytes(), 1024);
        assert_eq!(t.first_start(), Some(SimTime::from_ticks(10)));
        assert_eq!(t.last_end(), Some(SimTime::from_ticks(20)));
        assert!(t.is_time_ordered());
        assert_eq!(t.items().len(), 3);
    }

    #[test]
    fn time_order_detection() {
        let t = Trace::from_events(vec![ev(1, 20, 0), ev(1, 10, 512)]);
        assert!(!t.is_time_ordered());
        assert!(Trace::new().is_time_ordered());
    }

    #[test]
    fn write_read_roundtrip_through_bytes() {
        let mut t = Trace::new();
        t.push_comment("trace of unit test");
        for i in 0..50 {
            t.push(ev(1, i * 100, i * 512));
        }
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        let back = read_trace(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn merge_orders_by_start_time() {
        let a = Trace::from_events(vec![ev(1, 10, 0), ev(1, 30, 512)]);
        let b = Trace::from_events(vec![ev(2, 20, 0), ev(2, 40, 512)]);
        let m = merge_traces(&[a, b]);
        let starts: Vec<u64> = m.events().map(|e| e.start.ticks()).collect();
        assert_eq!(starts, vec![10, 20, 30, 40]);
        let pids: Vec<u32> = m.events().map(|e| e.process_id).collect();
        assert_eq!(pids, vec![1, 2, 1, 2]);
    }

    #[test]
    fn merge_tie_break_is_stable_by_source() {
        let a = Trace::from_events(vec![ev(1, 10, 0)]);
        let b = Trace::from_events(vec![ev(2, 10, 0)]);
        let m = merge_traces(&[a, b]);
        let pids: Vec<u32> = m.events().map(|e| e.process_id).collect();
        assert_eq!(pids, vec![1, 2]);
    }

    #[test]
    fn merge_keeps_comments_with_following_event() {
        let mut a = Trace::new();
        a.push_comment("before first");
        a.push(ev(1, 50, 0));
        let b = Trace::from_events(vec![ev(2, 10, 0)]);
        let m = merge_traces(&[a, b]);
        match &m.items()[0] {
            TraceItem::Io(e) => assert_eq!(e.process_id, 2),
            other => panic!("expected b's event first, got {other:?}"),
        }
        assert!(matches!(&m.items()[1], TraceItem::Comment(c) if c == "before first"));
    }

    #[test]
    fn merged_trace_roundtrips_through_codec() {
        let a = Trace::from_events((0..20).map(|i| ev(1, i * 100, i * 512)).collect());
        let b = Trace::from_events((0..20).map(|i| ev(2, i * 130 + 7, i * 512)).collect());
        let m = merge_traces(&[a, b]);
        assert!(m.is_time_ordered());
        let mut buf = Vec::new();
        write_trace(&m, &mut buf).unwrap();
        let back = read_trace(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn empty_trace_roundtrips() {
        let t = Trace::new();
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        assert!(buf.is_empty());
        assert_eq!(read_trace(std::io::Cursor::new(buf)).unwrap(), t);
    }
}
