//! Bit-level flag definitions, verbatim from the appendix's `iotrace.h`,
//! plus typed views over them.
//!
//! The raw `recordType` field packs: a 2-bit data-kind code, the
//! logical/physical bit (0x80), the read/write bit (0x40), the sync/async
//! bit (0x08), and two optional analysis-only bits recording whether the
//! request hit the cache (0x20 = miss) and whether a hit was on a
//! read-ahead block (0x10). The special value 0xff marks a comment record.
//!
//! The raw `compression` field packs the block-scaling flags (0x01/0x02)
//! and the five field-omission flags.

use serde::{Deserialize, Serialize};

/// `TRACE_BLOCK_SIZE` from the appendix: offsets/lengths may be stored in
/// units of 512-byte blocks.
pub const TRACE_BLOCK_SIZE: u64 = 512;

// ---- recordType bits (appendix) -------------------------------------------

/// file (user) data
pub const TRACE_FILE_DATA: u16 = 0x0;
/// metadata, such as indirect blocks
pub const TRACE_META_DATA: u16 = 0x1;
/// readahead blocks requested by the file system
pub const TRACE_READAHEAD: u16 = 0x2;
/// blocks requested by VM paging
pub const TRACE_VIRTUAL_MEM: u16 = 0x3;
/// mask for the 2-bit data-kind code
pub const TRACE_KIND_MASK: u16 = 0x3;

/// logical record marker
pub const TRACE_LOGICAL_RECORD: u16 = 0x80;
/// physical record marker (absence of the logical bit)
pub const TRACE_PHYSICAL_RECORD: u16 = 0x00;

/// read request (absence of the write bit)
pub const TRACE_READ: u16 = 0x00;
/// write request
pub const TRACE_WRITE: u16 = 0x40;

/// synchronous request (absence of the async bit)
pub const TRACE_SYNC: u16 = 0x00;
/// asynchronous request
pub const TRACE_ASYNC: u16 = 0x08;

/// request satisfied in the cache (absence of the miss bit)
pub const TRACE_CACHE_HIT: u16 = 0x00;
/// request needed disk blocks
pub const TRACE_CACHE_MISS: u16 = 0x20;

/// cache hit was on a readahead block
pub const TRACE_RA_HIT: u16 = 0x10;
/// cache hit was not on a readahead block
pub const TRACE_RA_MISS: u16 = 0x00;

/// comment record: ignored by simulators, used for human-readable notes
/// such as fileId-to-name correspondences
pub const TRACE_COMMENT: u16 = 0xff;

/// All recordType bits a valid (non-comment) record may set.
pub const TRACE_RECORD_TYPE_VALID_MASK: u16 = TRACE_KIND_MASK
    | TRACE_LOGICAL_RECORD
    | TRACE_WRITE
    | TRACE_ASYNC
    | TRACE_CACHE_MISS
    | TRACE_RA_HIT;

// ---- compression bits (appendix) -------------------------------------------

/// offset field is stored divided by `TRACE_BLOCK_SIZE`
pub const TRACE_OFFSET_IN_BLOCKS: u16 = 0x01;
/// length field is stored divided by `TRACE_BLOCK_SIZE`
pub const TRACE_LENGTH_IN_BLOCKS: u16 = 0x02;
/// length omitted: take from previous record of this file
pub const TRACE_NO_LENGTH: u16 = 0x04;
/// processId omitted: take from previous record in trace
pub const TRACE_NO_PROCESSID: u16 = 0x08;
/// operationId omitted: take from previous record of this file
pub const TRACE_NO_OPERATIONID: u16 = 0x20;
/// offset omitted: sequential with previous access to this file
/// (previous record's starting offset + length)
pub const TRACE_NO_BLOCK: u16 = 0x40;
/// fileId omitted: take from previous record by this process
pub const TRACE_NO_FILEID: u16 = 0x80;

/// All compression bits defined by the format.
pub const TRACE_COMPRESSION_VALID_MASK: u16 = TRACE_OFFSET_IN_BLOCKS
    | TRACE_LENGTH_IN_BLOCKS
    | TRACE_NO_LENGTH
    | TRACE_NO_PROCESSID
    | TRACE_NO_OPERATIONID
    | TRACE_NO_BLOCK
    | TRACE_NO_FILEID;

// ---- typed views -----------------------------------------------------------

/// What kind of data a record's blocks carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataKind {
    /// Ordinary file (user) data.
    FileData,
    /// File-system metadata such as indirect blocks.
    MetaData,
    /// Blocks fetched by file-system read-ahead.
    ReadAhead,
    /// Blocks moved by virtual-memory paging.
    VirtualMem,
}

impl DataKind {
    /// The 2-bit code for this kind.
    pub fn code(self) -> u16 {
        match self {
            DataKind::FileData => TRACE_FILE_DATA,
            DataKind::MetaData => TRACE_META_DATA,
            DataKind::ReadAhead => TRACE_READAHEAD,
            DataKind::VirtualMem => TRACE_VIRTUAL_MEM,
        }
    }

    /// Decode the 2-bit code (masking off other bits).
    pub fn from_code(code: u16) -> DataKind {
        match code & TRACE_KIND_MASK {
            TRACE_FILE_DATA => DataKind::FileData,
            TRACE_META_DATA => DataKind::MetaData,
            TRACE_READAHEAD => DataKind::ReadAhead,
            _ => DataKind::VirtualMem,
        }
    }
}

/// Whether a record describes a logical (file-level) or physical
/// (disk-level) I/O. The meaning of `offset`/`length` depends on this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scope {
    /// File-level: offset is a byte offset into the file.
    Logical,
    /// Disk-level: offset is a physical block address.
    Physical,
}

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Data flows from storage to the application.
    Read,
    /// Data flows from the application to storage.
    Write,
}

impl Direction {
    /// True for [`Direction::Read`].
    pub fn is_read(self) -> bool {
        matches!(self, Direction::Read)
    }
}

/// Whether the request blocked the issuing process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Synchrony {
    /// The process waits for completion.
    Sync,
    /// The process continues and may reap completion later (les was the
    /// only traced program using these explicitly, §6.2).
    Async,
}

/// Optional analysis-only cache annotation (the appendix's
/// `TRACE_CACHE_HIT/MISS` + `TRACE_RA_HIT/MISS` bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CacheOutcome {
    /// Satisfied from the cache, not from a read-ahead block.
    Hit,
    /// Satisfied from a block the file system had read ahead.
    ReadAheadHit,
    /// Required disk blocks.
    Miss,
}

/// A decoded view of the `recordType` field of a non-comment record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecordType {
    /// Data kind (2-bit code).
    pub kind: DataKind,
    /// Logical vs physical.
    pub scope: Scope,
    /// Read vs write.
    pub dir: Direction,
    /// Sync vs async.
    pub sync: Synchrony,
    /// Optional cache annotation. `Hit`/`ReadAheadHit`/`Miss` map onto the
    /// appendix's optional analysis bits; traces gathered without cache
    /// observation leave them at the default (hit, non-RA), so decoding is
    /// lossy in the sense that "unannotated" and "plain hit" share an
    /// encoding — exactly as in the original format.
    pub cache: CacheOutcome,
}

impl RecordType {
    /// Pack into the raw 16-bit `recordType` value.
    pub fn to_bits(self) -> u16 {
        let mut bits = self.kind.code();
        if self.scope == Scope::Logical {
            bits |= TRACE_LOGICAL_RECORD;
        }
        if self.dir == Direction::Write {
            bits |= TRACE_WRITE;
        }
        if self.sync == Synchrony::Async {
            bits |= TRACE_ASYNC;
        }
        match self.cache {
            CacheOutcome::Hit => {}
            CacheOutcome::ReadAheadHit => bits |= TRACE_RA_HIT,
            CacheOutcome::Miss => bits |= TRACE_CACHE_MISS,
        }
        bits
    }

    /// Unpack from the raw 16-bit value. Returns `None` for the comment
    /// sentinel or when undefined bits are set.
    pub fn from_bits(bits: u16) -> Option<RecordType> {
        if bits == TRACE_COMMENT {
            return None;
        }
        if bits & !TRACE_RECORD_TYPE_VALID_MASK != 0 {
            return None;
        }
        let cache = if bits & TRACE_CACHE_MISS != 0 {
            CacheOutcome::Miss
        } else if bits & TRACE_RA_HIT != 0 {
            CacheOutcome::ReadAheadHit
        } else {
            CacheOutcome::Hit
        };
        Some(RecordType {
            kind: DataKind::from_code(bits),
            scope: if bits & TRACE_LOGICAL_RECORD != 0 {
                Scope::Logical
            } else {
                Scope::Physical
            },
            dir: if bits & TRACE_WRITE != 0 {
                Direction::Write
            } else {
                Direction::Read
            },
            sync: if bits & TRACE_ASYNC != 0 {
                Synchrony::Async
            } else {
                Synchrony::Sync
            },
            cache,
        })
    }
}

/// A decoded view of the `compression` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Compression {
    /// Offset stored in 512-byte blocks.
    pub offset_in_blocks: bool,
    /// Length stored in 512-byte blocks.
    pub length_in_blocks: bool,
    /// Length omitted (repeat this file's previous length).
    pub no_length: bool,
    /// Process id omitted (repeat the trace's previous record).
    pub no_processid: bool,
    /// Operation id omitted (repeat this file's previous record).
    pub no_operationid: bool,
    /// Offset omitted (sequential with this file's previous access).
    pub no_block: bool,
    /// File id omitted (repeat this process's previous record).
    pub no_fileid: bool,
}

impl Compression {
    /// Pack into the raw 16-bit `compression` value.
    pub fn to_bits(self) -> u16 {
        let mut bits = 0;
        if self.offset_in_blocks {
            bits |= TRACE_OFFSET_IN_BLOCKS;
        }
        if self.length_in_blocks {
            bits |= TRACE_LENGTH_IN_BLOCKS;
        }
        if self.no_length {
            bits |= TRACE_NO_LENGTH;
        }
        if self.no_processid {
            bits |= TRACE_NO_PROCESSID;
        }
        if self.no_operationid {
            bits |= TRACE_NO_OPERATIONID;
        }
        if self.no_block {
            bits |= TRACE_NO_BLOCK;
        }
        if self.no_fileid {
            bits |= TRACE_NO_FILEID;
        }
        bits
    }

    /// Unpack from the raw value; `None` when undefined bits are set or the
    /// combination is self-contradictory (a scaling flag on an omitted
    /// field — the appendix: "These flags should only be set if the
    /// relevant information is actually in the record").
    pub fn from_bits(bits: u16) -> Option<Compression> {
        if bits & !TRACE_COMPRESSION_VALID_MASK != 0 {
            return None;
        }
        let c = Compression {
            offset_in_blocks: bits & TRACE_OFFSET_IN_BLOCKS != 0,
            length_in_blocks: bits & TRACE_LENGTH_IN_BLOCKS != 0,
            no_length: bits & TRACE_NO_LENGTH != 0,
            no_processid: bits & TRACE_NO_PROCESSID != 0,
            no_operationid: bits & TRACE_NO_OPERATIONID != 0,
            no_block: bits & TRACE_NO_BLOCK != 0,
            no_fileid: bits & TRACE_NO_FILEID != 0,
        };
        if (c.no_block && c.offset_in_blocks) || (c.no_length && c.length_in_blocks) {
            return None;
        }
        Some(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_kind_codes_roundtrip() {
        for kind in [
            DataKind::FileData,
            DataKind::MetaData,
            DataKind::ReadAhead,
            DataKind::VirtualMem,
        ] {
            assert_eq!(DataKind::from_code(kind.code()), kind);
        }
    }

    #[test]
    fn record_type_bits_match_appendix() {
        let rt = RecordType {
            kind: DataKind::FileData,
            scope: Scope::Logical,
            dir: Direction::Write,
            sync: Synchrony::Async,
            cache: CacheOutcome::Hit,
        };
        assert_eq!(rt.to_bits(), 0x80 | 0x40 | 0x08);
    }

    #[test]
    fn record_type_roundtrip_all_combinations() {
        for kind in [
            DataKind::FileData,
            DataKind::MetaData,
            DataKind::ReadAhead,
            DataKind::VirtualMem,
        ] {
            for scope in [Scope::Logical, Scope::Physical] {
                for dir in [Direction::Read, Direction::Write] {
                    for sync in [Synchrony::Sync, Synchrony::Async] {
                        for cache in
                            [CacheOutcome::Hit, CacheOutcome::ReadAheadHit, CacheOutcome::Miss]
                        {
                            let rt = RecordType { kind, scope, dir, sync, cache };
                            assert_eq!(RecordType::from_bits(rt.to_bits()), Some(rt));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn comment_sentinel_is_not_a_record_type() {
        assert_eq!(RecordType::from_bits(TRACE_COMMENT), None);
    }

    #[test]
    fn invalid_record_type_bits_rejected() {
        // 0x04 is undefined in recordType.
        assert_eq!(RecordType::from_bits(0x04), None);
    }

    #[test]
    fn compression_bits_match_appendix() {
        let c = Compression {
            offset_in_blocks: true,
            length_in_blocks: true,
            no_length: false,
            no_processid: true,
            no_operationid: true,
            no_block: false,
            no_fileid: true,
        };
        assert_eq!(c.to_bits(), 0x01 | 0x02 | 0x08 | 0x20 | 0x80);
    }

    #[test]
    fn compression_roundtrip_all_valid_combinations() {
        for bits in 0u16..=0xFF {
            if let Some(c) = Compression::from_bits(bits) {
                assert_eq!(c.to_bits(), bits);
            }
        }
    }

    #[test]
    fn scaling_an_omitted_field_is_invalid() {
        // NO_BLOCK together with OFFSET_IN_BLOCKS.
        assert_eq!(Compression::from_bits(0x40 | 0x01), None);
        // NO_LENGTH together with LENGTH_IN_BLOCKS.
        assert_eq!(Compression::from_bits(0x04 | 0x02), None);
    }

    #[test]
    fn undefined_compression_bits_rejected() {
        assert_eq!(Compression::from_bits(0x10), None);
        assert_eq!(Compression::from_bits(0x100), None);
    }
}
