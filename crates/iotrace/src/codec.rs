//! The ASCII codec with the appendix's full compression scheme.
//!
//! ## Concrete line format
//!
//! The paper specifies the *fields*, their order, the delta-time rules and
//! the compression flags, but (deliberately) not one canonical byte layout
//! — "traces should be gathered in whatever way is most convenient and
//! converted to our format later". Our realization is the simplest one
//! consistent with the text: one record per line, whitespace-separated
//! variable-length decimal integers, fields in `struct traceRecord` order
//! with omitted fields simply absent:
//!
//! ```text
//! recordType compression [offset] [length] startΔ completion [opId] [fileId] [procId] procTimeΔ
//! ```
//!
//! Comment records are the line `255` followed by the comment text.
//!
//! ## State rules (appendix, "compression flags")
//!
//! | omitted field | reconstructed from |
//! |---|---|
//! | `processId`   | previous record in the trace |
//! | `fileId`      | previous record by this process |
//! | `operationId` | previous record of this file |
//! | `offset`      | sequential: previous record of this file (offset + length) |
//! | `length`      | previous record of this file |
//!
//! Time fields are always present and always deltas: `startTime` is
//! relative to the previous record's start, `completionTime` to this
//! record's own start, and `processTime` to the same process's previous
//! I/O. Comment records carry no time and do not disturb any state.

use crate::error::TraceError;
use crate::flags::{Compression, RecordType, Scope, TRACE_BLOCK_SIZE, TRACE_COMMENT};
use crate::record::{IoEvent, TraceItem};
use sim_core::{SimDuration, SimTime};
use std::collections::HashMap;

/// Per-(process, file) decode/encode state.
#[derive(Debug, Clone, Copy)]
struct FileState {
    /// Where the previous access to this file ended (offset + length).
    next_offset: u64,
    /// Length of the previous access.
    length: u64,
    /// Operation id of the previous access.
    op_id: u32,
}

/// Shared compressor/decompressor state.
///
/// The appendix suggests readers track "32 open files for each process"
/// (the usual Unix limit); we keep unbounded per-(process, file) state,
/// which is strictly more permissive and still decodes every conforming
/// trace.
#[derive(Debug, Default)]
struct CodecState {
    last_start: Option<SimTime>,
    last_process: Option<u32>,
    last_file_of_process: HashMap<u32, u32>,
    files: HashMap<(u32, u32), FileState>,
}

impl CodecState {
    fn note(&mut self, ev: &IoEvent) {
        self.last_start = Some(ev.start);
        self.last_process = Some(ev.process_id);
        self.last_file_of_process.insert(ev.process_id, ev.file_id);
        self.files.insert(
            (ev.process_id, ev.file_id),
            FileState {
                next_offset: ev.end_offset(),
                length: ev.length,
                op_id: ev.op_id,
            },
        );
    }
}

/// Streaming encoder: turns [`TraceItem`]s into compressed ASCII lines.
#[derive(Debug, Default)]
pub struct TraceEncoder {
    state: CodecState,
}

impl TraceEncoder {
    /// A fresh encoder with empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Encode one item as a line (without trailing newline).
    ///
    /// Events must be presented in nondecreasing `start` order, as the
    /// delta encoding requires.
    pub fn encode(&mut self, item: &TraceItem) -> Result<String, TraceError> {
        match item {
            TraceItem::Comment(text) => Ok(format!("{TRACE_COMMENT} {text}")),
            TraceItem::Io(ev) => self.encode_io(ev),
        }
    }

    fn encode_io(&mut self, ev: &IoEvent) -> Result<String, TraceError> {
        if ev.scope == Scope::Physical
            && (!ev.offset.is_multiple_of(TRACE_BLOCK_SIZE) || !ev.length.is_multiple_of(TRACE_BLOCK_SIZE))
        {
            // Physical records address whole device blocks by definition.
            return Err(TraceError::FieldOverflow {
                field: "physical offset/length (not block aligned)",
                value: ev.offset | ev.length,
            });
        }
        let start_delta = match self.state.last_start {
            None => ev.start.ticks(),
            Some(prev) => {
                ev.start
                    .checked_since(prev)
                    .ok_or(TraceError::FieldOverflow {
                        field: "startTime (went backwards)",
                        value: ev.start.ticks(),
                    })?
                    .ticks()
            }
        };

        let mut comp = Compression::default();
        if self.state.last_process == Some(ev.process_id) {
            comp.no_processid = true;
        }
        if self.state.last_file_of_process.get(&ev.process_id) == Some(&ev.file_id) {
            comp.no_fileid = true;
        }
        if let Some(fs) = self.state.files.get(&(ev.process_id, ev.file_id)) {
            if fs.next_offset == ev.offset {
                comp.no_block = true;
            }
            if fs.length == ev.length {
                comp.no_length = true;
            }
            if fs.op_id == ev.op_id {
                comp.no_operationid = true;
            }
        }
        let mut offset_field = None;
        if !comp.no_block {
            let mut v = ev.offset;
            if v.is_multiple_of(TRACE_BLOCK_SIZE) {
                comp.offset_in_blocks = true;
                v /= TRACE_BLOCK_SIZE;
            }
            if v > u32::MAX as u64 {
                return Err(TraceError::FieldOverflow { field: "offset", value: ev.offset });
            }
            offset_field = Some(v);
        }
        let mut length_field = None;
        if !comp.no_length {
            let mut v = ev.length;
            if v.is_multiple_of(TRACE_BLOCK_SIZE) && v > 0 {
                comp.length_in_blocks = true;
                v /= TRACE_BLOCK_SIZE;
            }
            if v > u32::MAX as u64 {
                return Err(TraceError::FieldOverflow { field: "length", value: ev.length });
            }
            length_field = Some(v);
        }

        let mut line = String::with_capacity(48);
        use std::fmt::Write as _;
        let _ = write!(line, "{} {}", ev.record_type().to_bits(), comp.to_bits());
        if let Some(v) = offset_field {
            let _ = write!(line, " {v}");
        }
        if let Some(v) = length_field {
            let _ = write!(line, " {v}");
        }
        let _ = write!(line, " {} {}", start_delta, ev.completion.ticks());
        if !comp.no_operationid {
            let _ = write!(line, " {}", ev.op_id);
        }
        if !comp.no_fileid {
            let _ = write!(line, " {}", ev.file_id);
        }
        if !comp.no_processid {
            let _ = write!(line, " {}", ev.process_id);
        }
        let _ = write!(line, " {}", ev.process_time.ticks());

        self.state.note(ev);
        Ok(line)
    }
}

/// Streaming decoder: parses compressed ASCII lines back into
/// [`TraceItem`]s, reconstructing omitted fields and absolute times.
#[derive(Debug, Default)]
pub struct TraceDecoder {
    state: CodecState,
    line_no: usize,
}

impl TraceDecoder {
    /// A fresh decoder with empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Decode one line. Blank lines yield `Ok(None)`.
    pub fn decode(&mut self, line: &str) -> Result<Option<TraceItem>, TraceError> {
        self.line_no += 1;
        let line_no = self.line_no;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            return Ok(None);
        }
        // Comment records: "255 <text>"; the text may itself contain spaces.
        if let Some(rest) = trimmed
            .strip_prefix("255")
            .filter(|r| r.is_empty() || r.starts_with(char::is_whitespace))
        {
            return Ok(Some(TraceItem::Comment(rest.trim_start().to_string())));
        }

        let mut fields = trimmed.split_ascii_whitespace();
        let mut next_u64 = |name: &'static str| -> Result<u64, TraceError> {
            fields
                .next()
                .ok_or(TraceError::FieldCount {
                    line: line_no,
                    expected: 0, // refined below where we know the count
                    found: 0,
                })?
                .parse::<u64>()
                .map_err(|_| TraceError::BadInteger { line: line_no, field: name })
        };

        let rt_bits = next_u64("recordType")? as u16;
        let rt = RecordType::from_bits(rt_bits)
            .ok_or(TraceError::BadRecordType { line: line_no, bits: rt_bits })?;
        let comp_bits = next_u64("compression")? as u16;
        let comp = Compression::from_bits(comp_bits)
            .ok_or(TraceError::BadCompression { line: line_no, bits: comp_bits })?;

        let raw_offset = if comp.no_block { None } else { Some(next_u64("offset")?) };
        let raw_length = if comp.no_length { None } else { Some(next_u64("length")?) };
        let start_delta = next_u64("startTime")?;
        let completion = next_u64("completionTime")?;
        let op_id = if comp.no_operationid {
            None
        } else {
            Some(next_u64("operationId")? as u32)
        };
        let file_id = if comp.no_fileid { None } else { Some(next_u64("fileId")? as u32) };
        let process_id =
            if comp.no_processid { None } else { Some(next_u64("processId")? as u32) };
        let process_time = next_u64("processTime")?;
        // No trailing junk allowed.
        {
            let extra = fields.count();
            if extra != 0 {
                return Err(TraceError::FieldCount {
                    line: line_no,
                    expected: 0,
                    found: extra,
                });
            }
        }

        // Resolve inferred fields in dependency order: process, then file,
        // then the per-file trio.
        let process_id = match process_id {
            Some(p) => p,
            None => self.state.last_process.ok_or(TraceError::MissingContext {
                line: line_no,
                field: "processId",
            })?,
        };
        let file_id = match file_id {
            Some(fid) => fid,
            None => *self
                .state
                .last_file_of_process
                .get(&process_id)
                .ok_or(TraceError::MissingContext { line: line_no, field: "fileId" })?,
        };
        let file_state = self.state.files.get(&(process_id, file_id)).copied();
        let offset = match raw_offset {
            Some(v) => {
                if comp.offset_in_blocks {
                    v * TRACE_BLOCK_SIZE
                } else {
                    v
                }
            }
            None => {
                file_state
                    .ok_or(TraceError::MissingContext { line: line_no, field: "offset" })?
                    .next_offset
            }
        };
        let length = match raw_length {
            Some(v) => {
                if comp.length_in_blocks {
                    v * TRACE_BLOCK_SIZE
                } else {
                    v
                }
            }
            None => {
                file_state
                    .ok_or(TraceError::MissingContext { line: line_no, field: "length" })?
                    .length
            }
        };
        let op_id = match op_id {
            Some(v) => v,
            None => {
                file_state
                    .ok_or(TraceError::MissingContext { line: line_no, field: "operationId" })?
                    .op_id
            }
        };
        let start = match self.state.last_start {
            None => SimTime::from_ticks(start_delta),
            Some(prev) => prev + SimDuration::from_ticks(start_delta),
        };

        let ev = IoEvent {
            kind: rt.kind,
            scope: rt.scope,
            dir: rt.dir,
            sync: rt.sync,
            cache: rt.cache,
            offset,
            length,
            start,
            completion: SimDuration::from_ticks(completion),
            op_id,
            file_id,
            process_id,
            process_time: SimDuration::from_ticks(process_time),
        };
        self.state.note(&ev);
        Ok(Some(TraceItem::Io(ev)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flags::{Direction, Synchrony};

    fn ev(pid: u32, fid: u32, offset: u64, length: u64, start_ticks: u64) -> IoEvent {
        IoEvent::logical(
            Direction::Read,
            pid,
            fid,
            offset,
            length,
            SimTime::from_ticks(start_ticks),
            SimDuration::from_ticks(7),
        )
    }

    fn roundtrip(items: &[TraceItem]) -> Vec<TraceItem> {
        let mut enc = TraceEncoder::new();
        let mut dec = TraceDecoder::new();
        items
            .iter()
            .map(|it| {
                let line = enc.encode(it).expect("encode");
                dec.decode(&line).expect("decode").expect("non-blank")
            })
            .collect()
    }

    #[test]
    fn single_record_roundtrip() {
        let items = vec![TraceItem::Io(ev(3, 9, 1024, 512, 100))];
        assert_eq!(roundtrip(&items), items);
    }

    #[test]
    fn sequential_records_compress_and_roundtrip() {
        let items = vec![
            TraceItem::Io(ev(1, 2, 0, 4096, 0)),
            TraceItem::Io(ev(1, 2, 4096, 4096, 500)),
            TraceItem::Io(ev(1, 2, 8192, 4096, 1000)),
        ];
        let mut enc = TraceEncoder::new();
        let lines: Vec<String> = items.iter().map(|it| enc.encode(it).unwrap()).collect();
        // Second and third records should omit offset, length, opId, fileId
        // and processId: recordType, compression, startΔ, completion,
        // procTimeΔ = 5 fields only.
        assert_eq!(lines[1].split_ascii_whitespace().count(), 5, "line: {}", lines[1]);
        assert_eq!(lines[2].split_ascii_whitespace().count(), 5);
        assert_eq!(roundtrip(&items), items);
    }

    #[test]
    fn start_times_delta_encode() {
        let items = vec![
            TraceItem::Io(ev(1, 1, 0, 512, 1_000_000)),
            TraceItem::Io(ev(1, 1, 512, 512, 1_000_050)),
        ];
        let mut enc = TraceEncoder::new();
        let l0 = enc.encode(&items[0]).unwrap();
        let l1 = enc.encode(&items[1]).unwrap();
        // First record carries the absolute start as its delta-from-zero.
        assert!(l0.split_ascii_whitespace().any(|f| f == "1000000"));
        // Second carries only the 50-tick delta.
        assert!(l1.split_ascii_whitespace().any(|f| f == "50"));
        assert_eq!(roundtrip(&items), items);
    }

    #[test]
    fn block_scaling_shrinks_offsets() {
        let mut enc = TraceEncoder::new();
        let line = enc.encode(&TraceItem::Io(ev(1, 1, 512 * 1000, 512 * 8, 0))).unwrap();
        let fields: Vec<&str> = line.split_ascii_whitespace().collect();
        // offset is field 2, length field 3 (both present on a first record)
        assert_eq!(fields[2], "1000");
        assert_eq!(fields[3], "8");
        let comp: u16 = fields[1].parse().unwrap();
        assert_eq!(comp & 0x03, 0x03, "both scaling flags set");
    }

    #[test]
    fn unaligned_sizes_are_not_scaled() {
        let mut enc = TraceEncoder::new();
        let line = enc.encode(&TraceItem::Io(ev(1, 1, 513, 100, 0))).unwrap();
        let fields: Vec<&str> = line.split_ascii_whitespace().collect();
        assert_eq!(fields[2], "513");
        assert_eq!(fields[3], "100");
    }

    #[test]
    fn interleaved_files_keep_separate_state() {
        // venus-style interleaving across files: the appendix calls this
        // case out explicitly as still compressing well.
        let items = vec![
            TraceItem::Io(ev(1, 1, 0, 4096, 0)),
            TraceItem::Io(ev(1, 2, 0, 8192, 100)),
            TraceItem::Io(ev(1, 1, 4096, 4096, 200)),
            TraceItem::Io(ev(1, 2, 8192, 8192, 300)),
        ];
        assert_eq!(roundtrip(&items), items);
        // Records 3 and 4 must carry a fileId (it changed) but can omit
        // offset and length (sequential-with and same-as previous I/O to
        // that file).
        let mut enc = TraceEncoder::new();
        let lines: Vec<String> = items.iter().map(|it| enc.encode(it).unwrap()).collect();
        for l in &lines[2..] {
            // recordType, compression, startΔ, completion, fileId, procΔ
            assert_eq!(l.split_ascii_whitespace().count(), 6, "line: {l}");
        }
    }

    #[test]
    fn multiple_processes_roundtrip() {
        let items = vec![
            TraceItem::Io(ev(1, 1, 0, 512, 0)),
            TraceItem::Io(ev(2, 1, 0, 1024, 10)),
            TraceItem::Io(ev(1, 1, 512, 512, 20)),
            TraceItem::Io(ev(2, 1, 1024, 1024, 30)),
        ];
        assert_eq!(roundtrip(&items), items);
    }

    #[test]
    fn comments_roundtrip_and_do_not_disturb_state() {
        let items = vec![
            TraceItem::Io(ev(1, 1, 0, 512, 0)),
            TraceItem::Comment("fileId 1 = /scratch/venus.dat".into()),
            TraceItem::Io(ev(1, 1, 512, 512, 100)),
        ];
        let decoded = roundtrip(&items);
        assert_eq!(decoded, items);
        // And the third record still compressed against the first.
        let mut enc = TraceEncoder::new();
        let lines: Vec<String> = items.iter().map(|it| enc.encode(it).unwrap()).collect();
        assert_eq!(lines[2].split_ascii_whitespace().count(), 5);
    }

    #[test]
    fn first_record_must_be_self_contained() {
        let mut dec = TraceDecoder::new();
        // compression 0x08 = NO_PROCESSID on the very first record.
        let err = dec.decode("128 8 0 512 0 0 0 1 0").unwrap_err();
        assert!(matches!(err, TraceError::MissingContext { field: "processId", .. }));
    }

    #[test]
    fn decoder_rejects_garbage() {
        let mut dec = TraceDecoder::new();
        assert!(matches!(
            dec.decode("not numbers at all"),
            Err(TraceError::BadInteger { .. })
        ));
        let mut dec = TraceDecoder::new();
        assert!(matches!(dec.decode("4 0 0 512 0 0 0 1 1 0"), Err(TraceError::BadRecordType { .. })));
        let mut dec = TraceDecoder::new();
        assert!(matches!(
            dec.decode("128 16 0 512 0 0 0 1 1 0"),
            Err(TraceError::BadCompression { .. })
        ));
    }

    #[test]
    fn decoder_rejects_trailing_fields() {
        let mut dec = TraceDecoder::new();
        let mut enc = TraceEncoder::new();
        let line = enc.encode(&TraceItem::Io(ev(1, 1, 0, 512, 0))).unwrap();
        let bad = format!("{line} 99");
        assert!(matches!(dec.decode(&bad), Err(TraceError::FieldCount { .. })));
    }

    #[test]
    fn blank_lines_are_skipped() {
        let mut dec = TraceDecoder::new();
        assert!(dec.decode("").unwrap().is_none());
        assert!(dec.decode("   \t ").unwrap().is_none());
    }

    #[test]
    fn encoder_rejects_time_going_backwards() {
        let mut enc = TraceEncoder::new();
        enc.encode(&TraceItem::Io(ev(1, 1, 0, 512, 100))).unwrap();
        let err = enc.encode(&TraceItem::Io(ev(1, 1, 512, 512, 50))).unwrap_err();
        assert!(matches!(err, TraceError::FieldOverflow { .. }));
    }

    #[test]
    fn encoder_rejects_unaligned_physical_records() {
        let mut enc = TraceEncoder::new();
        let mut e = ev(1, 1, 100, 512, 0);
        e.scope = Scope::Physical;
        assert!(enc.encode(&TraceItem::Io(e)).is_err());
    }

    #[test]
    fn async_and_write_flags_survive() {
        let mut e = ev(1, 1, 0, 512, 0);
        e.dir = Direction::Write;
        e.sync = Synchrony::Async;
        let items = vec![TraceItem::Io(e)];
        assert_eq!(roundtrip(&items), items);
    }

    #[test]
    fn zero_length_io_roundtrips_without_scaling() {
        // length 0 is odd but representable; it must not set the scaling
        // flag (0/512 = 0 would be ambiguous on decode only via flags).
        let items = vec![TraceItem::Io(ev(1, 1, 0, 0, 0))];
        assert_eq!(roundtrip(&items), items);
    }

    #[test]
    fn same_length_different_offset_partial_compression() {
        let items = vec![
            TraceItem::Io(ev(1, 1, 0, 4096, 0)),
            // Jump backwards in the file (re-read pattern), same size.
            TraceItem::Io(ev(1, 1, 0, 4096, 100)),
        ];
        assert_eq!(roundtrip(&items), items);
        let mut enc = TraceEncoder::new();
        enc.encode(&items[0]).unwrap();
        let l1 = enc.encode(&items[1]).unwrap();
        // offset present, length omitted: rt, comp, offset, startΔ,
        // completion, procΔ = 6 fields.
        assert_eq!(l1.split_ascii_whitespace().count(), 6, "line: {l1}");
    }
}
