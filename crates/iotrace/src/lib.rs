//! The trace format from the appendix of Miller's *Input/Output Behavior of
//! Supercomputing Applications* (UCB/CSD 91/616), implemented in full.
//!
//! The format's salient properties (§4.2 and the appendix):
//!
//! * **ASCII, machine independent** — variable-length printed integers beat
//!   fixed-width binary for these traces because most deltas are 1–2 digits.
//! * **Delta timestamps in 10 µs ticks** — `startTime` is relative to the
//!   previous record *in the trace*, `completionTime` is relative to the
//!   record's own start, and `processTime` is CPU time elapsed since the same
//!   process's previous I/O.
//! * **Field inference** — compression flags mark fields omitted from a
//!   record because they can be recomputed: the process id repeats the
//!   previous record's, the file id repeats the same process's previous
//!   record, the offset continues sequentially from the same file's previous
//!   access, and the length/operation id repeat the same file's previous
//!   record.
//! * **Block scaling** — offsets and lengths that are multiples of the
//!   512-byte `TRACE_BLOCK_SIZE` may be stored divided by it.
//! * **Logical and physical records** share one format; **comment records**
//!   (`recordType 0xff`) carry free text such as file-name correspondences.
//!
//! The crate exposes three layers:
//!
//! * [`flags`] — the raw `recordType` / `compression` bit definitions,
//!   verbatim from the appendix's `iotrace.h`;
//! * [`record`] — the decoded, absolute-time event model ([`IoEvent`]) the
//!   rest of the reproduction consumes;
//! * [`codec`] + [`stream`] — the ASCII encoder/decoder with full
//!   compression, plus in-memory [`Trace`] containers and multi-trace
//!   merging.
//!
//! ```
//! use iotrace::{read_trace, write_trace, Direction, IoEvent, Trace};
//! use sim_core::{SimDuration, SimTime};
//!
//! let mut trace = Trace::new();
//! trace.push_comment("fileId 1 = /scratch/data");
//! for i in 0..3u64 {
//!     trace.push(IoEvent::logical(
//!         Direction::Read, 1, 1, i * 4096, 4096,
//!         SimTime::from_ticks(i * 100), SimDuration::from_ticks(100),
//!     ));
//! }
//! let mut bytes = Vec::new();
//! write_trace(&trace, &mut bytes).unwrap();
//! // Sequential same-size records compress to 5 fields each.
//! let decoded = read_trace(std::io::Cursor::new(bytes)).unwrap();
//! assert_eq!(decoded, trace);
//! ```

pub mod codec;
pub mod compression;
pub mod error;
pub mod flags;
pub mod record;
pub mod stream;
pub mod stream_v2;

pub use codec::{TraceDecoder, TraceEncoder};
pub use compression::{measure as measure_compression, CompressionReport};
pub use error::TraceError;
pub use flags::{CacheOutcome, Compression, DataKind, Direction, RecordType, Scope, Synchrony};
pub use record::{IoEvent, TraceItem};
pub use stream::{merge_traces, read_trace, write_trace, Trace};
pub use stream_v2::{
    encode_frames, read_frames, write_frame_file, write_frame_file_with, BlockEntry, FrameCursor,
    FrameFile, FrameIndex, FrameStream, FrameWriter,
};
