//! Binary frame format for bounded-memory trace replay (stream v2).
//!
//! The ASCII codec ([`crate::codec`]) is the paper's archival format:
//! human-readable, one record per line, field inference by compression
//! flags. It decodes at text-parsing speed and only sequentially. This
//! module is the *storage engine* counterpart the streaming experiment
//! path replays from: a compact binary container holding the same
//! [`IoEvent`] model, built for cursor replay with O(block) memory.
//!
//! ## Layout
//!
//! ```text
//! +--------+----------+----------+-- ... --+----------+--------------+
//! | header | block 0  | block 1  |         | block N-1| index footer |
//! +--------+----------+----------+-- ... --+----------+--------------+
//!
//! header (16 B):  "MIO2" | version u32 | block_events u32 | reserved u32
//! block:          "BLK\0" | min_time u64 | count u32 | payload_len u32
//!                 | checksum u64 (FNV-1a over payload) | payload bytes
//! index footer:   "IDX\0" | block_count u32
//!                 | per block { offset u64, min_time u64,
//!                               count u32, max_file_id u32 }
//!                 | total_events u64 | checksum u64
//!                 | footer_len u32 | "MIOX"
//! ```
//!
//! All integers are little-endian. The trailing 8 bytes (`footer_len` +
//! magic) let a reader locate the footer without scanning; the `"BLK\0"` /
//! `"IDX\0"` tags let a pure-[`Read`] consumer walk the file forward with
//! no index at all ([`FrameStream`]).
//!
//! ## Event encoding
//!
//! Within a block every field is a varint (LEB128), delta-encoded against
//! the previous event *in the same block* — the per-field compression is
//! in the spirit of the ASCII codec's inference flags (offset continues
//! sequentially, ids repeat), but stateless across blocks: the delta
//! context resets at each block boundary (`start` deltas begin from the
//! block's `min_time`, everything else from zero), so any block decodes
//! independently of all others. Per event:
//!
//! 1. packed `recordType` bits (the five flag enums)
//! 2. zigzag Δ`start` vs previous start
//! 3. `completion` ticks
//! 4. zigzag Δ`offset` vs previous event's end offset (sequential → 0)
//! 5. zigzag Δ`length` (repeated sizes → 0)
//! 6. zigzag Δ`op_id`
//! 7. zigzag Δ`file_id`
//! 8. zigzag Δ`process_id`
//! 9. `process_time` ticks
//!
//! A typical sequential-read event costs ~10 bytes against 96 B in
//! memory — the varint delta coding *is* the block compression, with the
//! compressed size recorded per block in its header.
//!
//! ## Replay modes
//!
//! * [`FrameFile::open`] — `pread`-style random access straight from the
//!   file descriptor; resident memory is one block per cursor.
//! * [`FrameFile::open_mmap`] — maps the file (raw `mmap` syscall on
//!   Linux/x86-64; other targets fall back to reading the file into an
//!   owned buffer) and decodes blocks out of the mapping.
//! * [`FrameStream`] — forward-only replay over any [`Read`], for pipes
//!   and sockets; never needs the footer.
//!
//! [`FrameCursor`] is the zero-allocation iterator: one decoded block
//! lives in a reusable scratch `Vec<IoEvent>` (plus a byte scratch for
//! the compressed payload); advancing within a block allocates nothing,
//! and crossing a boundary only recycles the same two buffers.
//!
//! Robustness contract (pinned by `tests/proptest_frame_robustness.rs`):
//! decoding untrusted bytes returns [`TraceError`], never panics, and a
//! flipped payload byte is caught by the block checksum rather than
//! misdecoding silently.

use crate::error::TraceError;
use crate::flags::RecordType;
use crate::record::IoEvent;
use sim_core::{SimDuration, SimTime};
use std::fs::File;
use std::io::{Read, Write};
use std::path::Path;

/// File magic ("MIO2") opening every frame file.
pub const FRAME_MAGIC: [u8; 4] = *b"MIO2";
/// Footer magic ("MIOX") closing every frame file.
pub const FOOTER_MAGIC: [u8; 4] = *b"MIOX";
/// Per-block tag.
const BLOCK_TAG: [u8; 4] = *b"BLK\0";
/// Index-footer tag.
const INDEX_TAG: [u8; 4] = *b"IDX\0";
/// Format version written by this build.
pub const FRAME_VERSION: u32 = 1;
/// Default events per block: big enough that varint decode amortizes the
/// per-block header + checksum, small enough that one block (~384 KB of
/// decoded events) is a sane replay working set.
pub const DEFAULT_BLOCK_EVENTS: usize = 4096;

/// Hard ceilings a decoder enforces before trusting length fields from
/// the wire, so corrupt counts cannot drive huge allocations.
const MAX_BLOCK_EVENTS: u32 = 1 << 22;
const MAX_PAYLOAD_LEN: u32 = 1 << 30;

const HEADER_LEN: u64 = 16;
const BLOCK_HEADER_LEN: u64 = 4 + 8 + 4 + 4 + 8;
const INDEX_ENTRY_LEN: u64 = 8 + 8 + 4 + 4;

// ---- checksum ---------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

#[inline]
fn fnv1a_update(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// 64-bit FNV-1a over a byte slice; dependency-free and fast enough to be
/// invisible next to varint decode.
fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_update(FNV_OFFSET, bytes)
}

/// A block's checksum covers its header fields (delta origin, count,
/// payload length) as well as the payload, so a flipped header byte can
/// never silently shift every decoded timestamp.
fn block_checksum(min_time: u64, count: u32, payload: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    h = fnv1a_update(h, &min_time.to_le_bytes());
    h = fnv1a_update(h, &count.to_le_bytes());
    h = fnv1a_update(h, &(payload.len() as u32).to_le_bytes());
    fnv1a_update(h, payload)
}

// ---- varint primitives ------------------------------------------------------

#[inline]
fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Cursor over a payload slice; every read is bounds-checked.
struct ByteCursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteCursor<'a> {
    fn new(bytes: &'a [u8]) -> ByteCursor<'a> {
        ByteCursor { bytes, pos: 0 }
    }

    #[inline]
    fn varint(&mut self) -> Result<u64, TraceError> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(TraceError::Truncated);
            };
            self.pos += 1;
            if shift == 63 && b > 1 {
                return Err(TraceError::BadFrame {
                    offset: self.pos as u64,
                    what: "varint overflows 64 bits",
                });
            }
            v |= ((b & 0x7f) as u64) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(TraceError::BadFrame {
                    offset: self.pos as u64,
                    what: "varint longer than 10 bytes",
                });
            }
        }
    }

    fn exhausted(&self) -> bool {
        self.pos >= self.bytes.len()
    }
}

// ---- per-block event codec --------------------------------------------------

/// Delta context, reset at every block boundary so blocks decode
/// independently.
struct DeltaState {
    start: u64,
    end_offset: u64,
    length: u64,
    op_id: u32,
    file_id: u32,
    process_id: u32,
}

impl DeltaState {
    fn at_block(min_time: SimTime) -> DeltaState {
        DeltaState {
            start: min_time.ticks(),
            end_offset: 0,
            length: 0,
            op_id: 0,
            file_id: 0,
            process_id: 0,
        }
    }
}

#[inline]
fn delta_u64(new: u64, prev: u64) -> u64 {
    zigzag(new.wrapping_sub(prev) as i64)
}

#[inline]
fn apply_u64(prev: u64, encoded: u64) -> u64 {
    prev.wrapping_add(unzigzag(encoded) as u64)
}

fn encode_event(out: &mut Vec<u8>, e: &IoEvent, st: &mut DeltaState) {
    put_varint(out, e.record_type().to_bits() as u64);
    put_varint(out, delta_u64(e.start.ticks(), st.start));
    put_varint(out, e.completion.ticks());
    put_varint(out, delta_u64(e.offset, st.end_offset));
    put_varint(out, delta_u64(e.length, st.length));
    put_varint(out, delta_u64(e.op_id as u64, st.op_id as u64));
    put_varint(out, delta_u64(e.file_id as u64, st.file_id as u64));
    put_varint(out, delta_u64(e.process_id as u64, st.process_id as u64));
    put_varint(out, e.process_time.ticks());
    st.start = e.start.ticks();
    st.end_offset = e.offset.wrapping_add(e.length);
    st.length = e.length;
    st.op_id = e.op_id;
    st.file_id = e.file_id;
    st.process_id = e.process_id;
}

fn decode_event(cur: &mut ByteCursor<'_>, st: &mut DeltaState) -> Result<IoEvent, TraceError> {
    let bits = cur.varint()?;
    let Ok(bits16) = u16::try_from(bits) else {
        return Err(TraceError::BadFrame {
            offset: cur.pos as u64,
            what: "recordType exceeds 16 bits",
        });
    };
    let Some(rt) = RecordType::from_bits(bits16) else {
        return Err(TraceError::BadRecordType { line: 0, bits: bits16 });
    };
    let start = apply_u64(st.start, cur.varint()?);
    let completion = cur.varint()?;
    let offset = apply_u64(st.end_offset, cur.varint()?);
    let length = apply_u64(st.length, cur.varint()?);
    let op_id = apply_u64(st.op_id as u64, cur.varint()?) as u32;
    let file_id = apply_u64(st.file_id as u64, cur.varint()?) as u32;
    let process_id = apply_u64(st.process_id as u64, cur.varint()?) as u32;
    let process_time = cur.varint()?;
    st.start = start;
    st.end_offset = offset.wrapping_add(length);
    st.length = length;
    st.op_id = op_id;
    st.file_id = file_id;
    st.process_id = process_id;
    Ok(IoEvent {
        kind: rt.kind,
        scope: rt.scope,
        dir: rt.dir,
        sync: rt.sync,
        cache: rt.cache,
        offset,
        length,
        start: SimTime::from_ticks(start),
        completion: SimDuration::from_ticks(completion),
        op_id,
        file_id,
        process_id,
        process_time: SimDuration::from_ticks(process_time),
    })
}

// ---- index ------------------------------------------------------------------

/// One block's entry in the index footer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockEntry {
    /// Byte offset of the block's `"BLK\0"` tag from the start of file.
    pub offset: u64,
    /// Smallest `start` time of any event in the block (also the delta
    /// origin its payload decodes against).
    pub min_time: SimTime,
    /// Events in the block.
    pub count: u32,
    /// Largest raw `file_id` in the block — lets a consumer validate the
    /// simulator's 16-bit namespacing without decoding anything.
    pub max_file_id: u32,
}

/// The decoded index footer of a frame file.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FrameIndex {
    /// Per-block entries, in file order.
    pub blocks: Vec<BlockEntry>,
    /// Total events across all blocks.
    pub total_events: u64,
    /// The writer's events-per-block setting (the last block may be
    /// shorter).
    pub block_events: u32,
}

impl FrameIndex {
    /// Largest raw `file_id` anywhere in the file (0 when empty).
    pub fn max_file_id(&self) -> u32 {
        self.blocks.iter().map(|b| b.max_file_id).max().unwrap_or(0)
    }

    /// Approximate decoded working-set bytes of one block.
    pub fn block_bytes(&self) -> usize {
        self.block_events as usize * std::mem::size_of::<IoEvent>()
    }
}

// ---- writer -----------------------------------------------------------------

/// Streaming frame encoder over any [`Write`].
///
/// Push events in replay order; blocks flush themselves every
/// `block_events` events, and [`FrameWriter::finish`] writes the final
/// partial block plus the index footer.
#[derive(Debug)]
pub struct FrameWriter<W: Write> {
    out: W,
    block_events: usize,
    pending: Vec<IoEvent>,
    payload: Vec<u8>,
    index: FrameIndex,
    pos: u64,
}

impl<W: Write> FrameWriter<W> {
    /// A writer with the default block size; writes the file header
    /// immediately.
    pub fn new(out: W) -> Result<FrameWriter<W>, TraceError> {
        FrameWriter::with_block_events(out, DEFAULT_BLOCK_EVENTS)
    }

    /// A writer flushing a block every `block_events` events (clamped to
    /// at least 1).
    pub fn with_block_events(
        mut out: W,
        block_events: usize,
    ) -> Result<FrameWriter<W>, TraceError> {
        let block_events = block_events.clamp(1, MAX_BLOCK_EVENTS as usize);
        out.write_all(&FRAME_MAGIC)?;
        out.write_all(&FRAME_VERSION.to_le_bytes())?;
        out.write_all(&(block_events as u32).to_le_bytes())?;
        out.write_all(&0u32.to_le_bytes())?;
        Ok(FrameWriter {
            out,
            block_events,
            pending: Vec::with_capacity(block_events),
            payload: Vec::new(),
            index: FrameIndex {
                blocks: Vec::new(),
                total_events: 0,
                block_events: block_events as u32,
            },
            pos: HEADER_LEN,
        })
    }

    /// Append one event.
    pub fn push(&mut self, e: &IoEvent) -> Result<(), TraceError> {
        self.pending.push(*e);
        if self.pending.len() >= self.block_events {
            self.flush_block()?;
        }
        Ok(())
    }

    fn flush_block(&mut self) -> Result<(), TraceError> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let min_time = self.pending.iter().map(|e| e.start).min().unwrap_or(SimTime::ZERO);
        let max_file_id = self.pending.iter().map(|e| e.file_id).max().unwrap_or(0);
        self.payload.clear();
        let mut st = DeltaState::at_block(min_time);
        for e in &self.pending {
            encode_event(&mut self.payload, e, &mut st);
        }
        let count = self.pending.len() as u32;
        let checksum = block_checksum(min_time.ticks(), count, &self.payload);
        self.out.write_all(&BLOCK_TAG)?;
        self.out.write_all(&min_time.ticks().to_le_bytes())?;
        self.out.write_all(&count.to_le_bytes())?;
        self.out.write_all(&(self.payload.len() as u32).to_le_bytes())?;
        self.out.write_all(&checksum.to_le_bytes())?;
        self.out.write_all(&self.payload)?;
        self.index.blocks.push(BlockEntry {
            offset: self.pos,
            min_time,
            count,
            max_file_id,
        });
        self.index.total_events += count as u64;
        self.pos += BLOCK_HEADER_LEN + self.payload.len() as u64;
        self.pending.clear();
        Ok(())
    }

    /// Flush the final partial block, write the index footer, and return
    /// the writer plus the index.
    pub fn finish(mut self) -> Result<(W, FrameIndex), TraceError> {
        self.flush_block()?;
        let mut footer = Vec::with_capacity(
            4 + 4 + self.index.blocks.len() * INDEX_ENTRY_LEN as usize + 8 + 8,
        );
        footer.extend_from_slice(&INDEX_TAG);
        footer.extend_from_slice(&(self.index.blocks.len() as u32).to_le_bytes());
        for b in &self.index.blocks {
            footer.extend_from_slice(&b.offset.to_le_bytes());
            footer.extend_from_slice(&b.min_time.ticks().to_le_bytes());
            footer.extend_from_slice(&b.count.to_le_bytes());
            footer.extend_from_slice(&b.max_file_id.to_le_bytes());
        }
        footer.extend_from_slice(&self.index.total_events.to_le_bytes());
        let checksum = fnv1a(&footer[4..]);
        footer.extend_from_slice(&checksum.to_le_bytes());
        let footer_len = footer.len() as u32;
        self.out.write_all(&footer)?;
        self.out.write_all(&footer_len.to_le_bytes())?;
        self.out.write_all(&FOOTER_MAGIC)?;
        self.out.flush()?;
        Ok((self.out, self.index))
    }
}

/// Encode a whole slice into an in-memory frame buffer (benches, tests).
pub fn encode_frames(events: &[IoEvent], block_events: usize) -> Vec<u8> {
    let mut w = FrameWriter::with_block_events(Vec::new(), block_events)
        .expect("Vec<u8> writes are infallible");
    for e in events {
        w.push(e).expect("Vec<u8> writes are infallible");
    }
    w.finish().expect("Vec<u8> writes are infallible").0
}

/// Encode an event iterator to a file at `path`, returning the index.
pub fn write_frame_file<'a, I>(path: &Path, events: I) -> Result<FrameIndex, TraceError>
where
    I: IntoIterator<Item = &'a IoEvent>,
{
    write_frame_file_with(path, events, DEFAULT_BLOCK_EVENTS)
}

/// [`write_frame_file`] with an explicit events-per-block setting.
/// Smaller blocks shrink the decoded working set of a streaming reader
/// at the cost of more per-block overhead (28 B header per block).
pub fn write_frame_file_with<'a, I>(
    path: &Path,
    events: I,
    block_events: usize,
) -> Result<FrameIndex, TraceError>
where
    I: IntoIterator<Item = &'a IoEvent>,
{
    let file = File::create(path)?;
    let mut w = FrameWriter::with_block_events(std::io::BufWriter::new(file), block_events)?;
    for e in events {
        w.push(e)?;
    }
    let (out, index) = w.finish()?;
    out.into_inner().map_err(|e| TraceError::Io(e.into_error()))?.sync_data()?;
    Ok(index)
}

// ---- memory map -------------------------------------------------------------

/// A read-only byte buffer backing mmap-mode replay: a real memory map on
/// Linux/x86-64, an owned in-memory copy elsewhere (or when mapping
/// fails).
#[derive(Debug)]
pub enum FrameBuf {
    /// A live `mmap(2)` of the file.
    Mapped(Mmap),
    /// The whole file read into memory (portable fallback).
    Owned(Vec<u8>),
}

impl std::ops::Deref for FrameBuf {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        match self {
            FrameBuf::Mapped(m) => m,
            FrameBuf::Owned(v) => v,
        }
    }
}

/// A read-only private file mapping made with the raw `mmap` syscall —
/// this build environment has no libc crate, so the two instructions are
/// inlined here for the one target we run on.
#[derive(Debug)]
pub struct Mmap {
    ptr: *const u8,
    len: usize,
}

// The mapping is immutable shared memory; the raw pointer is only ever
// dereferenced through &[u8].
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

impl std::ops::Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        // SAFETY: ptr..ptr+len is a live PROT_READ mapping until Drop.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
impl Mmap {
    /// Map `len` bytes of `file` read-only; `None` if the kernel refuses
    /// (caller falls back to reading the file).
    fn map(file: &File, len: usize) -> Option<Mmap> {
        use std::os::unix::io::AsRawFd;
        if len == 0 {
            return None;
        }
        const PROT_READ: usize = 1;
        const MAP_PRIVATE: usize = 2;
        let ret: isize;
        // SAFETY: plain mmap(NULL, len, PROT_READ, MAP_PRIVATE, fd, 0);
        // all arguments are owned values, the kernel validates the fd.
        unsafe {
            std::arch::asm!(
                "syscall",
                inlateout("rax") 9usize => ret, // __NR_mmap
                in("rdi") 0usize,
                in("rsi") len,
                in("rdx") PROT_READ,
                in("r10") MAP_PRIVATE,
                in("r8") file.as_raw_fd() as usize,
                in("r9") 0usize,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack)
            );
        }
        if !(-4095..0).contains(&ret) && ret != 0 {
            Some(Mmap { ptr: ret as *const u8, len })
        } else {
            None
        }
    }
}

#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
impl Mmap {
    fn map(_file: &File, _len: usize) -> Option<Mmap> {
        None
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
        // SAFETY: munmap of the exact region map() returned; errors at
        // unmap time are unreportable and harmless to ignore.
        unsafe {
            let _ret: isize;
            std::arch::asm!(
                "syscall",
                inlateout("rax") 11usize => _ret, // __NR_munmap
                in("rdi") self.ptr as usize,
                in("rsi") self.len,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack)
            );
        }
    }
}

// ---- random-access reader ---------------------------------------------------

#[derive(Debug)]
enum Backing {
    /// Whole file addressable as bytes (mmap or owned buffer).
    Mem(FrameBuf),
    /// Blocks fetched on demand with positioned reads; resident memory
    /// stays one block per cursor.
    File(File),
}

impl Backing {
    fn len(&self) -> Result<u64, TraceError> {
        Ok(match self {
            Backing::Mem(b) => b.len() as u64,
            Backing::File(f) => f.metadata()?.len(),
        })
    }

    /// Read `buf.len()` bytes at `offset`, erroring (never panicking) on
    /// short files.
    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> Result<(), TraceError> {
        match self {
            Backing::Mem(b) => {
                let start = usize::try_from(offset).map_err(|_| TraceError::Truncated)?;
                let end = start.checked_add(buf.len()).ok_or(TraceError::Truncated)?;
                let src = b.get(start..end).ok_or(TraceError::Truncated)?;
                buf.copy_from_slice(src);
                Ok(())
            }
            Backing::File(f) => {
                #[cfg(unix)]
                {
                    use std::os::unix::fs::FileExt;
                    f.read_exact_at(buf, offset).map_err(|e| {
                        if e.kind() == std::io::ErrorKind::UnexpectedEof {
                            TraceError::Truncated
                        } else {
                            TraceError::Io(e)
                        }
                    })
                }
                #[cfg(not(unix))]
                {
                    use std::io::{Seek, SeekFrom};
                    let mut f = f;
                    f.seek(SeekFrom::Start(offset))?;
                    f.read_exact(buf).map_err(|e| {
                        if e.kind() == std::io::ErrorKind::UnexpectedEof {
                            TraceError::Truncated
                        } else {
                            TraceError::Io(e)
                        }
                    })
                }
            }
        }
    }
}

/// An opened frame file: validated header + index, plus a backing to
/// fetch blocks from. Immutable and sharable across threads; every
/// decode goes through caller-owned scratch buffers.
#[derive(Debug)]
pub struct FrameFile {
    backing: Backing,
    index: FrameIndex,
}

impl FrameFile {
    /// Open in positioned-read mode: the file descriptor is kept and
    /// blocks are `pread` on demand — the bounded-memory replay path.
    pub fn open(path: &Path) -> Result<FrameFile, TraceError> {
        FrameFile::from_backing(Backing::File(File::open(path)?))
    }

    /// Open in mmap mode: the whole file is mapped (or, if mapping is
    /// unavailable, read into memory) and blocks decode straight out of
    /// the buffer.
    pub fn open_mmap(path: &Path) -> Result<FrameFile, TraceError> {
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        let len_usize = usize::try_from(len).map_err(|_| TraceError::Truncated)?;
        let buf = match Mmap::map(&file, len_usize) {
            Some(m) => FrameBuf::Mapped(m),
            None => {
                let mut v = Vec::with_capacity(len_usize);
                let mut f = file;
                f.read_to_end(&mut v)?;
                FrameBuf::Owned(v)
            }
        };
        FrameFile::from_backing(Backing::Mem(buf))
    }

    /// Treat an in-memory buffer as a frame file (tests, benches).
    pub fn from_bytes(bytes: Vec<u8>) -> Result<FrameFile, TraceError> {
        FrameFile::from_backing(Backing::Mem(FrameBuf::Owned(bytes)))
    }

    fn from_backing(backing: Backing) -> Result<FrameFile, TraceError> {
        let len = backing.len()?;
        if len < HEADER_LEN + 8 {
            return Err(TraceError::Truncated);
        }
        let mut header = [0u8; HEADER_LEN as usize];
        backing.read_exact_at(&mut header, 0)?;
        if header[0..4] != FRAME_MAGIC {
            return Err(TraceError::BadFrame { offset: 0, what: "bad file magic" });
        }
        let version = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        if version != FRAME_VERSION {
            return Err(TraceError::BadFrame { offset: 4, what: "unsupported frame version" });
        }
        let block_events = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
        if block_events == 0 || block_events > MAX_BLOCK_EVENTS {
            return Err(TraceError::BadFrame { offset: 8, what: "bad block_events" });
        }

        // Locate and verify the footer from the 8-byte tail.
        let mut tail = [0u8; 8];
        backing.read_exact_at(&mut tail, len - 8)?;
        if tail[4..8] != FOOTER_MAGIC {
            return Err(TraceError::BadFrame { offset: len - 4, what: "bad footer magic" });
        }
        let footer_len = u32::from_le_bytes(tail[0..4].try_into().expect("4 bytes")) as u64;
        let footer_start = len
            .checked_sub(8 + footer_len)
            .filter(|&s| s >= HEADER_LEN)
            .ok_or(TraceError::Truncated)?;
        if footer_len < 4 + 4 + 8 + 8 || footer_len > len {
            return Err(TraceError::BadFrame { offset: footer_start, what: "bad footer length" });
        }
        let mut footer = vec![0u8; footer_len as usize];
        backing.read_exact_at(&mut footer, footer_start)?;
        if footer[0..4] != INDEX_TAG {
            return Err(TraceError::BadFrame { offset: footer_start, what: "bad index tag" });
        }
        let body_end = footer.len() - 8;
        let want = u64::from_le_bytes(footer[body_end..].try_into().expect("8 bytes"));
        if fnv1a(&footer[4..body_end]) != want {
            return Err(TraceError::ChecksumMismatch { block: usize::MAX });
        }
        let block_count =
            u32::from_le_bytes(footer[4..8].try_into().expect("4 bytes")) as usize;
        let entries_len = (block_count as u64)
            .checked_mul(INDEX_ENTRY_LEN)
            .ok_or(TraceError::Truncated)?;
        if 8 + entries_len + 8 != body_end as u64 {
            return Err(TraceError::BadFrame {
                offset: footer_start,
                what: "footer length disagrees with block count",
            });
        }
        let mut blocks = Vec::with_capacity(block_count);
        let mut total_check = 0u64;
        for i in 0..block_count {
            let at = 8 + i * INDEX_ENTRY_LEN as usize;
            let e = BlockEntry {
                offset: u64::from_le_bytes(footer[at..at + 8].try_into().expect("8 bytes")),
                min_time: SimTime::from_ticks(u64::from_le_bytes(
                    footer[at + 8..at + 16].try_into().expect("8 bytes"),
                )),
                count: u32::from_le_bytes(footer[at + 16..at + 20].try_into().expect("4 bytes")),
                max_file_id: u32::from_le_bytes(
                    footer[at + 20..at + 24].try_into().expect("4 bytes"),
                ),
            };
            if e.offset < HEADER_LEN || e.offset >= footer_start || e.count == 0 {
                return Err(TraceError::BadFrame {
                    offset: e.offset,
                    what: "index entry out of range",
                });
            }
            total_check = total_check.saturating_add(e.count as u64);
            blocks.push(e);
        }
        let total_events =
            u64::from_le_bytes(footer[body_end - 8..body_end].try_into().expect("8 bytes"));
        if total_events != total_check {
            return Err(TraceError::BadFrame {
                offset: footer_start,
                what: "total_events disagrees with block counts",
            });
        }
        Ok(FrameFile { backing, index: FrameIndex { blocks, total_events, block_events } })
    }

    /// The validated index footer.
    pub fn index(&self) -> &FrameIndex {
        &self.index
    }

    /// Total events in the file.
    pub fn total_events(&self) -> u64 {
        self.index.total_events
    }

    /// Decode block `i` into `out`, using `bytes` as compressed-payload
    /// scratch. Both buffers are cleared and reused — after warm-up no
    /// allocation happens on this path.
    pub fn decode_block_into(
        &self,
        i: usize,
        bytes: &mut Vec<u8>,
        out: &mut Vec<IoEvent>,
    ) -> Result<(), TraceError> {
        let entry = *self.index.blocks.get(i).ok_or(TraceError::Truncated)?;
        let mut header = [0u8; BLOCK_HEADER_LEN as usize];
        self.backing.read_exact_at(&mut header, entry.offset)?;
        if header[0..4] != BLOCK_TAG {
            return Err(TraceError::BadFrame { offset: entry.offset, what: "bad block tag" });
        }
        let min_time =
            SimTime::from_ticks(u64::from_le_bytes(header[4..12].try_into().expect("8 bytes")));
        let count = u32::from_le_bytes(header[12..16].try_into().expect("4 bytes"));
        let payload_len = u32::from_le_bytes(header[16..20].try_into().expect("4 bytes"));
        let want = u64::from_le_bytes(header[20..28].try_into().expect("8 bytes"));
        if count != entry.count || count == 0 || count > MAX_BLOCK_EVENTS {
            return Err(TraceError::BadFrame {
                offset: entry.offset,
                what: "block count disagrees with index",
            });
        }
        if payload_len > MAX_PAYLOAD_LEN {
            return Err(TraceError::BadFrame { offset: entry.offset, what: "payload too long" });
        }
        bytes.clear();
        bytes.resize(payload_len as usize, 0);
        self.backing.read_exact_at(bytes, entry.offset + BLOCK_HEADER_LEN)?;
        if block_checksum(min_time.ticks(), count, bytes) != want {
            return Err(TraceError::ChecksumMismatch { block: i });
        }
        out.clear();
        out.reserve(count as usize);
        let mut cur = ByteCursor::new(bytes);
        let mut st = DeltaState::at_block(min_time);
        for _ in 0..count {
            out.push(decode_event(&mut cur, &mut st)?);
        }
        if !cur.exhausted() {
            return Err(TraceError::BadFrame {
                offset: entry.offset,
                what: "trailing bytes after last event in block",
            });
        }
        Ok(())
    }

    /// A zero-allocation replay cursor from the first event.
    pub fn cursor(&self) -> FrameCursor<'_> {
        FrameCursor {
            file: self,
            block: 0,
            pos: 0,
            bytes: Vec::new(),
            events: Vec::new(),
            primed: false,
        }
    }

    /// Decode the entire file into one vector.
    pub fn decode_all(&self) -> Result<Vec<IoEvent>, TraceError> {
        let mut out = Vec::with_capacity(self.index.total_events as usize);
        let mut bytes = Vec::new();
        let mut block = Vec::new();
        for i in 0..self.index.blocks.len() {
            self.decode_block_into(i, &mut bytes, &mut block)?;
            out.extend_from_slice(&block);
        }
        Ok(out)
    }
}

/// Replay cursor over a [`FrameFile`]: one decoded block at a time in a
/// reusable scratch buffer. After the first block, advancing allocates
/// nothing (the scratch vectors are recycled at block boundaries).
#[derive(Debug)]
pub struct FrameCursor<'a> {
    file: &'a FrameFile,
    /// Index of the block currently decoded into `events`.
    block: usize,
    /// Position of the next event within `events`.
    pos: usize,
    bytes: Vec<u8>,
    events: Vec<IoEvent>,
    primed: bool,
}

impl FrameCursor<'_> {
    /// The next event, or `None` at end of file.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<IoEvent>, TraceError> {
        loop {
            if self.primed {
                if let Some(e) = self.events.get(self.pos) {
                    self.pos += 1;
                    return Ok(Some(*e));
                }
                self.block += 1;
            }
            if self.block >= self.file.index.blocks.len() {
                return Ok(None);
            }
            self.file.decode_block_into(self.block, &mut self.bytes, &mut self.events)?;
            self.pos = 0;
            self.primed = true;
        }
    }
}

// ---- sequential Read-based replay -------------------------------------------

/// Forward-only frame replay over any [`Read`] — pipes, sockets, or
/// plain files — needing neither `Seek` nor the index footer: blocks are
/// self-describing, and the `"IDX\0"` tag marks end of data.
#[derive(Debug)]
pub struct FrameStream<R: Read> {
    src: R,
    bytes: Vec<u8>,
    events: Vec<IoEvent>,
    pos: usize,
    block: usize,
    done: bool,
}

impl<R: Read> FrameStream<R> {
    /// Validate the header and position before the first block.
    pub fn new(mut src: R) -> Result<FrameStream<R>, TraceError> {
        let mut header = [0u8; HEADER_LEN as usize];
        src.read_exact(&mut header).map_err(short_read)?;
        if header[0..4] != FRAME_MAGIC {
            return Err(TraceError::BadFrame { offset: 0, what: "bad file magic" });
        }
        let version = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        if version != FRAME_VERSION {
            return Err(TraceError::BadFrame { offset: 4, what: "unsupported frame version" });
        }
        Ok(FrameStream {
            src,
            bytes: Vec::new(),
            events: Vec::new(),
            pos: 0,
            block: 0,
            done: false,
        })
    }

    /// The next event, or `None` once the index footer is reached.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<IoEvent>, TraceError> {
        loop {
            if let Some(e) = self.events.get(self.pos) {
                self.pos += 1;
                return Ok(Some(*e));
            }
            if self.done {
                return Ok(None);
            }
            let mut tag = [0u8; 4];
            self.src.read_exact(&mut tag).map_err(short_read)?;
            if tag == INDEX_TAG {
                self.done = true;
                return Ok(None);
            }
            if tag != BLOCK_TAG {
                return Err(TraceError::BadFrame { offset: 0, what: "bad block tag" });
            }
            let mut rest = [0u8; (BLOCK_HEADER_LEN - 4) as usize];
            self.src.read_exact(&mut rest).map_err(short_read)?;
            let min_time =
                SimTime::from_ticks(u64::from_le_bytes(rest[0..8].try_into().expect("8 bytes")));
            let count = u32::from_le_bytes(rest[8..12].try_into().expect("4 bytes"));
            let payload_len = u32::from_le_bytes(rest[12..16].try_into().expect("4 bytes"));
            let want = u64::from_le_bytes(rest[16..24].try_into().expect("8 bytes"));
            if count == 0 || count > MAX_BLOCK_EVENTS {
                return Err(TraceError::BadFrame { offset: 0, what: "bad block count" });
            }
            if payload_len > MAX_PAYLOAD_LEN {
                return Err(TraceError::BadFrame { offset: 0, what: "payload too long" });
            }
            self.bytes.clear();
            self.bytes.resize(payload_len as usize, 0);
            self.src.read_exact(&mut self.bytes).map_err(short_read)?;
            if block_checksum(min_time.ticks(), count, &self.bytes) != want {
                return Err(TraceError::ChecksumMismatch { block: self.block });
            }
            self.events.clear();
            self.events.reserve(count as usize);
            let mut cur = ByteCursor::new(&self.bytes);
            let mut st = DeltaState::at_block(min_time);
            for _ in 0..count {
                self.events.push(decode_event(&mut cur, &mut st)?);
            }
            if !cur.exhausted() {
                return Err(TraceError::BadFrame {
                    offset: 0,
                    what: "trailing bytes after last event in block",
                });
            }
            self.pos = 0;
            self.block += 1;
        }
    }
}

fn short_read(e: std::io::Error) -> TraceError {
    if e.kind() == std::io::ErrorKind::UnexpectedEof {
        TraceError::Truncated
    } else {
        TraceError::Io(e)
    }
}

/// Decode a whole frame stream into one vector.
pub fn read_frames<R: Read>(src: R) -> Result<Vec<IoEvent>, TraceError> {
    let mut s = FrameStream::new(src)?;
    let mut out = Vec::new();
    while let Some(e) = s.next()? {
        out.push(e);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flags::{CacheOutcome, DataKind, Direction, Scope, Synchrony};

    fn mixed_events(n: u64) -> Vec<IoEvent> {
        (0..n)
            .map(|i| {
                let mut e = IoEvent::logical(
                    if i % 3 == 0 { Direction::Write } else { Direction::Read },
                    (i % 5) as u32 + 1,
                    (i % 7) as u32,
                    i * 4096,
                    4096 + (i % 4) * 512,
                    SimTime::from_ticks(i * 137),
                    SimDuration::from_ticks(i % 50),
                );
                e.completion = SimDuration::from_ticks(i % 23);
                e.op_id = (i % 11) as u32;
                if i % 4 == 0 {
                    e.kind = DataKind::MetaData;
                    e.scope = Scope::Physical;
                    e.sync = Synchrony::Async;
                    e.cache = CacheOutcome::Miss;
                }
                e
            })
            .collect()
    }

    #[test]
    fn roundtrip_via_memory_cursor() {
        let events = mixed_events(10_000);
        let bytes = encode_frames(&events, 512);
        let file = FrameFile::from_bytes(bytes).expect("valid frame");
        assert_eq!(file.total_events(), 10_000);
        assert_eq!(file.index().blocks.len(), 10_000usize.div_ceil(512));
        let mut cursor = file.cursor();
        let mut got = Vec::new();
        while let Some(e) = cursor.next().expect("decodes") {
            got.push(e);
        }
        assert_eq!(got, events);
    }

    #[test]
    fn roundtrip_via_stream_reader() {
        let events = mixed_events(3_000);
        let bytes = encode_frames(&events, 1024);
        let got = read_frames(std::io::Cursor::new(bytes)).expect("decodes");
        assert_eq!(got, events);
    }

    #[test]
    fn roundtrip_via_files_pread_and_mmap() {
        let events = mixed_events(5_000);
        let dir = std::env::temp_dir().join(format!("miof-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("roundtrip.miof");
        let index = write_frame_file(&path, events.iter()).expect("writes");
        assert_eq!(index.total_events, 5_000);
        let pread = FrameFile::open(&path).expect("opens");
        assert_eq!(pread.decode_all().expect("decodes"), events);
        let mapped = FrameFile::open_mmap(&path).expect("opens");
        assert_eq!(mapped.decode_all().expect("decodes"), events);
        assert_eq!(mapped.index(), &index);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn index_records_max_file_id() {
        let mut events = mixed_events(100);
        events[42].file_id = 70_000;
        let file = FrameFile::from_bytes(encode_frames(&events, 16)).expect("valid");
        assert_eq!(file.index().max_file_id(), 70_000);
    }

    #[test]
    fn empty_input_roundtrips() {
        let bytes = encode_frames(&[], 4096);
        let file = FrameFile::from_bytes(bytes.clone()).expect("valid");
        assert_eq!(file.total_events(), 0);
        assert!(file.decode_all().expect("decodes").is_empty());
        assert!(read_frames(std::io::Cursor::new(bytes)).expect("decodes").is_empty());
    }

    #[test]
    fn flipped_payload_byte_is_a_checksum_error() {
        let events = mixed_events(300);
        let bytes = encode_frames(&events, 256);
        // Flip one byte inside the first block's payload.
        let mut corrupt = bytes.clone();
        let payload_at = HEADER_LEN as usize + BLOCK_HEADER_LEN as usize + 3;
        corrupt[payload_at] ^= 0x40;
        let file = FrameFile::from_bytes(corrupt).expect("index still valid");
        assert!(matches!(
            file.decode_all(),
            Err(TraceError::ChecksumMismatch { block: 0 })
        ));
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let events = mixed_events(2_000);
        let bytes = encode_frames(&events, 256);
        for cut in [0, 3, HEADER_LEN as usize, bytes.len() / 2, bytes.len() - 1] {
            let r = FrameFile::from_bytes(bytes[..cut].to_vec());
            if let Ok(f) = r {
                // The footer happened to survive; block decode must fail
                // cleanly instead.
                assert!(f.decode_all().is_err(), "cut at {cut} must not decode fully");
            }
        }
        // The forward-only stream needs every block but never the footer:
        // cuts before the index tag error, a cut inside the footer does
        // not lose any events.
        let footer_len =
            u32::from_le_bytes(bytes[bytes.len() - 8..bytes.len() - 4].try_into().unwrap());
        let footer_start = bytes.len() - 8 - footer_len as usize;
        for cut in [0, 3, HEADER_LEN as usize, bytes.len() / 2, footer_start + 3] {
            assert!(
                read_frames(std::io::Cursor::new(&bytes[..cut])).is_err(),
                "stream cut at {cut} must error"
            );
        }
        assert_eq!(
            read_frames(std::io::Cursor::new(&bytes[..bytes.len() - 1])).expect("footer unused"),
            events
        );
    }

    #[test]
    fn zigzag_roundtrips_extremes() {
        for v in [0i64, 1, -1, i64::MAX, i64::MIN, 42, -42] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        let mut buf = Vec::new();
        for v in [0u64, 1, 127, 128, u64::MAX] {
            buf.clear();
            put_varint(&mut buf, v);
            assert_eq!(ByteCursor::new(&buf).varint().expect("valid"), v);
        }
    }

    #[test]
    fn compression_beats_raw_events() {
        // Sequential same-size reads — the dominant pattern in the paper —
        // must compress far below the 96 B in-memory representation.
        let events: Vec<IoEvent> = (0..4096u64)
            .map(|i| {
                IoEvent::logical(
                    Direction::Read,
                    1,
                    1,
                    i * 4096,
                    4096,
                    SimTime::from_ticks(i * 100),
                    SimDuration::from_ticks(100),
                )
            })
            .collect();
        let bytes = encode_frames(&events, 4096);
        let raw = events.len() * std::mem::size_of::<IoEvent>();
        assert!(
            bytes.len() * 5 < raw,
            "expected ≥5x compression, got {} vs {raw}",
            bytes.len()
        );
    }
}
