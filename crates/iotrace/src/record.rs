//! The decoded, absolute-time event model.
//!
//! [`IoEvent`] is the semantic unit the rest of the reproduction works
//! with: workload generators emit it, the codec serializes it, the
//! analyzer and the buffering simulator consume it. It corresponds to one
//! fully-decompressed `traceRecord` with timestamps converted from deltas
//! to absolutes.

use crate::flags::{CacheOutcome, DataKind, Direction, RecordType, Scope, Synchrony};
use serde::{Deserialize, Serialize};
use sim_core::{SimDuration, SimTime};

/// One fully-decoded I/O trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IoEvent {
    /// What kind of data moved.
    pub kind: DataKind,
    /// Logical (file-level) or physical (disk-level) record.
    pub scope: Scope,
    /// Read or write.
    pub dir: Direction,
    /// Whether the process blocked for completion.
    pub sync: Synchrony,
    /// Analysis-only cache annotation.
    pub cache: CacheOutcome,
    /// Byte offset into the file (logical) or byte address on the device
    /// (physical; always block-aligned there).
    pub offset: u64,
    /// Length of the access in bytes.
    pub length: u64,
    /// Absolute wall-clock start of the I/O.
    pub start: SimTime,
    /// Wall-clock time from start until completion was reported to the
    /// process (for logical records this includes scheduler delay, §4.1).
    pub completion: SimDuration,
    /// Associates one logical record with the physical I/Os it generated.
    /// By convention our logical-only traces use 0 so the field compresses
    /// away, as the appendix suggests ("for logical-only traces, this field
    /// is useless").
    pub op_id: u32,
    /// Unique per file *open* within a process (re-opening a file yields a
    /// fresh id, §4.1).
    pub file_id: u32,
    /// Issuing process.
    pub process_id: u32,
    /// Process CPU time consumed since this process's previous I/O started
    /// — the multiprogramming-independent clock (§4.1).
    pub process_time: SimDuration,
}

impl IoEvent {
    /// A convenient default-heavy constructor for a logical, synchronous,
    /// file-data event; the common case throughout the reproduction.
    pub fn logical(
        dir: Direction,
        process_id: u32,
        file_id: u32,
        offset: u64,
        length: u64,
        start: SimTime,
        process_time: SimDuration,
    ) -> IoEvent {
        IoEvent {
            kind: DataKind::FileData,
            scope: Scope::Logical,
            dir,
            sync: Synchrony::Sync,
            cache: CacheOutcome::Hit,
            offset,
            length,
            start,
            completion: SimDuration::ZERO,
            op_id: 0,
            file_id,
            process_id,
            process_time,
        }
    }

    /// The byte just past the end of this access.
    #[inline]
    pub fn end_offset(&self) -> u64 {
        self.offset + self.length
    }

    /// True when `next` begins exactly where this access ended in the same
    /// file — the sequentiality the paper found dominant.
    #[inline]
    pub fn is_sequential_with(&self, next: &IoEvent) -> bool {
        self.file_id == next.file_id
            && self.process_id == next.process_id
            && next.offset == self.end_offset()
    }

    /// The packed recordType bits for this event.
    pub fn record_type(&self) -> RecordType {
        RecordType {
            kind: self.kind,
            scope: self.scope,
            dir: self.dir,
            sync: self.sync,
            cache: self.cache,
        }
    }
}

/// One entry in a trace: an I/O record or a comment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceItem {
    /// A decoded I/O record.
    Io(IoEvent),
    /// A comment record (`recordType 0xff`): free text ignored by
    /// simulators; the paper used comments for fileId-to-name maps.
    Comment(String),
}

impl TraceItem {
    /// The contained event, if this is an I/O record.
    pub fn as_io(&self) -> Option<&IoEvent> {
        match self {
            TraceItem::Io(e) => Some(e),
            TraceItem::Comment(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(offset: u64, length: u64, file: u32) -> IoEvent {
        IoEvent::logical(
            Direction::Read,
            1,
            file,
            offset,
            length,
            SimTime::ZERO,
            SimDuration::ZERO,
        )
    }

    #[test]
    fn end_offset_adds_length() {
        assert_eq!(ev(100, 50, 1).end_offset(), 150);
    }

    #[test]
    fn sequentiality_requires_same_file_and_contiguity() {
        let a = ev(0, 512, 1);
        assert!(a.is_sequential_with(&ev(512, 512, 1)));
        assert!(!a.is_sequential_with(&ev(513, 512, 1)));
        assert!(!a.is_sequential_with(&ev(512, 512, 2)));
        let mut other_proc = ev(512, 512, 1);
        other_proc.process_id = 9;
        assert!(!a.is_sequential_with(&other_proc));
    }

    #[test]
    fn logical_constructor_defaults() {
        let e = ev(0, 4096, 3);
        assert_eq!(e.scope, Scope::Logical);
        assert_eq!(e.kind, DataKind::FileData);
        assert_eq!(e.sync, Synchrony::Sync);
        assert_eq!(e.op_id, 0);
        assert_eq!(e.record_type().to_bits() & 0x80, 0x80);
    }

    #[test]
    fn trace_item_accessors() {
        let item = TraceItem::Io(ev(0, 1, 1));
        assert!(item.as_io().is_some());
        let c = TraceItem::Comment("file 3 = /tmp/data".into());
        assert!(c.as_io().is_none());
    }
}
