//! Deterministic in-sim gauge timelines.
//!
//! Miller's central findings are *temporal* — cyclic request streams and
//! bursty I/O (paper §4, Figures 3–4) — but `SimReport` only carries
//! end-of-run aggregates. This module adds the missing axis: a periodic
//! sampler driven by **simulated time** that snapshots engine gauges
//! (cache occupancy, dirty bytes, per-device queue depth and busy
//! fraction, tier promotions, wheel occupancy, runnable/blocked process
//! counts) into fixed-capacity, preallocated series.
//!
//! Design constraints, in priority order:
//!
//! 1. **Invisible to results.** The sampler never touches the event
//!    queue — the engine checks a plain tick deadline between event pops,
//!    where simulation state is constant, so `QueueStats` and every other
//!    serialized counter are byte-identical with timelines on or off, at
//!    any shard count. (The obvious alternative — a repeating timer event
//!    on the timing wheel — would perturb the wheel's serialized
//!    insert/cascade counters and is exactly what this module avoids.)
//! 2. **Allocation-free while sampling.** Tick and value vectors are
//!    preallocated at [`TIMELINE_CAPACITY`]; a committed sample is a few
//!    bounded pushes. Overflow is *counted and dropped*, never grown.
//! 3. **Deterministic export.** Series are committed on the fixed grid
//!    `k × interval` of simulated ticks; the sharded engine's per-group
//!    timelines [`merge`] by series name in group order with value
//!    summing at aligned grid indices, so the merged timeline is a pure
//!    function of the simulated cluster.
//!
//! Configuration rides the same env handshake as profiling:
//! `--timeline NS` / `MILLER_TIMELINE` sets the sample interval in
//! simulated nanoseconds, `--timeline-out PATH` / `MILLER_TIMELINE_OUT`
//! writes the collected timelines as standalone JSON (see
//! [`finish_timelines`]). When the span recorder is enabled the same
//! samples are also emitted as Perfetto counter tracks (`ph:"C"`).

use crate::recorder::{self, Track};
use sim_core::TICK_NANOS;
use std::sync::{Mutex, OnceLock};

/// Fixed per-series sample capacity. At the default-ish 1 ms interval
/// this covers 4 s of simulated time per run; longer runs truncate the
/// tail and count it rather than allocate.
pub const TIMELINE_CAPACITY: usize = 4096;

/// Consume `--timeline <ns>` and `--timeline-out <path>` from `args`,
/// exporting them as `MILLER_TIMELINE` / `MILLER_TIMELINE_OUT` so child
/// processes and lazily-constructed engines agree. Returns an error
/// message for a malformed flag.
pub fn apply_timeline_flags(args: &mut Vec<String>) -> Result<(), String> {
    if let Some(i) = args.iter().position(|a| a == "--timeline") {
        if i + 1 >= args.len() {
            return Err("--timeline needs a sample interval in simulated nanoseconds".into());
        }
        let raw = args.remove(i + 1);
        args.remove(i);
        match raw.trim().parse::<u64>() {
            Ok(ns) if ns >= 1 => std::env::set_var("MILLER_TIMELINE", ns.to_string()),
            _ => {
                return Err(format!(
                    "--timeline needs a positive nanosecond interval, got `{raw}`"
                ))
            }
        }
    }
    if let Some(i) = args.iter().position(|a| a == "--timeline-out") {
        if i + 1 >= args.len() {
            return Err("--timeline-out needs an output path".into());
        }
        let p = args.remove(i + 1);
        args.remove(i);
        std::env::set_var("MILLER_TIMELINE_OUT", p);
    }
    Ok(())
}

/// The configured sample interval in simulated ticks (from
/// `MILLER_TIMELINE`, nanoseconds, rounded down to ticks with a 1-tick
/// floor), or `None` when sampling is off.
pub fn configured_interval_ticks() -> Option<u64> {
    let ns = std::env::var("MILLER_TIMELINE").ok()?.trim().parse::<u64>().ok()?;
    if ns == 0 {
        return None;
    }
    Some((ns / TICK_NANOS).max(1))
}

/// The configured standalone-JSON output path (`MILLER_TIMELINE_OUT`).
pub fn configured_output_path() -> Option<String> {
    std::env::var("MILLER_TIMELINE_OUT").ok().filter(|p| !p.is_empty())
}

/// Intern a gauge/series name to `&'static str` so the recorder's
/// fixed-size [`crate::recorder::RawEvent`] can carry it. Deduplicated —
/// the engine re-creates the same few dozen names per simulation, so
/// the leak is bounded by the name vocabulary, not the run count. Takes
/// a lock; call at timeline setup, never per sample.
pub fn intern_name(name: &str) -> &'static str {
    static NAMES: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    let mut names =
        NAMES.get_or_init(|| Mutex::new(Vec::new())).lock().expect("name intern lock");
    if let Some(s) = names.iter().find(|s| ***s == *name) {
        return s;
    }
    let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
    names.push(leaked);
    leaked
}

/// One gauge's sampled values, aligned to its timeline's tick grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineSeries {
    /// Interned gauge name (e.g. `cache_resident_blocks`).
    pub name: &'static str,
    /// One value per grid tick, index-aligned with [`TimelineData::ticks`].
    pub values: Vec<u64>,
}

/// A finished timeline: the sample grid plus every series on it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineData {
    /// Grid spacing in simulated ticks.
    pub interval_ticks: u64,
    /// Sample timestamps in simulated ticks (`k × interval`, ascending).
    pub ticks: Vec<u64>,
    /// Sampled gauges.
    pub series: Vec<TimelineSeries>,
    /// Grid points past [`TIMELINE_CAPACITY`] that were counted, not kept.
    pub truncated: u64,
}

/// An in-progress sampler owned by one engine (or one sharded group).
///
/// Usage: [`Timeline::add_series`] once per gauge at setup, then on the
/// engine's pop loop — whenever [`Timeline::due`] — fill
/// [`Timeline::scratch`] (index-aligned with the series) and call
/// [`Timeline::commit_until`]. Finish with [`Timeline::finish`].
#[derive(Debug)]
pub struct Timeline {
    interval: u64,
    /// Next un-sampled grid tick.
    next: u64,
    ticks: Vec<u64>,
    series: Vec<TimelineSeries>,
    truncated: u64,
    /// Perfetto counter track to mirror samples onto (optional).
    track: Option<Track>,
    /// Caller-filled gauge values, index-aligned with the series.
    pub scratch: Vec<u64>,
}

impl Timeline {
    /// A sampler on the grid `interval_ticks, 2×interval_ticks, …`.
    pub fn new(interval_ticks: u64) -> Timeline {
        let interval = interval_ticks.max(1);
        Timeline {
            interval,
            next: interval,
            ticks: Vec::with_capacity(TIMELINE_CAPACITY),
            series: Vec::new(),
            truncated: 0,
            track: None,
            scratch: Vec::new(),
        }
    }

    /// Register a gauge; returns its index into [`Timeline::scratch`].
    /// Allocates the full-capacity value vector up front so sampling
    /// never does.
    pub fn add_series(&mut self, name: &'static str) -> usize {
        self.series.push(TimelineSeries { name, values: Vec::with_capacity(TIMELINE_CAPACITY) });
        self.scratch.push(0);
        self.series.len() - 1
    }

    /// Mirror committed samples onto a Perfetto counter track (only
    /// emits while the span recorder is enabled).
    pub fn set_track(&mut self, track: Track) {
        self.track = Some(track);
    }

    /// Grid spacing in ticks.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// True when at least one grid point at or before `now_tick` is
    /// still un-sampled. One compare — cheap enough for the pop loop.
    #[inline(always)]
    pub fn due(&self, now_tick: u64) -> bool {
        self.next <= now_tick
    }

    /// Commit the current [`Timeline::scratch`] values at every grid
    /// point ≤ `now_tick`. The caller guarantees state has been constant
    /// since the previous commit (the engine calls this *between* event
    /// pops), so repeating the same values over a gap is exact.
    pub fn commit_until(&mut self, now_tick: u64) {
        while self.next <= now_tick {
            if self.ticks.len() >= TIMELINE_CAPACITY {
                // Count the whole remaining gap arithmetically instead of
                // spinning one loop iteration per dropped grid point.
                let remaining = (now_tick - self.next) / self.interval + 1;
                self.truncated += remaining;
                self.next += remaining * self.interval;
                return;
            }
            let t = self.next;
            self.next += self.interval;
            self.ticks.push(t);
            for (i, s) in self.series.iter_mut().enumerate() {
                let v = self.scratch[i];
                s.values.push(v);
                if let Some(track) = self.track {
                    recorder::counter(track, s.name, t, v);
                }
            }
        }
    }

    /// Commit through `end_tick` and convert into an immutable
    /// [`TimelineData`].
    pub fn finish(mut self, end_tick: u64) -> TimelineData {
        self.commit_until(end_tick);
        TimelineData {
            interval_ticks: self.interval,
            ticks: self.ticks,
            series: self.series,
            truncated: self.truncated,
        }
    }
}

/// Merge per-group timelines (sharded engine) into one cluster
/// timeline: series match by name in first-seen group order, values sum
/// at aligned grid indices, and shorter series pad with their last value
/// (gauges persist between samples). Deterministic given deterministic
/// inputs in a deterministic order.
pub fn merge(parts: Vec<TimelineData>) -> Option<TimelineData> {
    let mut parts = parts.into_iter();
    let first = parts.next()?;
    let mut interval = first.interval_ticks;
    let mut ticks = first.ticks;
    let mut series = first.series;
    let mut truncated = first.truncated;
    for part in parts {
        interval = interval.min(part.interval_ticks);
        if part.ticks.len() > ticks.len() {
            ticks = part.ticks;
        }
        truncated = truncated.max(part.truncated);
        for ps in part.series {
            match series.iter_mut().find(|s| s.name == ps.name) {
                Some(s) => {
                    let n = s.values.len().max(ps.values.len());
                    let pad = *s.values.last().unwrap_or(&0);
                    while s.values.len() < n {
                        s.values.push(pad);
                    }
                    let ps_pad = *ps.values.last().unwrap_or(&0);
                    for (i, v) in s.values.iter_mut().enumerate() {
                        *v = v.saturating_add(*ps.values.get(i).unwrap_or(&ps_pad));
                    }
                }
                None => series.push(ps),
            }
        }
    }
    for s in &mut series {
        let pad = *s.values.last().unwrap_or(&0);
        while s.values.len() < ticks.len() {
            s.values.push(pad);
        }
        s.values.truncate(ticks.len());
    }
    Some(TimelineData { interval_ticks: interval, ticks, series, truncated })
}

static PUBLISHED: Mutex<Vec<TimelineData>> = Mutex::new(Vec::new());

/// Hand a finished timeline to the process-wide store for
/// [`finish_timelines`] / [`drain`]. Engines publish in completion
/// order; single-run binaries and campaign folds publish exactly once,
/// which is what the determinism guards compare.
pub fn publish(data: TimelineData) {
    PUBLISHED.lock().expect("timeline store lock").push(data);
}

/// Take every published timeline, leaving the store empty.
pub fn drain() -> Vec<TimelineData> {
    std::mem::take(&mut *PUBLISHED.lock().expect("timeline store lock"))
}

/// Render timelines as a deterministic standalone JSON document
/// (integer formatting only — a given input always renders
/// byte-identical bytes).
pub fn render_json(timelines: &[TimelineData]) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\"timelines\":[");
    for (ti, tl) in timelines.iter().enumerate() {
        if ti > 0 {
            out.push(',');
        }
        out.push_str("\n{\"interval_ns\":");
        out.push_str(&(tl.interval_ticks * TICK_NANOS).to_string());
        out.push_str(",\"samples\":");
        out.push_str(&tl.ticks.len().to_string());
        out.push_str(",\"truncated\":");
        out.push_str(&tl.truncated.to_string());
        out.push_str(",\"ticks\":[");
        for (i, t) in tl.ticks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&t.to_string());
        }
        out.push_str("],\"series\":[");
        for (si, s) in tl.series.iter().enumerate() {
            if si > 0 {
                out.push(',');
            }
            out.push_str("\n{\"name\":\"");
            crate::perfetto::escape_into(&mut out, s.name);
            out.push_str("\",\"values\":[");
            for (i, v) in s.values.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&v.to_string());
            }
            out.push_str("]}");
        }
        out.push_str("]}");
    }
    out.push_str("\n]}\n");
    out
}

/// When `MILLER_TIMELINE_OUT` is set, drain the published timelines and
/// write them as standalone JSON, reporting the outcome on stderr.
/// Export failure is reported, not fatal — a missing timeline must never
/// fail the run that produced the results. Call once per binary, after
/// all simulations have finished (next to `finish_profile`).
pub fn finish_timelines() {
    let Some(path) = configured_output_path() else { return };
    let timelines = drain();
    let samples: usize = timelines.iter().map(|t| t.ticks.len()).sum();
    let series: usize = timelines.iter().map(|t| t.series.len()).sum();
    let truncated: u64 = timelines.iter().map(|t| t.truncated).sum();
    let json = render_json(&timelines);
    match std::fs::write(&path, json) {
        Ok(()) => {
            let cut = if truncated > 0 {
                format!(" ({truncated} samples past capacity dropped)")
            } else {
                String::new()
            };
            eprintln!(
                "timeline: wrote {path}: {} timelines, {series} series, {samples} samples{cut}",
                timelines.len()
            );
        }
        Err(e) => eprintln!("timeline: failed to write {path}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(interval: u64, names: &[(&'static str, &[u64])]) -> TimelineData {
        let n = names.iter().map(|(_, v)| v.len()).max().unwrap_or(0);
        TimelineData {
            interval_ticks: interval,
            ticks: (1..=n as u64).map(|k| k * interval).collect(),
            series: names
                .iter()
                .map(|(name, v)| TimelineSeries { name, values: v.to_vec() })
                .collect(),
            truncated: 0,
        }
    }

    #[test]
    fn sampler_commits_on_the_grid_and_repeats_constant_state() {
        let mut tl = Timeline::new(10);
        let a = tl.add_series("a");
        assert!(!tl.due(9));
        tl.scratch[a] = 7;
        assert!(tl.due(10));
        tl.commit_until(10); // exactly one grid point
        tl.scratch[a] = 9;
        tl.commit_until(45); // grid points 20, 30, 40 all see 9
        let d = tl.finish(60); // 50, 60 pad out with the last state
        assert_eq!(d.ticks, [10, 20, 30, 40, 50, 60]);
        assert_eq!(d.series[0].values, [7, 9, 9, 9, 9, 9]);
        assert_eq!(d.truncated, 0);
    }

    #[test]
    fn sampler_truncates_past_capacity_without_growing() {
        let mut tl = Timeline::new(1);
        tl.add_series("x");
        let far = TIMELINE_CAPACITY as u64 + 1000;
        tl.commit_until(far);
        let d = tl.finish(far + 500);
        assert_eq!(d.ticks.len(), TIMELINE_CAPACITY);
        assert_eq!(d.series[0].values.len(), TIMELINE_CAPACITY);
        assert_eq!(d.truncated, 1500);
        assert_eq!(d.ticks.capacity(), TIMELINE_CAPACITY, "never reallocates");
    }

    #[test]
    fn merge_sums_by_name_and_pads_short_series() {
        let a = data(10, &[("cache", &[1, 2, 3]), ("disk0", &[5])]);
        let b = data(10, &[("cache", &[10, 10]), ("procs", &[4, 4, 4])]);
        let m = merge(vec![a, b]).expect("non-empty");
        assert_eq!(m.interval_ticks, 10);
        assert_eq!(m.ticks, [10, 20, 30]);
        let by_name: Vec<_> = m.series.iter().map(|s| (s.name, s.values.clone())).collect();
        assert_eq!(
            by_name,
            [
                ("cache", vec![11, 12, 13]), // b pads its last value (10)
                ("disk0", vec![5, 5, 5]),    // padded to the grid
                ("procs", vec![4, 4, 4]),
            ]
        );
        assert_eq!(merge(Vec::new()), None);
    }

    #[test]
    fn render_json_is_deterministic_and_parses() {
        use serde::Value;
        let d = data(100, &[("cache_resident", &[3, 1]), ("q\"d\"", &[0, 2])]);
        let json = render_json(std::slice::from_ref(&d));
        assert_eq!(json, render_json(&[d]), "byte-identical re-render");
        let v: Value = serde_json::from_str(&json).expect("valid JSON");
        let tl = &v.get("timelines").and_then(Value::as_seq).expect("timelines array")[0];
        assert_eq!(tl.get("interval_ns"), Some(&Value::U64(100 * TICK_NANOS)));
        assert_eq!(tl.get("samples"), Some(&Value::U64(2)));
        let series = tl.get("series").and_then(Value::as_seq).expect("series array");
        assert_eq!(series[0].get("name"), Some(&Value::Str("cache_resident".into())));
        assert_eq!(series[1].get("name"), Some(&Value::Str("q\"d\"".into())));
        assert_eq!(
            series[0].get("values").and_then(Value::as_seq),
            Some(&[Value::U64(3), Value::U64(1)][..])
        );
    }

    #[test]
    fn intern_dedupes() {
        let a = intern_name("gauge_intern_test");
        let b = intern_name("gauge_intern_test");
        assert!(std::ptr::eq(a, b));
    }
}
