//! Zero-overhead-when-disabled observability for the simulator stack.
//!
//! Three layers, each independently usable:
//!
//! * **Counters** ([`counters`]) — plain per-subsystem `u64` registries
//!   (cache probes, timing-wheel cascades, disk seeks, scheduler
//!   dispatches) that are *always* collected. Incrementing an owned
//!   integer costs less than the branch that would gate it, and keeping
//!   them unconditional means the `obs` section of a `SimReport` is
//!   byte-identical whether or not profiling is on — the determinism
//!   guard in `crates/experiments/tests/observability.rs` pins this.
//! * **Span recorder** ([`recorder`]) — a lock-free, fixed-capacity
//!   flight recorder for timeline events on two clock domains: the
//!   simulated clock (per-process and per-disk tracks) and the monotonic
//!   host clock (per sweep-worker tracks). Disabled by default; the
//!   [`enabled`] fast path is a single relaxed atomic load, so the
//!   simulator's zero-allocation request path and events-per-second
//!   numbers are unchanged when nobody is profiling.
//! * **Exporter** ([`perfetto`]) — serializes the recorder into Chrome
//!   trace-event JSON loadable by `ui.perfetto.dev` (and `chrome://
//!   tracing`). Wired into every `repro_*` binary via `--profile <path>`
//!   or `MILLER_PROFILE=<path>` (see [`profile::apply_profile_flag`]).
//!
//! The crate deliberately depends only on `sim-core` (for
//! [`sim_core::Histogram`] in the disk counters); every other crate in
//! the workspace depends on *it*, so instrumentation points never create
//! a dependency cycle.

pub mod counters;
pub mod metrics;
pub mod perfetto;
pub mod profile;
pub mod recorder;
pub mod timeline;

pub use counters::{CacheCounters, DiskCounters, ObsReport, SchedCounters};
pub use perfetto::{chrome_trace_json, export_chrome_trace, ExportSummary};
pub use profile::{
    add_sim_events, apply_profile_capacity_flag, apply_profile_flag, finish_profile, next_sim_id,
    next_sweep_id, sim_events_total,
};
pub use recorder::{
    complete, configured_capacity, counter, enabled, host_now_ns, init, instant, register_track,
    reset, set_enabled, summary, Domain, RecorderSummary, Track,
};
pub use timeline::{apply_timeline_flags, finish_timelines, Timeline, TimelineData};
