//! Per-subsystem counter registries, exported as the `obs` section of
//! `SimReport` JSON.
//!
//! Counters are **always** collected — the increments are owned-`u64`
//! adds on paths that already touch the same cache lines — so the `obs`
//! section does not depend on whether span recording is enabled. That is
//! what makes the determinism guarantee ("profiling on vs off produces
//! byte-identical result JSON") hold without a parallel "counters off"
//! code path to test.
//!
//! The timing-wheel counters live in `sim_core::QueueStats` (the queue
//! cannot depend on this crate), and are re-aggregated here.

use serde::{Deserialize, Serialize};
use sim_core::{Histogram, QueueStats};

/// Buffer-cache counters beyond the paper-facing `CacheStats`: index
/// behavior and flush batching, the knobs that decide the cache's host
/// cost rather than its simulated policy outcome.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheCounters {
    /// Blocks found resident (mirrors `CacheStats::hit_blocks`).
    pub hit_blocks: u64,
    /// Blocks fetched from the device (mirrors `CacheStats::miss_blocks`).
    pub miss_blocks: u64,
    /// Clean blocks evicted.
    pub clean_evictions: u64,
    /// Dirty blocks evicted (each implies a device writeback).
    pub dirty_evictions: u64,
    /// Page-index probes answered by the caller-carried page hint
    /// (no hash lookup).
    pub hinted_index_probes: u64,
    /// Page-index probes that fell through to the hash map (cold or
    /// stale hint).
    pub unhinted_index_probes: u64,
    /// Non-empty flush batches handed to the flusher streams.
    pub flush_batches: u64,
}

impl CacheCounters {
    /// Fold another partition's counters in (cross-shard aggregation).
    pub fn merge(&mut self, other: &CacheCounters) {
        self.hit_blocks += other.hit_blocks;
        self.miss_blocks += other.miss_blocks;
        self.clean_evictions += other.clean_evictions;
        self.dirty_evictions += other.dirty_evictions;
        self.hinted_index_probes += other.hinted_index_probes;
        self.unhinted_index_probes += other.unhinted_index_probes;
        self.flush_batches += other.flush_batches;
    }
}

/// Disk-model counters: seek behavior across the farm.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DiskCounters {
    /// Accesses that moved the head (paid seek + rotation).
    pub seeks: u64,
    /// Accesses exactly sequential with the previous one (free
    /// positioning).
    pub sequential_accesses: u64,
    /// Power-of-two histogram of seek distances in bytes; `None` until a
    /// disk contributes one (e.g. a report built by hand).
    pub seek_distance_bytes: Option<Histogram>,
    /// Power-of-two histogram of the queue depth each arriving request
    /// observed; `None` unless a queueing device model contributed one
    /// (the paper's no-queueing mode never does).
    pub queue_depth: Option<Histogram>,
    /// Tiered hierarchy: segments copied into a faster tier.
    pub tier_promotions: u64,
    /// Tiered hierarchy: segments evicted from a bounded tier.
    pub tier_demotions: u64,
    /// Tiered hierarchy: reads served per tier `[ram, ssd, disk, tape]`;
    /// empty when no tiered device is configured.
    pub tier_hits: Vec<u64>,
}

impl DiskCounters {
    /// Fold another disk's counters in (farm aggregation).
    pub fn merge(&mut self, other: &DiskCounters) {
        self.seeks += other.seeks;
        self.sequential_accesses += other.sequential_accesses;
        self.tier_promotions += other.tier_promotions;
        self.tier_demotions += other.tier_demotions;
        if self.tier_hits.len() < other.tier_hits.len() {
            self.tier_hits.resize(other.tier_hits.len(), 0);
        }
        for (slot, n) in self.tier_hits.iter_mut().zip(&other.tier_hits) {
            *slot += n;
        }
        match (&mut self.queue_depth, &other.queue_depth) {
            (Some(a), Some(b)) => a.merge(b),
            (slot @ None, Some(b)) => *slot = Some(b.clone()),
            (_, None) => {}
        }
        match (&mut self.seek_distance_bytes, &other.seek_distance_bytes) {
            (Some(a), Some(b)) => a.merge(b),
            (slot @ None, Some(b)) => *slot = Some(b.clone()),
            (_, None) => {}
        }
    }
}

/// Scheduler counters.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedCounters {
    /// Dispatches (each charges one context switch).
    pub context_switches: u64,
    /// Synchronous requests that actually blocked their process.
    pub sync_blocks: u64,
    /// Transitions from "some CPU busy or runnable work pending" to
    /// "every CPU idle with nothing runnable" — the §6.2 stall signature.
    pub idle_transitions: u64,
}

impl SchedCounters {
    /// Fold another scheduler's counters in (cross-shard aggregation).
    pub fn merge(&mut self, other: &SchedCounters) {
        self.context_switches += other.context_switches;
        self.sync_blocks += other.sync_blocks;
        self.idle_transitions += other.idle_transitions;
    }
}

/// The `obs` section of a `SimReport`: every subsystem's counters for
/// one run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ObsReport {
    /// Scheduler/dispatch counters.
    pub scheduler: SchedCounters,
    /// Buffer-cache index and flush counters (zeroed when uncached).
    pub cache: CacheCounters,
    /// Timing-wheel event-queue counters.
    pub timing_wheel: QueueStats,
    /// Aggregated disk-farm counters.
    pub disks: DiskCounters,
}

impl ObsReport {
    /// Fold another group's report in: every subsystem's counters sum.
    /// Sharded runs use this to aggregate per-shard reports into the
    /// cluster-wide `obs` section.
    pub fn merge(&mut self, other: &ObsReport) {
        self.scheduler.merge(&other.scheduler);
        self.cache.merge(&other.cache);
        self.timing_wheel.merge(&other.timing_wheel);
        self.disks.merge(&other.disks);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disk_counters_merge_aggregates() {
        let mut h1 = Histogram::pow2(4096, 1 << 20);
        h1.record(5000.0);
        let mut h2 = Histogram::pow2(4096, 1 << 20);
        h2.record(100_000.0);
        h2.record(200_000.0);
        let mut a = DiskCounters {
            seeks: 1,
            sequential_accesses: 10,
            seek_distance_bytes: Some(h1),
            tier_hits: vec![5, 1],
            ..Default::default()
        };
        let b = DiskCounters {
            seeks: 2,
            sequential_accesses: 20,
            seek_distance_bytes: Some(h2),
            tier_promotions: 7,
            tier_hits: vec![1, 2, 3, 4],
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.seeks, 3);
        assert_eq!(a.sequential_accesses, 30);
        assert_eq!(a.seek_distance_bytes.as_ref().unwrap().total(), 3);
        assert_eq!(a.tier_promotions, 7);
        // Shorter tier vectors widen to the longer side, element-wise.
        assert_eq!(a.tier_hits, vec![6, 3, 3, 4]);

        // Merging into a None slot adopts the histogram.
        let mut empty = DiskCounters::default();
        empty.merge(&a);
        assert_eq!(empty.seek_distance_bytes.as_ref().unwrap().total(), 3);
        // And merging a None source is a no-op on the histogram.
        empty.merge(&DiskCounters::default());
        assert_eq!(empty.seek_distance_bytes.as_ref().unwrap().total(), 3);
    }

    #[test]
    fn queue_depth_histogram_merges_like_seek_distance() {
        let mut h1 = Histogram::pow2(1, 256);
        h1.record(2.0);
        let mut h2 = Histogram::pow2(1, 256);
        h2.record(7.0);
        let mut a = DiskCounters { queue_depth: Some(h1), ..Default::default() };
        let b = DiskCounters { queue_depth: Some(h2), ..Default::default() };
        a.merge(&b);
        assert_eq!(a.queue_depth.as_ref().unwrap().total(), 2);
        // None slots adopt; None sources are no-ops.
        let mut empty = DiskCounters::default();
        empty.merge(&a);
        assert_eq!(empty.queue_depth.as_ref().unwrap().total(), 2);
        empty.merge(&DiskCounters::default());
        assert_eq!(empty.queue_depth.as_ref().unwrap().total(), 2);
    }

    #[test]
    fn report_merge_sums_every_subsystem() {
        let mut a = ObsReport::default();
        a.scheduler.context_switches = 3;
        a.cache.hit_blocks = 10;
        a.timing_wheel.inserts = 100;
        a.disks.seeks = 1;
        let mut b = ObsReport::default();
        b.scheduler.context_switches = 4;
        b.scheduler.sync_blocks = 2;
        b.cache.hit_blocks = 5;
        b.cache.flush_batches = 6;
        b.timing_wheel.inserts = 50;
        b.timing_wheel.cascades = 7;
        b.disks.seeks = 2;
        a.merge(&b);
        assert_eq!(a.scheduler.context_switches, 7);
        assert_eq!(a.scheduler.sync_blocks, 2);
        assert_eq!(a.cache.hit_blocks, 15);
        assert_eq!(a.cache.flush_batches, 6);
        assert_eq!(a.timing_wheel.inserts, 150);
        assert_eq!(a.timing_wheel.cascades, 7);
        assert_eq!(a.disks.seeks, 3);
    }

    #[test]
    fn obs_report_roundtrips_through_json() {
        let mut r = ObsReport::default();
        r.scheduler.context_switches = 7;
        r.cache.hinted_index_probes = 5;
        r.timing_wheel.inserts = 9;
        let json = serde_json::to_string(&r).expect("serializes");
        assert!(json.contains("\"timing_wheel\""));
        assert!(json.contains("\"hinted_index_probes\""));
        let back: ObsReport = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back.scheduler, r.scheduler);
        assert_eq!(back.cache, r.cache);
        assert_eq!(back.timing_wheel.inserts, 9);
    }
}
