//! Chrome trace-event JSON export, loadable in `ui.perfetto.dev`.
//!
//! The format is the venerable JSON array flavor: one object per event,
//! `ph:"X"` complete spans (timestamp + duration, so no begin/end pair
//! matching), `ph:"i"` instants, and `ph:"M"` metadata naming the
//! processes and threads. Two synthetic "processes" separate the clock
//! domains:
//!
//! * **pid 1 — simulated time.** One "thread" per simulated process and
//!   per disk. Timestamps are sim ticks converted to microseconds
//!   (1 tick = 10 µs), so the Perfetto timeline reads directly in
//!   simulated wall time.
//! * **pid 2 — host time.** One "thread" per sweep worker. Timestamps
//!   are nanoseconds since the profiling epoch, emitted at µs precision
//!   with a fractional part.
//!
//! Everything is written with deterministic integer formatting — no
//! float-to-shortest codecs — so a given recorder state always exports
//! byte-identical JSON.

use crate::recorder::{Domain, Kind, RawEvent, TrackInfo, NO_ARG};
use sim_core::TICK_MICROS;
use std::path::Path;

/// What an export wrote.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExportSummary {
    /// Span/instant events exported.
    pub events: u64,
    /// Events that were dropped by the ring and are *not* in the file.
    pub dropped: u64,
    /// Tracks (Perfetto thread rows) named in the file.
    pub tracks: usize,
}

fn pid(domain: Domain) -> u32 {
    match domain {
        Domain::Sim => 1,
        Domain::Host => 2,
    }
}

/// Escape a string for a JSON string literal (track names are the only
/// dynamic strings; event names are `&'static str` identifiers).
pub(crate) fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Append a timestamp in µs for `domain`: sim ticks are exact multiples
/// of 10 µs; host ns are written as `µs.3-digit-fraction`.
fn ts_into(out: &mut String, domain: Domain, raw: u64) {
    match domain {
        Domain::Sim => {
            out.push_str(&(raw * TICK_MICROS).to_string());
        }
        Domain::Host => {
            out.push_str(&format!("{}.{:03}", raw / 1000, raw % 1000));
        }
    }
}

/// Render the current recorder contents as a Chrome trace-event JSON
/// document.
pub fn chrome_trace_json() -> (String, ExportSummary) {
    let snapshot = crate::recorder::snapshot();
    render(&snapshot.events, &snapshot.tracks, snapshot.dropped)
}

fn render(events: &[RawEvent], tracks: &[TrackInfo], dropped: u64) -> (String, ExportSummary) {
    // ~120 bytes per event plus headroom for metadata.
    let mut out = String::with_capacity(events.len() * 120 + tracks.len() * 120 + 512);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    let mut first = true;
    let push_sep = |out: &mut String, first: &mut bool| {
        if *first {
            *first = false;
        } else {
            out.push_str(",\n");
        }
    };

    // Process metadata for the two clock domains (emitted whether or not
    // a domain has tracks — two constant rows cost nothing).
    for (p, name) in [(1u32, "simulated time"), (2u32, "host")] {
        push_sep(&mut out, &mut first);
        out.push_str(&format!(
            "{{\"ph\":\"M\",\"pid\":{p},\"tid\":0,\"name\":\"process_name\",\
             \"args\":{{\"name\":\"{name}\"}}}}"
        ));
    }
    // Thread (track) metadata. tid = track index + 1 (0 is the metadata
    // row above).
    for (i, t) in tracks.iter().enumerate() {
        push_sep(&mut out, &mut first);
        out.push_str(&format!(
            "{{\"ph\":\"M\",\"pid\":{},\"tid\":{},\"name\":\"thread_name\",\"args\":{{\"name\":\"",
            pid(t.domain),
            i + 1
        ));
        escape_into(&mut out, &t.name);
        out.push_str("\"}}");
    }

    let mut exported = 0u64;
    for ev in events {
        // An event on an unregistered track can only mean a torn test
        // sequence; skip rather than emit a row Perfetto cannot place.
        let Some(track) = tracks.get(ev.track as usize) else { continue };
        push_sep(&mut out, &mut first);
        exported += 1;
        let p = pid(track.domain);
        let tid = ev.track + 1;
        match ev.kind {
            Kind::Complete => {
                out.push_str(&format!(
                    "{{\"ph\":\"X\",\"pid\":{p},\"tid\":{tid},\"name\":\"{}\",\"cat\":\"{}\",\"ts\":",
                    ev.name,
                    cat(track.domain),
                ));
                ts_into(&mut out, track.domain, ev.ts);
                out.push_str(",\"dur\":");
                ts_into(&mut out, track.domain, ev.dur);
            }
            Kind::Instant => {
                out.push_str(&format!(
                    "{{\"ph\":\"i\",\"pid\":{p},\"tid\":{tid},\"name\":\"{}\",\"cat\":\"{}\",\"s\":\"t\",\"ts\":",
                    ev.name,
                    cat(track.domain),
                ));
                ts_into(&mut out, track.domain, ev.ts);
            }
            Kind::Counter => {
                // Perfetto renders one counter plot per (track, name);
                // the sampled value arrives through the shared
                // `args.value` tail below (counter emits never carry the
                // NO_ARG sentinel).
                out.push_str(&format!(
                    "{{\"ph\":\"C\",\"pid\":{p},\"tid\":{tid},\"name\":\"{}\",\"cat\":\"{}\",\"ts\":",
                    ev.name,
                    cat(track.domain),
                ));
                ts_into(&mut out, track.domain, ev.ts);
            }
        }
        if ev.arg != NO_ARG {
            out.push_str(&format!(",\"args\":{{\"value\":{}}}", ev.arg));
        }
        out.push('}');
    }
    out.push_str("\n]}\n");
    (
        out,
        ExportSummary { events: exported, dropped, tracks: tracks.len() },
    )
}

fn cat(domain: Domain) -> &'static str {
    match domain {
        Domain::Sim => "sim",
        Domain::Host => "host",
    }
}

/// Write the current recorder contents to `path` as Chrome trace-event
/// JSON. Call after profiled work has quiesced (workers joined).
pub fn export_chrome_trace(path: &Path) -> std::io::Result<ExportSummary> {
    let (json, summary) = chrome_trace_json();
    std::fs::write(path, json)?;
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_deterministic_chrome_json() {
        let tracks = vec![
            TrackInfo { name: "sim0:venus#1".into(), domain: Domain::Sim },
            TrackInfo { name: "sweep0 \"w0\"".into(), domain: Domain::Host },
        ];
        let events = vec![
            RawEvent {
                track: 0,
                kind: Kind::Complete,
                name: "run",
                ts: 100,
                dur: 25,
                arg: NO_ARG,
            },
            RawEvent {
                track: 1,
                kind: Kind::Complete,
                name: "point",
                ts: 1_234_567,
                dur: 2_000,
                arg: 3,
            },
            RawEvent { track: 0, kind: Kind::Instant, name: "mark", ts: 130, dur: 0, arg: NO_ARG },
            // Unregistered track: skipped, not emitted.
            RawEvent { track: 9, kind: Kind::Instant, name: "lost", ts: 0, dur: 0, arg: NO_ARG },
        ];
        let (json, summary) = render(&events, &tracks, 5);
        assert_eq!(summary.events, 3);
        assert_eq!(summary.dropped, 5);
        assert_eq!(summary.tracks, 2);
        // Sim ticks ×10 µs; host ns → µs with 3-digit fraction.
        assert!(json.contains("\"ts\":1000,\"dur\":250"), "{json}");
        assert!(json.contains("\"ts\":1234.567,\"dur\":2.000"), "{json}");
        assert!(json.contains("\\\"w0\\\""), "track names must be escaped: {json}");
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("\"thread_name\""));
        assert!(!json.contains("lost"));
        assert!(json.starts_with("{\"displayTimeUnit\""));
        assert!(json.trim_end().ends_with("]}"));
        // Byte-identical on re-render.
        assert_eq!(render(&events, &tracks, 5).0, json);
    }

    /// Parse a rendered document with the (stand-in) `serde_json` and
    /// return the `traceEvents` array.
    fn parse_events(json: &str) -> Vec<serde::Value> {
        let v: serde::Value = serde_json::from_str(json).expect("exporter must emit valid JSON");
        v.get("traceEvents")
            .and_then(serde::Value::as_seq)
            .expect("traceEvents array")
            .to_vec()
    }

    fn str_field<'a>(ev: &'a serde::Value, key: &str) -> &'a str {
        match ev.get(key) {
            Some(serde::Value::Str(s)) => s,
            other => panic!("field {key}: expected string, got {other:?}"),
        }
    }

    fn u64_field(ev: &serde::Value, key: &str) -> u64 {
        match ev.get(key) {
            Some(serde::Value::U64(n)) => *n,
            other => panic!("field {key}: expected u64, got {other:?}"),
        }
    }

    #[test]
    fn export_parses_and_counter_samples_are_time_sorted() {
        let tracks = vec![
            TrackInfo { name: "sim0:gauges".into(), domain: Domain::Sim },
            TrackInfo { name: "sim0:venus#1".into(), domain: Domain::Sim },
        ];
        // Counter samples as the engine's timeline sampler emits them:
        // grid order per gauge, interleaved across gauges.
        let mut events = Vec::new();
        for t in [100u64, 200, 300, 400] {
            for (name, v) in [("cache_resident_blocks", t / 10), ("wheel_len", 7u64)] {
                events.push(RawEvent {
                    track: 0,
                    kind: Kind::Counter,
                    name,
                    ts: t,
                    dur: 0,
                    arg: v,
                });
            }
        }
        events.push(RawEvent {
            track: 1,
            kind: Kind::Complete,
            name: "run",
            ts: 50,
            dur: 500,
            arg: NO_ARG,
        });
        let (json, summary) = render(&events, &tracks, 0);
        assert_eq!(summary.events, 9);
        let parsed = parse_events(&json);
        // Every counter sample carries ph:"C", a value, and per
        // (tid, name) the timestamps are nondecreasing.
        let mut last_ts: Vec<((u64, String), u64)> = Vec::new();
        let mut counters = 0;
        for ev in parsed.iter().filter(|e| e.get("ph").is_some()) {
            if str_field(ev, "ph") != "C" {
                continue;
            }
            counters += 1;
            let value = ev
                .get("args")
                .and_then(|a| a.get("value"))
                .expect("counter sample must carry args.value");
            assert!(matches!(value, serde::Value::U64(_)), "numeric value, got {value:?}");
            let key = (u64_field(ev, "tid"), str_field(ev, "name").to_string());
            let ts = u64_field(ev, "ts");
            match last_ts.iter_mut().find(|(k, _)| *k == key) {
                Some((_, prev)) => {
                    assert!(ts >= *prev, "counter track {key:?} not time-sorted");
                    *prev = ts;
                }
                None => last_ts.push((key, ts)),
            }
        }
        assert_eq!(counters, 8);
        assert_eq!(last_ts.len(), 2, "one plot per (track, gauge name)");
    }

    #[test]
    fn track_names_are_unique_per_pid() {
        // The engine guarantees uniqueness by prefixing every track with
        // its simulation id ("sim3:disk0") or worker id ("shard1");
        // assert the rendered metadata preserves that: no two thread
        // rows of one pid share a name or a tid.
        let tracks = vec![
            TrackInfo { name: "sim0:gauges".into(), domain: Domain::Sim },
            TrackInfo { name: "sim0:venus#1".into(), domain: Domain::Sim },
            TrackInfo { name: "sim0:disk0".into(), domain: Domain::Sim },
            TrackInfo { name: "sim1:disk0".into(), domain: Domain::Sim },
            TrackInfo { name: "shard0".into(), domain: Domain::Host },
            TrackInfo { name: "shard1".into(), domain: Domain::Host },
        ];
        let (json, _) = render(&[], &tracks, 0);
        let parsed = parse_events(&json);
        let mut seen_names: Vec<(u64, String)> = Vec::new();
        let mut seen_tids: Vec<(u64, u64)> = Vec::new();
        for ev in &parsed {
            if str_field(ev, "ph") != "M" || str_field(ev, "name") != "thread_name" {
                continue;
            }
            let pid = u64_field(ev, "pid");
            let tid = u64_field(ev, "tid");
            let name = ev
                .get("args")
                .and_then(|a| a.get("name"))
                .map(|v| match v {
                    serde::Value::Str(s) => s.clone(),
                    other => panic!("thread name must be a string, got {other:?}"),
                })
                .expect("thread_name args.name");
            assert!(
                !seen_names.contains(&(pid, name.clone())),
                "duplicate track name {name:?} in pid {pid}"
            );
            assert!(!seen_tids.contains(&(pid, tid)), "duplicate tid {tid} in pid {pid}");
            seen_names.push((pid, name));
            seen_tids.push((pid, tid));
        }
        assert_eq!(seen_names.len(), tracks.len());
    }
}
