//! The lock-free span/event flight recorder.
//!
//! Design constraints, in priority order:
//!
//! 1. **Invisible when off.** [`enabled`] is one relaxed atomic load and
//!    every emit helper checks it first, so the disabled hot path costs a
//!    predictable branch and nothing else — no allocation, no locking, no
//!    clock read.
//! 2. **Allocation-free when on.** The slot array is allocated once at
//!    [`init`]; emitting claims a slot with a single `fetch_add` and
//!    writes a fixed-size [`RawEvent`] in place. When the ring is full,
//!    events are *dropped and counted* rather than wrapping — overwriting
//!    a slot another thread may be reading would be a data race, and a
//!    bounded trace with an honest drop counter beats a corrupt one.
//! 3. **Deterministic simulation.** Nothing here feeds back into the
//!    simulator: spans carry timestamps out, never state in.
//!
//! Track registration (naming a timeline) takes a mutex and allocates;
//! it happens a handful of times per simulation, never per event.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Default ring capacity in events (1 Mi slots × 48 B ≈ 48 MB). Override
/// with `--profile-capacity`/`MILLER_PROFILE_CAPACITY=<events>` (legacy
/// spelling `MILLER_PROFILE_CAP` still honored) before the recorder
/// first initializes.
pub const DEFAULT_CAPACITY: usize = 1 << 20;

/// Sentinel for "no argument" on a span.
pub(crate) const NO_ARG: u64 = u64::MAX;

/// Which clock a track's timestamps are on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Domain {
    /// Simulated time, in ticks (10 µs each).
    Sim,
    /// Host monotonic time, in nanoseconds since [`host_now_ns`]'s epoch.
    Host,
}

/// Handle to a registered timeline (a Perfetto "thread" row).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Track(pub(crate) u32);

/// What a recorded event is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Kind {
    /// A span with a known duration (Chrome `ph:"X"`).
    Complete,
    /// A point-in-time marker (Chrome `ph:"i"`).
    Instant,
    /// A counter-track sample (Chrome `ph:"C"`); the gauge value rides
    /// in `arg`.
    Counter,
}

/// One fixed-size recorded event. `ts`/`dur` are in the track's domain
/// units (sim ticks or host nanoseconds).
#[derive(Debug, Clone, Copy)]
pub(crate) struct RawEvent {
    pub track: u32,
    pub kind: Kind,
    pub name: &'static str,
    pub ts: u64,
    pub dur: u64,
    /// Free-form numeric payload (bytes, point index); `NO_ARG` = none.
    pub arg: u64,
}

/// Slot states for the publish protocol.
const EMPTY: u8 = 0;
const READY: u8 = 1;

struct Slot {
    /// `EMPTY` until the writer's `Release` store publishes the payload;
    /// readers observe the payload only after an `Acquire` load of
    /// `READY`.
    state: AtomicU8,
    ev: UnsafeCell<MaybeUninit<RawEvent>>,
}

// SAFETY: a slot index is handed to exactly one writer by the ring's
// `fetch_add` claim counter, so at most one thread ever writes a given
// `ev` cell, and it does so before the `Release` store of `READY`.
// Readers only dereference the cell after observing `READY` with
// `Acquire`, which orders the payload write before the read. `reset`
// additionally requires external quiescence (documented there).
unsafe impl Sync for Slot {}

pub(crate) struct TrackInfo {
    pub name: String,
    pub domain: Domain,
}

pub(crate) struct Recorder {
    slots: Box<[Slot]>,
    /// Next slot to claim; values ≥ `slots.len()` mean "dropped".
    next: AtomicUsize,
    dropped: AtomicU64,
    pub(crate) tracks: Mutex<Vec<TrackInfo>>,
}

impl Recorder {
    fn with_capacity(capacity: usize) -> Recorder {
        let capacity = capacity.max(1);
        Recorder {
            slots: (0..capacity)
                .map(|_| Slot {
                    state: AtomicU8::new(EMPTY),
                    ev: UnsafeCell::new(MaybeUninit::uninit()),
                })
                .collect(),
            next: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
            tracks: Mutex::new(Vec::new()),
        }
    }

    fn emit(&self, ev: RawEvent) {
        let idx = self.next.fetch_add(1, Ordering::Relaxed);
        let Some(slot) = self.slots.get(idx) else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        };
        // SAFETY: `idx` was claimed exclusively above; see `Slot`'s
        // `Sync` safety comment for the publish protocol.
        unsafe { (*slot.ev.get()).write(ev) };
        slot.state.store(READY, Ordering::Release);
    }

    /// Snapshot every published event, in claim order.
    pub(crate) fn collect(&self) -> Vec<RawEvent> {
        let hwm = self.next.load(Ordering::Acquire).min(self.slots.len());
        let mut out = Vec::with_capacity(hwm);
        for slot in &self.slots[..hwm] {
            if slot.state.load(Ordering::Acquire) == READY {
                // SAFETY: `READY` (Acquire) orders the writer's payload
                // store before this read, and the payload is `Copy`.
                out.push(unsafe { (*slot.ev.get()).assume_init() });
            }
        }
        out
    }
}

/// A coherent copy of the recorder for export: published events in
/// claim order, track metadata, and the drop count.
pub(crate) struct Snapshot {
    pub events: Vec<RawEvent>,
    pub tracks: Vec<TrackInfo>,
    pub dropped: u64,
}

/// Copy the recorder out (empty when never initialized). Meaningful
/// only after emitters have quiesced.
pub(crate) fn snapshot() -> Snapshot {
    match RECORDER.get() {
        Some(r) => Snapshot {
            events: r.collect(),
            tracks: r
                .tracks
                .lock()
                .expect("track registry lock")
                .iter()
                .map(|t| TrackInfo { name: t.name.clone(), domain: t.domain })
                .collect(),
            dropped: r.dropped.load(Ordering::Relaxed),
        },
        None => Snapshot { events: Vec::new(), tracks: Vec::new(), dropped: 0 },
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static RECORDER: OnceLock<Recorder> = OnceLock::new();
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// True when span recording is on. One relaxed load — callers are
/// expected to guard *all* per-event work behind this.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Allocate the ring with an explicit capacity (events). Returns false
/// when a recorder already exists (the first capacity wins). Without an
/// explicit call, the first enable allocates [`configured_capacity`]
/// slots.
pub fn init(capacity: usize) -> bool {
    let mut fresh = false;
    RECORDER.get_or_init(|| {
        fresh = true;
        Recorder::with_capacity(capacity)
    });
    fresh
}

/// The ring capacity the environment asks for:
/// `MILLER_PROFILE_CAPACITY`, then the legacy `MILLER_PROFILE_CAP`
/// spelling, then [`DEFAULT_CAPACITY`]. This is what a lazily-created
/// recorder allocates; an explicit [`init`] beforehand overrides it.
pub fn configured_capacity() -> usize {
    for var in ["MILLER_PROFILE_CAPACITY", "MILLER_PROFILE_CAP"] {
        if let Ok(raw) = std::env::var(var) {
            if let Ok(c) = raw.trim().parse::<usize>() {
                if c >= 1 {
                    return c;
                }
            }
        }
    }
    DEFAULT_CAPACITY
}

fn recorder() -> &'static Recorder {
    RECORDER.get_or_init(|| Recorder::with_capacity(configured_capacity()))
}

/// Turn span recording on or off. Enabling allocates the ring on first
/// use so the emit path never has to.
pub fn set_enabled(on: bool) {
    if on {
        let _ = recorder();
        let _ = EPOCH.get_or_init(Instant::now);
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// Nanoseconds since the process-wide profiling epoch (first enable).
/// Monotonic; usable even while disabled (epoch initializes on demand).
#[inline]
pub fn host_now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Register a named timeline in `domain`. Takes a lock and allocates —
/// call once per process/disk/worker, not per event.
pub fn register_track(domain: Domain, name: impl Into<String>) -> Track {
    let r = recorder();
    let mut tracks = r.tracks.lock().expect("track registry lock");
    tracks.push(TrackInfo { name: name.into(), domain });
    Track((tracks.len() - 1) as u32)
}

/// Record a span with a known duration. `ts`/`dur` are in the track's
/// domain units (sim ticks or host ns). No-op while disabled.
#[inline]
pub fn complete(track: Track, name: &'static str, ts: u64, dur: u64, arg: Option<u64>) {
    if !enabled() {
        return;
    }
    if let Some(r) = RECORDER.get() {
        r.emit(RawEvent {
            track: track.0,
            kind: Kind::Complete,
            name,
            ts,
            dur,
            arg: arg.unwrap_or(NO_ARG),
        });
    }
}

/// Record one sample on a counter track (a gauge value at an instant;
/// rendered as a Perfetto counter, `ph:"C"`). `value` must not be
/// `u64::MAX` (the internal no-argument sentinel) — gauge values are
/// small counts, so this never bites in practice. No-op while disabled.
#[inline]
pub fn counter(track: Track, name: &'static str, ts: u64, value: u64) {
    if !enabled() {
        return;
    }
    if let Some(r) = RECORDER.get() {
        r.emit(RawEvent {
            track: track.0,
            kind: Kind::Counter,
            name,
            ts,
            dur: 0,
            arg: value,
        });
    }
}

/// Record an instantaneous marker. No-op while disabled.
#[inline]
pub fn instant(track: Track, name: &'static str, ts: u64, arg: Option<u64>) {
    if !enabled() {
        return;
    }
    if let Some(r) = RECORDER.get() {
        r.emit(RawEvent {
            track: track.0,
            kind: Kind::Instant,
            name,
            ts,
            dur: 0,
            arg: arg.unwrap_or(NO_ARG),
        });
    }
}

/// Recorder occupancy snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecorderSummary {
    /// Events successfully recorded (ring occupancy).
    pub recorded: u64,
    /// Events dropped because the ring was full.
    pub dropped: u64,
    /// Ring capacity in events.
    pub capacity: usize,
    /// Registered tracks.
    pub tracks: usize,
}

/// Current recorder occupancy; zeros when never initialized.
pub fn summary() -> RecorderSummary {
    match RECORDER.get() {
        Some(r) => RecorderSummary {
            recorded: r.next.load(Ordering::Relaxed).min(r.slots.len()) as u64,
            dropped: r.dropped.load(Ordering::Relaxed),
            capacity: r.slots.len(),
            tracks: r.tracks.lock().expect("track registry lock").len(),
        },
        None => RecorderSummary { recorded: 0, dropped: 0, capacity: 0, tracks: 0 },
    }
}

/// Discard all recorded events (tracks keep their names and handles).
///
/// Callers must guarantee quiescence: no concurrent emitters. The
/// intended use is between benchmark phases and in tests, after worker
/// threads have joined.
pub fn reset() {
    let Some(r) = RECORDER.get() else { return };
    let hwm = r.next.load(Ordering::Relaxed).min(r.slots.len());
    for slot in &r.slots[..hwm] {
        slot.state.store(EMPTY, Ordering::Relaxed);
    }
    r.next.store(0, Ordering::Release);
    r.dropped.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    // Tests in one binary run concurrently but share the global
    // recorder and enabled flag, so everything lives in a single test
    // function and phases run in a known order.
    #[test]
    fn record_collect_drop_reset_and_stress() {
        assert!(!enabled(), "recording must start disabled");
        // Size the ring through the `--profile-capacity` flag: it is
        // consumed from the args, exported for child processes, and
        // allocates the ring before any lazy initialization can.
        assert_eq!(configured_capacity(), DEFAULT_CAPACITY);
        let mut cap_args: Vec<String> =
            ["bin", "--profile-capacity", "8", "--quick"].map(String::from).into();
        let cap = crate::profile::apply_profile_capacity_flag(&mut cap_args).expect("well-formed");
        assert_eq!(cap, Some(8));
        assert_eq!(cap_args, ["bin", "--quick"]);
        assert_eq!(std::env::var("MILLER_PROFILE_CAPACITY").as_deref(), Ok("8"));
        assert_eq!(configured_capacity(), 8);

        // Disabled: emits are no-ops.
        let t = register_track(Domain::Sim, "quiet");
        complete(t, "ignored", 0, 5, None);
        assert_eq!(summary().recorded, 0);

        // The `--profile` flag is both consumed from the args and enables
        // recording (tested here because it flips the shared flag).
        let mut args: Vec<String> =
            ["bin", "--quick", "--profile", "out.json", "--json", "x"].map(String::from).into();
        let path = crate::profile::apply_profile_flag(&mut args).expect("well-formed");
        assert_eq!(path.as_deref(), Some("out.json"));
        assert_eq!(args, ["bin", "--quick", "--json", "x"]);
        assert!(enabled());
        complete(t, "a", 10, 5, Some(42));
        instant(t, "b", 20, None);
        let events = recorder().collect();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "a");
        assert_eq!(events[0].ts, 10);
        assert_eq!(events[0].dur, 5);
        assert_eq!(events[0].arg, 42);
        assert_eq!(events[1].kind, Kind::Instant);
        assert_eq!(events[1].arg, NO_ARG);

        // Fill the ring: overflow drops and counts, never wraps.
        for i in 0..20 {
            complete(t, "spam", i, 1, None);
        }
        let s = summary();
        assert_eq!(s.capacity, 8);
        assert_eq!(s.recorded, 8);
        assert_eq!(s.dropped, 22 - 8);
        assert_eq!(recorder().collect().len(), 8);

        set_enabled(false);
        complete(t, "after", 0, 1, None);
        assert_eq!(summary().recorded, 8, "disabled emit must not record");

        reset();
        let s = summary();
        assert_eq!((s.recorded, s.dropped), (0, 0));
        assert_eq!(recorder().collect().len(), 0);
        assert_eq!(s.tracks, 1, "reset keeps track names");

        // Host clock is monotonic.
        let a = host_now_ns();
        let b = host_now_ns();
        assert!(b >= a);

        // Concurrent emitters into the tiny ring: every published event
        // must come back intact (drops are fine, corruption is not).
        set_enabled(true);
        let t2 = register_track(Domain::Host, "stress");
        std::thread::scope(|s| {
            for w in 0..4u64 {
                s.spawn(move || {
                    for i in 0..1000u64 {
                        complete(t2, "op", w * 10_000 + i, 1, Some(w));
                    }
                });
            }
        });
        set_enabled(false);
        let events = recorder().collect();
        assert_eq!(events.len(), 8, "claims past capacity must drop");
        for ev in events {
            assert_eq!(ev.name, "op");
            assert!(ev.arg < 4);
            assert_eq!(ev.dur, 1);
        }
    }
}
