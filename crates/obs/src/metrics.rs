//! Host-side operational metrics for the serving layer: monotonic
//! counters, gauges, and log-bucketed latency histograms with a
//! Prometheus text exposition renderer.
//!
//! These measure the *service* (wall-clock queue waits, RED counters per
//! client, cache hit rates), not the simulation — nothing here may feed
//! into a `SimReport`, and nothing here is expected to be deterministic
//! across runs. Metric handles are `Arc`s resolved once from the
//! [`Registry`] and then updated with single relaxed atomic ops, so the
//! per-request cost is a handful of uncontended `fetch_add`s.
//!
//! The exposition format follows the Prometheus text format v0.0.4:
//! `# HELP` / `# TYPE` comment lines, `name{label="value"} sample`
//! lines, and for histograms the `_bucket{le=…}` / `_sum` / `_count`
//! triplet with cumulative buckets. [`parse_exposition`] is a minimal
//! parser of the same dialect used by the round-trip tests in
//! `crates/serve`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a float that can go up and down (stored as `f64` bits).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Set the current value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Number of log2 latency buckets: bucket `i` has upper edge `2^i` µs,
/// so the range runs 1 µs … ~2 147 s with the last bucket catching
/// everything above.
pub const HIST_BUCKETS: usize = 32;

/// Upper edge of bucket `i`, in microseconds.
pub fn bucket_edge_us(i: usize) -> u64 {
    1u64 << i.min(HIST_BUCKETS - 1)
}

/// A log-bucketed latency histogram (microsecond samples, power-of-two
/// bucket edges). Lock-free: every field is a relaxed atomic.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Record one latency sample in microseconds.
    pub fn record_us(&self, us: u64) {
        let mut i = 0;
        while i < HIST_BUCKETS - 1 && us > bucket_edge_us(i) {
            i += 1;
        }
        self.buckets[i].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples, in microseconds.
    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    /// Upper bucket edge (µs) containing quantile `q` (0 < q ≤ 1);
    /// 0 when empty. Resolution is the bucket width — good enough to
    /// tell 100 µs from 10 ms, which is what an operator needs.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if cum >= target {
                return bucket_edge_us(i);
            }
        }
        bucket_edge_us(HIST_BUCKETS - 1)
    }

    fn bucket_counts(&self) -> [u64; HIST_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }
}

/// What a family's samples are.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic counter.
    Counter,
    /// Up-and-down float.
    Gauge,
    /// Log-bucketed latency histogram.
    Histogram,
}

impl MetricKind {
    fn type_name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<LatencyHistogram>),
}

type Labels = Vec<(String, String)>;

#[derive(Debug)]
struct Family {
    name: String,
    help: String,
    kind: MetricKind,
    /// Label-set → metric, in creation order (deterministic render order
    /// for a deterministic creation order).
    metrics: Vec<(Labels, Metric)>,
}

/// A named collection of metric families, rendered together as one
/// Prometheus exposition document. Lookup takes a mutex (call it at
/// wiring time or at low request rates — the returned `Arc` handles are
/// lock-free).
#[derive(Debug, Default)]
pub struct Registry {
    families: Mutex<Vec<Family>>,
}

fn labels_of(labels: &[(&str, &str)]) -> Labels {
    labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect()
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn get_or_create(
        &self,
        name: &str,
        help: &str,
        kind: MetricKind,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Metric,
    ) -> Metric {
        let mut families = self.families.lock().expect("metrics registry lock");
        let family = match families.iter_mut().find(|f| f.name == name) {
            Some(f) => {
                debug_assert_eq!(f.kind, kind, "metric family `{name}` re-registered as a different kind");
                f
            }
            None => {
                families.push(Family {
                    name: name.to_string(),
                    help: help.to_string(),
                    kind,
                    metrics: Vec::new(),
                });
                families.last_mut().expect("just pushed")
            }
        };
        let wanted = labels_of(labels);
        if let Some((_, m)) = family.metrics.iter().find(|(l, _)| *l == wanted) {
            return m.clone();
        }
        let m = make();
        family.metrics.push((wanted, m.clone()));
        m
    }

    /// Get or create a counter in family `name` with the given labels.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.get_or_create(name, help, MetricKind::Counter, labels, || {
            Metric::Counter(Arc::new(Counter::default()))
        }) {
            Metric::Counter(c) => c,
            _ => panic!("metric family `{name}` is not a counter"),
        }
    }

    /// Get or create a gauge in family `name` with the given labels.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.get_or_create(name, help, MetricKind::Gauge, labels, || {
            Metric::Gauge(Arc::new(Gauge::default()))
        }) {
            Metric::Gauge(g) => g,
            _ => panic!("metric family `{name}` is not a gauge"),
        }
    }

    /// Get or create a latency histogram in family `name` with the given
    /// labels.
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> Arc<LatencyHistogram> {
        match self.get_or_create(name, help, MetricKind::Histogram, labels, || {
            Metric::Histogram(Arc::new(LatencyHistogram::default()))
        }) {
            Metric::Histogram(h) => h,
            _ => panic!("metric family `{name}` is not a histogram"),
        }
    }

    /// Render every family as Prometheus text exposition. Histograms
    /// additionally render `{name}_p50` / `_p95` / `_p99` gauge families
    /// (seconds) so operators get quantiles without a scrape-side
    /// `histogram_quantile`.
    pub fn render_prometheus(&self) -> String {
        let families = self.families.lock().expect("metrics registry lock");
        let mut out = String::with_capacity(2048);
        for f in families.iter() {
            render_comment(&mut out, &f.name, &f.help, f.kind.type_name());
            for (labels, metric) in &f.metrics {
                match metric {
                    Metric::Counter(c) => {
                        render_sample(&mut out, &f.name, labels, &[], &c.get().to_string());
                    }
                    Metric::Gauge(g) => {
                        render_sample(&mut out, &f.name, labels, &[], &fmt_f64(g.get()));
                    }
                    Metric::Histogram(h) => {
                        let counts = h.bucket_counts();
                        let mut cum = 0u64;
                        for (i, n) in counts.iter().enumerate() {
                            cum += n;
                            let le = fmt_f64(bucket_edge_us(i) as f64 / 1e6);
                            render_sample(
                                &mut out,
                                &format!("{}_bucket", f.name),
                                labels,
                                &[("le", &le)],
                                &cum.to_string(),
                            );
                        }
                        render_sample(
                            &mut out,
                            &format!("{}_bucket", f.name),
                            labels,
                            &[("le", "+Inf")],
                            &h.count().to_string(),
                        );
                        render_sample(
                            &mut out,
                            &format!("{}_sum", f.name),
                            labels,
                            &[],
                            &fmt_f64(h.sum_us() as f64 / 1e6),
                        );
                        render_sample(
                            &mut out,
                            &format!("{}_count", f.name),
                            labels,
                            &[],
                            &h.count().to_string(),
                        );
                    }
                }
            }
        }
        // Quantile gauges derived from the histograms, as their own
        // families (a family's samples must share one TYPE).
        for f in families.iter().filter(|f| f.kind == MetricKind::Histogram) {
            for (q, suffix) in [(0.50, "p50"), (0.95, "p95"), (0.99, "p99")] {
                let name = format!("{}_{suffix}", f.name);
                render_comment(
                    &mut out,
                    &name,
                    &format!("{suffix} of {} (bucket upper edge, seconds)", f.name),
                    "gauge",
                );
                for (labels, metric) in &f.metrics {
                    if let Metric::Histogram(h) = metric {
                        let v = h.quantile_us(q) as f64 / 1e6;
                        let v = if h.count() == 0 { 0.0 } else { v };
                        render_sample(&mut out, &name, labels, &[], &fmt_f64(v));
                    }
                }
            }
        }
        out
    }
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else if v.is_nan() {
        "NaN".to_string()
    } else if v > 0.0 {
        "+Inf".to_string()
    } else {
        "-Inf".to_string()
    }
}

fn render_comment(out: &mut String, name: &str, help: &str, type_name: &str) {
    out.push_str("# HELP ");
    out.push_str(name);
    out.push(' ');
    out.push_str(help);
    out.push_str("\n# TYPE ");
    out.push_str(name);
    out.push(' ');
    out.push_str(type_name);
    out.push('\n');
}

fn render_sample(out: &mut String, name: &str, labels: &Labels, extra: &[(&str, &str)], value: &str) {
    out.push_str(name);
    if !labels.is_empty() || !extra.is_empty() {
        out.push('{');
        let mut first = true;
        for (k, v) in labels.iter().map(|(k, v)| (k.as_str(), v.as_str())).chain(extra.iter().copied()) {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(k);
            out.push_str("=\"");
            for c in v.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

/// One parsed exposition sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Sample name (including any `_bucket`/`_sum`/`_count` suffix).
    pub name: String,
    /// Labels in source order.
    pub labels: Vec<(String, String)>,
    /// Sample value (`+Inf`/`-Inf`/`NaN` parse to the matching floats).
    pub value: f64,
}

/// Parse Prometheus text exposition into samples (comments and blank
/// lines skipped). Errors on malformed lines — the round-trip tests use
/// this to prove [`Registry::render_prometheus`] emits valid exposition.
pub fn parse_exposition(text: &str) -> Result<Vec<Sample>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |what: &str| format!("line {}: {what}: `{line}`", lineno + 1);
        let (name_labels, value) = match line.rfind(' ') {
            Some(i) => (&line[..i], line[i + 1..].trim()),
            None => return Err(err("missing value")),
        };
        let (name, labels) = match name_labels.find('{') {
            None => (name_labels.trim(), Vec::new()),
            Some(open) => {
                let name = name_labels[..open].trim();
                let rest = &name_labels[open + 1..];
                let close = rest.rfind('}').ok_or_else(|| err("unterminated label set"))?;
                (name, parse_labels(&rest[..close]).map_err(|e| err(&e))?)
            }
        };
        if name.is_empty()
            || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            return Err(err("bad metric name"));
        }
        let value = match value {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            "NaN" => f64::NAN,
            v => v.parse::<f64>().map_err(|_| err("bad sample value"))?,
        };
        out.push(Sample { name: name.to_string(), labels, value });
    }
    Ok(out)
}

fn parse_labels(s: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut chars = s.chars().peekable();
    loop {
        while chars.peek() == Some(&',') || chars.peek() == Some(&' ') {
            chars.next();
        }
        if chars.peek().is_none() {
            return Ok(labels);
        }
        let mut key = String::new();
        for c in chars.by_ref() {
            if c == '=' {
                break;
            }
            key.push(c);
        }
        if chars.next() != Some('"') {
            return Err(format!("label `{key}` missing opening quote"));
        }
        let mut value = String::new();
        loop {
            match chars.next() {
                None => return Err(format!("label `{key}` unterminated")),
                Some('"') => break,
                Some('\\') => match chars.next() {
                    Some('"') => value.push('"'),
                    Some('\\') => value.push('\\'),
                    Some('n') => value.push('\n'),
                    other => return Err(format!("bad escape {other:?} in label `{key}`")),
                },
                Some(c) => value.push(c),
            }
        }
        labels.push((key.trim().to_string(), value));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_and_lookup_identity() {
        let r = Registry::new();
        let a = r.counter("mio_requests_total", "requests", &[("client", "ci")]);
        let b = r.counter("mio_requests_total", "requests", &[("client", "ci")]);
        let other = r.counter("mio_requests_total", "requests", &[("client", "adhoc")]);
        a.inc();
        b.add(2);
        other.inc();
        assert_eq!(a.get(), 3, "same label set resolves to the same metric");
        assert_eq!(other.get(), 1);
        let g = r.gauge("mio_inflight", "inflight", &[]);
        g.set(2.5);
        assert_eq!(r.gauge("mio_inflight", "inflight", &[]).get(), 2.5);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile_us(0.5), 0, "empty histogram");
        // 90 fast samples at ≤128 µs, 10 slow at ≤65 536 µs.
        for _ in 0..90 {
            h.record_us(100);
        }
        for _ in 0..10 {
            h.record_us(50_000);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum_us(), 90 * 100 + 10 * 50_000);
        assert_eq!(h.quantile_us(0.50), 128);
        assert_eq!(h.quantile_us(0.90), 128);
        assert_eq!(h.quantile_us(0.95), 65_536);
        assert_eq!(h.quantile_us(0.99), 65_536);
        // Edges: sample exactly on an edge stays in that bucket.
        let edge = LatencyHistogram::default();
        edge.record_us(128);
        assert_eq!(edge.quantile_us(1.0), 128);
        edge.record_us(129);
        assert_eq!(edge.quantile_us(1.0), 256);
    }

    #[test]
    fn render_parses_back_and_buckets_are_cumulative() {
        let r = Registry::new();
        r.counter("mio_requests_total", "total requests", &[("client", "a")]).add(7);
        let h = r.histogram("mio_service_seconds", "service time", &[("type", "fig8_point")]);
        h.record_us(100);
        h.record_us(3_000);
        h.record_us(3_000);
        let text = r.render_prometheus();
        let samples = parse_exposition(&text).expect("renderer emits valid exposition");
        let get = |name: &str, label: (&str, &str)| -> Vec<&Sample> {
            samples
                .iter()
                .filter(|s| {
                    s.name == name
                        && s.labels.iter().any(|(k, v)| (k.as_str(), v.as_str()) == label)
                })
                .collect()
        };
        assert_eq!(get("mio_requests_total", ("client", "a"))[0].value, 7.0);
        let buckets = get("mio_service_seconds_bucket", ("type", "fig8_point"));
        assert_eq!(buckets.len(), HIST_BUCKETS + 1, "all edges plus +Inf");
        let mut prev = 0.0;
        for b in &buckets {
            assert!(b.value >= prev, "buckets must be cumulative");
            prev = b.value;
        }
        let inf = buckets.last().expect("+Inf bucket");
        assert_eq!(inf.labels.iter().find(|(k, _)| k == "le").map(|(_, v)| v.as_str()), Some("+Inf"));
        let count = get("mio_service_seconds_count", ("type", "fig8_point"))[0].value;
        assert_eq!(inf.value, count, "le=+Inf must equal _count");
        assert_eq!(count, 3.0);
        let sum = get("mio_service_seconds_sum", ("type", "fig8_point"))[0].value;
        assert!((sum - 0.0061).abs() < 1e-9, "sum in seconds, got {sum}");
        // Quantile gauges render in seconds off bucket edges.
        let p99 = get("mio_service_seconds_p99", ("type", "fig8_point"))[0].value;
        assert_eq!(p99, 4096.0 / 1e6);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_exposition("no_value_here").is_err());
        assert!(parse_exposition("bad name 1").is_err());
        assert!(parse_exposition("x{unterminated=\"} 1").is_err());
        assert!(parse_exposition("x 12notanumber").is_err());
        assert_eq!(parse_exposition("# just a comment\n\n").unwrap(), Vec::new());
    }
}
