//! Profiling session plumbing shared by every binary: the `--profile`
//! flag / `MILLER_PROFILE` env handshake, stable label counters for
//! tracks, and the process-wide simulated-event counter the sweep
//! heartbeat reads its ev/s from.

use crate::perfetto::export_chrome_trace;
use crate::recorder::{init, set_enabled, summary};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Consume a `--profile-capacity <events>` flag from `args`, sizing the
/// flight-recorder ring before anything allocates it. The value is also
/// exported as `MILLER_PROFILE_CAPACITY` so lazily-initialized recorders
/// (and child processes) agree. Returns the capacity when the flag (or a
/// pre-existing `MILLER_PROFILE_CAPACITY`) was present, `None` when
/// defaulted, or an error message for a malformed flag.
///
/// Call this *before* [`apply_profile_flag`]: once `--profile` enables
/// recording, the first emit allocates the ring and the capacity is
/// locked in ("first capacity wins").
pub fn apply_profile_capacity_flag(args: &mut Vec<String>) -> Result<Option<usize>, String> {
    let capacity = match args.iter().position(|a| a == "--profile-capacity") {
        Some(i) => {
            if i + 1 >= args.len() {
                return Err("--profile-capacity needs an event count".into());
            }
            let raw = args.remove(i + 1);
            args.remove(i);
            match raw.trim().parse::<usize>() {
                Ok(c) if c >= 1 => Some(c),
                _ => {
                    return Err(format!(
                        "--profile-capacity needs a positive event count, got `{raw}`"
                    ))
                }
            }
        }
        None => std::env::var("MILLER_PROFILE_CAPACITY")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&c| c >= 1),
    };
    if let Some(c) = capacity {
        std::env::set_var("MILLER_PROFILE_CAPACITY", c.to_string());
        init(c);
    }
    Ok(capacity)
}

/// Consume a `--profile <path>` flag from `args` (falling back to the
/// `MILLER_PROFILE` environment variable) and, when a path is present,
/// enable span recording immediately. Returns the output path to pass to
/// [`finish_profile`] once the profiled work is done, or an error
/// message for a malformed flag.
pub fn apply_profile_flag(args: &mut Vec<String>) -> Result<Option<String>, String> {
    let path = match args.iter().position(|a| a == "--profile") {
        Some(i) => {
            if i + 1 >= args.len() {
                return Err("--profile needs an output path".into());
            }
            let p = args.remove(i + 1);
            args.remove(i);
            Some(p)
        }
        None => std::env::var("MILLER_PROFILE").ok().filter(|p| !p.is_empty()),
    };
    if path.is_some() {
        set_enabled(true);
    }
    Ok(path)
}

/// Stop recording and write the Chrome trace-event JSON to `path`,
/// reporting the outcome on stderr. Export failure is reported, not
/// fatal — a missing trace must never fail the run that produced the
/// actual results.
pub fn finish_profile(path: &str) {
    set_enabled(false);
    match export_chrome_trace(Path::new(path)) {
        Ok(s) => {
            let full = if s.dropped > 0 {
                format!(
                    " ({} more dropped: ring full, raise --profile-capacity/MILLER_PROFILE_CAPACITY)",
                    s.dropped
                )
            } else {
                String::new()
            };
            eprintln!(
                "profile: wrote {path}: {} events on {} tracks{full} — open in ui.perfetto.dev",
                s.events, s.tracks
            );
            let rec = summary();
            let total = s.dropped + rec.recorded;
            if total > 0 && s.dropped * 10 > total {
                // More than 10% of everything emitted fell on the floor:
                // the trace is a fragment, not a timeline. Make the loss
                // impossible to miss (see EXPERIMENTS.md "Sizing the
                // flight recorder" for capacity guidance).
                eprintln!(
                    "profile: WARNING: dropped {} of {} events ({:.0}%) — trace covers only the \
                     run's start; rerun with --profile-capacity {} or more",
                    s.dropped,
                    total,
                    s.dropped as f64 * 100.0 / total as f64,
                    total.next_power_of_two()
                );
            }
        }
        Err(e) => eprintln!("profile: failed to write {path}: {e}"),
    }
}

static SIM_EVENTS: AtomicU64 = AtomicU64::new(0);
static SIM_IDS: AtomicU64 = AtomicU64::new(0);
static SWEEP_IDS: AtomicU64 = AtomicU64::new(0);

/// Add `n` to the process-wide simulated-I/O counter. The engine calls
/// this once per completed run (not per event); the sweep heartbeat
/// differences it for a live ev/s rate.
#[inline]
pub fn add_sim_events(n: u64) {
    SIM_EVENTS.fetch_add(n, Ordering::Relaxed);
}

/// Total simulated I/Os completed by this process so far.
#[inline]
pub fn sim_events_total() -> u64 {
    SIM_EVENTS.load(Ordering::Relaxed)
}

/// Monotonic id labelling one simulation's tracks ("sim3:venus#1").
pub fn next_sim_id() -> u64 {
    SIM_IDS.fetch_add(1, Ordering::Relaxed)
}

/// Monotonic id labelling one sweep's worker tracks ("sweep2 worker0").
pub fn next_sweep_id() -> u64 {
    SWEEP_IDS.fetch_add(1, Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    // The happy path (`--profile out.json` consumes the flag AND enables
    // recording) mutates the process-global enabled flag, so it lives in
    // the recorder's single sequenced test instead of here — tests in one
    // binary run concurrently.
    #[test]
    fn profile_flag_rejects_missing_path() {
        let mut bad: Vec<String> = ["bin", "--profile"].map(String::from).into();
        assert!(apply_profile_flag(&mut bad).is_err());
    }

    // The happy path for `--profile-capacity` lives in the recorder's
    // sequenced test for the same reason: it allocates the process-global
    // ring and exports an env var.
    #[test]
    fn profile_capacity_flag_rejects_bad_values() {
        let mut missing: Vec<String> = ["bin", "--profile-capacity"].map(String::from).into();
        assert!(apply_profile_capacity_flag(&mut missing).is_err());
        let mut zero: Vec<String> =
            ["bin", "--profile-capacity", "0"].map(String::from).into();
        assert!(apply_profile_capacity_flag(&mut zero).is_err());
        let mut junk: Vec<String> =
            ["bin", "--profile-capacity", "lots"].map(String::from).into();
        assert!(apply_profile_capacity_flag(&mut junk).is_err());
    }

    #[test]
    fn sim_event_counter_accumulates() {
        let before = sim_events_total();
        add_sim_events(120);
        add_sim_events(3);
        assert!(sim_events_total() >= before + 123);
    }

    #[test]
    fn ids_are_unique() {
        let a = next_sim_id();
        let b = next_sim_id();
        assert_ne!(a, b);
        let c = next_sweep_id();
        let d = next_sweep_id();
        assert_ne!(c, d);
    }
}
