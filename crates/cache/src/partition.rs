//! Block-range ownership for partitioned (sharded) caches.
//!
//! A sharded simulation splits the cluster into groups, each owning one
//! cache partition and disk farm. Private files live entirely inside
//! their process's group, but **shared** files are striped across the
//! groups by block range: every 1 MB stripe of a shared file has exactly
//! one owner, so two groups never cache the same shared block and
//! cross-group requests have a unique, deterministic destination.
//!
//! Ownership is a pure function of `(file_id, offset, n_groups)` —
//! independent of shard count, thread assignment, and arrival order —
//! which is one of the ingredients that make sharded runs byte-identical
//! at any shard count.

/// Stripe width for shared-file ownership: ownership changes every 1 MB.
/// Wide enough that a typical request (tens to hundreds of KB) stays
/// within one owner; narrow enough that a large shared file spreads over
/// the whole cluster.
pub const OWNERSHIP_STRIPE_BYTES: u64 = 1 << 20;

/// The group owning byte `offset` of shared file `file_id`, among
/// `n_groups` partitions (0 behaves as 1).
///
/// The file id is folded in so different shared files start their stripe
/// rotation on different groups, spreading single-stripe files instead
/// of piling them all onto group 0.
pub fn range_owner(file_id: u32, offset: u64, n_groups: usize) -> usize {
    let parts = n_groups.max(1) as u64;
    let stripe = offset / OWNERSHIP_STRIPE_BYTES;
    ((u64::from(file_id) + stripe) % parts) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ownership_is_stable_and_in_range() {
        for g in [1usize, 2, 3, 7, 16] {
            for file in [0x8000u32, 0x8001, 0x80ff] {
                for off in [0u64, 1, OWNERSHIP_STRIPE_BYTES - 1, OWNERSHIP_STRIPE_BYTES, 1 << 30] {
                    let o = range_owner(file, off, g);
                    assert!(o < g);
                    assert_eq!(o, range_owner(file, off, g), "pure function");
                }
            }
        }
    }

    #[test]
    fn stripes_rotate_across_groups() {
        let owners: Vec<usize> =
            (0..8u64).map(|s| range_owner(0x8000, s * OWNERSHIP_STRIPE_BYTES, 4)).collect();
        assert_eq!(owners, vec![0, 1, 2, 3, 0, 1, 2, 3]);
        // Same offset, different file: shifted start.
        assert_ne!(range_owner(0x8000, 0, 4), range_owner(0x8001, 0, 4));
    }

    #[test]
    fn zero_groups_behaves_as_one() {
        assert_eq!(range_owner(0x8000, 12345, 0), 0);
    }

    #[test]
    fn offsets_within_a_stripe_share_an_owner() {
        let a = range_owner(0x8004, 0, 7);
        let b = range_owner(0x8004, OWNERSHIP_STRIPE_BYTES - 1, 7);
        assert_eq!(a, b);
    }
}
