//! The block cache state machine.
//!
//! Every method is pure bookkeeping: it mutates resident-block state and
//! returns the device operations the access *implies*. The simulator
//! charges time for them:
//!
//! * `ReadOutcome::fetches` — demand misses; a synchronous read blocks the
//!   process until they complete.
//! * `ReadOutcome::prefetch` — read-ahead fetches; issued asynchronously,
//!   the process does not wait.
//! * `*::writebacks` — dirty blocks evicted to make room; the device must
//!   write them before the frame is reused, stalling the requester.
//! * `WriteOutcome::write_through` — ranges the process must wait for
//!   under [`WritePolicy::WriteThrough`].
//! * [`BlockCache::take_flush_batch`] — background write-behind/delayed
//!   flush traffic.
//!
//! Partial-block writes do not read-modify-write: like the paper's
//! simulator, we work from logical traces with no file-system metadata,
//! and supercomputer accesses are overwhelmingly whole-block sized.

use crate::config::{CacheConfig, WritePolicy};
use crate::lru::LruIndex;
use crate::stats::CacheStats;
use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};
use sim_core::SimTime;
use std::cell::Cell;
use std::collections::VecDeque;

/// A contiguous byte range within one file — the unit of implied device
/// traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ByteRange {
    /// File the range belongs to.
    pub file_id: u32,
    /// Starting byte offset.
    pub offset: u64,
    /// Length in bytes.
    pub length: u64,
}

impl ByteRange {
    /// End offset (exclusive).
    pub fn end(&self) -> u64 {
        self.offset + self.length
    }
}

/// Result of a logical read.
///
/// Reusable: [`BlockCache::read_into`] clears and refills one in place,
/// so a caller that holds an outcome across requests pays no per-request
/// heap allocation once the vectors have grown to their working size.
#[derive(Debug, Clone, Default)]
pub struct ReadOutcome {
    /// Blocks found resident.
    pub hit_blocks: u64,
    /// Resident blocks that were untouched read-ahead data.
    pub readahead_hit_blocks: u64,
    /// Blocks that had to come from the device.
    pub miss_blocks: u64,
    /// Demand fetches (coalesced), to be performed synchronously.
    pub fetches: Vec<ByteRange>,
    /// Read-ahead fetches (coalesced), to be performed asynchronously.
    pub prefetch: Vec<ByteRange>,
    /// Dirty blocks evicted to make room; must be written out.
    pub writebacks: Vec<ByteRange>,
}

impl ReadOutcome {
    /// Reset counters and empty the vectors, keeping their capacity.
    pub fn clear(&mut self) {
        self.hit_blocks = 0;
        self.readahead_hit_blocks = 0;
        self.miss_blocks = 0;
        self.fetches.clear();
        self.prefetch.clear();
        self.writebacks.clear();
    }
}

/// Result of a logical write.
///
/// Reusable like [`ReadOutcome`]: see [`BlockCache::write_into`].
#[derive(Debug, Clone, Default)]
pub struct WriteOutcome {
    /// Ranges the process must synchronously push to the device
    /// (write-through policy only).
    pub write_through: Vec<ByteRange>,
    /// Dirty blocks evicted to make room; must be written out.
    pub writebacks: Vec<ByteRange>,
    /// Blocks newly marked dirty and left in the cache.
    pub dirtied_blocks: u64,
}

impl WriteOutcome {
    /// Reset counters and empty the vectors, keeping their capacity.
    pub fn clear(&mut self) {
        self.write_through.clear();
        self.writebacks.clear();
        self.dirtied_blocks = 0;
    }
}

type Key = (u32, u64); // (file_id, block number)

/// Sentinel slot meaning "no frame".
const NIL: u32 = u32::MAX;

/// One resident cache block: entry state and the intrusive global-LRU
/// links live in a single slab cell, so the per-block hot path pays one
/// hash probe plus one slab access instead of separate map probes for
/// the entry table and the recency index.
#[derive(Debug, Clone, Copy)]
struct Frame {
    key: Key,
    owner: u32,
    dirty: bool,
    /// Installed by read-ahead and not yet referenced by a demand access.
    prefetched: bool,
    /// When the oldest unwritten data in this block was dirtied.
    dirty_since: SimTime,
    /// Toward the LRU end of the recency list.
    prev: u32,
    /// Toward the MRU end; doubles as the free-list link.
    next: u32,
}

const PAGE_SHIFT: u64 = 6;
const PAGE_BLOCKS: usize = 1 << PAGE_SHIFT;

/// Sentinel page slot meaning "no hint".
const NO_PAGE: u32 = u32::MAX;

#[derive(Debug)]
struct Page {
    /// Owning page key; hinted lookups check it to self-validate.
    pk: (u32, u64),
    /// Number of non-NIL slots; 0 means the page is retired (on the
    /// free list).
    live: u32,
    /// Frame slot per block within the page, NIL when absent.
    slots: [u32; PAGE_BLOCKS],
}

/// Sparse paged index from block key to frame slot.
///
/// Requests touch contiguous block runs, so resolving a block through a
/// small per-page map plus a direct array index is far cheaper than a
/// full-width hash probe per block into a map with one entry per
/// resident block: the probed map is ~64× smaller and neighboring
/// blocks land in the same page. Pages live inline in a slab and the map
/// stores only slab slots, so page churn (streams retiring one page per
/// 64 blocks while opening the next) recycles slab entries through a
/// free list and never moves page data or allocates.
///
/// Every operation takes a caller-owned *hint*: a page slot remembered
/// from an earlier resolution. A hint self-validates against the slab
/// (`pk` match on a live page), so a run of blocks through one page pays
/// a single hash probe and per-block array indexing from then on, and a
/// stale hint — the page was retired or its slab slot reused — costs
/// one compare and falls back to the map. Callers with no locality pass
/// a throwaway hint.
#[derive(Debug, Default)]
struct PagedIndex {
    map: FxHashMap<(u32, u64), u32>,
    /// Page slab addressed by the slots stored in `map` and in hints.
    pages: Vec<Page>,
    /// Retired slab slots awaiting reuse.
    free_pages: Vec<u32>,
    len: usize,
    /// Probes answered by the caller's hint (`Cell` because `find_page`
    /// takes `&self`; the cache is never shared across threads).
    probes_hinted: Cell<u64>,
    /// Probes that fell through to the hash map (cold or stale hint).
    probes_unhinted: Cell<u64>,
}

impl PagedIndex {
    #[inline]
    fn split(key: &Key) -> ((u32, u64), usize) {
        ((key.0, key.1 >> PAGE_SHIFT), (key.1 & (PAGE_BLOCKS as u64 - 1)) as usize)
    }

    /// Resolve `pk` to its slab slot, consulting `hint` first.
    #[inline]
    fn find_page(&self, pk: (u32, u64), hint: &mut u32) -> Option<u32> {
        if let Some(p) = self.pages.get(*hint as usize) {
            if p.pk == pk && p.live > 0 {
                self.probes_hinted.set(self.probes_hinted.get() + 1);
                return Some(*hint);
            }
        }
        self.probes_unhinted.set(self.probes_unhinted.get() + 1);
        match self.map.get(&pk) {
            Some(&s) => {
                *hint = s;
                Some(s)
            }
            None => None,
        }
    }

    #[inline]
    fn get_hinted(&self, key: &Key, hint: &mut u32) -> Option<u32> {
        let (pk, i) = Self::split(key);
        let p = self.find_page(pk, hint)?;
        match self.pages[p as usize].slots[i] {
            NIL => None,
            s => Some(s),
        }
    }

    #[inline]
    fn get(&self, key: &Key) -> Option<u32> {
        let mut hint = NO_PAGE;
        self.get_hinted(key, &mut hint)
    }

    #[inline]
    fn contains_key(&self, key: &Key) -> bool {
        self.get(key).is_some()
    }

    /// Insert a key known to be absent (blocks are installed only on
    /// miss).
    fn insert_hinted(&mut self, key: Key, slot: u32, hint: &mut u32) {
        let (pk, i) = Self::split(&key);
        let p = match self.find_page(pk, hint) {
            Some(p) => p,
            None => {
                let p = match self.free_pages.pop() {
                    Some(p) => {
                        let pg = &mut self.pages[p as usize];
                        debug_assert_eq!(pg.live, 0, "free page must be empty");
                        pg.pk = pk;
                        p
                    }
                    None => {
                        self.pages.push(Page { pk, live: 0, slots: [NIL; PAGE_BLOCKS] });
                        (self.pages.len() - 1) as u32
                    }
                };
                self.map.insert(pk, p);
                *hint = p;
                p
            }
        };
        let pg = &mut self.pages[p as usize];
        debug_assert_eq!(pg.slots[i], NIL, "install over a resident block");
        pg.slots[i] = slot;
        pg.live += 1;
        self.len += 1;
    }

    fn remove_hinted(&mut self, key: &Key, hint: &mut u32) -> Option<u32> {
        let (pk, i) = Self::split(key);
        let p = self.find_page(pk, hint)?;
        let pg = &mut self.pages[p as usize];
        let s = pg.slots[i];
        if s == NIL {
            return None;
        }
        pg.slots[i] = NIL;
        pg.live -= 1;
        self.len -= 1;
        if pg.live == 0 {
            // Retire: every slot is NIL again, so the slab entry parks on
            // the free list as-is. The map keeps its table capacity after
            // a remove, so page churn stays allocation-free.
            self.map.remove(&pk);
            self.free_pages.push(p);
        }
        Some(s)
    }

    #[inline]
    fn len(&self) -> usize {
        self.len
    }
}

/// The contiguous block span of the request currently being serviced.
/// Blocks in the span are pinned: eviction spares them while any
/// alternative victim exists. A request always touches one file and one
/// contiguous run of blocks, so a three-word span replaces the
/// per-request `HashSet<Key>` the hot path used to allocate and probe.
#[derive(Debug, Clone, Copy)]
struct PinnedSpan {
    file_id: u32,
    first: u64,
    last: u64,
}

impl PinnedSpan {
    #[inline]
    fn contains(&self, key: &Key) -> bool {
        key.0 == self.file_id && (self.first..=self.last).contains(&key.1)
    }
}

#[derive(Debug, Clone, Copy)]
struct SeqTrack {
    next_offset: u64,
}

/// The block buffer cache. See the module docs for the interaction
/// contract.
#[derive(Debug)]
pub struct BlockCache {
    config: CacheConfig,
    /// Resident blocks: key → slot in `frames`.
    index: PagedIndex,
    /// Slab of frames; freed slots chain on `free` via `Frame::next`.
    frames: Vec<Frame>,
    /// Least recently used end of the recency list.
    head: u32,
    /// Most recently used end of the recency list.
    tail: u32,
    /// Free-list head.
    free: u32,
    /// Per-owner recency and counts exist only to enforce
    /// `per_process_cap_blocks`; when no cap is configured (the common
    /// case) `track_owners` is false and the hot path skips them.
    track_owners: bool,
    per_owner: FxHashMap<u32, LruIndex<Key>>,
    owner_counts: FxHashMap<u32, u64>,
    /// Dirty blocks awaiting background flush, ordered by readiness time.
    flush_q: VecDeque<(Key, SimTime /* dirty_since */, SimTime /* ready_at */)>,
    /// Per (process, file) sequential-read detector state.
    seq: FxHashMap<(u32, u32), SeqTrack>,
    /// Scratch for flush-batch block keys, reused across batches.
    flush_keys: Vec<Key>,
    /// Scratch for pinned keys skipped while hunting an own-victim,
    /// reused across evictions.
    own_skip: Vec<Key>,
    /// Page hint for victim removals. LRU order is roughly stream order,
    /// so consecutive victims usually share a page.
    evict_hint: u32,
    stats: CacheStats,
    /// Non-empty flush batches handed to the flusher streams.
    flush_batches: u64,
}

impl BlockCache {
    /// Build a cache; panics on invalid geometry.
    pub fn new(config: CacheConfig) -> Self {
        config.validate();
        BlockCache {
            track_owners: config.per_process_cap_blocks.is_some(),
            config,
            index: PagedIndex::default(),
            frames: Vec::new(),
            head: NIL,
            tail: NIL,
            free: NIL,
            per_owner: FxHashMap::default(),
            owner_counts: FxHashMap::default(),
            flush_q: VecDeque::new(),
            seq: FxHashMap::default(),
            flush_keys: Vec::new(),
            own_skip: Vec::new(),
            evict_hint: NO_PAGE,
            stats: CacheStats::default(),
            flush_batches: 0,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Observability counters for the `obs` report section: the
    /// paper-facing hit/eviction counts plus index-probe and
    /// flush-batching behavior.
    pub fn obs_counters(&self) -> obs::CacheCounters {
        obs::CacheCounters {
            hit_blocks: self.stats.hit_blocks,
            miss_blocks: self.stats.miss_blocks,
            clean_evictions: self.stats.clean_evictions,
            dirty_evictions: self.stats.dirty_evictions,
            hinted_index_probes: self.index.probes_hinted.get(),
            unhinted_index_probes: self.index.probes_unhinted.get(),
            flush_batches: self.flush_batches,
        }
    }

    /// Number of resident blocks.
    pub fn resident_blocks(&self) -> u64 {
        self.index.len() as u64
    }

    /// Bytes of dirty data currently buffered.
    pub fn dirty_bytes(&self) -> u64 {
        // Freed frames always have `dirty` cleared, so the whole slab can
        // be scanned without consulting the free list.
        self.frames.iter().filter(|f| f.dirty).count() as u64 * self.config.block_size
    }

    /// Whether the block containing `offset` of `file_id` is resident
    /// (test/diagnostic helper).
    pub fn contains(&self, file_id: u32, offset: u64) -> bool {
        self.index.contains_key(&(file_id, offset / self.config.block_size))
    }

    #[inline]
    fn block_span(&self, offset: u64, length: u64) -> (u64, u64) {
        let bs = self.config.block_size;
        let first = offset / bs;
        let last = (offset + length - 1) / bs;
        (first, last)
    }

    /// Detach slot `i` from the recency list (it stays allocated).
    #[inline]
    fn unlink(&mut self, i: u32) {
        let (prev, next) = (self.frames[i as usize].prev, self.frames[i as usize].next);
        match prev {
            NIL => self.head = next,
            p => self.frames[p as usize].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.frames[n as usize].prev = prev,
        }
    }

    /// Append slot `i` at the most-recently-used end.
    #[inline]
    fn push_tail(&mut self, i: u32) {
        self.frames[i as usize].prev = self.tail;
        self.frames[i as usize].next = NIL;
        match self.tail {
            NIL => self.head = i,
            t => self.frames[t as usize].next = i,
        }
        self.tail = i;
    }

    /// Mark slot `i` most recently used.
    #[inline]
    fn touch_slot(&mut self, i: u32) {
        if self.tail != i {
            self.unlink(i);
            self.push_tail(i);
        }
    }

    /// Take a slot off the free list, or grow the slab.
    fn alloc_frame(&mut self, frame: Frame) -> u32 {
        match self.free {
            NIL => {
                self.frames.push(frame);
                (self.frames.len() - 1) as u32
            }
            i => {
                self.free = self.frames[i as usize].next;
                self.frames[i as usize] = frame;
                i
            }
        }
    }

    /// Return slot `i` to the free list. Clears `dirty` so slab scans
    /// ([`Self::dirty_bytes`], [`Self::flush_all`]) skip freed frames.
    fn free_frame(&mut self, i: u32) {
        let f = &mut self.frames[i as usize];
        f.dirty = false;
        f.next = self.free;
        self.free = i;
    }

    /// Remove the frame at `slot` from the cache, accounting for its
    /// state. Returns the writeback range when the victim was dirty.
    fn finish_evict(&mut self, slot: u32) -> Option<ByteRange> {
        let f = self.frames[slot as usize];
        self.index.remove_hinted(&f.key, &mut self.evict_hint);
        self.unlink(slot);
        self.free_frame(slot);
        if self.track_owners {
            if let Some(lru) = self.per_owner.get_mut(&f.owner) {
                lru.remove(&f.key);
            }
            if let Some(c) = self.owner_counts.get_mut(&f.owner) {
                *c = c.saturating_sub(1);
            }
        }
        if f.prefetched {
            self.stats.wasted_prefetch_blocks += 1;
        }
        if f.dirty {
            self.stats.dirty_evictions += 1;
            let bs = self.config.block_size;
            self.stats.device_bytes_written += bs;
            Some(ByteRange { file_id: f.key.0, offset: f.key.1 * bs, length: bs })
        } else {
            self.stats.clean_evictions += 1;
            None
        }
    }

    fn select_victim(&mut self, pinned: &PinnedSpan) -> Option<u32> {
        // Global LRU, sparing pinned (in-flight request) blocks while any
        // alternative exists: pinned blocks found at the LRU end are
        // re-touched (they are part of the in-flight request, so making
        // them most recent matches their actual usage) and the walk
        // continues from the new head. When *everything* resident is
        // pinned — a request larger than the whole cache — the request
        // streams through by sacrificing the first pinned block popped,
        // exactly as the old pop-and-requeue loop did.
        let resident = self.index.len();
        let mut first_pinned = NIL;
        let mut pops = 0usize;
        loop {
            if pops >= resident {
                // Cycled through the whole list: everything is pinned.
                return (first_pinned != NIL).then_some(first_pinned);
            }
            let i = self.head;
            if i == NIL {
                return None;
            }
            if pinned.contains(&self.frames[i as usize].key) {
                if first_pinned == NIL {
                    first_pinned = i;
                }
                self.touch_slot(i);
                pops += 1;
            } else {
                return Some(i);
            }
        }
    }

    /// Pick one of `owner`'s own blocks to evict (ownership-cap
    /// enforcement, §6.2's anti-hogging ablation).
    fn select_own_victim(&mut self, owner: u32, pinned: &PinnedSpan) -> Option<Key> {
        // `own_skip` is a reusable scratch list so cap enforcement stays
        // allocation-free on the hot path.
        let mut skipped = std::mem::take(&mut self.own_skip);
        debug_assert!(skipped.is_empty());
        let mut found = None;
        if let Some(own) = self.per_owner.get_mut(&owner) {
            while let Some(k) = own.pop_lru() {
                if pinned.contains(&k) {
                    skipped.push(k);
                } else {
                    found = Some(k);
                    break;
                }
            }
            if found.is_none() && !skipped.is_empty() {
                found = Some(skipped.remove(0));
            }
            for k in skipped.drain(..) {
                own.touch(k);
            }
        }
        self.own_skip = skipped;
        found
    }

    #[allow(clippy::too_many_arguments)] // internal state-machine helper
    fn install(
        &mut self,
        key: Key,
        owner: u32,
        dirty: bool,
        prefetched: bool,
        now: SimTime,
        pinned: &PinnedSpan,
        writebacks: &mut Vec<ByteRange>,
        hint: &mut u32,
    ) {
        while self.index.len() as u64 >= self.config.capacity_blocks() {
            match self.select_victim(pinned) {
                Some(victim) => {
                    if let Some(wb) = self.finish_evict(victim) {
                        writebacks.push(wb);
                    }
                }
                None => break, // cache empty; nothing to evict
            }
        }
        let slot = self.alloc_frame(Frame {
            key,
            owner,
            dirty,
            prefetched,
            dirty_since: now,
            prev: NIL,
            next: NIL,
        });
        self.index.insert_hinted(key, slot, hint);
        self.push_tail(slot);
        if self.track_owners {
            *self.owner_counts.entry(owner).or_insert(0) += 1;
            self.per_owner.entry(owner).or_default().touch(key);
        }

        // Ownership cap: trim the owner back to its allotment even when
        // the cache as a whole has room (§6.2's buffer-limit experiment).
        if let Some(cap) = self.config.per_process_cap_blocks {
            while self.owner_counts.get(&owner).copied().unwrap_or(0) > cap {
                match self.select_own_victim(owner, pinned) {
                    Some(victim) => {
                        let slot =
                            self.index.get(&victim).expect("own victim must be resident");
                        if let Some(wb) = self.finish_evict(slot) {
                            writebacks.push(wb);
                        }
                    }
                    None => break,
                }
            }
        }
    }

    /// Service a logical read of `length` bytes at `offset` in `file_id`
    /// by process `pid` at time `now`.
    ///
    /// Convenience wrapper over [`BlockCache::read_into`] that allocates
    /// a fresh outcome. Hot paths should hold a reusable [`ReadOutcome`]
    /// and call `read_into` instead.
    pub fn read(
        &mut self,
        now: SimTime,
        pid: u32,
        file_id: u32,
        offset: u64,
        length: u64,
    ) -> ReadOutcome {
        let mut out = ReadOutcome::default();
        self.read_into(now, pid, file_id, offset, length, &mut out);
        out
    }

    /// [`BlockCache::read`] writing into a caller-owned outcome. The
    /// outcome is cleared first; its vectors keep their capacity, so a
    /// warmed-up caller pays zero heap allocations per request.
    pub fn read_into(
        &mut self,
        now: SimTime,
        pid: u32,
        file_id: u32,
        offset: u64,
        length: u64,
        out: &mut ReadOutcome,
    ) {
        out.clear();
        self.stats.read_calls += 1;
        self.stats.bytes_read += length;
        if length == 0 {
            return;
        }
        let bs = self.config.block_size;
        let (first, last) = self.block_span(offset, length);
        let pinned = PinnedSpan { file_id, first, last };

        let mut hint = NO_PAGE;
        let mut run_start: Option<u64> = None;
        for b in first..=last {
            let key = (file_id, b);
            self.stats.accessed_blocks += 1;
            if let Some(slot) = self.index.get_hinted(&key, &mut hint) {
                self.stats.hit_blocks += 1;
                out.hit_blocks += 1;
                let f = &mut self.frames[slot as usize];
                let owner = f.owner;
                if f.prefetched {
                    f.prefetched = false;
                    self.stats.readahead_hit_blocks += 1;
                    out.readahead_hit_blocks += 1;
                }
                self.touch_slot(slot);
                if self.track_owners {
                    self.per_owner.entry(owner).or_default().touch(key);
                }
                if let Some(start) = run_start.take() {
                    out.fetches.push(ByteRange {
                        file_id,
                        offset: start * bs,
                        length: (b - start) * bs,
                    });
                }
            } else {
                self.stats.miss_blocks += 1;
                out.miss_blocks += 1;
                run_start.get_or_insert(b);
                self.install(key, pid, false, false, now, &pinned, &mut out.writebacks, &mut hint);
            }
        }
        if let Some(start) = run_start {
            out.fetches.push(ByteRange {
                file_id,
                offset: start * bs,
                length: (last + 1 - start) * bs,
            });
        }
        for f in &out.fetches {
            self.stats.device_bytes_read += f.length;
        }

        // Read-ahead: same-size prefetch on sequential access (§6.2).
        let seq_key = (pid, file_id);
        let sequential = self
            .seq
            .get(&seq_key)
            .is_some_and(|s| s.next_offset == offset);
        if self.config.read_ahead && sequential {
            let pf_offset = offset + length;
            let pf_len = length;
            let (pf_first, pf_last) = self.block_span(pf_offset, pf_len);
            let mut pf_run: Option<u64> = None;
            for b in pf_first..=pf_last {
                let key = (file_id, b);
                if self.index.get_hinted(&key, &mut hint).is_some() {
                    if let Some(start) = pf_run.take() {
                        out.prefetch.push(ByteRange {
                            file_id,
                            offset: start * bs,
                            length: (b - start) * bs,
                        });
                    }
                } else {
                    pf_run.get_or_insert(b);
                    self.install(key, pid, false, true, now, &pinned, &mut out.writebacks, &mut hint);
                    self.stats.prefetched_blocks += 1;
                }
            }
            if let Some(start) = pf_run {
                out.prefetch.push(ByteRange {
                    file_id,
                    offset: start * bs,
                    length: (pf_last + 1 - start) * bs,
                });
            }
            for p in &out.prefetch {
                self.stats.device_bytes_read += p.length;
            }
        }
        self.seq.insert(seq_key, SeqTrack { next_offset: offset + length });
    }

    /// Service a logical write of `length` bytes at `offset` in `file_id`
    /// by process `pid` at time `now`.
    ///
    /// Convenience wrapper over [`BlockCache::write_into`] that allocates
    /// a fresh outcome. Hot paths should hold a reusable [`WriteOutcome`]
    /// and call `write_into` instead.
    pub fn write(
        &mut self,
        now: SimTime,
        pid: u32,
        file_id: u32,
        offset: u64,
        length: u64,
    ) -> WriteOutcome {
        let mut out = WriteOutcome::default();
        self.write_into(now, pid, file_id, offset, length, &mut out);
        out
    }

    /// [`BlockCache::write`] writing into a caller-owned outcome. The
    /// outcome is cleared first; its vectors keep their capacity, so a
    /// warmed-up caller pays zero heap allocations per request.
    pub fn write_into(
        &mut self,
        now: SimTime,
        pid: u32,
        file_id: u32,
        offset: u64,
        length: u64,
        out: &mut WriteOutcome,
    ) {
        out.clear();
        self.stats.write_calls += 1;
        self.stats.bytes_written += length;
        if length == 0 {
            return;
        }
        let bs = self.config.block_size;
        let (first, last) = self.block_span(offset, length);
        let pinned = PinnedSpan { file_id, first, last };
        let write_through = matches!(self.config.write_policy, WritePolicy::WriteThrough);

        let mut hint = NO_PAGE;
        for b in first..=last {
            let key = (file_id, b);
            self.stats.accessed_blocks += 1;
            if let Some(slot) = self.index.get_hinted(&key, &mut hint) {
                self.stats.hit_blocks += 1;
                let f = &mut self.frames[slot as usize];
                let owner = f.owner;
                f.prefetched = false;
                let newly_dirty = !write_through && !f.dirty;
                if newly_dirty {
                    f.dirty = true;
                    f.dirty_since = now;
                    out.dirtied_blocks += 1;
                }
                if newly_dirty {
                    self.enqueue_flush(key, now);
                }
                self.touch_slot(slot);
                if self.track_owners {
                    self.per_owner.entry(owner).or_default().touch(key);
                }
            } else {
                self.stats.miss_blocks += 1;
                self.install(key, pid, !write_through, false, now, &pinned, &mut out.writebacks, &mut hint);
                if !write_through {
                    out.dirtied_blocks += 1;
                    self.enqueue_flush(key, now);
                }
            }
        }
        if write_through {
            let range = ByteRange {
                file_id,
                offset: first * bs,
                length: (last + 1 - first) * bs,
            };
            self.stats.device_bytes_written += range.length;
            out.write_through.push(range);
        }
        // A write also advances the sequential cursor: venus-style staging
        // interleaves reads and writes on the same files.
        self.seq
            .insert((pid, file_id), SeqTrack { next_offset: offset + length });
    }

    fn enqueue_flush(&mut self, key: Key, dirty_since: SimTime) {
        let ready_at = match self.config.write_policy {
            WritePolicy::WriteThrough => return,
            WritePolicy::WriteBehind => dirty_since,
            WritePolicy::Delayed(d) => dirty_since + d,
        };
        self.flush_q.push_back((key, dirty_since, ready_at));
    }

    /// Pop up to `max_bytes` of flush-ready dirty data, marking it clean
    /// (it stays resident). Returns coalesced ranges for the device.
    ///
    /// Under write-behind everything dirty is immediately ready; under
    /// delayed writes only data older than the delay is returned —
    /// Sprite's 30-second sweep (§2.1).
    ///
    /// Convenience wrapper over [`BlockCache::take_flush_batch_into`]
    /// that allocates a fresh vector.
    pub fn take_flush_batch(&mut self, now: SimTime, max_bytes: u64) -> Vec<ByteRange> {
        let mut out = Vec::new();
        self.take_flush_batch_into(now, max_bytes, &mut out);
        out
    }

    /// [`BlockCache::take_flush_batch`] appending the coalesced ranges
    /// into a caller-owned vector (not cleared first). Both the output
    /// vector and the internal block-key scratch keep their capacity, so
    /// steady-state flushing allocates nothing.
    pub fn take_flush_batch_into(
        &mut self,
        now: SimTime,
        max_bytes: u64,
        out: &mut Vec<ByteRange>,
    ) {
        let bs = self.config.block_size;
        let mut blocks = std::mem::take(&mut self.flush_keys);
        debug_assert!(blocks.is_empty());
        let mut budget = max_bytes;
        let mut hint = NO_PAGE;
        while budget >= bs {
            match self.flush_q.front() {
                Some(&(_, _, ready_at)) if ready_at <= now => {}
                _ => break,
            }
            let (key, dirty_since, _) = self.flush_q.pop_front().expect("front just observed");
            // A stale entry — evicted, already flushed, or re-dirtied —
            // is silently skipped.
            if let Some(slot) = self.index.get_hinted(&key, &mut hint) {
                let f = &mut self.frames[slot as usize];
                if f.dirty && f.dirty_since == dirty_since {
                    f.dirty = false;
                    blocks.push(key);
                    budget -= bs;
                }
            }
        }
        let first = out.len();
        coalesce_into(&mut blocks, bs, out);
        if out.len() > first {
            self.flush_batches += 1;
        }
        for r in &out[first..] {
            self.stats.device_bytes_written += r.length;
        }
        blocks.clear();
        self.flush_keys = blocks;
    }

    /// True when dirty data is ready to flush at `now`.
    pub fn has_flushable(&self, now: SimTime) -> bool {
        self.flush_q.front().is_some_and(|&(_, _, r)| r <= now)
    }

    /// The earliest time any queued dirty block becomes flushable.
    pub fn next_flush_ready(&self) -> Option<SimTime> {
        self.flush_q.front().map(|&(_, _, r)| r)
    }

    /// Drain every dirty block regardless of age (end-of-run quiesce).
    pub fn flush_all(&mut self) -> Vec<ByteRange> {
        let bs = self.config.block_size;
        // Freed frames always have `dirty` cleared, so scanning the slab
        // visits exactly the resident dirty blocks.
        let mut blocks: Vec<Key> = Vec::new();
        for f in self.frames.iter_mut() {
            if f.dirty {
                f.dirty = false;
                blocks.push(f.key);
            }
        }
        blocks.sort_unstable();
        self.flush_q.clear();
        let ranges = coalesce(blocks, bs);
        for r in &ranges {
            self.stats.device_bytes_written += r.length;
        }
        ranges
    }
}

/// Coalesce block keys into contiguous per-file byte ranges.
fn coalesce(mut blocks: Vec<Key>, block_size: u64) -> Vec<ByteRange> {
    let mut out = Vec::new();
    coalesce_into(&mut blocks, block_size, &mut out);
    out
}

/// [`coalesce`] appending into a caller-owned vector. Sorts `blocks` in
/// place; the caller reclaims its capacity afterwards. Never merges into
/// ranges already present in `out` before the call.
fn coalesce_into(blocks: &mut [Key], block_size: u64, out: &mut Vec<ByteRange>) {
    blocks.sort_unstable();
    let start = out.len();
    for &(file_id, b) in blocks.iter() {
        if out.len() > start {
            let r = out.last_mut().expect("out is non-empty past start");
            if r.file_id == file_id && r.end() == b * block_size {
                r.length += block_size;
                continue;
            }
        }
        out.push(ByteRange { file_id, offset: b * block_size, length: block_size });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::units::KB;

    fn cache(capacity: u64) -> BlockCache {
        BlockCache::new(CacheConfig::buffered(capacity))
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn obs_counters_track_probes_and_flush_batches() {
        let mut c = cache(256 * KB);
        // Cold read: every index probe falls through to the map.
        c.read(t(0), 1, 1, 0, 16 * KB);
        let o = c.obs_counters();
        assert_eq!(o.miss_blocks, 4);
        assert!(o.unhinted_index_probes > 0);
        assert_eq!(o.flush_batches, 0);
        // A contiguous re-read runs the page hint: probes after the first
        // stay hinted.
        c.read(t(1), 1, 1, 0, 16 * KB);
        let o2 = c.obs_counters();
        assert_eq!(o2.hit_blocks, 4);
        assert!(
            o2.hinted_index_probes > o.hinted_index_probes,
            "sequential blocks should reuse the page hint: {o2:?}"
        );
        // Dirty data produces exactly one non-empty flush batch; an empty
        // poll does not count.
        c.write(t(2), 1, 1, 0, 8 * KB);
        let batch = c.take_flush_batch(t(3), u64::MAX);
        assert!(!batch.is_empty());
        assert_eq!(c.obs_counters().flush_batches, 1);
        c.take_flush_batch(t(4), u64::MAX);
        assert_eq!(c.obs_counters().flush_batches, 1);
    }

    #[test]
    fn cold_read_misses_then_hits() {
        let mut c = cache(64 * KB);
        let r1 = c.read(t(0), 1, 1, 0, 8 * KB);
        assert_eq!(r1.miss_blocks, 2);
        assert_eq!(r1.hit_blocks, 0);
        assert_eq!(r1.fetches, vec![ByteRange { file_id: 1, offset: 0, length: 8 * KB }]);
        let r2 = c.read(t(1), 1, 1, 0, 8 * KB);
        assert_eq!(r2.miss_blocks, 0);
        assert_eq!(r2.hit_blocks, 2);
        assert!(r2.fetches.is_empty());
        c.stats().check_invariants();
    }

    #[test]
    fn unaligned_read_touches_straddled_blocks() {
        let mut c = cache(64 * KB);
        // 4 KB blocks: a 6 KB read at offset 2 KB touches blocks 0 and 1.
        let r = c.read(t(0), 1, 1, 2 * KB, 6 * KB);
        assert_eq!(r.miss_blocks, 2);
        assert_eq!(r.fetches[0].length, 8 * KB);
    }

    #[test]
    fn sequential_reads_trigger_same_size_prefetch() {
        let mut c = cache(256 * KB);
        let r1 = c.read(t(0), 1, 1, 0, 16 * KB);
        assert!(r1.prefetch.is_empty(), "first read is not yet sequential");
        let r2 = c.read(t(1), 1, 1, 16 * KB, 16 * KB);
        assert_eq!(
            r2.prefetch,
            vec![ByteRange { file_id: 1, offset: 32 * KB, length: 16 * KB }],
            "second sequential read prefetches the same amount ahead"
        );
        // Third read hits entirely in prefetched data.
        let r3 = c.read(t(2), 1, 1, 32 * KB, 16 * KB);
        assert_eq!(r3.miss_blocks, 0);
        assert_eq!(r3.readahead_hit_blocks, 4);
        // And keeps the pipeline going.
        assert!(!r3.prefetch.is_empty());
        c.stats().check_invariants();
    }

    #[test]
    fn non_sequential_reads_do_not_prefetch() {
        let mut c = cache(256 * KB);
        c.read(t(0), 1, 1, 0, 16 * KB);
        let r = c.read(t(1), 1, 1, 64 * KB, 16 * KB);
        assert!(r.prefetch.is_empty());
    }

    #[test]
    fn read_ahead_disabled_never_prefetches() {
        let mut cfg = CacheConfig::buffered(256 * KB);
        cfg.read_ahead = false;
        let mut c = BlockCache::new(cfg);
        c.read(t(0), 1, 1, 0, 16 * KB);
        let r = c.read(t(1), 1, 1, 16 * KB, 16 * KB);
        assert!(r.prefetch.is_empty());
        assert_eq!(c.stats().prefetched_blocks, 0);
    }

    #[test]
    fn write_behind_buffers_and_flushes() {
        let mut c = cache(64 * KB);
        let w = c.write(t(0), 1, 1, 0, 8 * KB);
        assert!(w.write_through.is_empty());
        assert_eq!(w.dirtied_blocks, 2);
        assert_eq!(c.dirty_bytes(), 8 * KB);
        assert!(c.has_flushable(t(0)));
        let batch = c.take_flush_batch(t(0), u64::MAX);
        assert_eq!(batch, vec![ByteRange { file_id: 1, offset: 0, length: 8 * KB }]);
        assert_eq!(c.dirty_bytes(), 0);
        // Data still resident after flushing.
        assert!(c.contains(1, 0));
    }

    #[test]
    fn write_through_returns_sync_ranges() {
        let mut c = BlockCache::new(CacheConfig::unbuffered(64 * KB));
        let w = c.write(t(0), 1, 1, 0, 8 * KB);
        assert_eq!(w.write_through.len(), 1);
        assert_eq!(w.dirtied_blocks, 0);
        assert_eq!(c.dirty_bytes(), 0);
        assert!(!c.has_flushable(t(0)));
    }

    #[test]
    fn delayed_writes_age_before_flushing() {
        let mut cfg = CacheConfig::buffered(64 * KB);
        cfg.write_policy = WritePolicy::sprite();
        let mut c = BlockCache::new(cfg);
        c.write(t(0), 1, 1, 0, 4 * KB);
        assert!(!c.has_flushable(t(10)), "too young to flush");
        assert!(c.take_flush_batch(t(10), u64::MAX).is_empty());
        assert!(c.has_flushable(t(31)));
        assert_eq!(c.take_flush_batch(t(31), u64::MAX).len(), 1);
        assert_eq!(c.next_flush_ready(), None);
    }

    #[test]
    fn rewriting_dirty_block_does_not_duplicate_flush() {
        let mut c = cache(64 * KB);
        c.write(t(0), 1, 1, 0, 4 * KB);
        c.write(t(1), 1, 1, 0, 4 * KB); // same block, still dirty
        let batch = c.take_flush_batch(t(2), u64::MAX);
        assert_eq!(batch.len(), 1);
        assert!(c.take_flush_batch(t(3), u64::MAX).is_empty());
    }

    #[test]
    fn flush_batch_respects_byte_budget() {
        let mut c = cache(256 * KB);
        c.write(t(0), 1, 1, 0, 32 * KB); // 8 dirty blocks
        let batch = c.take_flush_batch(t(1), 12 * KB); // 3 blocks fit
        let bytes: u64 = batch.iter().map(|r| r.length).sum();
        assert_eq!(bytes, 12 * KB);
        assert_eq!(c.dirty_bytes(), 20 * KB);
    }

    #[test]
    fn lru_eviction_drops_oldest_clean_block() {
        let mut c = cache(16 * KB); // 4 blocks
        c.read(t(0), 1, 1, 0, 4 * KB);
        c.read(t(1), 1, 1, 4 * KB, 4 * KB);
        c.read(t(2), 1, 1, 8 * KB, 4 * KB);
        c.read(t(3), 1, 1, 12 * KB, 4 * KB);
        // Touch block 0 so block 1 is LRU.
        c.read(t(4), 1, 1, 0, 4 * KB);
        let r = c.read(t(5), 1, 1, 16 * KB, 4 * KB);
        assert!(r.writebacks.is_empty(), "clean eviction needs no writeback");
        assert!(c.contains(1, 0), "recently touched block survives");
        assert!(!c.contains(1, 4 * KB), "LRU block evicted");
    }

    #[test]
    fn evicting_dirty_block_produces_writeback() {
        let mut c = cache(8 * KB); // 2 blocks
        c.write(t(0), 1, 1, 0, 8 * KB); // both blocks dirty
        let r = c.read(t(1), 1, 1, 16 * KB, 8 * KB); // displaces both
        let wb_bytes: u64 = r.writebacks.iter().map(|r| r.length).sum();
        assert_eq!(wb_bytes, 8 * KB);
        assert_eq!(c.stats().dirty_evictions, 2);
        // The flush queue entry for the evicted block is stale and must
        // not produce duplicate traffic.
        assert!(c.take_flush_batch(t(2), u64::MAX).is_empty());
    }

    #[test]
    fn capacity_is_never_exceeded() {
        let mut c = cache(32 * KB); // 8 blocks
        for i in 0..100u64 {
            c.read(t(i), 1, 1, i * 4 * KB, 4 * KB);
            assert!(c.resident_blocks() <= 8, "resident {} at i {}", c.resident_blocks(), i);
        }
    }

    #[test]
    fn request_larger_than_cache_streams_through() {
        let mut c = cache(16 * KB); // 4 blocks
        let r = c.read(t(0), 1, 1, 0, 64 * KB); // 16 blocks
        assert_eq!(r.miss_blocks, 16);
        assert!(c.resident_blocks() <= 4);
        c.stats().check_invariants();
    }

    #[test]
    fn per_process_cap_evicts_own_blocks_first() {
        let mut cfg = CacheConfig::buffered(64 * KB); // 16 blocks
        cfg.per_process_cap_blocks = Some(4);
        cfg.read_ahead = false;
        let mut c = BlockCache::new(cfg);
        // Process 2 installs 4 blocks first.
        c.read(t(0), 2, 2, 0, 16 * KB);
        // Process 1 then streams 8 blocks; with a cap of 4 it must evict
        // its own, leaving process 2's resident.
        for i in 0..8u64 {
            c.read(t(1 + i), 1, 1, i * 4 * KB, 4 * KB);
        }
        for b in 0..4u64 {
            assert!(c.contains(2, b * 4 * KB), "hogging victim's block {b} evicted");
        }
        let p1_resident = (0..8u64).filter(|&b| c.contains(1, b * 4 * KB)).count();
        assert!(p1_resident <= 5, "cap not enforced: {p1_resident} blocks resident");
    }

    #[test]
    fn without_cap_hog_takes_over() {
        let mut cfg = CacheConfig::buffered(32 * KB); // 8 blocks
        cfg.read_ahead = false;
        let mut c = BlockCache::new(cfg);
        c.read(t(0), 2, 2, 0, 8 * KB); // 2 blocks for process 2
        for i in 0..8u64 {
            c.read(t(1 + i), 1, 1, i * 4 * KB, 4 * KB);
        }
        assert!(!c.contains(2, 0), "hog should displace the other process");
    }

    #[test]
    fn wasted_prefetch_is_counted() {
        let mut c = cache(32 * KB); // 8 blocks
        // Trigger a prefetch, then stream unrelated data to evict it
        // before use.
        c.read(t(0), 1, 1, 0, 4 * KB);
        c.read(t(1), 1, 1, 4 * KB, 4 * KB); // prefetches blk 2
        for i in 0..8u64 {
            c.read(t(2 + i), 1, 2, i * 4 * KB, 4 * KB);
        }
        assert!(c.stats().wasted_prefetch_blocks >= 1);
        c.stats().check_invariants();
    }

    #[test]
    fn flush_all_cleans_everything() {
        let mut cfg = CacheConfig::buffered(64 * KB);
        cfg.write_policy = WritePolicy::sprite();
        let mut c = BlockCache::new(cfg);
        c.write(t(0), 1, 1, 0, 8 * KB);
        c.write(t(1), 1, 2, 0, 4 * KB);
        let ranges = c.flush_all();
        let bytes: u64 = ranges.iter().map(|r| r.length).sum();
        assert_eq!(bytes, 12 * KB);
        assert_eq!(c.dirty_bytes(), 0);
        assert!(c.flush_all().is_empty());
    }

    #[test]
    fn coalesce_merges_adjacent_blocks_per_file() {
        let ranges = coalesce(vec![(1, 0), (1, 1), (1, 3), (2, 4), (2, 5)], 4 * KB);
        assert_eq!(
            ranges,
            vec![
                ByteRange { file_id: 1, offset: 0, length: 8 * KB },
                ByteRange { file_id: 1, offset: 12 * KB, length: 4 * KB },
                ByteRange { file_id: 2, offset: 16 * KB, length: 8 * KB },
            ]
        );
    }

    #[test]
    fn zero_length_accesses_are_noops() {
        let mut c = cache(32 * KB);
        let r = c.read(t(0), 1, 1, 0, 0);
        assert_eq!(r.hit_blocks + r.miss_blocks, 0);
        let w = c.write(t(0), 1, 1, 0, 0);
        assert_eq!(w.dirtied_blocks, 0);
        assert_eq!(c.resident_blocks(), 0);
    }

    #[test]
    fn interleaved_files_keep_independent_seq_tracking() {
        let mut c = cache(1024 * KB);
        c.read(t(0), 1, 1, 0, 16 * KB);
        c.read(t(1), 1, 2, 0, 16 * KB);
        // Sequential continuation on each file still detected.
        let r1 = c.read(t(2), 1, 1, 16 * KB, 16 * KB);
        let r2 = c.read(t(3), 1, 2, 16 * KB, 16 * KB);
        assert!(!r1.prefetch.is_empty());
        assert!(!r2.prefetch.is_empty());
    }

    #[test]
    fn stats_bytes_track_logical_traffic() {
        let mut c = cache(64 * KB);
        c.read(t(0), 1, 1, 0, 10_000);
        c.write(t(1), 1, 1, 0, 5_000);
        assert_eq!(c.stats().bytes_read, 10_000);
        assert_eq!(c.stats().bytes_written, 5_000);
        assert_eq!(c.stats().read_calls, 1);
        assert_eq!(c.stats().write_calls, 1);
    }
}
