//! The file-system block buffer cache the paper's simulations revolve
//! around (§6).
//!
//! The cache is deliberately **pure bookkeeping**: its methods mutate
//! block state and report which *device operations are implied* (miss
//! fetches, read-ahead fetches, write-throughs, dirty evictions, flush
//! batches); the `iosim` crate owns the clock and charges time for those
//! operations. That split keeps every policy decision unit-testable
//! without a simulator in the loop.
//!
//! Policies implemented, each tied to the text:
//!
//! * **LRU block replacement** over fixed-size blocks (Figure 8 sweeps
//!   4 KB vs 8 KB blocks).
//! * **Read-ahead** (§6.2): on a sequential read, prefetch the same
//!   amount just read — "prefetching the amount of data just read allowed
//!   the application to continue without waiting, but did not fill the
//!   cache with data that would be unused for some time."
//! * **Write-behind** (§6.2): the process continues while dirty data
//!   drains to disk in the background.
//! * **Sprite-style delayed writes** (§2.1): dirty blocks become
//!   flushable only after a configurable age (30 s in Sprite), kept as a
//!   comparison baseline.
//! * **Write-through**: the no-buffering baseline.
//! * **Per-process buffer ownership caps** (§6.2): the ablation the paper
//!   tried against buffer hogging and found to *worsen* utilization.
//!
//! ```
//! use buffer_cache::{BlockCache, CacheConfig};
//! use sim_core::SimTime;
//!
//! let mut cache = BlockCache::new(CacheConfig::buffered(1024 * 1024));
//! // A cold read misses and implies one coalesced device fetch…
//! let out = cache.read(SimTime::ZERO, 1, 1, 0, 16 * 1024);
//! assert_eq!(out.miss_blocks, 4);
//! assert_eq!(out.fetches.len(), 1);
//! // …a re-read hits, and a sequential continuation prefetches ahead.
//! let again = cache.read(SimTime::from_secs(1), 1, 1, 0, 16 * 1024);
//! assert_eq!(again.hit_blocks, 4);
//! let next = cache.read(SimTime::from_secs(2), 1, 1, 16 * 1024, 16 * 1024);
//! assert!(!next.prefetch.is_empty());
//! ```

pub mod cache;
pub mod config;
pub mod lru;
pub mod partition;
pub mod stats;

pub use cache::{BlockCache, ByteRange, ReadOutcome, WriteOutcome};
pub use config::{CacheConfig, WritePolicy};
pub use partition::{range_owner, OWNERSHIP_STRIPE_BYTES};
pub use stats::CacheStats;
