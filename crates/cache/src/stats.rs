//! Cache accounting, mirroring the trace format's analysis flags
//! (`TRACE_CACHE_HIT/MISS`, `TRACE_RA_HIT`).

use serde::{Deserialize, Serialize};

/// Counters accumulated by a [`crate::BlockCache`]. Block-granular counts
/// satisfy the invariant `hit_blocks + miss_blocks == accessed_blocks`,
/// which the property tests assert.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CacheStats {
    /// Logical read calls observed.
    pub read_calls: u64,
    /// Logical write calls observed.
    pub write_calls: u64,
    /// Blocks touched by logical accesses (reads + writes).
    pub accessed_blocks: u64,
    /// Blocks found resident.
    pub hit_blocks: u64,
    /// Hits whose block was installed by read-ahead and not yet touched.
    pub readahead_hit_blocks: u64,
    /// Blocks that had to come from the device.
    pub miss_blocks: u64,
    /// Blocks fetched by read-ahead (speculatively).
    pub prefetched_blocks: u64,
    /// Prefetched blocks evicted before ever being used (wasted
    /// prefetch).
    pub wasted_prefetch_blocks: u64,
    /// Bytes the applications logically read.
    pub bytes_read: u64,
    /// Bytes the applications logically wrote.
    pub bytes_written: u64,
    /// Bytes fetched from the device (misses + prefetch).
    pub device_bytes_read: u64,
    /// Bytes written to the device (flushes + write-through + dirty
    /// evictions).
    pub device_bytes_written: u64,
    /// Clean blocks evicted.
    pub clean_evictions: u64,
    /// Dirty blocks evicted (each forces a device write before reuse —
    /// the stall that makes buffer hogging expensive, §6.2).
    pub dirty_evictions: u64,
}

impl CacheStats {
    /// Accumulate another partition's counters into this one — used by
    /// sharded runs to fold per-group cache statistics into one
    /// cluster-wide snapshot. Every field is a sum, so the merged stats
    /// satisfy the same invariants the parts do.
    pub fn merge(&mut self, other: &CacheStats) {
        self.read_calls += other.read_calls;
        self.write_calls += other.write_calls;
        self.accessed_blocks += other.accessed_blocks;
        self.hit_blocks += other.hit_blocks;
        self.readahead_hit_blocks += other.readahead_hit_blocks;
        self.miss_blocks += other.miss_blocks;
        self.prefetched_blocks += other.prefetched_blocks;
        self.wasted_prefetch_blocks += other.wasted_prefetch_blocks;
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
        self.device_bytes_read += other.device_bytes_read;
        self.device_bytes_written += other.device_bytes_written;
        self.clean_evictions += other.clean_evictions;
        self.dirty_evictions += other.dirty_evictions;
    }

    /// Fraction of accessed blocks found resident (0 when nothing
    /// accessed).
    pub fn hit_ratio(&self) -> f64 {
        if self.accessed_blocks == 0 {
            0.0
        } else {
            self.hit_blocks as f64 / self.accessed_blocks as f64
        }
    }

    /// Fraction of logical I/O traffic absorbed by the cache: 1 − device
    /// reads / logical reads. The paper contrasts this with the 80 %+
    /// absorption of the BSD study (§6.2).
    pub fn read_absorption(&self) -> f64 {
        if self.bytes_read == 0 {
            0.0
        } else {
            // Prefetch is excluded: it is traffic the cache *chose* to
            // generate, not demand misses.
            let demand_miss = self.miss_blocks as f64;
            let accessed =
                self.hit_blocks as f64 + self.miss_blocks as f64;
            if accessed == 0.0 {
                0.0
            } else {
                1.0 - demand_miss / accessed
            }
        }
    }

    /// The core accounting identity; the property tests call this after
    /// arbitrary operation sequences.
    pub fn check_invariants(&self) {
        assert_eq!(
            self.hit_blocks + self.miss_blocks,
            self.accessed_blocks,
            "hits + misses must equal accesses"
        );
        assert!(
            self.readahead_hit_blocks <= self.hit_blocks,
            "RA hits are a subset of hits"
        );
        assert!(
            self.wasted_prefetch_blocks <= self.prefetched_blocks,
            "cannot waste more prefetches than issued"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_on_empty_stats_are_zero() {
        let s = CacheStats::default();
        assert_eq!(s.hit_ratio(), 0.0);
        assert_eq!(s.read_absorption(), 0.0);
        s.check_invariants();
    }

    #[test]
    fn merge_sums_and_preserves_invariants() {
        let mut a = CacheStats {
            accessed_blocks: 10,
            hit_blocks: 7,
            miss_blocks: 3,
            bytes_read: 100,
            dirty_evictions: 2,
            ..Default::default()
        };
        let b = CacheStats {
            accessed_blocks: 4,
            hit_blocks: 1,
            miss_blocks: 3,
            bytes_read: 50,
            clean_evictions: 5,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.accessed_blocks, 14);
        assert_eq!(a.hit_blocks, 8);
        assert_eq!(a.miss_blocks, 6);
        assert_eq!(a.bytes_read, 150);
        assert_eq!(a.clean_evictions, 5);
        assert_eq!(a.dirty_evictions, 2);
        a.check_invariants();
    }

    #[test]
    fn hit_ratio_computes() {
        let s = CacheStats {
            accessed_blocks: 10,
            hit_blocks: 7,
            miss_blocks: 3,
            ..Default::default()
        };
        assert!((s.hit_ratio() - 0.7).abs() < 1e-12);
        s.check_invariants();
    }

    #[test]
    #[should_panic(expected = "hits + misses")]
    fn invariant_violation_detected() {
        let s = CacheStats {
            accessed_blocks: 5,
            hit_blocks: 1,
            miss_blocks: 1,
            ..Default::default()
        };
        s.check_invariants();
    }
}
