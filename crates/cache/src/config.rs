//! Cache configuration: size, block size, and policy switches.

use serde::{Deserialize, Serialize};
use sim_core::units::{KB, MB};
use sim_core::SimDuration;

/// What happens to written data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WritePolicy {
    /// The process waits for the device write — the no-buffering baseline.
    WriteThrough,
    /// The process continues immediately; dirty blocks drain to the device
    /// in the background as fast as it accepts them (§6.2).
    WriteBehind,
    /// Sprite-style delayed writes (§2.1): a dirty block becomes
    /// flushable only once it has aged past the delay, giving short-lived
    /// data a chance to die in the cache. (The paper argues this buys
    /// little for supercomputer workloads, whose files always go to disk.)
    Delayed(SimDuration),
}

impl WritePolicy {
    /// The 30-second Sprite configuration.
    pub fn sprite() -> WritePolicy {
        WritePolicy::Delayed(SimDuration::from_secs(30))
    }
}

/// Cache geometry and policy configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total cache capacity in bytes.
    pub capacity: u64,
    /// Block size in bytes (Figure 8: 4 KB and 8 KB).
    pub block_size: u64,
    /// Enable sequential read-ahead.
    pub read_ahead: bool,
    /// Write handling.
    pub write_policy: WritePolicy,
    /// Optional limit on how many blocks one process may own (§6.2's
    /// anti-hogging ablation). `None` disables the cap.
    pub per_process_cap_blocks: Option<u64>,
}

impl CacheConfig {
    /// A cache of `capacity` bytes with the paper's best-performing
    /// policies: read-ahead on, write-behind on, no ownership cap,
    /// 4 KB blocks.
    pub fn buffered(capacity: u64) -> CacheConfig {
        CacheConfig {
            capacity,
            block_size: 4 * KB,
            read_ahead: true,
            write_policy: WritePolicy::WriteBehind,
            per_process_cap_blocks: None,
        }
    }

    /// The unbuffered baseline: no read-ahead, write-through.
    pub fn unbuffered(capacity: u64) -> CacheConfig {
        CacheConfig {
            capacity,
            block_size: 4 * KB,
            read_ahead: false,
            write_policy: WritePolicy::WriteThrough,
            per_process_cap_blocks: None,
        }
    }

    /// The per-CPU main-memory cache range the paper considers realistic
    /// (§6.2: 0.5–2 MW per processor): this is the 2 MW = 16 MB point.
    pub fn main_memory_share() -> CacheConfig {
        CacheConfig::buffered(16 * MB)
    }

    /// The per-CPU SSD share (32 MW = 256 MB, §6.3).
    pub fn ssd_share() -> CacheConfig {
        CacheConfig::buffered(sim_core::units::YMP_SSD_PER_CPU_BYTES)
    }

    /// Capacity in whole blocks.
    pub fn capacity_blocks(&self) -> u64 {
        (self.capacity / self.block_size).max(1)
    }

    /// This configuration cut down to one of `parts` equal cache
    /// partitions: capacity is divided (never below one block) and every
    /// policy switch is kept. Sharded simulations give each group
    /// `cluster_config.partitioned(n_groups)` so the cluster-wide cache
    /// budget stays comparable to a monolithic run.
    pub fn partitioned(&self, parts: usize) -> CacheConfig {
        let parts = parts.max(1) as u64;
        let mut c = self.clone();
        c.capacity = (self.capacity / parts).max(self.block_size);
        c
    }

    /// Validate invariants; panics on nonsense geometry. Called by
    /// [`crate::BlockCache::new`].
    pub fn validate(&self) {
        assert!(self.block_size > 0, "block size must be positive");
        assert!(
            self.capacity >= self.block_size,
            "cache must hold at least one block"
        );
        if let Some(cap) = self.per_process_cap_blocks {
            assert!(cap > 0, "per-process cap must be positive when present");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_blocks_rounds_down() {
        let mut c = CacheConfig::buffered(10 * KB);
        c.block_size = 4 * KB;
        assert_eq!(c.capacity_blocks(), 2);
    }

    #[test]
    fn presets_match_paper() {
        assert_eq!(CacheConfig::ssd_share().capacity, 256 * MB);
        assert_eq!(CacheConfig::main_memory_share().capacity, 16 * MB);
        assert_eq!(WritePolicy::sprite(), WritePolicy::Delayed(SimDuration::from_secs(30)));
        assert!(CacheConfig::buffered(MB).read_ahead);
        assert_eq!(CacheConfig::unbuffered(MB).write_policy, WritePolicy::WriteThrough);
    }

    #[test]
    fn partitioned_divides_capacity_and_keeps_policies() {
        let c = CacheConfig::buffered(64 * MB);
        let p = c.partitioned(8);
        assert_eq!(p.capacity, 8 * MB);
        assert_eq!(p.block_size, c.block_size);
        assert_eq!(p.write_policy, c.write_policy);
        assert!(p.read_ahead);
        // Degenerate splits clamp to one block so validate() still holds.
        let tiny = c.partitioned(usize::MAX);
        assert_eq!(tiny.capacity, tiny.block_size);
        tiny.validate();
        // parts = 0 behaves as 1.
        assert_eq!(c.partitioned(0).capacity, c.capacity);
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn tiny_cache_rejected() {
        let mut c = CacheConfig::buffered(MB);
        c.capacity = 100;
        c.block_size = 4 * KB;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "cap must be positive")]
    fn zero_cap_rejected() {
        let mut c = CacheConfig::buffered(MB);
        c.per_process_cap_blocks = Some(0);
        c.validate();
    }
}
