//! A recency index: O(log n) touch / evict-least-recent, used both
//! globally and per owning process.

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;

/// Tracks recency of a set of keys. The least-recently-touched key pops
/// first.
#[derive(Debug, Clone)]
pub struct LruIndex<K: Eq + Hash + Clone> {
    next_seq: u64,
    by_key: HashMap<K, u64>,
    by_seq: BTreeMap<u64, K>,
}

impl<K: Eq + Hash + Clone> Default for LruIndex<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Eq + Hash + Clone> LruIndex<K> {
    /// An empty index.
    pub fn new() -> Self {
        LruIndex { next_seq: 0, by_key: HashMap::new(), by_seq: BTreeMap::new() }
    }

    /// Mark `key` as most recently used, inserting it if absent.
    pub fn touch(&mut self, key: K) {
        if let Some(old) = self.by_key.insert(key.clone(), self.next_seq) {
            self.by_seq.remove(&old);
        }
        self.by_seq.insert(self.next_seq, key);
        self.next_seq += 1;
    }

    /// Remove `key`; true if it was present.
    pub fn remove(&mut self, key: &K) -> bool {
        match self.by_key.remove(key) {
            Some(seq) => {
                self.by_seq.remove(&seq);
                true
            }
            None => false,
        }
    }

    /// Remove and return the least recently used key.
    pub fn pop_lru(&mut self) -> Option<K> {
        let (&seq, _) = self.by_seq.iter().next()?;
        let key = self.by_seq.remove(&seq).expect("seq just observed");
        self.by_key.remove(&key);
        Some(key)
    }

    /// The least recently used key, without removing it.
    pub fn peek_lru(&self) -> Option<&K> {
        self.by_seq.values().next()
    }

    /// Whether `key` is tracked.
    pub fn contains(&self, key: &K) -> bool {
        self.by_key.contains_key(key)
    }

    /// Number of tracked keys.
    pub fn len(&self) -> usize {
        self.by_key.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.by_key.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_recency_order() {
        let mut l = LruIndex::new();
        l.touch("a");
        l.touch("b");
        l.touch("c");
        assert_eq!(l.pop_lru(), Some("a"));
        assert_eq!(l.pop_lru(), Some("b"));
        assert_eq!(l.pop_lru(), Some("c"));
        assert_eq!(l.pop_lru(), None);
    }

    #[test]
    fn touch_refreshes_recency() {
        let mut l = LruIndex::new();
        l.touch(1);
        l.touch(2);
        l.touch(3);
        l.touch(1); // 1 becomes most recent
        assert_eq!(l.pop_lru(), Some(2));
        assert_eq!(l.pop_lru(), Some(3));
        assert_eq!(l.pop_lru(), Some(1));
    }

    #[test]
    fn remove_works_and_reports() {
        let mut l = LruIndex::new();
        l.touch('x');
        l.touch('y');
        assert!(l.remove(&'x'));
        assert!(!l.remove(&'x'));
        assert_eq!(l.len(), 1);
        assert_eq!(l.pop_lru(), Some('y'));
        assert!(l.is_empty());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut l = LruIndex::new();
        l.touch(10);
        l.touch(20);
        assert_eq!(l.peek_lru(), Some(&10));
        assert_eq!(l.len(), 2);
        assert!(l.contains(&10));
        assert!(!l.contains(&30));
    }

    #[test]
    fn internal_maps_stay_consistent_under_churn() {
        let mut l = LruIndex::new();
        for i in 0..1000u32 {
            l.touch(i % 37);
            if i % 5 == 0 {
                l.pop_lru();
            }
            if i % 11 == 0 {
                l.remove(&(i % 37));
            }
            assert_eq!(l.by_key.len(), l.by_seq.len());
        }
    }
}
