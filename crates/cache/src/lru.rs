//! A recency index: O(1) touch / remove / evict-least-recent, used both
//! globally and per owning process.
//!
//! The index is an intrusive doubly-linked list threaded through a slab
//! of nodes (slot indices instead of pointers), plus an [`FxHashMap`]
//! from key to slot. Freed slots are chained on a free list and reused,
//! so steady-state churn allocates nothing. Every operation — including
//! `touch` of an already-tracked key, which the per-request hot path
//! performs once per accessed block — is a constant number of hash-map
//! probes and link swaps; the previous `HashMap` + `BTreeMap`
//! implementation paid O(log n) per touch and is kept under `#[cfg(test)]`
//! as the reference model for the property tests below.

use rustc_hash::FxHashMap;
use std::hash::Hash;

/// Sentinel slot meaning "no node".
const NIL: usize = usize::MAX;

#[derive(Debug, Clone)]
struct Node<K> {
    /// `None` while the slot sits on the free list.
    key: Option<K>,
    prev: usize,
    next: usize,
}

/// Tracks recency of a set of keys. The least-recently-touched key pops
/// first.
#[derive(Debug, Clone)]
pub struct LruIndex<K: Eq + Hash + Clone> {
    nodes: Vec<Node<K>>,
    index: FxHashMap<K, usize>,
    /// Least recently used end of the list.
    head: usize,
    /// Most recently used end of the list.
    tail: usize,
    /// Free-list head, threaded through `Node::next`.
    free: usize,
}

impl<K: Eq + Hash + Clone> Default for LruIndex<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Eq + Hash + Clone> LruIndex<K> {
    /// An empty index.
    pub fn new() -> Self {
        LruIndex {
            nodes: Vec::new(),
            index: FxHashMap::default(),
            head: NIL,
            tail: NIL,
            free: NIL,
        }
    }

    /// Detach slot `i` from the recency list (it stays allocated).
    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.nodes[i].prev, self.nodes[i].next);
        match prev {
            NIL => self.head = next,
            p => self.nodes[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.nodes[n].prev = prev,
        }
    }

    /// Append slot `i` at the most-recently-used end.
    fn push_tail(&mut self, i: usize) {
        self.nodes[i].prev = self.tail;
        self.nodes[i].next = NIL;
        match self.tail {
            NIL => self.head = i,
            t => self.nodes[t].next = i,
        }
        self.tail = i;
    }

    /// Take a slot off the free list, or grow the slab.
    fn alloc(&mut self, key: K) -> usize {
        match self.free {
            NIL => {
                self.nodes.push(Node { key: Some(key), prev: NIL, next: NIL });
                self.nodes.len() - 1
            }
            i => {
                self.free = self.nodes[i].next;
                self.nodes[i].key = Some(key);
                i
            }
        }
    }

    /// Return slot `i` to the free list.
    fn release(&mut self, i: usize) {
        self.nodes[i].key = None;
        self.nodes[i].next = self.free;
        self.free = i;
    }

    /// Mark `key` as most recently used, inserting it if absent.
    pub fn touch(&mut self, key: K) {
        if let Some(&i) = self.index.get(&key) {
            if self.tail != i {
                self.unlink(i);
                self.push_tail(i);
            }
        } else {
            let i = self.alloc(key.clone());
            self.index.insert(key, i);
            self.push_tail(i);
        }
    }

    /// Remove `key`; true if it was present.
    pub fn remove(&mut self, key: &K) -> bool {
        match self.index.remove(key) {
            Some(i) => {
                self.unlink(i);
                self.release(i);
                true
            }
            None => false,
        }
    }

    /// Remove and return the least recently used key.
    pub fn pop_lru(&mut self) -> Option<K> {
        let i = self.head;
        if i == NIL {
            return None;
        }
        let key = self.nodes[i].key.take().expect("listed node has a key");
        self.unlink(i);
        self.nodes[i].next = self.free;
        self.free = i;
        self.index.remove(&key);
        Some(key)
    }

    /// The least recently used key, without removing it.
    pub fn peek_lru(&self) -> Option<&K> {
        match self.head {
            NIL => None,
            i => self.nodes[i].key.as_ref(),
        }
    }

    /// Whether `key` is tracked.
    pub fn contains(&self, key: &K) -> bool {
        self.index.contains_key(key)
    }

    /// Number of tracked keys.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Walk the list front-to-back and check every internal invariant.
    #[cfg(test)]
    fn check_invariants(&self) {
        let mut seen = 0usize;
        let mut prev = NIL;
        let mut i = self.head;
        while i != NIL {
            assert_eq!(self.nodes[i].prev, prev, "back link broken at slot {i}");
            let key = self.nodes[i].key.as_ref().expect("listed node has a key");
            assert_eq!(self.index.get(key), Some(&i), "index disagrees at slot {i}");
            seen += 1;
            assert!(seen <= self.nodes.len(), "cycle in recency list");
            prev = i;
            i = self.nodes[i].next;
        }
        assert_eq!(self.tail, prev, "tail does not terminate the list");
        assert_eq!(seen, self.index.len(), "list length != index length");
        // Free slots + listed slots account for the whole slab.
        let mut free = 0usize;
        let mut f = self.free;
        while f != NIL {
            assert!(self.nodes[f].key.is_none(), "free slot {f} still keyed");
            free += 1;
            assert!(free <= self.nodes.len(), "cycle in free list");
            f = self.nodes[f].next;
        }
        assert_eq!(seen + free, self.nodes.len(), "slab leak");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::{BTreeMap, HashMap};

    /// The previous O(log n) implementation, kept verbatim as the model
    /// the intrusive-list rewrite is checked against.
    #[derive(Debug, Clone)]
    struct ModelLru<K: Eq + std::hash::Hash + Clone> {
        next_seq: u64,
        by_key: HashMap<K, u64>,
        by_seq: BTreeMap<u64, K>,
    }

    impl<K: Eq + std::hash::Hash + Clone> ModelLru<K> {
        fn new() -> Self {
            ModelLru { next_seq: 0, by_key: HashMap::new(), by_seq: BTreeMap::new() }
        }

        fn touch(&mut self, key: K) {
            if let Some(old) = self.by_key.insert(key.clone(), self.next_seq) {
                self.by_seq.remove(&old);
            }
            self.by_seq.insert(self.next_seq, key);
            self.next_seq += 1;
        }

        fn remove(&mut self, key: &K) -> bool {
            match self.by_key.remove(key) {
                Some(seq) => {
                    self.by_seq.remove(&seq);
                    true
                }
                None => false,
            }
        }

        fn pop_lru(&mut self) -> Option<K> {
            let (&seq, _) = self.by_seq.iter().next()?;
            let key = self.by_seq.remove(&seq).expect("seq just observed");
            self.by_key.remove(&key);
            Some(key)
        }

        fn peek_lru(&self) -> Option<&K> {
            self.by_seq.values().next()
        }

        fn len(&self) -> usize {
            self.by_key.len()
        }
    }

    #[test]
    fn pops_in_recency_order() {
        let mut l = LruIndex::new();
        l.touch("a");
        l.touch("b");
        l.touch("c");
        assert_eq!(l.pop_lru(), Some("a"));
        assert_eq!(l.pop_lru(), Some("b"));
        assert_eq!(l.pop_lru(), Some("c"));
        assert_eq!(l.pop_lru(), None);
    }

    #[test]
    fn touch_refreshes_recency() {
        let mut l = LruIndex::new();
        l.touch(1);
        l.touch(2);
        l.touch(3);
        l.touch(1); // 1 becomes most recent
        assert_eq!(l.pop_lru(), Some(2));
        assert_eq!(l.pop_lru(), Some(3));
        assert_eq!(l.pop_lru(), Some(1));
    }

    #[test]
    fn touching_the_most_recent_key_is_a_noop() {
        let mut l = LruIndex::new();
        l.touch(1);
        l.touch(2);
        l.touch(2);
        l.check_invariants();
        assert_eq!(l.pop_lru(), Some(1));
        assert_eq!(l.pop_lru(), Some(2));
    }

    #[test]
    fn remove_works_and_reports() {
        let mut l = LruIndex::new();
        l.touch('x');
        l.touch('y');
        assert!(l.remove(&'x'));
        assert!(!l.remove(&'x'));
        assert_eq!(l.len(), 1);
        assert_eq!(l.pop_lru(), Some('y'));
        assert!(l.is_empty());
    }

    #[test]
    fn remove_mid_list_keeps_order_intact() {
        let mut l = LruIndex::new();
        for k in 0..5 {
            l.touch(k);
        }
        assert!(l.remove(&2));
        l.check_invariants();
        assert_eq!(l.pop_lru(), Some(0));
        assert_eq!(l.pop_lru(), Some(1));
        assert_eq!(l.pop_lru(), Some(3));
        assert_eq!(l.pop_lru(), Some(4));
        assert_eq!(l.pop_lru(), None);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut l = LruIndex::new();
        l.touch(10);
        l.touch(20);
        assert_eq!(l.peek_lru(), Some(&10));
        assert_eq!(l.len(), 2);
        assert!(l.contains(&10));
        assert!(!l.contains(&30));
    }

    #[test]
    fn freed_slots_are_reused() {
        let mut l = LruIndex::new();
        for round in 0..50u32 {
            for k in 0..8u32 {
                l.touch(k);
            }
            for k in 0..8u32 {
                assert!(l.remove(&k), "round {round}");
            }
        }
        // 50 rounds of 8 keys never grow the slab past one round's worth.
        assert!(l.nodes.len() <= 8, "slab grew to {}", l.nodes.len());
        l.check_invariants();
    }

    #[test]
    fn internal_state_stays_consistent_under_churn() {
        let mut l = LruIndex::new();
        for i in 0..1000u32 {
            l.touch(i % 37);
            if i % 5 == 0 {
                l.pop_lru();
            }
            if i % 11 == 0 {
                l.remove(&(i % 37));
            }
            l.check_invariants();
        }
    }

    /// Operations the property test drives against both implementations.
    #[derive(Debug, Clone)]
    enum Op {
        Touch(u8),
        Remove(u8),
        Pop,
        Peek,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0u8..32).prop_map(Op::Touch),
            (0u8..32).prop_map(Op::Remove),
            Just(Op::Pop),
            Just(Op::Peek),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn matches_btreemap_model(ops in proptest::collection::vec(op_strategy(), 0..200)) {
            let mut real = LruIndex::new();
            let mut model = ModelLru::new();
            for op in ops {
                match op {
                    Op::Touch(k) => {
                        real.touch(k);
                        model.touch(k);
                    }
                    Op::Remove(k) => {
                        prop_assert_eq!(real.remove(&k), model.remove(&k));
                    }
                    Op::Pop => {
                        prop_assert_eq!(real.pop_lru(), model.pop_lru());
                    }
                    Op::Peek => {
                        prop_assert_eq!(real.peek_lru(), model.peek_lru());
                    }
                }
                prop_assert_eq!(real.len(), model.len());
                real.check_invariants();
            }
            // Drain both: full eviction order must agree.
            while let Some(k) = model.pop_lru() {
                prop_assert_eq!(real.pop_lru(), Some(k));
            }
            prop_assert_eq!(real.pop_lru(), None);
        }
    }
}
